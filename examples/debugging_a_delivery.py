#!/usr/bin/env python3
"""Observability tour: decode a path code and trace a packet's journey.

Shows the debugging workflow the library ships with:

1. render the converged network as an ASCII map;
2. *decode* a destination's path code back into its relay chain (§III-B1:
   "all its upstream relaying nodes are implicitly encoded");
3. enable tracing, send a control packet, and print the hop-by-hop timeline
   of anycast forwards / backtracks / delivery.

Usage::

    python examples/debugging_a_delivery.py [seed]
"""

import sys

import repro
from repro.experiments.timeline import TELE_CATEGORIES, render_timeline
from repro.topology.render import render_network


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    net = repro.build_network(topology="indoor-testbed", protocol="tele", seed=seed)
    net.converge(max_seconds=240)
    print(render_network(net))

    # Pick a deep destination and decode its implicit path.
    destination = max(
        (
            n
            for n in net.non_sink_nodes()
            if net.protocols[n].path_code is not None
            and net.stacks[n].routing.hop_count <= 6
        ),
        key=lambda n: net.stacks[n].routing.hop_count,
    )
    code = net.protocols[destination].path_code
    print(f"\nDestination: node {destination}, path code {code}")
    print("Implicitly encoded relay chain (decoded from the code alone):")
    for node, prefix in net.controller.decode_path(code):
        print(f"  node {node:3d}  prefix {prefix}")

    # Trace one delivery end to end.
    net.sim.tracer.enable(categories=TELE_CATEGORIES)
    record = net.send_control(destination, payload={"traced": True})
    net.run(45)
    serial = None
    for key in net._records_by_key:
        if net._records_by_key[key] is record:
            serial = key[1]
    print(f"\ndelivered={record.delivered} latency={record.latency_s and round(record.latency_s, 2)}s")
    print(render_timeline(net.sim.tracer, serial))


if __name__ == "__main__":
    main()
