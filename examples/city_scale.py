#!/usr/bin/env python3
"""City-scale remote control: thousands of meters, thousands of nodes.

The paper evaluates TeleAdjusting at a few hundred nodes; this example
pushes the same protocol onto a metering-style *city-blocks* deployment —
nodes scattered inside square blocks on a Manhattan street plan — at a
scale where the brute-force channel's N×N gain matrix would dominate both
memory and per-packet work. `NetworkConfig(spatial_index=True)` swaps in
the grid-hash spatial channel (`repro.radio.spatial`): each transmission
only considers receivers inside a shadowing-margined culling radius, so
per-event cost tracks *local density*, not network size — bit-identical
to the dense channel (see docs/performance.md, "The spatial index").

The script builds the city, prints what the index is doing (cells,
culling radius, realized neighbourhood sizes), converges the CTP tree +
path codes, then remote-controls the farthest street corners and reports
PDR / latency / simulated-vs-wall throughput.

Usage::

    python examples/city_scale.py [blocks_per_side] [seed]

Defaults to a 13×13-block city (~2 000 nodes, a couple of minutes).
Try ``python examples/city_scale.py 5`` for a 300-node warm-up.
"""

import sys
import time

from repro.experiments.harness import Network, NetworkConfig
from repro.topology import city_blocks


def main() -> None:
    blocks = int(sys.argv[1]) if len(sys.argv) > 1 else 13
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 1

    deployment = city_blocks(blocks_x=blocks, blocks_y=blocks, nodes_per_block=12, seed=seed)
    xs = [p[0] for p in deployment.positions]
    ys = [p[1] for p in deployment.positions]
    print(
        f"City: {blocks}x{blocks} blocks, {deployment.size} nodes over "
        f"{max(xs) - min(xs):.0f} m x {max(ys) - min(ys):.0f} m; sink = {deployment.sink}"
    )

    net = Network(
        NetworkConfig(
            topology=deployment,
            protocol="tele",
            seed=seed,
            always_on=True,       # mains-powered metering: no LPL duty cycle
            collection_ipi=None,  # control-plane study: no background traffic
            fading_sigma_db=0.0,
            spatial_index=True,
        )
    )

    # What the index bought us: the channel materialises only realized-audible
    # neighbourhoods instead of an N x N matrix.
    spatial = net.channel._spatial
    degrees = [len(net.channel._audible.get(n, ())) for n in range(deployment.size)]
    mean_deg = sum(degrees) / len(degrees)
    print(
        f"Spatial index: culling radius {spatial.radius:.0f} m, "
        f"{len(spatial.index._cells)} grid cells of {spatial.index.cell_size:.0f} m"
    )
    print(
        f"Audible neighbourhoods: mean {mean_deg:.0f}, max {max(degrees)} "
        f"of {deployment.size} nodes ({mean_deg / deployment.size:.1%} of dense)"
    )

    started = time.perf_counter()
    net.converge(max_seconds=240, target=0.95)
    print(
        f"\nConverged in {time.perf_counter() - started:.1f} s wall: "
        f"routed {net.routed_fraction():.0%}, coded {net.coded_fraction():.0%}"
    )

    # Remote-control the far corners: the deepest-coded nodes in the city.
    targets = sorted(
        (n for n in net.non_sink_nodes() if net.stacks[n].routing.has_route),
        key=lambda n: net.stacks[n].routing.hop_count,
        reverse=True,
    )[:5]
    print("\nAdjusting the five deepest street corners:")
    records = []
    for dest in targets:
        record = net.send_control(dest, payload={"ipi_s": 600})
        net.run(10)
        records.append(record)
        hops = net.stacks[dest].routing.hop_count
        latency = f"{record.latency_s:.3f} s" if record.latency_s is not None else "-"
        print(
            f"  node {dest:5d} ({hops} hops): delivered={record.delivered} "
            f"latency={latency} athx={record.athx}"
        )

    delivered = sum(1 for r in records if r.delivered)
    wall = time.perf_counter() - started
    print(
        f"\nPDR {delivered}/{len(records)}; {net.sim.events_executed:,} events "
        f"in {wall:.1f} s wall ({net.sim.events_executed / wall:,.0f} events/s)"
    )
    assert delivered == len(records), "city-scale control delivery failed"
    print("City-scale remote control successful.")


if __name__ == "__main__":
    main()
