#!/usr/bin/env python3
"""Beyond the paper: wake-interval and scalability sweeps on the runner.

The paper fixes the LPL wake interval at 512 ms and evaluates two fixed
network sizes. This example sweeps both axes, and demonstrates the
``repro.runner`` execution engine: every sweep point is an independent cell,
so ``--jobs N`` fans them out over N worker processes, and ``--cache-dir``
makes re-runs load unchanged points from disk instead of re-simulating.

1. wake interval ∈ {256, 512, 1024} ms — latency rises with the interval
   (per-hop rendezvous), idle duty cycle falls;
2. network size ∈ {10, 20, 40} at constant density — path codes grow with
   tree depth, delivery stays reliable.

Usage::

    python examples/parameter_sweep.py                 # serial, no cache
    python examples/parameter_sweep.py --jobs 4        # parallel
    python examples/parameter_sweep.py --jobs 4 --cache-dir .repro-cache
    # crash-safe: journal every cell, resume after a kill
    python examples/parameter_sweep.py --jobs 4 --journal-dir .repro-journal
    python examples/parameter_sweep.py --jobs 4 --journal-dir .repro-journal --resume
"""

import argparse

from repro.experiments.sweep import sweep_network_size, sweep_wake_interval
from repro.runner import ParallelRunner, ResultCache


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes (1 = serial)"
    )
    parser.add_argument(
        "--cache-dir", type=str, default=None, help="reuse unchanged points from here"
    )
    parser.add_argument(
        "--journal-dir", type=str, default=None,
        help="journal every cell here so a killed sweep can resume",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume from the journal instead of starting fresh",
    )
    args = parser.parse_args()
    cache = ResultCache(args.cache_dir) if args.cache_dir else None

    def make_runner() -> ParallelRunner:
        return ParallelRunner(
            jobs=args.jobs,
            cache=cache,
            journal_dir=args.journal_dir,
            resume=args.resume,
            handle_signals=True,
        )

    runner = make_runner()
    print("Wake-interval sweep (TeleAdjusting, indoor testbed)")
    print(f"{'wake_ms':>8s} {'PDR':>6s} {'duty':>7s} {'latency':>8s}")
    for point in sweep_wake_interval((256, 512, 1024), n_controls=10, runner=runner):
        print(
            f"{point.x:8.0f} {point.pdr:6.2f} "
            f"{point.duty_cycle * 100:6.2f}% {point.mean_latency:7.2f}s"
        )
    print(runner.last_report.summary_line())

    runner = make_runner()
    print("\nNetwork-size sweep (constant density)")
    print(f"{'nodes':>6s} {'PDR':>6s} {'coded':>6s} {'avg bits':>9s} {'max bits':>9s}")
    for point in sweep_network_size((10, 20, 40), n_controls=8, runner=runner):
        print(
            f"{point.x:6.0f} {point.pdr:6.2f} "
            f"{point.detail['coded_fraction']:6.2f} "
            f"{point.detail['mean_code_bits']:9.2f} "
            f"{point.detail['max_code_bits']:9.0f}"
        )
    print(runner.last_report.summary_line())


if __name__ == "__main__":
    main()
