#!/usr/bin/env python3
"""Quickstart: build a WSN, construct path codes, remotely control a node.

Runs the paper's core scenario end to end on the 40-node indoor testbed
topology: CTP builds the collection tree, TeleAdjusting assigns path codes,
and the sink delivers a remote-control packet to a multi-hop destination
with opportunistic prefix-match forwarding.

Usage::

    python examples/quickstart.py [seed]
"""

import sys

import repro
from repro.topology.render import render_network


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    print("Building the 40-node indoor testbed (CC2420 power level 2)…")
    net = repro.build_network(topology="indoor-testbed", protocol="tele", seed=seed)

    print("Converging: CTP tree + path-code construction…")
    converged = net.converge(max_seconds=240)
    print(
        f"  routed: {net.routed_fraction():.0%}   "
        f"coded: {net.coded_fraction():.0%}   converged: {converged}"
    )
    print()
    print(render_network(net))

    # Show a few path codes, the paper's addressing scheme in action.
    print("\nSample path codes (parent's code is a prefix of each child's):")
    shown = 0
    for node_id in sorted(net.stacks):
        tele = net.protocols[node_id]
        if tele.path_code is not None and shown < 8:
            hop = net.stacks[node_id].routing.hop_count
            print(f"  node {node_id:2d}  hop {hop}  code {tele.path_code}")
            shown += 1

    # Let construction-phase traffic drain, then start the measurement
    # window, as the paper's evaluation does.
    net.run(60)
    net.metrics.mark()

    # Pick a deep (but not fringe) destination and send it a control packet.
    candidates = [
        n
        for n in net.non_sink_nodes()
        if net.protocols[n].path_code is not None
        and 1 <= net.stacks[n].routing.hop_count <= 6
    ]
    destination = max(candidates, key=lambda n: net.stacks[n].routing.hop_count)
    hops = net.stacks[destination].routing.hop_count
    print(f"\nRemote control: sink -> node {destination} ({hops} hops)")
    record = net.send_control(destination, payload={"ipi_s": 300})
    net.run(60)

    print(f"  delivered: {record.delivered}")
    if record.delivered:
        print(f"  one-way latency: {record.latency_s:.2f} s")
        print(f"  transmissions en route (ATHX): {record.athx} (CTP depth {hops})")
    if record.acked_at is not None:
        print(f"  end-to-end ack RTT: {record.rtt_s:.2f} s")
    print(f"\nNetwork duty cycle: {net.metrics.mean_duty_cycle():.2%}")


if __name__ == "__main__":
    main()
