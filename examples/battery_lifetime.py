#!/usr/bin/env python3
"""Battery-lifetime projection per protocol (the stakes behind Figure 9).

Duty cycle is the paper's energy proxy; this example converts it into what a
deployment engineer actually budgets: milliamp-hours and months on a pair of
AA cells, using CC2420 datasheet currents (`repro.radio.energy`).

Usage::

    python examples/battery_lifetime.py [n_controls]
"""

import sys

from repro.experiments.harness import Network, NetworkConfig
from repro.radio.energy import network_energy
from repro.sim.units import SECOND
from repro.workloads.control import ControlSchedule


def measure(protocol: str, n_controls: int) -> tuple:
    net = Network(
        NetworkConfig(topology="indoor-testbed", protocol=protocol, seed=1)
    )
    net.converge(max_seconds=240)
    net.metrics.mark()
    mark = net.sim.now
    schedule = ControlSchedule(
        net.sim,
        send=lambda destination, index: net.send_control(destination, payload=index),
        destinations=net.non_sink_nodes(),
        interval=60 * SECOND,
        count=n_controls,
        rng_name=f"battery-{protocol}",
    )
    schedule.start(initial_delay=1 * SECOND)
    net.run(n_controls * 60.0 + 60.0)
    radios = {
        node_id: stack.radio
        for node_id, stack in net.stacks.items()
        if not stack.is_root  # the sink is mains-powered
    }
    reports = network_energy(radios, net.sim.now - mark)
    currents = [r.average_current_ma for r in reports.values()]
    lifetimes = [r.lifetime_days(battery_mah=2600.0) for r in reports.values()]
    return (
        sum(currents) / len(currents),
        min(lifetimes),
        sum(lifetimes) / len(lifetimes),
    )


def main() -> None:
    n_controls = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    print(
        f"{'protocol':10s} {'avg current':>12s} {'worst node':>11s} {'avg lifetime':>13s}"
    )
    for protocol in ("tele", "rpl", "drip"):
        avg_ma, worst_days, avg_days = measure(protocol, n_controls)
        print(
            f"{protocol:10s} {avg_ma:10.3f} mA {worst_days:8.0f} d {avg_days:10.0f} d"
        )
    print(
        "\nOne control packet per minute, 2xAA (2600 mAh). The ~2x lifetime\n"
        "gap between flooding and TeleAdjusting is the paper's Figure 9\n"
        "expressed in replacement-visits saved."
    )


if __name__ == "__main__":
    main()
