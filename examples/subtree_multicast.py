#!/usr/bin/env python3
"""One-to-many control via shared code prefixes (the paper's §I extension).

A path-code prefix names an entire subtree: this example picks a node with
several descendants, addresses a control packet to that node's *code prefix*,
and shows every node under the prefix receiving the payload while the rest
of the network stays untouched.

Usage::

    python examples/subtree_multicast.py [seed]
"""

import sys

import repro
from repro.core.multicast import MULTICAST


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    net = repro.build_network(topology="indoor-testbed", protocol="tele", seed=seed)
    net.converge(max_seconds=240)
    net.run(120)  # let post-construction repairs settle

    # Find the subtree root with the most descendants (by code prefix).
    codes = {
        n: p.path_code
        for n, p in net.protocols.items()
        if p.path_code is not None and n != net.sink
    }
    def descendants(root):
        prefix = codes[root]
        return [n for n, c in codes.items() if prefix.is_prefix_of(c) and n != root]

    root = max(codes, key=lambda n: len(descendants(n)))
    members = sorted([root, *descendants(root)])
    prefix = codes[root]
    print(f"Subtree root: node {root}, prefix {prefix}, members: {members}")

    received = []
    for node_id, protocol in net.protocols.items():
        protocol.forwarding.on_apply = (
            lambda payload, me=node_id: received.append(me)
        )

    sink_protocol = net.protocols[net.sink]
    sink_protocol.forwarding.send_multicast(prefix, payload={"set_power": 7})
    net.run(60)

    got = sorted(set(received))
    print(f"Delivered to: {got}")
    missing = sorted(set(members) - set(got))
    outside = sorted(set(got) - set(members))
    print(f"Missing subtree members: {missing}")
    print(f"Deliveries outside the subtree: {outside}")
    assert not outside, "multicast leaked outside the addressed prefix"
    coverage = len(set(got) & set(members)) / len(members)
    print(f"Subtree coverage: {coverage:.0%}")


if __name__ == "__main__":
    main()
