#!/usr/bin/env python3
"""Interference study: the paper's channel-26 vs channel-19 comparison.

Reruns the Figure 7 / Figure 9 experiment in miniature: each remote-control
protocol (TeleAdjusting, Re-Tele, RPL downward, Drip flooding) delivers a
series of control packets on a clean ZigBee channel (26) and on one
overlapped by WiFi (19). Prints a compact table of PDR, transmissions per
control packet, duty cycle, and latency.

Usage::

    python examples/interference_study.py [n_controls]

(Defaults to a small run; ~1–3 minutes of wall time.)
"""

import sys

from repro.experiments import run_comparison


def main() -> None:
    n_controls = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    print(
        f"{'protocol':10s} {'chan':>4s} {'PDR':>6s} {'tx/ctrl':>8s} "
        f"{'duty':>7s} {'latency':>8s}"
    )
    for channel in (26, 19):
        for variant in ("tele", "re-tele", "rpl", "drip"):
            result = run_comparison(
                variant,
                zigbee_channel=channel,
                seed=1,
                n_controls=n_controls,
                control_interval_s=45.0,
                converge_seconds=200.0,
            )
            print(
                f"{variant:10s} {channel:>4d} "
                f"{result.pdr:6.2f} "
                f"{result.tx_per_control:8.2f} "
                f"{result.duty_cycle * 100:6.2f}% "
                f"{(result.mean_latency or 0):7.2f}s"
            )
    print(
        "\nExpected shape (paper Fig.7/9, Table III): Drip is near-perfectly\n"
        "reliable but pays ~25x the transmissions and the highest duty cycle;\n"
        "RPL is cheap but loses the most packets under WiFi; TeleAdjusting\n"
        "combines flooding-grade reliability with routing-grade cost."
    )


if __name__ == "__main__":
    main()
