#!/usr/bin/env python3
"""Forest-monitoring scenario (GreenOrbs-style): detect and re-tune a node.

The paper's motivation (§II): in deployments like GreenOrbs, nodes hang on
tree trunks and manual re-configuration is impractical; the network manager
watches collection traffic at the controller, spots an anomalous node, and
*remotely adjusts* its parameters.

This example plays that story on a 60-node random field:

1. Collection runs with a 2-minute inter-packet interval (IPI).
2. One node develops an "anomaly": its IPI misconfigures to 10 s, flooding
   the network (think a stuck sensor reporting continuously).
3. The controller notices the hot origin in the sink's delivery counters.
4. TeleAdjusting delivers a control packet re-setting the node's IPI.
5. Traffic returns to normal; we print the before/after rates.

Usage::

    python examples/forest_monitoring.py [seed]
"""

import sys
from collections import Counter

from repro.core.diagnostics import AdjustmentPlanner, TrafficMonitor
from repro.experiments.harness import Network, NetworkConfig
from repro.sim import SECOND
from repro.topology import random_uniform


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    deployment = random_uniform(n=60, width=120.0, height=120.0, seed=seed)
    net = Network(
        NetworkConfig(
            topology=deployment,
            protocol="tele",
            seed=seed,
            collection_ipi=120 * SECOND,
        )
    )
    print(f"Deployed {deployment.size} nodes over 120 m x 120 m; sink = {deployment.sink}")
    net.converge(max_seconds=300)
    print(f"Routed {net.routed_fraction():.0%}, coded {net.coded_fraction():.0%}")

    # --- phase 1: healthy collection -------------------------------------
    delivered = net.collection.delivered
    healthy_mark = len(delivered)
    net.run(240)
    healthy = Counter(p.origin for p in delivered[healthy_mark:])
    healthy_rate = sum(healthy.values()) / 240.0
    print(f"\nHealthy traffic: {healthy_rate * 60:.1f} packets/min at the sink")

    # --- phase 2: inject the anomaly --------------------------------------
    victims = [n for n in net.non_sink_nodes() if net.stacks[n].routing.hop_count >= 2]
    victim = victims[0]
    print(f"\nNode {victim} misconfigures: IPI drops to 10 s (reporting storm)")

    storm_timer = {"stop": False}

    def storm() -> None:
        if storm_timer["stop"]:
            return
        if net.stacks[victim].routing.has_route:
            net.stacks[victim].forwarding.send(1, {"storm": True})
        net.sim.schedule(10 * SECOND, storm)

    net.sim.schedule(0, storm)
    storm_mark = len(delivered)
    net.run(240)
    storm_counts = Counter(p.origin for p in delivered[storm_mark:])
    print(
        f"During the storm the sink saw {storm_counts[victim]} packets from "
        f"node {victim} in 4 min (vs ~2 expected)"
    )

    # --- phase 3: the manager reacts over TeleAdjusting -------------------
    # Formal pipeline: TrafficMonitor spots the anomaly, AdjustmentPlanner
    # turns it into a control payload, TeleAdjusting delivers it.
    monitor = TrafficMonitor(net.sim, expected_ipi=120 * SECOND)
    for packet in delivered[storm_mark:]:
        monitor.record(packet.origin)
    anomalies = monitor.anomalies()
    assert anomalies, "the storm went undetected"
    print(f"\nController diagnostics: {anomalies[0].describe()}")
    hot_origin = anomalies[0].node

    records = []
    planner = AdjustmentPlanner(
        net.sim,
        send=lambda dest, payload: records.append(net.send_control(dest, payload)),
        default_ipi=120 * SECOND,
    )

    # The destination's protocol applies the payload: stop the storm.
    def apply(payload: object) -> None:
        if isinstance(payload, dict) and "set_ipi_s" in payload:
            storm_timer["stop"] = True

    net.protocols[hot_origin].forwarding.on_apply = apply
    planner.dispatch(anomalies[:1])
    net.run(30)
    record = records[0]
    print(
        f"Control packet delivered={record.delivered} "
        f"latency={record.latency_s and round(record.latency_s, 2)} s "
        f"athx={record.athx}"
    )

    # --- phase 4: verify recovery -----------------------------------------
    recovery_mark = len(delivered)
    net.run(240)
    recovered = Counter(p.origin for p in delivered[recovery_mark:])
    print(
        f"\nAfter adjustment node {hot_origin} sent {recovered[hot_origin]} packets "
        f"in 4 min (storm rate was {storm_counts[hot_origin]})"
    )
    assert record.delivered, "remote control failed to reach the node"
    assert recovered[hot_origin] < storm_counts[hot_origin], "storm not stopped"
    print("Remote adjustment successful.")


if __name__ == "__main__":
    main()
