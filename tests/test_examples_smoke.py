"""Smoke tests: the shipped examples run end to end.

These execute the example modules' ``main()`` in-process (fast paths only);
they are the same flows a new user runs first, so breakage here is a
release blocker.
"""

import runpy
import sys

import pytest


def run_example(path: str, argv: list) -> None:
    old_argv = sys.argv
    sys.argv = [path, *argv]
    try:
        runpy.run_path(path, run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart_runs(capsys):
    run_example("examples/quickstart.py", ["1"])
    out = capsys.readouterr().out
    assert "delivered: True" in out
    assert "code" in out


def test_subtree_multicast_runs(capsys):
    run_example("examples/subtree_multicast.py", ["1"])
    out = capsys.readouterr().out
    assert "Deliveries outside the subtree: []" in out
    assert "coverage" in out


def test_forest_monitoring_runs(capsys):
    run_example("examples/forest_monitoring.py", ["3"])
    out = capsys.readouterr().out
    assert "Remote adjustment successful." in out


def test_city_scale_runs(capsys):
    # 5x5 blocks (300 nodes): the full spatial-index code path in seconds.
    run_example("examples/city_scale.py", ["5", "1"])
    out = capsys.readouterr().out
    assert "Spatial index: culling radius" in out
    assert "City-scale remote control successful." in out


def test_debugging_example_runs(capsys):
    run_example("examples/debugging_a_delivery.py", ["1"])
    out = capsys.readouterr().out
    assert "Implicitly encoded relay chain" in out
    assert "delivered=True" in out
