"""Cache-key stability: canonical config serialisation and fingerprints."""

import dataclasses
import json

import pytest

from repro.baselines.drip import DripParams
from repro.baselines.orpl import OrplParams
from repro.baselines.rpl import RplParams
from repro.core.allocation import AllocationParams
from repro.core.forwarding import ForwardingParams
from repro.experiments.harness import NetworkConfig
from repro.faults import FaultEvent, FaultPlan
from repro.mac.lpl import MacParams
from repro.radio.battery import BatteryParams
from repro.topology.mobility import MobilityParams
from repro.runner import canonical_json, comparison_spec, fingerprint_of
from repro.topology import random_uniform
from repro.workloads.interference import WifiParams

#: One alternate (non-default) value per NetworkConfig field; the cache key
#: must change when any single field changes.
ALTERNATES = {
    "topology": "tight-grid",
    "protocol": "drip",
    "seed": 99,
    "zigbee_channel": 19,
    "noise": "constant",
    "always_on": True,
    "mac_params": MacParams(wake_interval=256_000),
    "allocation_params": AllocationParams(stability_rounds=3),
    "forwarding_params": ForwardingParams(re_tele=True),
    "drip_params": DripParams(),
    "rpl_params": RplParams(),
    "orpl_params": OrplParams(),
    "re_tele": True,
    "opportunistic": False,
    "collection_ipi": None,
    "wifi_params": WifiParams(position=(1.0, 2.0)),
    "fading_sigma_db": 7.5,
    "faults": FaultPlan(
        events=(FaultEvent(kind="stun", at_s=1.0, node=1, duration_s=2.0),)
    ),
    "spatial_index": True,
    "mobility": MobilityParams(fraction=0.5),
    "battery": BatteryParams(capacity_mah=1.0),
    "radio_profile": "lora",
}


def fingerprint(config: NetworkConfig) -> str:
    return fingerprint_of(config.to_dict())


class TestNetworkConfigToDict:
    def test_covers_every_field(self):
        # ``faults``, ``spatial_index``, ``mobility``, ``battery``, and
        # ``radio_profile`` are omitted when None so configs predating those
        # layers keep the fingerprints (and cache entries) they had before.
        omitted_when_none = {
            "faults",
            "spatial_index",
            "mobility",
            "battery",
            "radio_profile",
        }
        fields = {f.name for f in dataclasses.fields(NetworkConfig)}
        assert set(NetworkConfig().to_dict()) == fields - omitted_when_none
        full = NetworkConfig(
            faults=FaultPlan(),
            spatial_index=True,
            mobility=MobilityParams(),
            battery=BatteryParams(),
            radio_profile="cc2420",
        )
        assert set(full.to_dict()) == fields

    def test_keys_sorted_at_every_level(self):
        def check(value):
            if isinstance(value, dict):
                assert list(value) == sorted(value)
                for child in value.values():
                    check(child)
            elif isinstance(value, list):
                for child in value:
                    check(child)

        config = NetworkConfig(
            mac_params=MacParams(), wifi_params=WifiParams(), topology="tight-grid"
        )
        check(config.to_dict())

    def test_json_serialisable_with_nested_params_and_deployment(self):
        deployment = random_uniform(n=5, width=30.0, height=30.0, seed=3)
        config = NetworkConfig(
            topology=deployment,
            mac_params=MacParams(),
            allocation_params=AllocationParams(),
            wifi_params=WifiParams(),
        )
        text = canonical_json(config.to_dict())
        assert json.loads(text)["topology"]["sink"] == deployment.sink

    def test_alternates_table_is_exhaustive(self):
        assert set(ALTERNATES) == {f.name for f in dataclasses.fields(NetworkConfig)}


class TestFingerprint:
    def test_stable_across_construction_order(self):
        a = NetworkConfig(seed=4, protocol="rpl", zigbee_channel=19)
        b = NetworkConfig(zigbee_channel=19, protocol="rpl", seed=4)
        assert fingerprint(a) == fingerprint(b)

    def test_stable_across_dict_insertion_order(self):
        d = NetworkConfig(seed=4).to_dict()
        shuffled = dict(reversed(list(d.items())))
        assert canonical_json(d) == canonical_json(shuffled)

    @pytest.mark.parametrize("field_name", sorted(ALTERNATES))
    def test_distinct_for_any_changed_field(self, field_name):
        base = NetworkConfig()
        changed = dataclasses.replace(base, **{field_name: ALTERNATES[field_name]})
        assert getattr(changed, field_name) != getattr(base, field_name), (
            f"alternate for {field_name} equals the default; test is vacuous"
        )
        assert fingerprint(changed) != fingerprint(base)

    def test_same_deployment_same_fingerprint(self):
        a = random_uniform(n=6, width=40.0, height=40.0, seed=5)
        b = random_uniform(n=6, width=40.0, height=40.0, seed=5)
        assert fingerprint(NetworkConfig(topology=a)) == fingerprint(
            NetworkConfig(topology=b)
        )

    def test_different_deployment_different_fingerprint(self):
        a = random_uniform(n=6, width=40.0, height=40.0, seed=5)
        b = random_uniform(n=6, width=40.0, height=40.0, seed=6)
        assert fingerprint(NetworkConfig(topology=a)) != fingerprint(
            NetworkConfig(topology=b)
        )


class TestComparisonSpec:
    def test_fingerprint_covers_derived_config(self):
        # tele vs re-tele differ only through the derived NetworkConfig.
        assert (
            comparison_spec("tele", seed=1).fingerprint
            != comparison_spec("re-tele", seed=1).fingerprint
        )

    def test_fingerprint_covers_schedule(self):
        assert (
            comparison_spec("tele", seed=1, n_controls=5).fingerprint
            != comparison_spec("tele", seed=1, n_controls=6).fingerprint
        )

    def test_defaults_hash_like_explicit_defaults(self):
        from repro.experiments.comparison import COMPARISON_DEFAULTS

        assert (
            comparison_spec("tele", seed=1).fingerprint
            == comparison_spec("tele", seed=1, **COMPARISON_DEFAULTS).fingerprint
        )

    def test_unknown_schedule_argument_rejected(self):
        with pytest.raises(TypeError, match="unknown run_comparison argument"):
            comparison_spec("tele", bogus=1)

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError, match="unknown variant"):
            comparison_spec("carrier-pigeon")
