"""Tests for the protocol plugin registry and third-party adapters.

Covers the registry's own contract (duplicate rejection, helpful unknown-name
errors, variant resolution) and the headline promise of the plugin seam: an
adapter defined entirely *outside* ``src/repro`` — touching only the public
``ControlProtocolAdapter`` API plus the simulator clock — runs end to end
through ``Network``, ``run_comparison``, the runner grid, and the CLI with no
harness edits.
"""

import pytest

from repro.experiments.comparison import run_comparison
from repro.experiments.harness import Network, NetworkConfig
from repro.protocols import (
    REGISTRY,
    ControlProtocolAdapter,
    ProtocolRegistry,
    TeleProtocolAdapter,
    register_protocol,
    resolve_variant,
    unregister_protocol,
    variant_names,
)
from repro.runner import ParallelRunner, comparison_spec
from repro.sim.units import SECOND
from repro.topology import random_uniform


class FloodAdapter(ControlProtocolAdapter):
    """Toy third-party protocol: oracle delivery after a fixed delay.

    Deliberately uses nothing from repro's internals beyond the adapter base
    class and the simulator's public ``schedule`` — the point is proving the
    seam, not modelling radio traffic.
    """

    name = "flood"
    delivery_delay_s = 0.5

    def __init__(self, network, node_id, stack):
        super().__init__(network, node_id, stack)
        self.started = False
        self._serial = 0

    def start(self):
        self.started = True

    def coverage_fraction(self):
        return 1.0  # nothing to converge: floods need no addressing state

    def send_control(self, record, destination, payload):
        serial = self._serial
        self._serial += 1
        self.register_record(serial, record)
        sim = self.network.sim

        def deliver():
            pending = self.resolve_record(serial)
            if pending is not None and pending.delivered_at is None:
                pending.delivered_at = sim.now
                pending.acked_at = sim.now

        sim.schedule(round(self.delivery_delay_s * SECOND), deliver)


@pytest.fixture
def flood_registered():
    register_protocol("flood", FloodAdapter)
    try:
        yield
    finally:
        unregister_protocol("flood")


class TestRegistryContract:
    def test_duplicate_registration_rejected(self):
        registry = ProtocolRegistry()
        registry.register("flood", FloodAdapter)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("flood", FloodAdapter)

    def test_replace_overrides_previous_registration(self):
        registry = ProtocolRegistry()
        registry.register("flood", FloodAdapter, variants={"flood-a": {}})
        registry.register(
            "flood", FloodAdapter, variants={"flood-b": {}}, replace=True
        )
        assert registry.variant_names() == ["flood-b"]

    def test_unknown_protocol_error_lists_names(self):
        with pytest.raises(ValueError) as excinfo:
            REGISTRY.get("carrier-pigeon")
        message = str(excinfo.value)
        assert "carrier-pigeon" in message
        for name in ("tele", "drip", "rpl", "orpl", "none"):
            assert name in message
        assert "register_protocol" in message

    def test_unknown_variant_error_lists_variants(self):
        with pytest.raises(ValueError, match="unknown variant"):
            resolve_variant("carrier-pigeon")

    def test_variant_claimed_by_other_protocol_rejected(self):
        registry = ProtocolRegistry()
        registry.register("tele", TeleProtocolAdapter)
        with pytest.raises(ValueError, match="already registered by"):
            registry.register("flood", FloodAdapter, variants={"tele": {}})

    def test_builtin_variant_order(self):
        assert variant_names()[:5] == ["tele", "re-tele", "drip", "rpl", "orpl"]

    def test_re_tele_variant_resolution(self):
        protocol, overrides = resolve_variant("re-tele")
        assert protocol == "tele"
        assert overrides == {"re_tele": True}

    def test_unknown_protocol_rejected_at_config_time(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            NetworkConfig(protocol="carrier-pigeon")

    def test_unregister_removes_config_access(self):
        try:
            register_protocol("flood", FloodAdapter)
        finally:
            unregister_protocol("flood")
        with pytest.raises(ValueError, match="unknown protocol"):
            NetworkConfig(protocol="flood")


class TestThirdPartyAdapterEndToEnd:
    def test_flood_through_network(self, flood_registered):
        deployment = random_uniform(n=8, width=40, height=40, seed=3)
        net = Network(NetworkConfig(topology=deployment, protocol="flood", seed=3))
        assert net.converge(max_seconds=5.0)
        assert all(a.started for a in net.protocols.values())
        assert isinstance(net.protocol_at(net.sink), FloodAdapter)
        destination = net.non_sink_nodes()[0]
        record = net.send_control(destination, payload={"x": 1})
        net.run(2.0)
        assert record.delivered
        assert record.rtt_s is not None
        # The flood adapter answers no named coverage metric.
        assert net.coded_fraction() == 0.0

    def test_flood_through_runner_grid(self, flood_registered):
        spec = comparison_spec(
            "flood",
            seed=2,
            n_controls=2,
            control_interval_s=2.0,
            converge_seconds=5.0,
            drain_seconds=5.0,
        )
        outcomes = ParallelRunner(jobs=1).run([spec])
        assert len(outcomes) == 1
        assert outcomes[0].result is not None
        assert outcomes[0].result["pdr"] == 1.0

    def test_flood_through_run_comparison(self, flood_registered):
        result = run_comparison(
            "flood",
            seed=2,
            n_controls=2,
            control_interval_s=2.0,
            converge_seconds=5.0,
            drain_seconds=5.0,
        )
        assert result.variant == "flood"
        assert result.pdr == 1.0

    def test_flood_through_cli(self, flood_registered, capsys):
        from repro import cli

        rc = cli.main(
            [
                "compare",
                "--variants", "flood",
                "--channels", "26",
                "--seed", "2",
                "--controls", "2",
                "--interval", "2",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "flood" in out
