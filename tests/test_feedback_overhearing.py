"""Tests for feedback overhearing (paper Figure 5(a)).

Scenario from the figure: E holds the packet, its links down-path fail, so
it feeds the packet back to A. C — also on the encoded path and within
earshot — overhears the feedback and continues the forwarding itself instead
of letting the packet backtrack to the sink.
"""

import pytest

from repro.core import Controller, TeleAdjusting
from repro.core.forwarding import ForwardingParams, _RelayState
from repro.core.messages import ControlPacket, FeedbackPacket
from repro.core.pathcode import PathCode
from repro.net import NodeStack
from repro.radio.channel import Channel
from repro.radio.frame import Frame, FrameType
from repro.radio.noise import ConstantNoise
from repro.radio.propagation import LogDistancePathLoss
from repro.sim import SECOND, Simulator


@pytest.fixture()
def line_net():
    sim = Simulator(seed=6)
    positions = [(i * 12.0, 0.0) for i in range(4)]
    gains = LogDistancePathLoss(pl_d0=40.0, seed=6, shadowing_sigma=0.0).gain_matrix(
        positions
    )
    channel = Channel(sim, gains, noise_model=ConstantNoise())
    controller = Controller(channel=channel)
    protocols, stacks = {}, {}
    for i in range(4):
        stack = NodeStack(sim, channel, i, is_root=(i == 0), always_on=True)
        protocols[i] = TeleAdjusting(sim, stack, controller=controller)
        stacks[i] = stack
    for i in range(4):
        stacks[i].start()
        protocols[i].start()
    sim.run(until=120 * SECOND)
    controller.snapshot(protocols)
    return sim, stacks, protocols


def feedback_frame(protocols, serial, dest, failed_relay, to, dead=()):
    control = ControlPacket(
        destination=dest,
        destination_code=protocols[dest].allocation.code,
        expected_relay=None,
        expected_length=3,
        serial=serial,
    )
    feedback = FeedbackPacket(
        serial=serial,
        destination=dest,
        control=control,
        failed_relay=failed_relay,
        dead_neighbors=tuple(dead),
    )
    return Frame(
        src=failed_relay, dst=to, type=FrameType.FEEDBACK, payload=feedback, length=24
    )


class TestSnoopTakeover:
    def test_on_path_overhearer_takes_over(self, line_net):
        sim, stacks, protocols = line_net
        # Node 2 overhears node 1 feeding the packet back to the sink.
        frame = feedback_frame(protocols, serial=501, dest=3, failed_relay=1, to=0)
        before = protocols[2].forwarding.controls_forwarded
        protocols[2].forwarding.snoop(frame, -70)
        assert protocols[2].forwarding.controls_forwarded == before + 1
        state = protocols[2].forwarding._state(501)
        assert state is not None
        assert state.came_from == 0  # the node the feedback was addressed to

    def test_feedback_addressee_does_not_snoop(self, line_net):
        sim, stacks, protocols = line_net
        frame = feedback_frame(protocols, serial=502, dest=3, failed_relay=2, to=1)
        before = protocols[1].forwarding.controls_forwarded
        # dst == node 1, so snoop must ignore it (handle_feedback owns it).
        protocols[1].forwarding.snoop(frame, -70)
        assert protocols[1].forwarding.controls_forwarded == before

    def test_off_path_overhearer_ignores(self, line_net):
        sim, stacks, protocols = line_net
        control = ControlPacket(
            destination=99,
            destination_code=PathCode.from_bits("11111111"),
            expected_relay=None,
            expected_length=3,
            serial=503,
        )
        feedback = FeedbackPacket(
            serial=503, destination=99, control=control, failed_relay=1
        )
        frame = Frame(
            src=1, dst=0, type=FrameType.FEEDBACK, payload=feedback, length=24
        )
        before = protocols[2].forwarding.controls_forwarded
        protocols[2].forwarding.snoop(frame, -70)
        assert protocols[2].forwarding.controls_forwarded == before

    def test_disabled_by_param(self, line_net):
        sim, stacks, protocols = line_net
        protocols[2].forwarding.params.feedback_overhearing = False
        frame = feedback_frame(protocols, serial=504, dest=3, failed_relay=1, to=0)
        before = protocols[2].forwarding.controls_forwarded
        protocols[2].forwarding.snoop(frame, -70)
        assert protocols[2].forwarding.controls_forwarded == before

    def test_dead_neighbors_marked(self, line_net):
        sim, stacks, protocols = line_net
        frame = feedback_frame(
            protocols, serial=505, dest=3, failed_relay=1, to=0, dead=(3,)
        )
        protocols[2].forwarding.snoop(frame, -70)
        entry = protocols[2].forwarding.allocation.neighbor_codes.entry(3)
        if entry is not None:
            assert entry.is_unreachable(sim.now)

    def test_end_to_end_rescue_via_overhearing(self, line_net):
        """A full-system version: kill node 2 so node 1 backtracks; node 0's
        retry succeeds once node 2 recovers. The snoop path is additionally
        exercised throughout the suite's dynamic runs; here we assert that
        the feedback does not leave the system wedged."""
        sim, stacks, protocols = line_net
        stacks[2].radio.fail()
        pending = protocols[0].remote_control(3)
        sim.schedule(8 * SECOND, lambda: (stacks[2].radio.recover(), stacks[2].radio.turn_on()))
        sim.run(until=sim.now + 40 * SECOND)
        assert pending.delivered
