"""Dense-channel mobility: ``move_node`` without a spatial index.

The dense counterpart of the spatial move path recomputes the moved node's
gain row from the deployment geometry. These tests pin the equivalence
contract: after an identical move sequence, a dense channel and a spatial
channel built over the same positions/propagation expose identical audible
rows, link gains, and rx-power maps — mobility must not care which channel
representation the run picked.
"""

import pytest

from repro.radio.channel import Channel
from repro.radio.frame import Frame, FrameType
from repro.radio.noise import ConstantNoise
from repro.radio.propagation import LogDistancePathLoss
from repro.radio.radio import Radio
from repro.radio.spatial import SpatialChannel
from repro.sim import Simulator

POSITIONS = [
    (0.0, 0.0),
    (12.0, 0.0),
    (0.0, 14.0),
    (25.0, 18.0),
    (60.0, 60.0),
    (400.0, 400.0),  # starts out of everyone's range
]


def make_pair(positions, seed=1, shadowing_sigma=3.0):
    """A dense channel and a spatial channel over the same geometry."""
    propagation = LogDistancePathLoss(
        pl_d0=40.0, seed=seed, shadowing_sigma=shadowing_sigma
    )
    dense = Channel(
        Simulator(seed=seed),
        propagation.gain_matrix(positions),
        noise_model=ConstantNoise(),
        positions=positions,
        propagation=propagation,
    )
    spatial = Channel(
        Simulator(seed=seed),
        noise_model=ConstantNoise(),
        spatial=SpatialChannel(positions, propagation, cull_floor_dbm=-110.0),
    )
    return dense, spatial


def audible_state(channel):
    """The full audible topology: per-source (neighbor, gain) rows."""
    return {
        src: [(b, gain) for b, gain, _ in entries]
        for src, entries in channel._audible.items()
    }


MOVES = [
    (5, (30.0, 30.0)),   # out-of-range node walks into the field
    (1, (3.0, 1.0)),     # short hop, neighbourhood mostly unchanged
    (4, (1000.0, 0.0)),  # walks out of range entirely
    (1, (12.0, 0.0)),    # returns exactly to its start position
    (0, (24.0, 17.0)),   # lands next to node 3
]


class TestDenseSpatialEquivalence:
    def test_audible_state_identical_after_moves(self):
        dense, spatial = make_pair(POSITIONS)
        assert audible_state(dense) == audible_state(spatial)
        for node, pos in MOVES:
            dense.move_node(node, pos)
            spatial.move_node(node, pos)
            assert audible_state(dense) == audible_state(spatial), (
                f"audible rows diverged after moving {node} to {pos}"
            )

    def test_audible_gains_are_exact_geometry_gains(self):
        # Every audible gain in both modes is the same scalar the
        # propagation model computes from scratch — no drift across moves.
        dense, spatial = make_pair(POSITIONS)
        for node, pos in MOVES:
            dense.move_node(node, pos)
            spatial.move_node(node, pos)
        propagation = dense._propagation
        positions = dense._positions
        for (a, b), gain in dense.gains.items():
            expected = propagation.link_gain_db(a, b, positions[a], positions[b])
            assert gain == expected
        for (a, b), gain in spatial.gains.items():
            assert gain == dense.gains[(a, b)]

    def test_rx_maps_identical_after_moves(self):
        dense, spatial = make_pair(POSITIONS)
        for channel in (dense, spatial):
            radios = [Radio(channel.sim, channel, i) for i in range(len(POSITIONS))]
            for r in radios:
                r.turn_on()
        for node, pos in MOVES:
            dense.move_node(node, pos)
            spatial.move_node(node, pos)
        for channel in (dense, spatial):
            channel._radios[0].transmit(Frame(src=0, dst=3, type=FrameType.DATA))
            channel.sim.run(until=channel.sim.now + 10_000_000)
        assert dense._rx_cache[0][3] == spatial._rx_cache[0][3]


class TestDenseMoveSemantics:
    def test_move_back_restores_links_exactly(self):
        dense, _ = make_pair(POSITIONS)
        gain_before = dense.link_gain(0, 1)
        dense.move_node(1, (4000.0, 0.0))
        assert dense.link_gain(0, 1) is not None  # dense keeps sub-audible gains
        assert 1 not in dense.audible_neighbors(0)
        dense.move_node(1, (12.0, 0.0))
        # Shadowing is pinned to the node pair, so the gain comes back exact.
        assert dense.link_gain(0, 1) == gain_before
        assert 1 in dense.audible_neighbors(0)

    def test_move_invalidates_rx_cache(self):
        dense, _ = make_pair(POSITIONS)
        radios = [Radio(dense.sim, dense, i) for i in range(len(POSITIONS))]
        for r in radios:
            r.turn_on()
        radios[0].transmit(Frame(src=0, dst=1, type=FrameType.DATA))
        dense.sim.run(until=dense.sim.now + 10_000_000)
        old_map = dense._rx_cache[0][3]
        assert 1 in old_map
        epoch_before = dense._fault_epoch
        dense.move_node(1, (5000.0, 5000.0))
        assert dense._fault_epoch > epoch_before
        radios[0].transmit(Frame(src=0, dst=2, type=FrameType.DATA))
        dense.sim.run(until=dense.sim.now + 10_000_000)
        new_map = dense._rx_cache[0][3]
        assert new_map is not old_map
        assert 1 not in new_map, "moved node still priced at its old position"

    def test_positions_copied_from_caller(self):
        positions = [list(p) for p in POSITIONS]  # also accepts sequences
        propagation = LogDistancePathLoss(pl_d0=40.0, seed=1, shadowing_sigma=0.0)
        dense = Channel(
            Simulator(seed=1),
            propagation.gain_matrix([tuple(p) for p in positions]),
            noise_model=ConstantNoise(),
            positions=positions,
            propagation=propagation,
        )
        dense.move_node(0, (99.0, 99.0))
        assert positions[0] == [0.0, 0.0], "move mutated the caller's deployment"
        assert dense._positions[0] == (99.0, 99.0)

    def test_dense_move_without_geometry_raises(self):
        propagation = LogDistancePathLoss(pl_d0=40.0, seed=1, shadowing_sigma=0.0)
        channel = Channel(
            Simulator(seed=1),
            propagation.gain_matrix([(0.0, 0.0), (10.0, 0.0)]),
            noise_model=ConstantNoise(),
        )
        with pytest.raises(ValueError, match="update_link_gains"):
            channel.move_node(0, (1.0, 1.0))

    def test_unknown_node_rejected(self):
        dense, _ = make_pair(POSITIONS)
        with pytest.raises(ValueError, match="unknown node"):
            dense.move_node(len(POSITIONS), (0.0, 0.0))

    def test_positions_exclusive_with_spatial(self):
        propagation = LogDistancePathLoss(pl_d0=40.0, seed=1, shadowing_sigma=0.0)
        with pytest.raises(ValueError, match="spatial"):
            Channel(
                Simulator(seed=1),
                noise_model=ConstantNoise(),
                spatial=SpatialChannel(POSITIONS, propagation),
                positions=POSITIONS,
            )
