"""The run journal: durable append, tolerant replay, grid identity."""

import json

import pytest

from repro.runner import (
    JOURNAL_SCHEMA,
    ParallelRunner,
    RetryPolicy,
    RunJournal,
    grid_fingerprint,
    selftest_spec,
)


@pytest.fixture
def specs():
    return [selftest_spec(i) for i in range(3)]


@pytest.fixture
def policy():
    return RetryPolicy(retries=1)


class TestGridFingerprint:
    def test_stable_for_same_grid(self, specs, policy):
        assert grid_fingerprint(specs, policy) == grid_fingerprint(specs, policy)

    def test_cell_order_matters(self, specs, policy):
        assert grid_fingerprint(specs, policy) != grid_fingerprint(
            list(reversed(specs)), policy
        )

    def test_policy_matters(self, specs):
        assert grid_fingerprint(specs, RetryPolicy(retries=1)) != grid_fingerprint(
            specs, RetryPolicy(retries=2)
        )

    def test_jobs_do_not_matter(self, specs, policy, tmp_path):
        # Resume must work across worker counts: the journal of a jobs=4 run
        # is found by a jobs=1 resume, so jobs cannot be in the identity.
        a = RunJournal.for_grid(tmp_path, specs, policy)
        b = RunJournal.for_grid(tmp_path, specs, policy)
        assert a.path == b.path


class TestRecordAndReplay:
    def test_open_header_written_once(self, specs, policy, tmp_path):
        journal = RunJournal.for_grid(tmp_path, specs, policy)
        journal.record("dispatch", cell="abc", index=0, attempt=0)
        journal.record("done", cell="abc", index=0, result={"v": 1})
        lines = [json.loads(l) for l in journal.path.read_text().splitlines()]
        assert [l["t"] for l in lines] == ["open", "dispatch", "done"]
        assert lines[0]["schema"] == JOURNAL_SCHEMA
        assert lines[0]["grid"] == journal.grid

    def test_replay_folds_lifecycle(self, specs, policy, tmp_path):
        journal = RunJournal.for_grid(tmp_path, specs, policy)
        journal.record("dispatch", cell="a", index=0, attempt=0)
        journal.record("dispatch", cell="b", index=1, attempt=0)
        journal.record("done", cell="a", index=0, result={"v": 1}, attempts=1)
        journal.record("quarantine", cell="c", index=2, error="kept dying")
        state = journal.replay()
        assert set(state.completed) == {"a"}
        assert state.completed["a"]["result"] == {"v": 1}
        assert set(state.quarantined) == {"c"}
        assert state.in_flight == {"b"}
        assert not state.truncated and not state.closed

    def test_missing_file_is_empty_state(self, tmp_path):
        state = RunJournal(tmp_path / "absent.jsonl").replay()
        assert state.completed == {} and state.records == 0

    def test_torn_tail_is_tolerated(self, specs, policy, tmp_path):
        # A crash mid-append leaves a half-written final line; replay must
        # keep everything before it and flag the truncation.
        journal = RunJournal.for_grid(tmp_path, specs, policy)
        journal.record("done", cell="a", index=0, result={"v": 1}, attempts=1)
        with open(journal.path, "a") as handle:
            handle.write('{"t":"done","cell":"b","resu')
        state = journal.replay()
        assert set(state.completed) == {"a"}
        assert state.truncated

    def test_grid_mismatch_rejected(self, specs, policy, tmp_path):
        journal = RunJournal.for_grid(tmp_path, specs, policy)
        journal.record("close")
        stranger = RunJournal(journal.path, grid="not-this-grid")
        with pytest.raises(ValueError, match="belongs to grid"):
            stranger.replay()

    def test_rotate_stale_keeps_backup(self, specs, policy, tmp_path):
        journal = RunJournal.for_grid(tmp_path, specs, policy)
        journal.record("close")
        journal.rotate_stale()
        assert not journal.path.exists()
        assert journal.path.with_suffix(".jsonl.bak").exists()


class TestRunnerIntegration:
    def test_fresh_run_writes_and_closes(self, specs, tmp_path):
        runner = ParallelRunner(jobs=1, journal_dir=tmp_path)
        runner.run(specs)
        journals = list(tmp_path.glob("*.jsonl"))
        assert len(journals) == 1
        state = RunJournal(journals[0]).replay()
        assert len(state.completed) == len(specs)
        assert state.closed

    def test_resume_serves_journal_hits(self, specs, tmp_path):
        first = ParallelRunner(jobs=1, journal_dir=tmp_path)
        cold = first.run(specs)
        second = ParallelRunner(jobs=1, journal_dir=tmp_path, resume=True)
        warm = second.run(specs)
        assert [o.status for o in warm] == ["journal"] * len(specs)
        assert [o.result for o in warm] == [o.result for o in cold]
        assert second.last_report.resumed == len(specs)
        assert second.last_report.executed == 0

    def test_partial_journal_runs_only_the_rest(self, specs, tmp_path):
        reference = ParallelRunner(jobs=1).run(specs)
        journal = RunJournal.for_grid(tmp_path, specs, RetryPolicy())
        # Hand-complete the middle cell, as if the previous run died after it.
        journal.record(
            "done",
            cell=specs[1].fingerprint,
            index=1,
            attempts=1,
            requeues=0,
            wall_s=0.01,
            events=None,
            source="executed",
            result=reference[1].result,
        )
        runner = ParallelRunner(jobs=1, journal_dir=tmp_path, resume=True)
        outcomes = runner.run(specs)
        assert [o.status for o in outcomes] == ["executed", "journal", "executed"]
        assert [o.result for o in outcomes] == [o.result for o in reference]

    def test_fresh_run_rotates_old_journal(self, specs, tmp_path):
        ParallelRunner(jobs=1, journal_dir=tmp_path).run(specs)
        ParallelRunner(jobs=1, journal_dir=tmp_path).run(specs)
        assert len(list(tmp_path.glob("*.jsonl"))) == 1
        assert len(list(tmp_path.glob("*.jsonl.bak"))) == 1

    def test_quarantined_cell_skipped_on_resume(self, tmp_path):
        poison = selftest_spec(1, fault={"crash_attempts": 99})
        grid = [selftest_spec(0), poison, selftest_spec(2)]
        first = ParallelRunner(jobs=2, retries=1, journal_dir=tmp_path)
        outcomes = first.run(grid)
        assert outcomes[1].status == "failed" and outcomes[1].quarantined
        second = ParallelRunner(jobs=2, retries=1, journal_dir=tmp_path, resume=True)
        resumed = second.run(grid)
        # The poison cell must not re-poison the pool: no executions for it.
        assert resumed[1].status == "failed"
        assert resumed[1].quarantined
        assert "quarantined in journal" in resumed[1].error
        assert [o.status for o in (resumed[0], resumed[2])] == ["journal"] * 2
        assert second.last_report.quarantined()[0].label == poison.name


class TestTornTailResume:
    """ENOSPC mid-append: the journal stays a resumable prefix."""

    def test_enospc_torn_line_resumes_cleanly(self, specs, tmp_path):
        import repro.havoc as havoc
        from repro.havoc import HavocEvent, HavocPlan

        reference = ParallelRunner(jobs=1).run(specs)
        journal = RunJournal.for_grid(tmp_path, specs, RetryPolicy())
        journal.record(
            "done",
            cell=specs[0].fingerprint,
            index=0,
            attempts=1,
            requeues=0,
            wall_s=0.01,
            events=None,
            source="executed",
            result=reference[0].result,
        )
        # The disk fills mid-append of the second done record: a genuine
        # torn line (prefix + no newline) lands on disk.
        plan = HavocPlan(
            events=(HavocEvent(kind="torn", op="write", scope=".jsonl"),),
            name="torn-journal",
        )
        with havoc.active(plan):
            with pytest.raises(OSError):
                journal.record(
                    "done",
                    cell=specs[1].fingerprint,
                    index=1,
                    attempts=1,
                    requeues=0,
                    wall_s=0.01,
                    events=None,
                    source="executed",
                    result=reference[1].result,
                )
        havoc.deactivate()
        assert not journal.path.read_text().endswith("\n")  # genuinely torn
        state = journal.replay()
        assert state.truncated
        assert set(state.completed) == {specs[0].fingerprint}
        # --resume: the journaled cell is served, the torn one re-runs,
        # and results are bit-identical to the uninterrupted reference.
        runner = ParallelRunner(jobs=1, journal_dir=tmp_path, resume=True)
        outcomes = runner.run(specs)
        assert [o.status for o in outcomes] == ["journal", "executed", "executed"]
        assert [o.result for o in outcomes] == [o.result for o in reference]
        # The resume's own appends terminated the torn line: replay now
        # sees every new record and exactly one skipped torn line.
        final = RunJournal(journal.path, grid=journal.grid).replay()
        assert final.truncated
        assert set(final.completed) == {s.fingerprint for s in specs}
        assert final.closed

    def test_append_after_torn_tail_does_not_merge(self, specs, tmp_path):
        journal = RunJournal.for_grid(tmp_path, specs, RetryPolicy())
        journal.record("dispatch", cell="a", index=0, attempt=0)
        with open(journal.path, "a") as handle:
            handle.write('{"t":"done","cell":"b","resu')  # torn, no newline
        journal.record("done", cell="c", index=2, result={"v": 3}, attempts=1)
        state = journal.replay()
        # The record appended after the torn line must survive intact.
        assert set(state.completed) == {"c"}
        assert state.truncated

    def test_engine_disables_journal_after_write_failure(self, specs, tmp_path):
        import repro.havoc as havoc
        from repro.havoc import HavocEvent, HavocPlan

        reference = ParallelRunner(jobs=1).run(specs)
        # Every journal append after the header fails: the run must still
        # complete (results unharmed), disabling journalling rather than
        # crashing or padding the file with garbage.
        plan = HavocPlan(
            events=(
                HavocEvent(
                    kind="enospc", op="write", scope=".jsonl", start=1,
                    count=10_000,
                ),
            ),
            name="journal-dead",
        )
        with havoc.active(plan):
            runner = ParallelRunner(jobs=1, journal_dir=tmp_path)
            outcomes = runner.run(specs)
        havoc.deactivate()
        assert [o.result for o in outcomes] == [o.result for o in reference]
        # The journal is a clean parseable prefix (header at least).
        state = RunJournal.for_grid(tmp_path, specs, RetryPolicy()).replay()
        assert state.records >= 1
        assert not state.closed
