"""Coverage for smaller public surfaces: deployments, tracer sinks, API glue."""

import pytest

import repro
from repro.radio.frame import FrameType
from repro.sim import Simulator
from repro.topology import Deployment, indoor_testbed, random_uniform, sparse_linear, tight_grid


class TestDeployments:
    def test_paper_field_dimensions(self):
        tight = tight_grid(seed=0)
        assert tight.size == 225
        xs = [p[0] for p in tight.positions]
        ys = [p[1] for p in tight.positions]
        assert max(xs) <= 200 and max(ys) <= 200
        sparse = sparse_linear(seed=0)
        assert sparse.size == 225
        assert max(p[0] for p in sparse.positions) <= 600
        assert max(p[1] for p in sparse.positions) <= 60

    def test_sink_placement(self):
        tight = tight_grid(seed=0)
        # Sink cell is the centre of the 15×15 grid.
        sx, sy = tight.positions[tight.sink]
        assert 80 < sx < 120 and 80 < sy < 120
        sparse = sparse_linear(seed=0)
        assert sparse.positions[sparse.sink][0] < 30  # at the strip's start

    def test_indoor_counts(self):
        indoor = indoor_testbed(seed=0)
        assert indoor.size == 40
        # 22 board nodes on the two fixed rows.
        board = [p for p in indoor.positions if p[1] in (4.0, 6.0)]
        assert len(board) >= 22

    def test_distance_helper(self):
        deployment = random_uniform(n=3, width=10, height=10, seed=1)
        assert deployment.distance(0, 0) == 0.0
        assert deployment.distance(0, 1) == deployment.distance(1, 0)

    def test_tx_power_overrides(self):
        deployment = random_uniform(n=3, width=10, height=10, seed=1, tx_power_dbm=-5.0)
        assert deployment.node_tx_power(1) == -5.0
        deployment.tx_power_overrides[1] = 0.0
        assert deployment.node_tx_power(1) == 0.0
        assert deployment.node_tx_power(2) == -5.0

    def test_random_uniform_validation(self):
        with pytest.raises(ValueError):
            random_uniform(n=1, width=10, height=10)

    def test_random_uniform_picks_central_sink(self):
        deployment = random_uniform(n=30, width=100, height=100, seed=4)
        sx, sy = deployment.positions[deployment.sink]
        assert 20 < sx < 80 and 20 < sy < 80

    def test_seeds_move_nodes(self):
        a = tight_grid(seed=1).positions
        b = tight_grid(seed=2).positions
        assert a != b


class TestTracerSinks:
    def test_sink_receives_records(self):
        sim = Simulator(seed=1)
        seen = []
        sim.tracer.enable()
        sim.tracer.add_sink(seen.append)
        sim.tracer.emit("cat", "hello", node=5)
        assert len(seen) == 1
        assert seen[0].message == "hello"

    def test_clear(self):
        sim = Simulator(seed=1)
        sim.tracer.enable()
        sim.tracer.emit("cat", "x")
        sim.tracer.clear()
        assert sim.tracer.records == []

    def test_disable_stops_recording(self):
        sim = Simulator(seed=1)
        sim.tracer.enable()
        sim.tracer.emit("cat", "kept")
        sim.tracer.disable()
        sim.tracer.emit("cat", "dropped")
        assert [r.message for r in sim.tracer.records] == ["kept"]


class TestApiGlue:
    def test_run_experiment_delegates(self):
        result = repro.run_experiment(
            "tele",
            zigbee_channel=26,
            seed=1,
            n_controls=3,
            control_interval_s=20.0,
            converge_seconds=120.0,
        )
        assert result.variant == "tele"
        assert result.n_controls == 3

    def test_remote_control_result_alias(self):
        from repro.metrics.control import ControlRecord

        assert repro.RemoteControlResult is ControlRecord

    def test_version_string(self):
        assert repro.__version__.count(".") == 2


class TestNetworkMetricsFilters:
    def test_tx_since_mark_type_filter(self):
        net = repro.build_network(topology="indoor-testbed", seed=1, protocol="none")
        net.run(20)
        net.metrics.mark()
        net.run(40)
        beacons = net.metrics.tx_since_mark((FrameType.ROUTING_BEACON,))
        total = net.metrics.tx_since_mark()
        assert 0 <= beacons <= total
