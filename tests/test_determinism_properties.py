"""Property tests for cross-cutting guarantees: determinism and monotonicity."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.radio.cc2420 import CC2420, packet_airtime
from repro.radio.channel import Channel
from repro.radio.noise import ConstantNoise, CPMNoiseModel, synthesize_meyer_like_trace
from repro.radio.propagation import LogDistancePathLoss
from repro.sim import Simulator


class TestChannelDeterminism:
    @given(st.integers(min_value=0, max_value=2**20))
    @settings(max_examples=25)
    def test_fading_deterministic_per_seed_link_bucket(self, seed):
        def sample(s):
            sim = Simulator(seed=s)
            gains = LogDistancePathLoss(pl_d0=40.0, seed=s, shadowing_sigma=0.0).gain_matrix(
                [(0.0, 0.0), (10.0, 0.0)]
            )
            channel = Channel(sim, gains, noise_model=ConstantNoise(), fading_sigma_db=3.0)
            return channel.fading_db(0, 1)

        assert sample(seed) == sample(seed)

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25)
    def test_shadowing_symmetric(self, seed):
        model = LogDistancePathLoss(seed=seed, shadowing_sigma=4.0)
        forward = model.link_gain_db(1, 2, (0.0, 0.0), (7.0, 3.0))
        backward = model.link_gain_db(2, 1, (7.0, 3.0), (0.0, 0.0))
        assert forward == backward

    @given(st.integers(min_value=1, max_value=127), st.integers(min_value=1, max_value=127))
    def test_airtime_monotone_in_length(self, a, b):
        if a <= b:
            assert packet_airtime(a) <= packet_airtime(b)
        else:
            assert packet_airtime(a) >= packet_airtime(b)

    @given(
        st.floats(min_value=-9.5, max_value=14.5),
        st.floats(min_value=-9.5, max_value=14.5),
        st.integers(min_value=1, max_value=127),
    )
    @settings(max_examples=60)
    def test_prr_monotone_in_snr(self, snr_a, snr_b, length):
        low, high = sorted((snr_a, snr_b))
        assert CC2420.prr(low, length) <= CC2420.prr(high, length) + 1e-9


class TestNoiseDeterminism:
    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=10)
    def test_cpm_fork_reproducible(self, seed):
        trace = synthesize_meyer_like_trace(length=2000, seed=1)
        master = CPMNoiseModel(trace, seed=1)
        a = master.fork(seed)
        b = master.fork(seed)
        assert [a.sample() for _ in range(50)] == [b.sample() for _ in range(50)]


class TestSimulatorRngIsolation:
    @given(st.text(alphabet="abcdefgh-", min_size=1, max_size=12))
    @settings(max_examples=30)
    def test_stream_independent_of_creation_order(self, name):
        others = ("zzz-other!", "aaa-other!")  # '!' cannot appear in `name`
        solo = Simulator(seed=9).rng(name).random()
        crowded_sim = Simulator(seed=9)
        for other in others:
            crowded_sim.rng(other)
        assert crowded_sim.rng(name).random() == solo
