"""Tests for energy accounting, topology analysis, and diagnostics."""

import pytest

from repro.radio.energy import (
    RX_CURRENT_MA,
    SLEEP_CURRENT_MA,
    energy_report,
    network_energy,
    tx_current_ma,
)
from repro.sim import MINUTE, SECOND, Simulator
from repro.sim.units import from_seconds
from repro.topology import indoor_testbed, random_uniform, tight_grid
from repro.topology.analysis import (
    articulation_nodes,
    degree_stats,
    expected_max_depth,
    hop_counts,
    is_connected,
    link_graph,
    unreachable_nodes,
)


class TestTxCurrent:
    def test_anchors(self):
        assert tx_current_ma(0.0) == 17.4
        assert tx_current_ma(-25.0) == 8.5

    def test_interpolation_monotone(self):
        previous = 0.0
        for dbm in range(-25, 1):
            current = tx_current_ma(float(dbm))
            assert current >= previous
            previous = current

    def test_extremes_clamp(self):
        assert tx_current_ma(5.0) == 17.4
        assert tx_current_ma(-40.0) == 8.5


class TestEnergyReport:
    def _radio(self, on_seconds=10.0, tx_count=0):
        from repro.radio.channel import Channel
        from repro.radio.noise import ConstantNoise
        from repro.radio.propagation import LogDistancePathLoss
        from repro.radio.radio import Radio

        sim = Simulator(seed=1)
        gains = LogDistancePathLoss().gain_matrix([(0, 0), (5, 0)])
        channel = Channel(sim, gains, noise_model=ConstantNoise())
        radio = Radio(sim, channel, 0)
        radio.turn_on()
        sim.schedule(from_seconds(on_seconds), radio.turn_off)
        sim.schedule(from_seconds(100.0), lambda: None)
        sim.run()
        radio.tx_count = tx_count
        return radio

    def test_sleeping_node_draws_sleep_current(self):
        radio = self._radio(on_seconds=0.001)
        report = energy_report(radio, from_seconds(100.0))
        assert report.average_current_ma == pytest.approx(SLEEP_CURRENT_MA, rel=0.5)

    def test_always_listening_draws_rx_current(self):
        radio = self._radio(on_seconds=100.0)
        report = energy_report(radio, from_seconds(100.0))
        assert report.average_current_ma == pytest.approx(RX_CURRENT_MA, rel=0.05)

    def test_duty_cycle_drives_charge(self):
        lazy = energy_report(self._radio(on_seconds=1.0), from_seconds(100.0))
        busy = energy_report(self._radio(on_seconds=50.0), from_seconds(100.0))
        assert busy.charge_mc > lazy.charge_mc * 10
        assert busy.duty_cycle == pytest.approx(0.5, rel=0.01)

    def test_tx_time_reconstruction(self):
        radio = self._radio(on_seconds=10.0, tx_count=100)
        report = energy_report(radio, from_seconds(100.0), average_frame_bytes=40)
        assert report.tx_time_s > 0
        assert report.tx_time_s <= report.on_time_s

    def test_lifetime_projection(self):
        radio = self._radio(on_seconds=1.0)
        report = energy_report(radio, from_seconds(100.0))
        days = report.lifetime_days(battery_mah=2600.0)
        assert days > 100  # ~1 % duty cycle lasts months

    def test_invalid_interval(self):
        radio = self._radio()
        with pytest.raises(ValueError):
            energy_report(radio, 0)

    def test_network_energy_keys(self):
        radio = self._radio()
        reports = network_energy({0: radio}, from_seconds(10.0))
        assert set(reports) == {0}


class TestTopologyAnalysis:
    def test_indoor_testbed_connected(self):
        deployment = indoor_testbed(seed=1)
        assert is_connected(deployment, min_prr=0.3)

    def test_tight_grid_depth_is_moderate(self):
        deployment = tight_grid(seed=1)
        depth = expected_max_depth(deployment, min_prr=0.5)
        assert 3 <= depth <= 12

    def test_hop_counts_start_at_sink(self):
        deployment = indoor_testbed(seed=1)
        counts = hop_counts(deployment, min_prr=0.3)
        assert counts[deployment.sink] == 0
        assert max(counts.values()) >= 3

    def test_unreachable_nodes_empty_when_connected(self):
        deployment = indoor_testbed(seed=1)
        assert unreachable_nodes(deployment, min_prr=0.3) == []

    def test_sparse_deployment_has_articulation_points(self):
        # A long thin random strip almost always has cut vertices.
        deployment = random_uniform(n=20, width=200, height=10, seed=3)
        graph = link_graph(deployment, min_prr=0.5)
        import networkx as nx

        if nx.is_connected(graph):
            assert articulation_nodes(deployment, min_prr=0.5)

    def test_degree_stats_shape(self):
        stats = degree_stats(indoor_testbed(seed=1), min_prr=0.3)
        assert stats["min"] <= stats["mean"] <= stats["max"]
        assert stats["max"] > 2


class TestTrafficMonitor:
    def _monitor(self, ipi=60 * SECOND):
        from repro.core.diagnostics import TrafficMonitor

        sim = Simulator(seed=1)
        return sim, TrafficMonitor(sim, expected_ipi=ipi)

    def test_normal_rate_no_anomaly(self):
        sim, monitor = self._monitor()
        for t in range(0, 600, 60):
            sim.schedule(from_seconds(t), monitor.record, 7)
        sim.run()
        assert monitor.anomalies() == []

    def test_storm_detected(self):
        sim, monitor = self._monitor()
        for t in range(0, 180, 5):  # 12/min where 1/min expected
            sim.schedule(from_seconds(t), monitor.record, 7)
        sim.run()
        anomalies = monitor.anomalies()
        assert anomalies and anomalies[0].kind == "storm"
        assert anomalies[0].node == 7
        assert "storm" in anomalies[0].describe()

    def test_silence_detected(self):
        sim, monitor = self._monitor()
        sim.schedule(from_seconds(1), monitor.record, 9)
        sim.schedule(from_seconds(600), lambda: None)  # 10 min of nothing
        sim.run()
        anomalies = monitor.anomalies()
        assert anomalies and anomalies[0].kind == "silence"

    def test_rate_computation(self):
        sim, monitor = self._monitor(ipi=10 * SECOND)
        for t in range(0, 30, 10):
            sim.schedule(from_seconds(t), monitor.record, 3)
        sim.run()
        assert monitor.rate(3) == pytest.approx(0.1, rel=0.5)

    def test_invalid_ipi(self):
        from repro.core.diagnostics import TrafficMonitor

        with pytest.raises(ValueError):
            TrafficMonitor(Simulator(), expected_ipi=0)


class TestAdjustmentPlanner:
    def test_storm_maps_to_ipi_reset(self):
        from repro.core.diagnostics import AdjustmentPlanner, Anomaly

        sim = Simulator(seed=1)
        sent = []
        planner = AdjustmentPlanner(
            sim, send=lambda dest, payload: sent.append((dest, payload)),
            default_ipi=2 * MINUTE,
        )
        storm = Anomaly(node=4, kind="storm", observed_rate=1.0, expected_rate=0.01, detected_at=0)
        silence = Anomaly(node=5, kind="silence", observed_rate=0.0, expected_rate=0.01, detected_at=0)
        batch = planner.dispatch([storm, silence])
        assert len(batch) == 2
        assert sent[0] == (4, {"set_ipi_s": 120.0})
        assert sent[1] == (5, {"request_status": True})
        assert planner.history == batch
