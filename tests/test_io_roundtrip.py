"""Property tests: result serialisation round-trips exactly.

The runner's cache stores ``comparison_to_dict`` output as JSON and
rehydrates it with ``comparison_from_dict``; these properties are what make
"cached cell" and "re-simulated cell" indistinguishable to every consumer.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.comparison import ComparisonResult
from repro.metrics.control import ControlMetrics, ControlRecord
from repro.metrics.io import (
    comparison_from_dict,
    comparison_to_dict,
    control_record_from_dict,
    control_record_to_dict,
    load_results,
    save_results,
)

finite = st.floats(allow_nan=False, allow_infinity=False)
maybe_float = st.none() | finite
times = st.integers(min_value=0, max_value=10**12)

records = st.builds(
    ControlRecord,
    index=st.integers(min_value=0, max_value=10**6),
    destination=st.integers(min_value=0, max_value=500),
    hop_count=st.integers(min_value=0, max_value=30),
    sent_at=times,
    delivered_at=st.none() | times,
    acked_at=st.none() | times,
    athx=st.none() | st.integers(min_value=0, max_value=100),
    via_unicast=st.booleans(),
)


def metrics_from(record_list):
    if record_list is None:
        return None
    metrics = ControlMetrics()
    for record in record_list:
        metrics.add(record)
    return metrics


comparisons = st.builds(
    ComparisonResult,
    variant=st.sampled_from(("tele", "re-tele", "drip", "rpl", "orpl")),
    zigbee_channel=st.sampled_from((26, 19)),
    seed=st.integers(min_value=0, max_value=100),
    n_controls=st.integers(min_value=0, max_value=200),
    pdr=maybe_float,
    pdr_by_hop=st.dictionaries(st.integers(0, 20), finite, max_size=8),
    latency_by_hop=st.dictionaries(st.integers(0, 20), finite, max_size=8),
    mean_latency=maybe_float,
    tx_per_control=maybe_float,
    duty_cycle=maybe_float,
    athx_samples=st.lists(
        st.tuples(st.integers(0, 30), st.integers(0, 100)), max_size=10
    ),
    control_metrics=st.builds(
        metrics_from, st.none() | st.lists(records, max_size=6)
    ),
    events_executed=st.none() | st.integers(min_value=0, max_value=10**9),
)


def assert_comparisons_equal(a: ComparisonResult, b: ComparisonResult) -> None:
    for name in (
        "variant", "zigbee_channel", "seed", "n_controls", "pdr",
        "pdr_by_hop", "latency_by_hop", "mean_latency", "tx_per_control",
        "duty_cycle", "athx_samples", "events_executed",
    ):
        assert getattr(a, name) == getattr(b, name), name
    if a.control_metrics is None:
        assert b.control_metrics is None
    else:
        assert b.control_metrics is not None
        assert a.control_metrics.records == b.control_metrics.records


@given(records)
def test_control_record_round_trip(record):
    through_json = json.loads(json.dumps(control_record_to_dict(record)))
    assert control_record_from_dict(through_json) == record


@settings(max_examples=60)
@given(comparisons)
def test_comparison_round_trip(result):
    through_json = json.loads(json.dumps(comparison_to_dict(result)))
    assert_comparisons_equal(comparison_from_dict(through_json), result)


@given(comparisons)
@settings(max_examples=20)
def test_aggregates_survive_round_trip(result):
    back = comparison_from_dict(comparison_to_dict(result))
    if result.control_metrics is not None:
        assert back.control_metrics.pdr() == result.control_metrics.pdr()
        assert (
            back.control_metrics.athx_samples()
            == result.control_metrics.athx_samples()
        )


def test_save_then_load_rehydrated_single(tmp_path):
    result = ComparisonResult(
        variant="tele", zigbee_channel=26, seed=1, n_controls=2,
        pdr=0.5, pdr_by_hop={1: 0.5}, latency_by_hop={1: 1.25},
        mean_latency=1.25, tx_per_control=3.0, duty_cycle=0.04,
        athx_samples=[(1, 2)],
    )
    path = save_results(result, tmp_path / "one.json")
    loaded = load_results(path, rehydrate=True)
    assert isinstance(loaded, ComparisonResult)
    assert_comparisons_equal(loaded, result)


def test_save_then_load_rehydrated_list(tmp_path):
    results = [
        ComparisonResult(
            variant="rpl", zigbee_channel=19, seed=s, n_controls=1,
            pdr=1.0, pdr_by_hop={}, latency_by_hop={}, mean_latency=None,
            tx_per_control=None, duty_cycle=None,
        )
        for s in (1, 2)
    ]
    path = save_results(results, tmp_path / "many.json")
    loaded = load_results(path, rehydrate=True)
    assert [r.seed for r in loaded] == [1, 2]
    for original, back in zip(results, loaded):
        assert_comparisons_equal(back, original)


def test_load_results_default_stays_plain(tmp_path):
    result = ComparisonResult(
        variant="tele", zigbee_channel=26, seed=1, n_controls=0,
        pdr=None, pdr_by_hop={}, latency_by_hop={}, mean_latency=None,
        tx_per_control=None, duty_cycle=None,
    )
    path = save_results(result, tmp_path / "plain.json")
    assert isinstance(load_results(path), dict)
