"""Failure-injection behaviours across the stack."""

import pytest

from repro.net import NodeStack
from repro.radio.channel import Channel
from repro.radio.frame import Frame, FrameType
from repro.radio.noise import ConstantNoise
from repro.radio.propagation import LogDistancePathLoss
from repro.radio.radio import Radio, RadioState
from repro.sim import MILLISECOND, SECOND, Simulator


def pair(distance=8.0, seed=1):
    sim = Simulator(seed=seed)
    gains = LogDistancePathLoss(pl_d0=40.0, seed=seed, shadowing_sigma=0.0).gain_matrix(
        [(0.0, 0.0), (distance, 0.0)]
    )
    channel = Channel(sim, gains, noise_model=ConstantNoise())
    return sim, channel


class TestRadioFailure:
    def test_failed_radio_ignores_turn_on(self):
        sim, channel = pair()
        radio = Radio(sim, channel, 0)
        radio.fail()
        radio.turn_on()
        assert radio.state is RadioState.OFF

    def test_fail_while_listening_powers_down(self):
        sim, channel = pair()
        radio = Radio(sim, channel, 0)
        radio.turn_on()
        radio.fail()
        assert radio.state is RadioState.OFF

    def test_fail_mid_transmission_defers_power_down(self):
        sim, channel = pair()
        radio = Radio(sim, channel, 0)
        radio.turn_on()
        radio.transmit(Frame(src=0, dst=1, type=FrameType.DATA, length=100))
        radio.fail()
        assert radio.state is RadioState.TX  # frame still on the air
        sim.run(until=1 * SECOND)
        assert radio.state is RadioState.OFF

    def test_recover_restores_operation(self):
        sim, channel = pair()
        radio = Radio(sim, channel, 0)
        radio.fail()
        radio.recover()
        radio.turn_on()
        assert radio.is_on

    def test_failed_node_receives_nothing(self):
        sim, channel = pair(distance=5.0)
        a = Radio(sim, channel, 0)
        b = Radio(sim, channel, 1)
        received = []
        b.on_receive = lambda frame, rssi: received.append(frame)
        a.turn_on()
        b.fail()
        b.turn_on()
        a.transmit(Frame(src=0, dst=1, type=FrameType.DATA))
        sim.run(until=1 * SECOND)
        assert received == []


class TestMacUnderFailure:
    def test_mac_train_aborts_when_node_dies(self):
        from repro.mac import LPLMac

        sim, channel = pair(distance=8.0)
        a = Radio(sim, channel, 0)
        b = Radio(sim, channel, 1)
        mac_a = LPLMac(sim, a, always_on=True)
        mac_b = LPLMac(sim, b)  # never started: b is silent
        mac_a.start()
        results = []
        sim.schedule(
            0,
            lambda: mac_a.send(
                Frame(src=0, dst=1, type=FrameType.DATA, length=40), results.append
            ),
        )
        # Kill the sender mid-train.
        sim.schedule(100 * MILLISECOND, a.fail)
        sim.run(until=2 * SECOND)
        assert results and not results[0].ok
        assert results[0].reason in ("dead", "timeout")

    def test_sink_side_stack_survives_neighbor_failure(self):
        sim = Simulator(seed=2)
        gains = LogDistancePathLoss(pl_d0=40.0, seed=2, shadowing_sigma=0.0).gain_matrix(
            [(0.0, 0.0), (12.0, 0.0), (24.0, 0.0)]
        )
        channel = Channel(sim, gains, noise_model=ConstantNoise())
        stacks = [
            NodeStack(sim, channel, i, is_root=(i == 0), always_on=True)
            for i in range(3)
        ]
        for s in stacks:
            s.start()
        sim.run(until=60 * SECOND)
        assert stacks[2].routing.parent == 1
        stacks[1].radio.fail()
        sim.run(until=sim.now + 400 * SECOND)
        # Node 2 cannot reach the sink at this spacing; it must either have
        # dropped its route or re-pointed away from the dead node.
        if stacks[2].routing.parent is not None:
            assert stacks[2].routing.parent != 1


class TestChannelEdgeCases:
    def test_delivery_to_node_that_turned_off_is_dropped_silently(self):
        sim, channel = pair(distance=5.0)
        a = Radio(sim, channel, 0)
        b = Radio(sim, channel, 1)
        b.on_receive = lambda frame, rssi: pytest.fail("must not deliver")
        a.turn_on()
        b.turn_on()
        a.transmit(Frame(src=0, dst=1, type=FrameType.DATA, length=120))
        sim.schedule(1 * MILLISECOND, b.turn_off)
        sim.run(until=1 * SECOND)

    def test_energy_reading_includes_interferers(self):
        sim, channel = pair()

        class FakeInterferer:
            def interference_dbm_at(self, node_id):
                return -60.0

        radio = Radio(sim, channel, 0)
        radio.turn_on()
        quiet = channel.energy_dbm_at(0)
        channel.add_interferer(FakeInterferer())
        loud = channel.energy_dbm_at(0)
        assert loud > quiet
        assert loud == pytest.approx(-60.0, abs=1.0)

    def test_audible_neighbors_listing(self):
        sim, channel = pair(distance=5.0)
        assert 1 in channel.audible_neighbors(0)
        assert 0 in channel.audible_neighbors(1)
