"""Tests for the Drip dissemination baseline."""

import pytest

from repro.baselines.drip import Drip, DripParams
from repro.net import NodeStack
from repro.radio.channel import Channel
from repro.radio.frame import FrameType
from repro.radio.noise import ConstantNoise
from repro.radio.propagation import LogDistancePathLoss
from repro.sim import SECOND, Simulator


def build(n=4, spacing=12.0, seed=1, always_on=True, params=None):
    sim = Simulator(seed=seed)
    positions = [(i * spacing, 0.0) for i in range(n)]
    gains = LogDistancePathLoss(pl_d0=40.0, seed=seed, shadowing_sigma=0.0).gain_matrix(
        positions
    )
    channel = Channel(sim, gains, noise_model=ConstantNoise())
    stacks, drips = {}, {}
    for i in range(n):
        stack = NodeStack(sim, channel, i, is_root=(i == 0), always_on=always_on)
        drips[i] = Drip(sim, stack, params=params)
        stacks[i] = stack
    for i in range(n):
        stacks[i].start()
        drips[i].start()
    return sim, channel, stacks, drips


class TestDissemination:
    def test_value_reaches_every_node(self):
        sim, _, _, drips = build(n=4)
        sim.run(until=20 * SECOND)
        drips[0].disseminate({"fw": 2}, destination=None)
        sim.run(until=sim.now + 60 * SECOND)
        for node, drip in drips.items():
            value = drip.current_value()
            assert value is not None and value.version == 1, node
            assert value.payload == {"fw": 2}

    def test_targeted_value_delivers_and_acks(self):
        sim, _, _, drips = build(n=4)
        sim.run(until=30 * SECOND)
        seen = []
        drips[3].on_delivered = seen.append
        pending = drips[0].disseminate("cmd", destination=3)
        sim.run(until=sim.now + 90 * SECOND)
        assert seen and seen[0].destination == 3
        assert pending.delivered
        assert pending.acked_at is not None

    def test_newer_version_supersedes(self):
        sim, _, _, drips = build(n=3)
        sim.run(until=20 * SECOND)
        drips[0].disseminate("old")
        sim.run(until=sim.now + 40 * SECOND)
        drips[0].disseminate("new")
        sim.run(until=sim.now + 60 * SECOND)
        for drip in drips.values():
            assert drip.current_value().payload == "new"

    def test_on_apply_called_at_target_only(self):
        sim, _, _, drips = build(n=3)
        sim.run(until=20 * SECOND)
        applied = {}
        for node, drip in drips.items():
            drip.on_apply = lambda payload, me=node: applied.setdefault(me, payload)
        drips[0].disseminate("x", destination=2)
        sim.run(until=sim.now + 60 * SECOND)
        assert applied == {2: "x"}

    def test_disseminate_from_non_root_rejected(self):
        sim, _, _, drips = build(n=2)
        with pytest.raises(RuntimeError):
            drips[1].disseminate("x")

    def test_timeout_reports_failure(self):
        sim, _, stacks, drips = build(n=3)
        sim.run(until=20 * SECOND)
        stacks[2].radio.fail()
        outcomes = []
        drips[0].disseminate("x", destination=2, done=outcomes.append, e2e_timeout=30 * SECOND)
        sim.run(until=sim.now + 60 * SECOND)
        assert outcomes and outcomes[0].failed


class TestTrickleBehaviour:
    def test_steady_state_traffic_decays(self):
        sim, _, stacks, drips = build(n=3)
        sim.run(until=20 * SECOND)
        drips[0].disseminate("x")
        sim.run(until=sim.now + 30 * SECOND)
        early = sum(s.tx_by_type.get(FrameType.DISSEMINATION, 0) for s in stacks.values())
        sim.run(until=sim.now + 30 * SECOND)
        mid = sum(s.tx_by_type.get(FrameType.DISSEMINATION, 0) for s in stacks.values())
        sim.run(until=sim.now + 120 * SECOND)
        late = sum(s.tx_by_type.get(FrameType.DISSEMINATION, 0) for s in stacks.values())
        burst = mid - early
        steady_rate = (late - mid) / 4.0  # per 30 s
        assert steady_rate <= max(burst, 1), (burst, steady_rate)

    def test_new_version_resets_trickle(self):
        params = DripParams()
        sim, _, stacks, drips = build(n=3, params=params)
        sim.run(until=60 * SECOND)
        interval_before = drips[1]._timer_for(Drip.CONTROL_KEY).interval
        assert interval_before > params.i_min  # doubled by now
        drips[0].disseminate("fresh")
        sim.run(until=sim.now + 10 * SECOND)
        # Having adopted a new version, node 1's timer restarted small.
        assert drips[1].current_value().payload == "fresh"

    def test_straggler_gets_repaired(self):
        sim, _, stacks, drips = build(n=3)
        sim.run(until=20 * SECOND)
        # Node 2 misses the initial wave.
        stacks[2].radio.fail()
        drips[0].disseminate("v1")
        sim.run(until=sim.now + 40 * SECOND)
        assert drips[2].current_value() is None
        stacks[2].radio.recover()
        stacks[2].radio.turn_on()
        sim.run(until=sim.now + 180 * SECOND)
        value = drips[2].current_value()
        assert value is not None and value.payload == "v1"
