"""Targeted tests for less-travelled branches across the stack."""

import pytest

from repro.mac import AnycastDecision, LPLMac, MacParams
from repro.net import NodeStack
from repro.net.messages import NO_ROUTE, RoutingBeacon
from repro.net.trickle import TrickleTimer
from repro.radio.channel import Channel
from repro.radio.frame import BROADCAST, Frame, FrameType
from repro.radio.noise import ConstantNoise
from repro.radio.propagation import LogDistancePathLoss
from repro.radio.radio import Radio
from repro.sim import MILLISECOND, SECOND, Simulator


def pair(seed=1, distance=8.0, noise=None):
    sim = Simulator(seed=seed)
    gains = LogDistancePathLoss(pl_d0=40.0, seed=seed, shadowing_sigma=0.0).gain_matrix(
        [(0.0, 0.0), (distance, 0.0)]
    )
    channel = Channel(sim, gains, noise_model=noise or ConstantNoise())
    return sim, channel


class TestMacBranches:
    def test_anycast_times_out_on_jammed_channel(self):
        sim, channel = pair(noise=ConstantNoise(-60.0))
        mac = LPLMac(sim, Radio(sim, channel, 0), always_on=True)
        mac.start()
        results = []
        sim.schedule(
            0,
            lambda: mac.send_anycast(
                Frame(src=0, dst=BROADCAST, type=FrameType.CONTROL, length=36),
                results.append,
            ),
        )
        sim.run(until=5 * SECOND)
        assert results and not results[0].ok
        assert results[0].reason in ("busy", "timeout")

    def test_duty_cycle_since_argument(self):
        sim, channel = pair()
        mac = LPLMac(sim, Radio(sim, channel, 0), always_on=True)
        mac.start()
        sim.run(until=10 * SECOND)
        # Whole-life duty is 1.0 for an always-on node; a window starting
        # "now" has no elapsed time and reads 0.
        assert mac.duty_cycle() == pytest.approx(1.0)
        assert mac.duty_cycle(since=sim.now) == 0.0

    def test_wifi_frames_never_reach_upper_layer(self):
        sim, channel = pair(distance=4.0)
        a = LPLMac(sim, Radio(sim, channel, 0), always_on=True)
        b = LPLMac(sim, Radio(sim, channel, 1), always_on=True)
        got = []
        b.receive_handler = lambda frame, rssi: got.append(frame)
        a.start()
        b.start()
        sim.schedule(
            0, lambda: a.send(Frame(src=0, dst=BROADCAST, type=FrameType.WIFI, length=60))
        )
        sim.run(until=3 * SECOND)
        assert got == []

    def test_snoop_sees_foreign_unicast(self):
        sim, channel = pair(distance=4.0)
        a = LPLMac(sim, Radio(sim, channel, 0), always_on=True)
        b = LPLMac(sim, Radio(sim, channel, 1), always_on=True)
        snooped = []
        b.snoop_handler = lambda frame, rssi: snooped.append(frame.dst)
        a.start()
        b.start()
        # Unicast addressed to some third party; b overhears it.
        sim.schedule(
            0, lambda: a.send(Frame(src=0, dst=77, type=FrameType.DATA, length=40))
        )
        sim.run(until=2 * SECOND)
        assert 77 in snooped


class TestTrickleListenOnly:
    def test_counter_visible_between_intervals(self):
        sim = Simulator(seed=1)
        fires = []
        timer = TrickleTimer(sim, lambda: fires.append(sim.now), i_min=1000, k=2)
        timer.start()
        timer.hear_consistent()
        assert timer.counter == 1
        sim.run(until=5000)
        # After interval turnover the counter reset; one consistent message
        # alone no longer suppresses (k=2).
        assert timer.counter == 0


class TestCtpPull:
    def test_routeless_neighbor_resets_beacon_timer(self):
        sim, channel = pair(distance=8.0)
        root = NodeStack(sim, channel, 0, is_root=True, always_on=True)
        root.start()
        sim.run(until=120 * SECOND)  # Trickle has doubled well past i_min
        interval_before = root.routing.trickle.interval
        assert interval_before > root.routing.trickle.i_min
        beacon = RoutingBeacon(
            origin=1, parent=None, path_etx=float(NO_ROUTE), hop_count=NO_ROUTE, seqno=1
        )
        root.routing.beacon_received(beacon, rssi=-70)
        assert root.routing.trickle.interval == root.routing.trickle.i_min

    def test_hop_count_no_route_sentinel(self):
        sim, channel = pair()
        lonely = NodeStack(sim, channel, 1, always_on=True)
        lonely.start()
        sim.run(until=5 * SECOND)
        assert lonely.routing.hop_count >= NO_ROUTE


class TestForwardingFinalUnicast:
    def test_helper_forwards_final_unicast(self):
        """The Re-Tele helper branch of handle_control, driven directly."""
        from repro.core import Controller, TeleAdjusting
        from repro.core.messages import ControlPacket

        sim = Simulator(seed=9)
        gains = LogDistancePathLoss(pl_d0=40.0, seed=9, shadowing_sigma=0.0).gain_matrix(
            [(0.0, 0.0), (10.0, 0.0), (20.0, 0.0)]
        )
        channel = Channel(sim, gains, noise_model=ConstantNoise())
        stacks = {}
        protocols = {}
        for i in range(3):
            stacks[i] = NodeStack(sim, channel, i, is_root=(i == 0), always_on=True)
            protocols[i] = TeleAdjusting(sim, stacks[i], controller=Controller(channel))
            stacks[i].start()
            protocols[i].start()
        sim.run(until=90 * SECOND)
        helper = protocols[1]
        control = ControlPacket(
            destination=1,  # addressed to the helper…
            destination_code=helper.allocation.code,
            expected_relay=None,
            expected_length=0,
            final_unicast_to=2,  # …for final delivery to node 2
            payload="detour",
        )
        applied = []
        protocols[2].forwarding.on_apply = applied.append
        delivered_via = []
        protocols[2].forwarding.on_delivered = (
            lambda c, via_unicast: delivered_via.append(via_unicast)
        )
        frame = Frame(
            src=0, dst=1, type=FrameType.CONTROL, payload=control, length=36
        )
        helper.forwarding.handle_control(frame, -70)
        sim.run(until=sim.now + 10 * SECOND)
        assert applied == ["detour"]
        assert delivered_via == [True]
