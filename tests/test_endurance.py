"""Endurance layer: mobility, battery depletion, reclamation, streaming.

The soak harness promises three things the short grids never exercise:
deterministic churn (mobility compiled onto the queue), permanent battery
deaths threaded through the fault injector, and memory-flat windowed
metrics whose stream digest doubles as a determinism token. These tests
pin each piece in isolation, then the composed ``run_soak`` cell.
"""

import json

import pytest

from repro.experiments.comparison import config_for
from repro.experiments.harness import Network, NetworkConfig
from repro.experiments.soak import (
    SOAK_DEFAULTS,
    run_soak,
    soak_battery,
    soak_config,
    soak_mobility,
)
from repro.metrics.streaming import StreamingMetrics
from repro.radio.battery import MC_PER_MAH, BatteryParams
from repro.sim.units import MINUTE, SECOND
from repro.topology.mobility import MobilityParams

SMOKE = dict(
    duration_s=600.0,
    window_s=200.0,
    control_interval_s=30.0,
    converge_seconds=120.0,
    battery_mah=0.5,
    reclaim_ttl_s=120.0,
    tail_windows=8,
)


def make_net(**overrides) -> Network:
    config = NetworkConfig(
        topology="indoor-testbed",
        protocol="tele",
        seed=7,
        **overrides,
    )
    return Network(config)


# ----------------------------------------------------------------- params

class TestParams:
    def test_mobility_roundtrip(self):
        params = MobilityParams(
            model="commuter", nodes=[3, 5], speed_mps=(1.0, 2.0), start_s=30.0
        )
        again = MobilityParams.from_dict(json.loads(json.dumps(params.to_dict())))
        assert again == params
        assert isinstance(again.speed_mps, tuple)

    def test_mobility_validation(self):
        with pytest.raises(ValueError, match="model"):
            MobilityParams(model="teleport")
        with pytest.raises(ValueError, match="fraction"):
            MobilityParams(fraction=1.5)
        with pytest.raises(ValueError, match="speed"):
            MobilityParams(speed_mps=(0.0, 1.0))
        with pytest.raises(ValueError, match="step_s"):
            MobilityParams(step_s=0.0)

    def test_battery_roundtrip_and_budget(self):
        params = BatteryParams(capacity_mah=10.0, per_node_mah={3: 1.0})
        again = BatteryParams.from_dict(json.loads(json.dumps(params.to_dict())))
        # JSON stringifies dict keys; from_dict coerces them back to int.
        assert again.per_node_mah == {3: 1.0}
        assert again.budget_mc(3) == 1.0 * MC_PER_MAH
        assert again.budget_mc(4) == 10.0 * MC_PER_MAH

    def test_battery_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            BatteryParams(capacity_mah=0.0)
        with pytest.raises(ValueError, match="positive"):
            BatteryParams(per_node_mah={1: -2.0})

    def test_config_embeds_params_as_dicts(self):
        config = NetworkConfig(
            topology="indoor-testbed",
            protocol="tele",
            seed=1,
            mobility={"model": "waypoint", "fraction": 0.1},
            battery={"capacity_mah": 1.0},
        )
        assert isinstance(config.mobility, MobilityParams)
        assert isinstance(config.battery, BatteryParams)
        out = config.to_dict()
        assert out["mobility"]["fraction"] == 0.1
        assert out["battery"]["capacity_mah"] == 1.0

    def test_config_omits_none_knobs(self):
        """Soak-free configs must fingerprint exactly as before PR 9."""
        plain = config_for("tele", 26, 1).to_dict()
        assert "mobility" not in plain
        assert "battery" not in plain
        zero = soak_config("tele", 1, 26, churn_intensity=0.0, battery_mah=None)
        assert zero.to_dict() == plain


# --------------------------------------------------------------- mobility

class TestMobility:
    def test_waypoint_moves_and_kicks(self):
        net = make_net(
            mobility=MobilityParams(
                model="waypoint", nodes=[10, 20], pause_s=(5.0, 10.0)
            )
        )
        net.converge(max_seconds=120)
        net.run(300)
        summary = net.mobility.summary()
        assert summary["movers"] == 2
        assert summary["moves"] > 0
        assert summary["waypoints"] > 0
        assert summary["kicks"] > 0
        # Walkers actually left their deployed spots.
        for node in (10, 20):
            assert net.mobility.position(node) != tuple(
                map(float, net.deployment.positions[node])
            )

    def test_commuter_stays_within_commute_radius(self):
        radius = 20.0
        net = make_net(
            mobility=MobilityParams(
                model="commuter",
                nodes=[15, 25],
                commute_radius_m=radius,
                pause_s=(2.0, 5.0),
            )
        )
        net.converge(max_seconds=120)
        start = {n: net.mobility.position(n) for n in (15, 25)}
        for _ in range(30):
            net.run(20)
            for node, home in start.items():
                x, y = net.mobility.position(node)
                # Straight-line walk between two anchors at most radius
                # away (bbox-clamped) can never leave the home square.
                assert abs(x - home[0]) <= radius + 1e-9
                assert abs(y - home[1]) <= radius + 1e-9
        assert net.mobility.moves > 0

    def test_mobility_is_deterministic(self):
        def run_once():
            net = make_net(
                mobility=MobilityParams(model="waypoint", fraction=0.2)
            )
            net.converge(max_seconds=120)
            net.run(300)
            return (
                net.mobility.summary(),
                {n: net.mobility.position(n) for n in net.mobility.movers},
                net.sim.events_executed,
            )

        assert run_once() == run_once()

    def test_sink_never_moves(self):
        with pytest.raises(ValueError, match="sink"):
            net = make_net(mobility=MobilityParams(nodes=[0]))
            assert net  # pragma: no cover - construction must raise

    def test_dead_movers_stop_walking(self):
        net = make_net(
            mobility=MobilityParams(model="waypoint", nodes=[10], pause_s=(1.0, 2.0)),
            battery=BatteryParams(per_node_mah={10: 0.01}, check_interval_s=10.0),
        )
        net.converge(max_seconds=120)
        net.run(120)
        assert net.stacks[10].radio.failed
        moves_at_death = net.mobility.moves
        net.run(120)
        assert net.mobility.moves == moves_at_death
        assert net.mobility.dead_movers >= 1


# ---------------------------------------------------------------- battery

class TestBattery:
    def test_depletion_kills_through_injector(self):
        net = make_net(battery=BatteryParams(capacity_mah=0.05, check_interval_s=10.0))
        net.converge(max_seconds=120)
        net.run(300)
        assert net.battery.alive_count() < len(net.stacks) - 1
        assert net.fault_injector is not None
        assert len(net.fault_injector.deaths) == len(net.battery.deaths)
        for _, node in net.battery.deaths:
            assert net.stacks[node].radio.failed
        # The sink is mains-powered: never monitored, never dead.
        assert not net.stacks[net.sink].radio.failed
        summary = net.battery.summary()
        assert summary["deaths"] == len(net.battery.deaths)
        assert summary["first_death_s"] is not None

    def test_charge_accounting_monotone(self):
        net = make_net(battery=BatteryParams(capacity_mah=50.0, check_interval_s=5.0))
        net.converge(max_seconds=60)
        node = net.non_sink_nodes()[0]
        samples = []
        for _ in range(5):
            net.run(30)
            samples.append(net.battery.charge_used_mc(node))
        assert all(b >= a for a, b in zip(samples, samples[1:]))
        assert samples[-1] > 0.0

    def test_staggered_budgets(self):
        params = soak_battery(5.0, n_nodes=40, sink=0)
        budgets = sorted(params.per_node_mah.values())
        assert len(params.per_node_mah) == 39
        assert budgets[0] == pytest.approx(5.0 * 0.7)
        assert budgets[-1] == pytest.approx(5.0 * 1.3)
        assert soak_battery(None, 40, 0) is None
        assert soak_battery(0.0, 40, 0) is None


# ------------------------------------------------------------ reclamation

class TestReclamation:
    def _reclaimed(self, net: Network) -> int:
        return sum(
            adapter.allocation.positions_reclaimed
            for adapter in net.protocols.values()
            if getattr(adapter, "allocation", None) is not None
        )

    def test_dead_children_are_reclaimed(self):
        from repro.core.allocation import AllocationParams

        net = make_net(
            battery=BatteryParams(capacity_mah=0.05, check_interval_s=10.0),
            allocation_params=AllocationParams(
                reclaim_child_ttl=round(120.0 * SECOND)
            ),
        )
        net.converge(max_seconds=120)
        net.run(15 * 60)
        assert len(net.battery.deaths) > 0
        assert self._reclaimed(net) > 0

    def test_live_children_survive_ttl(self):
        """Reclamation must key on silence, not age: routing beacons and
        TeleAdjusting traffic keep live children's entries fresh. The TTL
        must exceed CTP's maximum Trickle beacon interval (~4 min) — the
        documented 600 s floor — else a quiescent but healthy child looks
        dead between beacons. Re-parenting can legitimately orphan a few
        old-parent entries; what must never happen is a *currently
        attached* child losing its slot, so the invariant is on attached
        children and surviving path codes, not a zero reclaim count."""
        from repro.core.allocation import AllocationParams

        net = make_net(
            allocation_params=AllocationParams(
                reclaim_child_ttl=round(600.0 * SECOND)
            ),
        )
        net.converge(max_seconds=120)
        coded_before = sum(
            1 for a in net.protocols.values() if a.path_code is not None
        )
        net.run(20 * 60)
        # Every child still routing through its parent keeps its entry.
        for node, adapter in net.protocols.items():
            if node == net.sink or adapter.path_code is None:
                continue
            parent = net.stacks[node].routing.parent
            if parent is None:
                continue
            assert node in net.protocols[parent].allocation.children, (
                f"attached child {node} evicted from parent {parent}"
            )
        coded_after = sum(
            1 for a in net.protocols.values() if a.path_code is not None
        )
        assert coded_after >= coded_before


# -------------------------------------------------- draining and windows

class TestStreaming:
    def test_drain_control_records(self):
        net = make_net()
        net.converge(max_seconds=120)
        destinations = net.non_sink_nodes()[:4]
        for destination in destinations:
            net.send_control(destination, payload=None)
            net.run(20)
        total = len(net.control_metrics.records)
        assert total == 4
        cutoff = net.sim.now - round(30.0 * SECOND)
        drained = net.drain_control_records(cutoff)
        assert all(r.sent_at < cutoff for r in drained)
        remaining = net.control_metrics.records
        assert len(drained) + len(remaining) == total
        assert all(r.sent_at >= cutoff for r in remaining)
        # A second drain at the same cutoff finds nothing.
        assert net.drain_control_records(cutoff) == []
        # The per-protocol record index dropped the drained ones too.
        assert len(net._records_by_key) == len(remaining)

    def test_windows_aggregate_and_hash(self):
        net = make_net()
        net.converge(max_seconds=120)
        streamer = StreamingMetrics(net, window_s=60.0)
        lines = []
        streamer.writer = lines.append
        digests = [streamer.stream_digest]
        for _ in range(2):
            net.send_control(net.non_sink_nodes()[0], payload=None)
            net.run(60)
            streamer.close_window(net.drain_control_records(net.sim.now + 1))
            digests.append(streamer.stream_digest)
        assert streamer.windows_emitted == 2
        assert len(set(digests)) == 3  # every window folds into the hash
        for window in lines:
            assert window["sent"] == 1
            assert window["delivery"] in (None, 0.0, 1.0)
            assert 0.0 <= window["duty_cycle"] <= 1.0
            assert window["charge_mc"] > 0.0
            assert window["events"] > 0
            json.dumps(window, sort_keys=True, allow_nan=False)  # canonical

    def test_windows_are_memory_flat(self):
        """The streamer holds O(nodes) state regardless of window count."""
        net = make_net()
        net.converge(max_seconds=60)
        streamer = StreamingMetrics(net, window_s=10.0)
        before = len(streamer._last_on) + len(streamer._last_tx)
        for _ in range(10):
            net.run(10)
            streamer.close_window(net.drain_control_records(net.sim.now + 1))
        after = len(streamer._last_on) + len(streamer._last_tx)
        assert after == before
        assert len(net.control_metrics.records) == 0


# ------------------------------------------------------------------ soak

class TestRunSoak:
    def test_smoke_and_degradation(self):
        result = run_soak("tele", seed=3, **SMOKE)
        assert result["converged"]
        assert result["windows"] >= 3
        assert result["controls_sent"] > 0
        assert result["deaths"] > 0
        assert result["positions_reclaimed"] >= 0
        assert result["mobility"]["moves"] > 0
        assert result["battery"]["deaths"] == result["deaths"]
        assert len(result["tail"]) == result["windows"]
        # Tail rows carry the degradation curve columns.
        from repro.experiments.soak import soak_grid_rows

        rows = soak_grid_rows(result)
        assert len(rows) == result["windows"]
        assert {"delivery", "alive", "reclaimed"} <= set(rows[0])
        # The alive count is non-increasing: deaths are permanent.
        alive = [w["alive"] for w in result["tail"]]
        assert all(b <= a for a, b in zip(alive, alive[1:]))
        json.dumps(result, sort_keys=True, allow_nan=False)

    def test_same_seed_is_bit_identical(self):
        first = run_soak("tele", seed=5, **SMOKE)
        second = run_soak("tele", seed=5, **SMOKE)
        assert first["stream_digest"] == second["stream_digest"]
        assert first["soak_digest"] == second["soak_digest"]
        assert first["events_executed"] == second["events_executed"]

    def test_jsonl_stream_matches_tail(self, tmp_path):
        path = tmp_path / "soak.jsonl"
        result = run_soak("tele", seed=3, jsonl_path=str(path), **SMOKE)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == result["windows"]
        assert lines[-result["windows"]:][-len(result["tail"]):] == result["tail"]

    def test_zero_knob_config_identical_to_comparison(self):
        config = soak_config("drip", 2, 26, churn_intensity=0.0, battery_mah=None)
        assert config.to_dict() == config_for("drip", 26, 2).to_dict()
        assert soak_mobility(0.0, 240.0) is None

    def test_bad_schedule_rejected(self):
        with pytest.raises(ValueError, match="duration_s"):
            run_soak("tele", duration_s=0.0)
        with pytest.raises(ValueError, match="window_s"):
            run_soak("tele", window_s=-1.0)


class TestRunnerIntegration:
    def test_soak_spec_fingerprint_and_unknown_kwarg(self):
        from repro.runner import soak_spec

        spec = soak_spec("tele", seed=1, duration_s=600.0)
        assert spec.kind == "soak"
        assert spec.params["schedule"]["duration_s"] == 600.0
        assert spec.params["config"]["mobility"] is not None
        assert spec.fingerprint == soak_spec("tele", seed=1, duration_s=600.0).fingerprint
        assert spec.fingerprint != soak_spec("tele", seed=2, duration_s=600.0).fingerprint
        with pytest.raises(TypeError, match="bogus"):
            soak_spec("tele", bogus=True)

    def test_sim_seconds_estimate(self):
        from repro.runner import soak_spec
        from repro.runner.execute import sim_seconds_estimate

        spec = soak_spec("tele", duration_s=600.0, converge_seconds=120.0)
        assert sim_seconds_estimate(spec) == 720.0
