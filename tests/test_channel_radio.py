"""Integration tests for the channel + radio layer."""

import pytest

from repro.radio.channel import Channel, dbm_to_mw, mw_to_dbm
from repro.radio.frame import BROADCAST, Frame, FrameType
from repro.radio.noise import ConstantNoise
from repro.radio.propagation import LogDistancePathLoss
from repro.radio.radio import Radio, RadioError, RadioState
from repro.sim import MILLISECOND, SECOND, Simulator


def make_pair(distance=8.0, seed=1, fading=0.0):
    sim = Simulator(seed=seed)
    positions = [(0.0, 0.0), (distance, 0.0)]
    gains = LogDistancePathLoss(pl_d0=40.0, seed=seed, shadowing_sigma=0.0).gain_matrix(
        positions
    )
    channel = Channel(sim, gains, noise_model=ConstantNoise(), fading_sigma_db=fading)
    radios = [Radio(sim, channel, i) for i in range(2)]
    return sim, channel, radios


class TestUnitConversions:
    def test_dbm_roundtrip(self):
        assert mw_to_dbm(dbm_to_mw(-80.0)) == pytest.approx(-80.0)

    def test_zero_power_floors(self):
        assert mw_to_dbm(0.0) == -200.0


class TestRadioStates:
    def test_initially_off(self):
        _, _, (a, _) = make_pair()
        assert a.state is RadioState.OFF
        assert not a.is_on

    def test_on_off_cycle(self):
        sim, _, (a, _) = make_pair()
        a.turn_on()
        assert a.state is RadioState.IDLE
        a.turn_off()
        assert a.state is RadioState.OFF

    def test_transmit_while_off_rejected(self):
        _, _, (a, _) = make_pair()
        with pytest.raises(RadioError):
            a.transmit(Frame(src=0, dst=1, type=FrameType.DATA))

    def test_double_transmit_rejected(self):
        sim, _, (a, _) = make_pair()
        a.turn_on()
        a.transmit(Frame(src=0, dst=1, type=FrameType.DATA))
        with pytest.raises(RadioError):
            a.transmit(Frame(src=0, dst=1, type=FrameType.DATA))

    def test_turn_off_mid_tx_rejected(self):
        sim, _, (a, _) = make_pair()
        a.turn_on()
        a.transmit(Frame(src=0, dst=1, type=FrameType.DATA))
        with pytest.raises(RadioError):
            a.turn_off()

    def test_on_time_accounting(self):
        sim, _, (a, _) = make_pair()
        a.turn_on()
        sim.schedule(100 * MILLISECOND, a.turn_off)
        sim.schedule(200 * MILLISECOND, a.turn_on)
        sim.run(until=300 * MILLISECOND)
        assert a.on_time() == 200 * MILLISECOND

    def test_reset_on_time(self):
        sim, _, (a, _) = make_pair()
        a.turn_on()
        sim.schedule(50 * MILLISECOND, lambda: None)
        sim.run()
        a.reset_on_time()
        assert a.on_time() == 0


class TestDelivery:
    def test_good_link_delivers(self):
        sim, _, (a, b) = make_pair(distance=8.0)
        received = []
        b.on_receive = lambda frame, rssi: received.append((frame, rssi))
        a.turn_on()
        b.turn_on()
        a.transmit(Frame(src=0, dst=1, type=FrameType.DATA, length=40))
        sim.run(until=1 * SECOND)
        assert len(received) == 1
        assert received[0][1] < -40  # a plausible RSSI

    def test_out_of_range_never_delivers(self):
        sim, _, (a, b) = make_pair(distance=200.0)
        received = []
        b.on_receive = lambda frame, rssi: received.append(frame)
        a.turn_on()
        b.turn_on()
        for _ in range(5):
            a.transmit(Frame(src=0, dst=1, type=FrameType.DATA))
            sim.run(until=sim.now + 50 * MILLISECOND)
        assert received == []

    def test_receiver_off_misses(self):
        sim, _, (a, b) = make_pair(distance=8.0)
        received = []
        b.on_receive = lambda frame, rssi: received.append(frame)
        a.turn_on()
        a.transmit(Frame(src=0, dst=1, type=FrameType.DATA))
        sim.run(until=1 * SECOND)
        assert received == []

    def test_receiver_turning_off_mid_packet_misses(self):
        sim, _, (a, b) = make_pair(distance=8.0)
        received = []
        b.on_receive = lambda frame, rssi: received.append(frame)
        a.turn_on()
        b.turn_on()
        a.transmit(Frame(src=0, dst=1, type=FrameType.DATA, length=100))
        sim.schedule(200, b.turn_off)  # mid-airtime
        sim.run(until=1 * SECOND)
        assert received == []

    def test_strong_interferer_destroys_weak_reception(self):
        sim = Simulator(seed=1)
        # Receiver (2) is far from the sender (0) but right next to the
        # interferer (1): the wanted signal arrives ~24 dB under the
        # interference, far below any capture threshold.
        positions = [(0.0, 0.0), (10.0, 0.0), (8.0, 0.0)]
        gains = LogDistancePathLoss(pl_d0=40.0, seed=1, shadowing_sigma=0.0).gain_matrix(
            positions
        )
        channel = Channel(sim, gains, noise_model=ConstantNoise())
        radios = [Radio(sim, channel, i) for i in range(3)]
        received = []
        radios[2].on_receive = lambda frame, rssi: received.append(frame)
        for r in radios:
            r.turn_on()
        radios[0].transmit(Frame(src=0, dst=2, type=FrameType.DATA, length=60))
        radios[1].transmit(Frame(src=1, dst=2, type=FrameType.WIFI, length=60))
        sim.run(until=1 * SECOND)
        assert received == []

    def test_delivery_observer_called(self):
        sim, channel, (a, b) = make_pair(distance=8.0)
        observed = []
        channel.delivery_observers.append(
            lambda receiver, frame, rssi: observed.append(receiver)
        )
        b.on_receive = lambda frame, rssi: None
        a.turn_on()
        b.turn_on()
        a.transmit(Frame(src=0, dst=1, type=FrameType.DATA))
        sim.run(until=1 * SECOND)
        assert observed == [1]

    def test_duplicate_radio_id_rejected(self):
        sim, channel, _ = make_pair()
        with pytest.raises(ValueError):
            Radio(sim, channel, 0)


class TestCCA:
    def test_quiet_channel_is_clear(self):
        sim, _, (a, b) = make_pair()
        a.turn_on()
        assert a.cca_clear()

    def test_transmission_trips_cca(self):
        sim, _, (a, b) = make_pair(distance=5.0)
        a.turn_on()
        b.turn_on()
        a.transmit(Frame(src=0, dst=1, type=FrameType.DATA, length=120))
        busy = []
        sim.schedule(500, lambda: busy.append(b.cca_clear()))
        sim.run(until=1 * SECOND)
        assert busy == [False]

    def test_cca_while_off_rejected(self):
        _, _, (a, _) = make_pair()
        with pytest.raises(RadioError):
            a.cca_clear()


class TestFading:
    def test_fading_stable_within_bucket(self):
        sim, channel, _ = make_pair(fading=3.0)
        assert channel.fading_db(0, 1) == channel.fading_db(0, 1)
        assert channel.fading_db(0, 1) == channel.fading_db(1, 0)  # symmetric

    def test_fading_changes_across_buckets(self):
        sim, channel, _ = make_pair(fading=3.0)
        first = channel.fading_db(0, 1)
        sim.schedule(channel.fading_coherence + 1, lambda: None)
        sim.run()
        second = channel.fading_db(0, 1)
        assert first != second

    def test_fading_disabled_is_zero(self):
        _, channel, _ = make_pair(fading=0.0)
        assert channel.fading_db(0, 1) == 0.0

    def test_expected_prr_reflects_distance(self):
        _, channel, _ = make_pair(distance=8.0)
        assert channel.expected_prr(0, 1) > 0.9
        _, far_channel, _ = make_pair(distance=50.0)
        assert far_channel.expected_prr(0, 1) == 0.0
