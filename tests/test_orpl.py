"""Tests for the ORPL extension baseline (bloom-filter downward routing)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.orpl import BloomFilter, OrplDownward, OrplParams
from repro.net import NodeStack
from repro.radio.channel import Channel
from repro.radio.noise import ConstantNoise
from repro.radio.propagation import LogDistancePathLoss
from repro.sim import SECOND, Simulator


class TestBloomFilter:
    def test_added_items_are_contained(self):
        bloom = BloomFilter()
        for item in (1, 17, 999):
            bloom.add(item)
        assert all(item in bloom for item in (1, 17, 999))

    def test_empty_contains_nothing(self):
        bloom = BloomFilter()
        assert 5 not in bloom
        assert bloom.fill_ratio() == 0.0

    def test_merge_is_union(self):
        a, b = BloomFilter(), BloomFilter()
        a.add(1)
        b.add(2)
        a.merge(b)
        assert 1 in a and 2 in a

    def test_merge_rejects_mismatched(self):
        with pytest.raises(ValueError):
            BloomFilter(64, 2).merge(BloomFilter(32, 2))

    def test_copy_is_independent(self):
        a = BloomFilter()
        a.add(1)
        b = a.copy()
        b.add(2)
        assert 2 not in a

    def test_false_positives_exist_for_small_filters(self):
        # The defining weakness: with a small m and many members, some
        # non-members are claimed.
        bloom = BloomFilter(m_bits=32, k_hashes=2)
        for item in range(20):
            bloom.add(item)
        false_positives = sum(1 for probe in range(1000, 1400) if probe in bloom)
        assert false_positives > 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BloomFilter(0, 1)
        with pytest.raises(ValueError):
            BloomFilter(8, 0)

    @given(st.sets(st.integers(min_value=0, max_value=10_000), max_size=30))
    def test_property_no_false_negatives(self, items):
        bloom = BloomFilter()
        for item in items:
            bloom.add(item)
        assert all(item in bloom for item in items)


def build(n=4, spacing=12.0, seed=1, params=None):
    sim = Simulator(seed=seed)
    positions = [(i * spacing, 0.0) for i in range(n)]
    gains = LogDistancePathLoss(pl_d0=40.0, seed=seed, shadowing_sigma=0.0).gain_matrix(
        positions
    )
    channel = Channel(sim, gains, noise_model=ConstantNoise())
    stacks, orpls = {}, {}
    for i in range(n):
        stack = NodeStack(sim, channel, i, is_root=(i == 0), always_on=True)
        orpls[i] = OrplDownward(sim, stack, params=params)
        stacks[i] = stack
    for i in range(n):
        stacks[i].start()
        orpls[i].start()
    return sim, channel, stacks, orpls


class TestSubtreeSummaries:
    def test_sink_learns_whole_network(self):
        sim, _, _, orpls = build(n=4)
        sim.run(until=120 * SECOND)
        for node in (1, 2, 3):
            assert orpls[0].claims(node), node

    def test_intermediate_claims_descendants(self):
        sim, _, _, orpls = build(n=4)
        sim.run(until=120 * SECOND)
        assert orpls[1].claims(3)
        assert orpls[2].claims(3)

    def test_epoch_rotation_purges_departed(self):
        params = OrplParams(epoch=30 * SECOND)
        sim, _, stacks, orpls = build(n=3, params=params)
        sim.run(until=90 * SECOND)
        assert orpls[0].claims(2)
        stacks[2].radio.fail()
        # After two epoch rotations without node 2's beacons, and with node 1
        # rebuilding from scratch, the claim (usually) disappears; we assert
        # the weaker property that node 1's own rebuilt filter drops it.
        sim.run(until=sim.now + 120 * SECOND)
        assert 2 not in orpls[1]._building or orpls[1].claims(2)


class TestDownwardDelivery:
    def test_delivery_and_ack(self):
        sim, _, _, orpls = build(n=4)
        sim.run(until=120 * SECOND)
        delivered = []
        orpls[3].on_delivered = delivered.append
        pending = orpls[0].send_control(3, payload={"v": 9})
        sim.run(until=sim.now + 40 * SECOND)
        assert delivered and delivered[0].payload == {"v": 9}
        assert pending.delivered and pending.acked_at is not None

    def test_depth_gate_prevents_upward_relay(self):
        sim, _, _, orpls = build(n=4)
        sim.run(until=120 * SECOND)
        from repro.baselines.orpl import OrplControl
        from repro.radio.frame import BROADCAST, Frame, FrameType

        control = OrplControl(destination=3, payload=None, holder_depth=2)
        frame = Frame(
            src=2, dst=BROADCAST, type=FrameType.CONTROL, payload=control, length=32
        )
        # Node 1 (depth 1) must not take a packet already at depth 2.
        assert not orpls[1]._anycast_decision(frame, -70).accept
        # Node 3 is the destination: always takes it.
        assert orpls[3]._anycast_decision(frame, -70).accept

    def test_non_claiming_node_rejects(self):
        sim, _, _, orpls = build(n=4)
        sim.run(until=120 * SECOND)
        from repro.baselines.orpl import OrplControl
        from repro.radio.frame import BROADCAST, Frame, FrameType

        # Probe ids until one is genuinely outside node 2's bloom.
        outside = next(p for p in range(5000, 6000) if not orpls[2].claims(p))
        control = OrplControl(destination=outside, payload=None, holder_depth=1)
        frame = Frame(
            src=1, dst=BROADCAST, type=FrameType.CONTROL, payload=control, length=32
        )
        assert not orpls[2]._anycast_decision(frame, -70).accept

    def test_send_from_non_root_rejected(self):
        sim, _, _, orpls = build(n=2)
        with pytest.raises(RuntimeError):
            orpls[1].send_control(0)


class TestHarnessIntegration:
    def test_orpl_variant_runs_in_harness(self):
        import repro

        net = repro.build_network(protocol="orpl", seed=1)
        net.converge(max_seconds=200, target=0.9)
        assert net.orpl_coverage_fraction() >= 0.9
        destination = next(
            n for n in net.non_sink_nodes() if net.stacks[n].routing.hop_count >= 2
        )
        record = net.send_control(destination)
        net.run(40)
        assert record.delivered
