"""Tests for the report renderers and the CLI argument surface."""

import pytest

from repro.cli import build_parser
from repro.experiments import report
from repro.experiments.comparison import ComparisonResult


def fake_result(variant="tele", channel=26, pdr=0.95):
    return ComparisonResult(
        variant=variant,
        zigbee_channel=channel,
        seed=1,
        n_controls=10,
        pdr=pdr,
        pdr_by_hop={1: 1.0, 2: 0.9},
        latency_by_hop={1: 0.3, 2: 0.6},
        mean_latency=0.45,
        tx_per_control=4.4,
        duty_cycle=0.031,
        athx_samples=[(1, 1), (2, 2), (2, 1)],
    )


class TestAsciiTable:
    def test_renders_headers_and_rows(self):
        text = report.ascii_table(["a", "bb"], [[1, 2], [33, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "33" in text

    def test_column_widths_align(self):
        text = report.ascii_table(["x"], [["longvalue"], ["s"]])
        lines = text.splitlines()
        assert len(lines[1]) == len("longvalue")  # separator matches widest

    def test_empty_rows(self):
        text = report.ascii_table(["h"], [])
        assert "h" in text


class TestCsv:
    def test_csv_roundtrip(self):
        text = report.csv_table(["a", "b"], [[1, 2], [3, 4]])
        lines = text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2"
        assert lines[2] == "3,4"


class TestRowBuilders:
    def test_comparison_rows(self):
        results = {("tele", 26): fake_result(), ("rpl", 19): fake_result("rpl", 19, 0.9)}
        rows = report.comparison_rows(results)
        assert len(rows) == 2
        assert rows[0][0] in ("tele", "rpl")
        assert all(len(row) == len(report.COMPARISON_HEADERS) for row in rows)

    def test_pdr_by_hop_rows(self):
        rows = report.pdr_by_hop_rows({"tele": fake_result()})
        assert rows == [["tele", 1, "1.000"], ["tele", 2, "0.900"]]

    def test_latency_by_hop_rows(self):
        rows = report.latency_by_hop_rows({"tele": fake_result()})
        assert rows == [["tele", 1, "0.300"], ["tele", 2, "0.600"]]

    def test_athx_rows(self):
        rows = report.athx_rows({"tele": fake_result()})
        assert ["tele", 2, 2] in rows
        assert len(rows) == 3

    def test_code_length_rows_skip_unrouted(self):
        rows = report.code_length_rows({1: [5, 5], 65535: [1]})
        assert len(rows) == 1
        assert rows[0][0] == 1
        assert rows[0][2] == "5.00"


class TestCliParser:
    def test_all_subcommands_parse(self):
        parser = build_parser()
        for command in ("fig6a", "fig6b", "fig6c", "fig6d", "table2"):
            args = parser.parse_args([command, "--seed", "3"])
            assert args.seed == 3
            assert callable(args.func)
        for command in ("fig7", "fig8", "fig10"):
            args = parser.parse_args([command, "--channel", "19", "--controls", "5"])
            assert args.channel == 19
            assert args.controls == 5
        args = parser.parse_args(["compare", "--channels", "26"])
        assert args.channels == [26]
        args = parser.parse_args(["quickstart", "--destination", "4"])
        assert args.destination == 4

    def test_missing_command_errors(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_invalid_channel_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["fig7", "--channel", "11"])

    def test_csv_output(self, tmp_path, monkeypatch):
        # Drive the small table2 path end to end with a stubbed construction.
        from repro import cli

        class FakeNet:
            pass

        def fake_run(topology, seed):
            return FakeNet()

        monkeypatch.setattr(cli, "code_construction_run", fake_run)
        monkeypatch.setattr(
            cli, "code_length_by_hop", lambda net: {1: [5, 5, 6], 2: [8]}
        )
        csv_path = tmp_path / "out.csv"
        rc = cli.main(["table2", "--csv", str(csv_path)])
        assert rc == 0
        content = csv_path.read_text()
        assert content.splitlines()[0] == ",".join(report.CODE_LENGTH_HEADERS)
        assert "5.33" in content


class TestAllCommand:
    def test_all_parses(self):
        parser = build_parser()
        args = parser.parse_args(["all", "--out", "r", "--skip-comparison"])
        assert args.out == "r"
        assert args.skip_comparison

    def test_all_fast_path_writes_csvs(self, tmp_path, monkeypatch):
        from repro import cli

        class FakeNet:
            pass

        monkeypatch.setattr(cli, "code_construction_run", lambda topology, seed: FakeNet())
        monkeypatch.setattr(cli, "code_length_by_hop", lambda net: {1: [5], 2: [8]})
        monkeypatch.setattr(cli, "convergence_beacons", lambda net: [4.0, 9.0])
        monkeypatch.setattr(cli, "reverse_hop_counts", lambda net: [(1, 1), (2, 2)])
        import repro.experiments.codestats as codestats

        monkeypatch.setattr(codestats, "children_by_hop", lambda net: {0: [2], 1: [1]})
        rc = cli.main(["all", "--out", str(tmp_path / "res"), "--skip-comparison"])
        assert rc == 0
        files = {p.name for p in (tmp_path / "res").iterdir()}
        assert "table2_indoor.csv" in files
        assert "fig6a_tight_convergence.csv" in files
        assert len(files) == 12
