"""Radio profile registry: the PHY/MAC seam and its bit-identity contract.

Three layers of guarantees:

- **Registry semantics** — duplicate registration is an error, unknown
  lookups name the known profiles, ``None`` resolves to the default.
- **CC2420 identity** — the default profile reproduces the hard-wired
  constants bit for bit: the pinned 40-byte/11-byte airtimes the MAC's
  train timing is built on, the PRR curve (shared lru cache), and the
  TX-current interpolation the energy model uses.
- **Fingerprint stability** — ``NetworkConfig.to_dict()`` is pinned
  field-for-field: the default config must not grow a ``radio_profile``
  key (existing runner cache entries and golden fingerprints survive the
  refactor), while a non-default profile must appear (a LoRa run can
  never alias a cached CC2420 run).

Plus the extension proof: a third-party profile registered through the
public API runs end-to-end through ``Network``, the runner executors, and
the CLI grid without the core knowing about it.
"""

import pytest

from repro.experiments.harness import Network, NetworkConfig
from repro.radio.cc2420 import CC2420, packet_airtime
from repro.radio.energy import tx_current_ma
from repro.radio.profiles import (
    DEFAULT_RADIO_PROFILE,
    CC2420Profile,
    RadioProfileRegistry,
    get_radio_profile,
    radio_profile_names,
    register_radio_profile,
    unregister_radio_profile,
)

#: The exact key set of a default config's canonical dict, pinned from
#: before the radio-profile registry existed. Any key appearing here —
#: including ``radio_profile`` — changes every cached fingerprint, which
#: is exactly what the omit-when-default rule exists to prevent.
PRE_REGISTRY_CONFIG_KEYS = [
    "allocation_params",
    "always_on",
    "collection_ipi",
    "drip_params",
    "fading_sigma_db",
    "forwarding_params",
    "mac_params",
    "noise",
    "opportunistic",
    "orpl_params",
    "protocol",
    "re_tele",
    "rpl_params",
    "seed",
    "topology",
    "wifi_params",
    "zigbee_channel",
]


class TestRegistry:
    def test_default_profile_is_cc2420(self):
        assert DEFAULT_RADIO_PROFILE == "cc2420"
        assert get_radio_profile(None).name == "cc2420"
        assert get_radio_profile("cc2420") is get_radio_profile(None)

    def test_names_include_both_built_ins(self):
        names = radio_profile_names()
        assert "cc2420" in names and "lora" in names
        assert names == sorted(names)

    def test_duplicate_registration_is_an_error(self):
        with pytest.raises(ValueError, match="already registered"):
            register_radio_profile(CC2420Profile())

    def test_replace_allows_reregistration(self):
        registry = RadioProfileRegistry()
        registry.register(CC2420Profile())
        registry.register(CC2420Profile(), replace=True)
        assert registry.names() == ["cc2420"]

    def test_unknown_profile_error_names_the_known_ones(self):
        with pytest.raises(ValueError, match="cc2420"):
            get_radio_profile("nonexistent-radio")

    def test_unknown_profile_fails_at_config_time(self):
        with pytest.raises(ValueError, match="nonexistent-radio"):
            NetworkConfig(radio_profile="nonexistent-radio")


class TestCC2420Identity:
    """The default profile is the old hard-wired implementation, bit for bit."""

    def test_airtime_pins(self):
        profile = get_radio_profile("cc2420")
        # 40-byte frame: (40 + 6) * 8 bits at 250 kbps = 1472 µs. The MAC's
        # train timing (ack gaps, anycast slots) is budgeted around this.
        assert profile.packet_airtime(40) == 1472
        # 11-byte ack — the LPL reack window and turnaround budget.
        assert profile.packet_airtime(11) == 544

    def test_airtime_matches_module_function_everywhere(self):
        profile = get_radio_profile("cc2420")
        for length in (1, 11, 28, 40, 100, 127):
            assert profile.packet_airtime(length) == packet_airtime(length)

    def test_prr_delegates_to_cc2420_curve(self):
        profile = get_radio_profile("cc2420")
        for snr in (-5.0, 0.0, 2.5, 5.0, 10.0):
            assert profile.prr(snr, 40) == CC2420.prr(snr, 40)

    def test_thresholds_match_cc2420_constants(self):
        profile = get_radio_profile("cc2420")
        assert profile.sensitivity_dbm == CC2420.SENSITIVITY_DBM
        assert profile.cca_threshold_dbm == CC2420.CCA_THRESHOLD_DBM
        assert profile.noise_floor_dbm == CC2420.NOISE_FLOOR_DBM
        assert profile.turnaround_ticks == CC2420.TURNAROUND_US

    def test_tx_current_interpolation_matches_energy_module(self):
        profile = get_radio_profile("cc2420")
        for dbm in (-30.0, -25.0, -8.2, -3.0, -0.5, 0.0, 5.0):
            assert profile.tx_current_ma(dbm) == tx_current_ma(dbm)


class TestFingerprintStability:
    def test_default_config_keys_pinned_field_for_field(self):
        assert sorted(NetworkConfig().to_dict()) == PRE_REGISTRY_CONFIG_KEYS

    def test_explicit_none_profile_fingerprints_identically(self):
        assert (
            NetworkConfig(radio_profile=None).to_dict()
            == NetworkConfig().to_dict()
        )

    def test_non_default_profile_is_part_of_the_fingerprint(self):
        d = NetworkConfig(radio_profile="lora", always_on=True).to_dict()
        assert d["radio_profile"] == "lora"
        base = NetworkConfig(always_on=True).to_dict()
        assert set(d) - set(base) == {"radio_profile"}


# --------------------------------------------------------- third-party profile

class ToyProfile(CC2420Profile):
    """A plugin profile: CC2420 PHY maths under a different name, with its
    own beacon floor — registered through the public API only."""

    name = "toy-radio"
    beacon_i_min = 1_024_000  # 1024 ms: provably not the CTP default


@pytest.fixture
def toy_profile():
    profile = ToyProfile()
    register_radio_profile(profile)
    try:
        yield profile
    finally:
        unregister_radio_profile("toy-radio")


class TestThirdPartyProfile:
    def test_runs_end_to_end_through_network(self, toy_profile):
        from repro.topology import random_uniform

        config = NetworkConfig(
            topology=random_uniform(9, 50.0, 50.0, seed=3),
            protocol="tele",
            seed=3,
            radio_profile="toy-radio",
            always_on=True,
            collection_ipi=None,
        )
        net = Network(config)
        assert net.radio_profile is toy_profile
        # The profile's beacon floor reached every node's Trickle timer.
        stack = next(iter(net.stacks.values()))
        assert stack.routing.trickle.i_min == 1_024_000
        net.converge(max_seconds=60.0, target=0.9)
        delivered = []
        sink = net.config.topology.sink
        target = [n for n in net.stacks if n != sink][0]
        net.send_control(target, payload={"probe": 1})
        net.run(20.0)
        assert net.control_metrics.records, "control send never recorded"

    def test_runs_through_runner_executor(self, toy_profile):
        from repro.runner import execute_spec, lora_spec

        spec = lora_spec(
            "tele",
            seed=1,
            radio_profile="toy-radio",
            n_controls=2,
            control_interval_s=10.0,
            converge_seconds=60.0,
            drain_seconds=10.0,
        )
        assert spec.params["config"]["radio_profile"] == "toy-radio"
        result = execute_spec(spec)
        assert result["radio_profile"] == "toy-radio"
        assert result["n_controls"] == 2

    def test_runs_through_the_cli_grid(self, toy_profile, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "run",
                "lora",
                "--radio-profile",
                "toy-radio",
                "--seeds",
                "1",
                "--controls",
                "2",
                "--interval",
                "10",
                "--converge",
                "60",
                "--drain",
                "10",
                "--no-cache",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--quiet",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "toy-radio" in out
