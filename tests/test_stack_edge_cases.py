"""Edge-case coverage: CSMA, queueing, THL caps, capture, route pull."""

import pytest

from repro.mac import LPLMac, MacParams
from repro.net import NodeStack
from repro.net.messages import COLLECT_APP_DATA, NO_ROUTE
from repro.radio.channel import Channel
from repro.radio.frame import BROADCAST, Frame, FrameType
from repro.radio.noise import ConstantNoise
from repro.radio.propagation import LogDistancePathLoss
from repro.radio.radio import Radio
from repro.sim import MILLISECOND, SECOND, Simulator


def make_channel(positions, seed=1, noise=None):
    sim = Simulator(seed=seed)
    gains = LogDistancePathLoss(pl_d0=40.0, seed=seed, shadowing_sigma=0.0).gain_matrix(
        positions
    )
    channel = Channel(sim, gains, noise_model=noise or ConstantNoise())
    return sim, channel


class TestCsma:
    def test_busy_channel_fails_after_backoffs(self):
        # A loud constant noise floor above the CCA threshold jams the channel.
        sim, channel = make_channel(
            [(0.0, 0.0), (8.0, 0.0)], noise=ConstantNoise(-60.0)
        )
        a = LPLMac(sim, Radio(sim, channel, 0), always_on=True)
        a.start()
        results = []
        sim.schedule(
            0,
            lambda: a.send(
                Frame(src=0, dst=1, type=FrameType.DATA, length=40), results.append
            ),
        )
        sim.run(until=5 * SECOND)
        assert results and not results[0].ok
        assert results[0].reason == "busy"

    def test_queue_is_fifo(self):
        sim, channel = make_channel([(0.0, 0.0), (8.0, 0.0)])
        a = LPLMac(sim, Radio(sim, channel, 0), always_on=True)
        b = LPLMac(sim, Radio(sim, channel, 1), always_on=True)
        order = []
        b.receive_handler = lambda frame, rssi: order.append(frame.payload)
        a.start()
        b.start()
        for i in range(4):
            a.send(Frame(src=0, dst=1, type=FrameType.DATA, payload=i, length=30))
        sim.run(until=10 * SECOND)
        assert order == [0, 1, 2, 3]

    def test_dedup_cache_eviction_allows_old_frames_again(self):
        params = MacParams(dedup_cache=2)
        sim, channel = make_channel([(0.0, 0.0), (8.0, 0.0)])
        a = LPLMac(sim, Radio(sim, channel, 0), params=params, always_on=True)
        b = LPLMac(sim, Radio(sim, channel, 1), params=params, always_on=True)
        received = []
        b.receive_handler = lambda frame, rssi: received.append(frame.frame_id)
        a.start()
        b.start()
        sticky = Frame(src=0, dst=BROADCAST, type=FrameType.ROUTING_BEACON, length=30)
        a.send(sticky)
        sim.run(until=2 * SECOND)
        for _ in range(3):  # push the sticky frame out of the tiny cache
            a.send(Frame(src=0, dst=BROADCAST, type=FrameType.ROUTING_BEACON, length=30))
            sim.run(until=sim.now + 2 * SECOND)
        a.send(sticky.clone())  # same logical beacon, new frame id
        sim.run(until=sim.now + 2 * SECOND)
        assert len(received) == 5


class TestCtpEdges:
    def _line(self, n=3, spacing=12.0, seed=1):
        sim, channel = make_channel([(i * spacing, 0.0) for i in range(n)], seed=seed)
        stacks = [
            NodeStack(sim, channel, i, is_root=(i == 0), always_on=True)
            for i in range(n)
        ]
        for s in stacks:
            s.start()
        return sim, stacks

    def test_thl_cap_drops_looping_packets(self):
        sim, stacks = self._line(n=2)
        sim.run(until=30 * SECOND)
        from repro.net.messages import DataPacket

        looped = DataPacket(
            origin=1,
            origin_seqno=1,
            collect_id=COLLECT_APP_DATA,
            thl=stacks[1].forwarding.MAX_THL,
        )
        frame = Frame(src=1, dst=1, type=FrameType.DATA, payload=looped, length=50)
        before = stacks[1].forwarding.packets_dropped
        stacks[1].forwarding.data_received(frame)
        assert stacks[1].forwarding.packets_dropped == before + 1

    def test_routeless_node_advertises_no_route(self):
        sim, channel = make_channel([(0.0, 0.0), (12.0, 0.0)])
        lonely = NodeStack(sim, channel, 1, is_root=False, always_on=True)
        lonely.start()  # no root anywhere
        sim.run(until=10 * SECOND)
        assert lonely.routing.path_etx >= NO_ROUTE

    def test_parent_unreachable_triggers_reroute_evaluation(self):
        sim, stacks = self._line(n=3)
        sim.run(until=60 * SECOND)
        assert stacks[2].routing.parent == 1
        stacks[2].routing.parent_unreachable()
        assert stacks[2].routing.parent != 1 or stacks[2].routing.parent is None

    def test_total_transmissions_counter(self):
        sim, stacks = self._line(n=2)
        sim.run(until=30 * SECOND)
        assert stacks[0].total_transmissions() >= 1
        assert FrameType.ROUTING_BEACON in stacks[0].tx_by_type


class TestCapture:
    def test_much_stronger_signal_survives_weak_interference(self):
        # Receiver adjacent to the wanted transmitter, interferer far away.
        sim, channel = make_channel([(0.0, 0.0), (3.0, 0.0), (30.0, 0.0)])
        wanted = Radio(sim, channel, 0)
        receiver = Radio(sim, channel, 1)
        interferer = Radio(sim, channel, 2)
        got = []
        receiver.on_receive = lambda frame, rssi: got.append(frame.src)
        for radio in (wanted, receiver, interferer):
            radio.turn_on()
        wanted.transmit(Frame(src=0, dst=1, type=FrameType.DATA, length=60))
        interferer.transmit(Frame(src=2, dst=1, type=FrameType.WIFI, length=60))
        sim.run(until=1 * SECOND)
        assert got == [0]  # ~31 dB SIR: clean capture

    def test_ongoing_reception_locks_out_later_frame(self):
        sim, channel = make_channel([(0.0, 0.0), (6.0, 0.0), (12.0, 0.0)])
        first = Radio(sim, channel, 0)
        receiver = Radio(sim, channel, 1)
        second = Radio(sim, channel, 2)
        got = []
        receiver.on_receive = lambda frame, rssi: got.append(frame.src)
        for radio in (first, receiver, second):
            radio.turn_on()
        first.transmit(Frame(src=0, dst=1, type=FrameType.DATA, length=120))
        # Second frame starts mid-reception; the receiver stays locked on the
        # first (which, at 6 m vs 6 m, now fails on SINR) and never decodes
        # the second.
        sim.schedule(1 * MILLISECOND, lambda: second.transmit(
            Frame(src=2, dst=1, type=FrameType.DATA, length=30)
        ))
        sim.run(until=1 * SECOND)
        assert 2 not in got
