"""Integration tests for TeleAdjusting's forwarding strategy (§III-C)."""

import pytest

from repro.core import Controller, TeleAdjusting
from repro.core.forwarding import ForwardingParams
from repro.core.messages import ControlPacket
from repro.core.pathcode import PathCode
from repro.mac.lpl import AnycastDecision
from repro.net import NodeStack
from repro.radio.channel import Channel
from repro.radio.frame import BROADCAST, Frame, FrameType
from repro.radio.noise import ConstantNoise
from repro.radio.propagation import LogDistancePathLoss
from repro.sim import SECOND, Simulator


def build(positions, seed=1, re_tele=False, opportunistic=True, always_on=True):
    sim = Simulator(seed=seed)
    gains = LogDistancePathLoss(pl_d0=40.0, seed=seed, shadowing_sigma=0.0).gain_matrix(
        positions
    )
    channel = Channel(sim, gains, noise_model=ConstantNoise())
    controller = Controller(channel=channel)
    params = ForwardingParams(re_tele=re_tele, opportunistic=opportunistic)
    protocols = {}
    stacks = {}
    for i in range(len(positions)):
        stack = NodeStack(sim, channel, i, is_root=(i == 0), always_on=always_on)
        protocols[i] = TeleAdjusting(
            sim, stack, controller=controller, forwarding_params=params
        )
        stacks[i] = stack
    for i in range(len(positions)):
        stacks[i].start()
        protocols[i].start()
    return sim, channel, stacks, protocols, controller


def converge(sim, protocols, controller, seconds=120):
    sim.run(until=sim.now + seconds * SECOND)
    controller.snapshot(protocols)


def line(n, spacing=12.0):
    return [(i * spacing, 0.0) for i in range(n)]


class TestEndToEndDelivery:
    def test_multihop_control_delivery(self):
        sim, _, _, protocols, controller = build(line(4))
        converge(sim, protocols, controller)
        delivered = []
        protocols[3].forwarding.on_delivered = (
            lambda control, via_unicast: delivered.append(control)
        )
        pending = protocols[0].remote_control(3, payload={"x": 1})
        sim.run(until=sim.now + 30 * SECOND)
        assert delivered, "control never reached node 3"
        assert delivered[0].payload == {"x": 1}
        assert pending.delivered
        assert pending.acked_at is not None

    def test_on_apply_invoked_at_destination_only(self):
        sim, _, _, protocols, controller = build(line(4))
        converge(sim, protocols, controller)
        applied = {}
        for node, protocol in protocols.items():
            protocol.forwarding.on_apply = (
                lambda payload, me=node: applied.setdefault(me, payload)
            )
        protocols[0].remote_control(2, payload="set")
        sim.run(until=sim.now + 30 * SECOND)
        assert applied == {2: "set"}

    def test_duplicate_serial_applied_once(self):
        sim, _, _, protocols, controller = build(line(3))
        converge(sim, protocols, controller)
        count = [0]
        protocols[2].forwarding.on_apply = lambda payload: count.__setitem__(0, count[0] + 1)
        protocols[0].remote_control(2, payload="x")
        sim.run(until=sim.now + 40 * SECOND)
        assert count[0] == 1

    def test_unknown_destination_raises(self):
        sim, _, _, protocols, controller = build(line(2))
        converge(sim, protocols, controller, seconds=30)
        with pytest.raises(LookupError):
            protocols[0].remote_control(999)

    def test_remote_control_from_non_sink_rejected(self):
        sim, _, _, protocols, controller = build(line(2))
        converge(sim, protocols, controller, seconds=30)
        with pytest.raises(RuntimeError):
            protocols[1].remote_control(0)

    def test_explicit_destination_code(self):
        sim, _, _, protocols, controller = build(line(3))
        converge(sim, protocols, controller)
        code = protocols[2].allocation.code
        delivered = []
        protocols[2].forwarding.on_delivered = (
            lambda control, via: delivered.append(control)
        )
        protocols[0].remote_control(2, destination_code=code)
        sim.run(until=sim.now + 30 * SECOND)
        assert delivered


class TestAnycastConditions:
    """The three acceptance conditions of §III-C against crafted frames."""

    def _context(self):
        sim, _, stacks, protocols, controller = build(line(4))
        converge(sim, protocols, controller)
        return sim, protocols

    def _frame(self, control):
        return Frame(
            src=0, dst=BROADCAST, type=FrameType.CONTROL, payload=control, length=36
        )

    def test_destination_accepts_slot_zero(self):
        sim, protocols = self._context()
        target = protocols[3].allocation.code
        control = ControlPacket(
            destination=3, destination_code=target, expected_relay=1, expected_length=3
        )
        verdict = protocols[3].forwarding.anycast_decision(self._frame(control), -70)
        assert verdict.accept and verdict.slot == 0

    def test_condition1_expected_relay_accepts(self):
        sim, protocols = self._context()
        target = protocols[3].allocation.code
        my_len = protocols[1].allocation.code.length
        control = ControlPacket(
            destination=3,
            destination_code=target,
            expected_relay=1,
            expected_length=my_len,
        )
        verdict = protocols[1].forwarding.anycast_decision(self._frame(control), -70)
        assert verdict.accept

    def test_condition2_on_path_closer_node_accepts(self):
        sim, protocols = self._context()
        target = protocols[3].allocation.code
        # Expected relay is node 1 (short prefix); node 2 is strictly closer.
        len1 = protocols[1].allocation.code.length
        control = ControlPacket(
            destination=3,
            destination_code=target,
            expected_relay=1,
            expected_length=len1,
        )
        verdict = protocols[2].forwarding.anycast_decision(self._frame(control), -70)
        assert verdict.accept
        # Better progress ⇒ earlier slot than the expected relay's slot 5.
        assert verdict.slot < 5

    def test_off_path_node_rejects(self):
        sim, protocols = self._context()
        # Craft a target under a nonexistent subtree: nobody is on its path.
        fake = PathCode.from_bits("1111111")
        control = ControlPacket(
            destination=99, destination_code=fake, expected_relay=None, expected_length=3
        )
        verdict = protocols[2].forwarding.anycast_decision(self._frame(control), -70)
        assert not verdict.accept

    def test_non_control_frames_rejected(self):
        sim, protocols = self._context()
        frame = Frame(src=0, dst=BROADCAST, type=FrameType.DATA, payload=None)
        verdict = protocols[1].forwarding.anycast_decision(frame, -70)
        assert not verdict.accept

    def test_strict_mode_only_expected_relay(self):
        sim, _, stacks, protocols, controller = build(line(4), opportunistic=False)
        converge(sim, protocols, controller)
        target = protocols[3].allocation.code
        len1 = protocols[1].allocation.code.length
        control = ControlPacket(
            destination=3,
            destination_code=target,
            expected_relay=1,
            expected_length=len1,
        )
        frame = Frame(
            src=0, dst=BROADCAST, type=FrameType.CONTROL, payload=control, length=36
        )
        assert protocols[1].forwarding.anycast_decision(frame, -70).accept
        assert not protocols[2].forwarding.anycast_decision(frame, -70).accept


class TestExpectedRelaySelection:
    def test_sink_picks_shortest_on_path_candidate(self):
        sim, _, _, protocols, controller = build(line(4))
        converge(sim, protocols, controller)
        target = protocols[3].allocation.code
        forwarding = protocols[0].forwarding
        expected, length = forwarding._pick_expected(target, base_length=1)
        assert expected == 1  # the direct child on the path
        assert length == protocols[1].allocation.code.length

    def test_fallback_without_candidates(self):
        sim, _, _, protocols, controller = build(line(2))
        converge(sim, protocols, controller, seconds=30)
        fake = PathCode.from_bits("101010")
        expected, length = protocols[0].forwarding._pick_expected(fake, base_length=1)
        assert expected is None
        assert length == 2  # base + 1


class TestEndToEndAck:
    def test_ack_reaches_sink_as_data(self):
        sim, _, _, protocols, controller = build(line(3))
        converge(sim, protocols, controller)
        pending = protocols[0].remote_control(2, payload="x")
        sim.run(until=sim.now + 30 * SECOND)
        assert pending.delivered
        assert pending.acked_at is not None
        assert pending.acked_at >= pending.sent_at
