"""Scale golden enforcement: 2k/10k cells must stay bit-identical.

These cells take minutes each (they are real 2 000- and 10 000-node
converge+control runs), so they are opt-in:

- ``REPRO_SCALE=1``    — check the 2k cell (CI's ``scale-smoke`` job);
- ``REPRO_SCALE=full`` — also check the 10k cell and the 2k dense-channel
  A/B (the brute-force O(N²) build must reproduce the same digest).

Regeneration policy: see ``scale_regenerate.py`` — never regenerate to
absorb a perf-PR mismatch.
"""

import os

import pytest

from tests.golden import scale_regenerate

SCALE_ENV = os.environ.get("REPRO_SCALE", "")

pytestmark = pytest.mark.skipif(
    not SCALE_ENV,
    reason="city-scale digest cells take minutes; set REPRO_SCALE=1 (2k) "
    "or REPRO_SCALE=full (2k + 10k + dense A/B)",
)


def _pinned(name):
    pinned = scale_regenerate.load_pinned()
    assert name in pinned, (
        f"{name} missing from scale_digests.json; regenerate with "
        "PYTHONPATH=src python tests/golden/scale_regenerate.py"
    )
    return pinned[name]


def test_every_cell_is_pinned():
    assert sorted(scale_regenerate.load_pinned()) == sorted(
        scale_regenerate.SCALE_GOLDEN
    )


def test_forest_2k_digest():
    result = scale_regenerate.compute_cell("forest-2k")
    expected = _pinned("forest-2k")
    assert result["state_digest"] == expected["digest"], (
        "2k scale cell diverged from the pinned digest — the spatial "
        "channel, a generator, or the kernel changed behaviour. See "
        "scale_regenerate.py before even thinking about regenerating."
    )
    assert result["events_executed"] == expected["events"]


@pytest.mark.skipif(SCALE_ENV != "full", reason="10k cell only at REPRO_SCALE=full")
def test_forest_10k_digest():
    result = scale_regenerate.compute_cell("forest-10k")
    expected = _pinned("forest-10k")
    assert result["state_digest"] == expected["digest"]
    assert result["events_executed"] == expected["events"]


@pytest.mark.skipif(
    SCALE_ENV != "full",
    reason="dense 2k A/B builds the O(N²) gain matrix; REPRO_SCALE=full only",
)
def test_forest_2k_dense_matches_spatial():
    """The brute-force channel reproduces the spatial digest at 2k nodes."""
    result = scale_regenerate.compute_cell("forest-2k", spatial_index=None)
    assert result["state_digest"] == _pinned("forest-2k")["digest"], (
        "dense and spatial channels diverged at 2k nodes — the spatial "
        "index is not behaviour-invisible"
    )
