"""Golden kernel digests: pinned bit-identity tokens for representative runs.

Every config below runs a small but real simulation and reduces the outcome
to a single SHA-256 *state digest* over the trace records, the kernel's
clock/event counters, every node's radio/MAC counters, and the per-control
delivery timeline. Two runs of the same config produce the same digest if
and only if the kernel behaved identically, event for event.

The digests are pinned in ``digests.json`` and enforced by
``tests/golden/test_golden_digests.py``. Performance work on the kernel
(event queue, channel, MAC, noise, tracing) must keep every digest
unchanged — that is the definition of a behaviour-preserving optimisation.

When is regenerating legitimate?
--------------------------------

Run ``PYTHONPATH=src python tests/golden/regenerate.py`` to rewrite
``digests.json``, but only when a PR *intends* to change simulated
behaviour: a protocol fix, a model change (noise, propagation, PRR curve),
new traffic in a pinned scenario, or a deliberate change to RNG stream
layout. In that case also bump
:data:`repro.sim.KERNEL_BEHAVIOR_VERSION` so stale result-cache entries
are invalidated, and say so in the PR description.

If you got here from a failing test after a pure performance/refactor PR,
do **not** regenerate: the failure means the optimisation changed
behaviour (different event order, extra/missing RNG draw, float arithmetic
reassociation) and must be fixed instead.

Usage::

    PYTHONPATH=src python tests/golden/regenerate.py          # rewrite
    PYTHONPATH=src python tests/golden/regenerate.py --check  # verify only
"""

from __future__ import annotations

import hashlib
import json
import sys
import time
from pathlib import Path
from typing import Any, Callable, Dict

DIGEST_FILE = Path(__file__).with_name("digests.json")


# ------------------------------------------------------------- state digest

def state_digest(net: Any) -> str:
    """Reduce a finished :class:`~repro.experiments.harness.Network` run to
    one hex token covering traces, kernel counters, node state, and controls."""
    sim = net.sim
    state = {
        "trace": sim.tracer.digest(),
        "now": sim.now,
        "events": sim.events_executed,
        "nodes": [
            [
                node_id,
                stack.radio.tx_count,
                stack.radio.on_time(),
                stack.mac.trains_sent,
                stack.mac.copies_sent,
                stack.mac.acks_sent,
                stack.mac.frames_delivered,
            ]
            for node_id, stack in sorted(net.stacks.items())
        ],
        "controls": [
            [r.index, r.destination, r.sent_at, r.delivered_at, r.acked_at, r.athx]
            for r in net.control_metrics.records
        ],
    }
    payload = json.dumps(state, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _scenario_digest(
    config: Any,
    converge_s: float = 40.0,
    n_controls: int = 3,
    interval_s: float = 5.0,
    drain_s: float = 10.0,
) -> str:
    """Converge, run a short control schedule, and digest the end state."""
    from repro.experiments.harness import Network
    from repro.sim.units import SECOND
    from repro.workloads.control import ControlSchedule

    net = Network(config)
    net.sim.tracer.enable()  # record every category: all protocol behaviour
    net.converge(max_seconds=converge_s, target=0.97)
    if net.config.protocol in ("rpl", "orpl"):
        net.run(10.0)
    schedule = ControlSchedule(
        net.sim,
        send=lambda destination, index: net.send_control(
            destination, payload={"index": index}
        ),
        destinations=net.non_sink_nodes(),
        interval=round(interval_s * SECOND),
        count=n_controls,
        rng_name="golden-controls",
    )
    schedule.start(initial_delay=1 * SECOND)
    net.run(n_controls * interval_s + drain_s)
    return state_digest(net)


# ---------------------------------------------------------- pinned configs

def _grid_tele(spatial_index: object = None, radio_profile: object = None) -> str:
    """Plain small grid, clean channel, TeleAdjusting (the default stack)."""
    from repro.experiments.harness import NetworkConfig
    from repro.topology import random_uniform

    return _scenario_digest(
        NetworkConfig(
            topology=random_uniform(25, 80.0, 80.0, seed=7),
            protocol="tele",
            seed=7,
            spatial_index=spatial_index,
            radio_profile=radio_profile,
        )
    )


def _testbed_drip(spatial_index: object = None, radio_profile: object = None) -> str:
    """Indoor testbed running the Drip dissemination baseline."""
    from repro.experiments.harness import NetworkConfig

    return _scenario_digest(
        NetworkConfig(
            topology="indoor-testbed", protocol="drip", seed=2,
            spatial_index=spatial_index,
            radio_profile=radio_profile,
        ),
        converge_s=30.0,
    )


def _testbed_rpl(spatial_index: object = None, radio_profile: object = None) -> str:
    """Indoor testbed running the storing-mode RPL baseline."""
    from repro.experiments.harness import NetworkConfig

    return _scenario_digest(
        NetworkConfig(
            topology="indoor-testbed", protocol="rpl", seed=2,
            spatial_index=spatial_index,
            radio_profile=radio_profile,
        ),
        converge_s=30.0,
    )


def _testbed_orpl(spatial_index: object = None, radio_profile: object = None) -> str:
    """Indoor testbed running the ORPL (bloom-filter) baseline."""
    from repro.experiments.harness import NetworkConfig

    return _scenario_digest(
        NetworkConfig(
            topology="indoor-testbed", protocol="orpl", seed=2,
            spatial_index=spatial_index,
            radio_profile=radio_profile,
        ),
        converge_s=30.0,
    )


def _interference_ch19(spatial_index: object = None, radio_profile: object = None) -> str:
    """WiFi-interfered channel 19: exercises interferers + SINR accounting."""
    from repro.experiments.harness import NetworkConfig

    return _scenario_digest(
        NetworkConfig(
            topology="indoor-testbed", protocol="tele", seed=1, zigbee_channel=19,
            spatial_index=spatial_index,
            radio_profile=radio_profile,
        ),
        converge_s=30.0,
    )


def _always_on_tele(spatial_index: object = None, radio_profile: object = None) -> str:
    """Always-on radios (no LPL duty cycle): the broadcast-cap MAC path."""
    from repro.experiments.harness import NetworkConfig
    from repro.topology import random_uniform

    return _scenario_digest(
        NetworkConfig(
            topology=random_uniform(20, 70.0, 70.0, seed=5),
            protocol="tele",
            seed=5,
            always_on=True,
            spatial_index=spatial_index,
            radio_profile=radio_profile,
        ),
        converge_s=30.0,
    )


def _chaos_crash_churn(spatial_index: object = None, radio_profile: object = None) -> str:
    """Chaos preset: crash/reboot churn with recovery countermeasures."""
    from repro.experiments.chaos import run_chaos

    result = run_chaos(
        "tele",
        scenario="crash-churn",
        intensity=1.0,
        seed=3,
        n_controls=2,
        control_interval_s=4.0,
        converge_seconds=30.0,
        drain_seconds=10.0,
        spatial_index=spatial_index,
        radio_profile=radio_profile,
    )
    payload = json.dumps(result, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


#: name -> digest producer. Every entry is pinned in digests.json; each
#: producer also accepts ``spatial_index`` (so the differential suite can
#: hold the spatially-indexed channel to the same pinned digests) and
#: ``radio_profile`` (so the profile-differential suite can hold the
#: explicitly-named default profile to the same pinned digests).
GOLDEN: Dict[str, Callable[..., str]] = {
    "grid-tele-clean": _grid_tele,
    "testbed-drip": _testbed_drip,
    "testbed-rpl": _testbed_rpl,
    "testbed-orpl": _testbed_orpl,
    "interference-ch19-tele": _interference_ch19,
    "always-on-tele": _always_on_tele,
    "chaos-crash-churn": _chaos_crash_churn,
}


def compute_digest(
    name: str, spatial_index: object = None, radio_profile: object = None
) -> str:
    """Run one pinned config and return its state digest."""
    return GOLDEN[name](spatial_index=spatial_index, radio_profile=radio_profile)


def load_pinned() -> Dict[str, Any]:
    """The pinned digests as stored in ``digests.json``."""
    return json.loads(DIGEST_FILE.read_text())


def main(argv: list) -> int:
    check = "--check" in argv
    pinned = load_pinned() if (check and DIGEST_FILE.exists()) else {}
    out: Dict[str, Any] = {}
    failures = []
    for name in sorted(GOLDEN):
        started = time.perf_counter()
        digest = compute_digest(name)
        wall = time.perf_counter() - started
        out[name] = {"digest": digest}
        status = ""
        if check:
            expected = pinned.get(name, {}).get("digest")
            status = "ok" if digest == expected else f"MISMATCH (pinned {expected})"
            if digest != expected:
                failures.append(name)
        print(f"{name:28s} {digest[:16]}…  {wall:5.1f}s  {status}")
    if check:
        print("check " + ("passed" if not failures else f"FAILED: {failures}"))
        return 1 if failures else 0
    DIGEST_FILE.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    print(f"wrote {DIGEST_FILE}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
