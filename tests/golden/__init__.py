"""Golden-digest regression corpus for the simulation kernel.

See :mod:`tests.golden.regenerate` for the pinned configurations and the
policy on when regenerating the digests is legitimate.
"""
