"""City-scale golden digests: pinned bit-identity tokens at 2k and 10k nodes.

The paper-scale corpus (``digests.json``) proves the spatial index is
behaviour-invisible where the dense channel can still be built. This corpus
pins behaviour at the scales the index exists for — 2 000 and 10 000 node
``forest`` deployments running the standard converge+control scale cell
(:func:`repro.experiments.scale.scale_point`) — where the digest is the
tracer-free :func:`repro.experiments.scale.scale_state_digest` (kernel
clock/event counters, every node's radio/MAC counters, the control
timeline; the tracer stays off because it accumulates records in memory).

Regeneration policy — same as ``regenerate.py``
-----------------------------------------------

Regenerate **only** when a PR intends to change simulated behaviour
(protocol fix, model change, RNG layout change), bump
:data:`repro.sim.KERNEL_BEHAVIOR_VERSION`, and say so in the PR. A mismatch
after a performance/refactor PR is a bug in that PR: the spatial channel,
the generators, or the scale cell changed event order, RNG consumption, or
float arithmetic. Fix the change; do not regenerate.

These cells take minutes (that is the point: a 10k-node converge+control
workload on one machine), so enforcement is opt-in:
``REPRO_SCALE=1 pytest tests/golden/test_scale_digests.py`` checks the 2k
cell (the CI ``scale-smoke`` job's gate); ``REPRO_SCALE=full`` adds 10k.

Usage::

    PYTHONPATH=src python tests/golden/scale_regenerate.py          # rewrite
    PYTHONPATH=src python tests/golden/scale_regenerate.py --check  # verify
    PYTHONPATH=src python tests/golden/scale_regenerate.py --quick  # 2k only
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Any, Dict

DIGEST_FILE = Path(__file__).with_name("scale_digests.json")

#: name -> scale_point arguments. Schedules are the canonical SCALE_DEFAULTS
#: (embedded explicitly so editing the defaults cannot silently re-pin).
SCALE_GOLDEN: Dict[str, Dict[str, Any]] = {
    "forest-2k": {
        "topo": "forest",
        "size": 2000,
        "seed": 1,
        "n_controls": 5,
        "control_interval_s": 10.0,
        "converge_seconds": 240.0,
        "drain_seconds": 30.0,
    },
    "forest-10k": {
        "topo": "forest",
        "size": 10000,
        "seed": 1,
        "n_controls": 5,
        "control_interval_s": 10.0,
        "converge_seconds": 240.0,
        "drain_seconds": 30.0,
    },
}

#: The subset cheap enough for CI's scale-smoke job and ``--quick``.
QUICK = ("forest-2k",)


def compute_cell(name: str, spatial_index: object = True) -> Dict[str, Any]:
    """Run one pinned scale cell and return its full result dict."""
    from repro.experiments.scale import scale_point

    return scale_point(spatial_index=spatial_index, **SCALE_GOLDEN[name])


def compute_digest(name: str, spatial_index: object = True) -> str:
    """Run one pinned scale cell and return its state digest."""
    return compute_cell(name, spatial_index=spatial_index)["state_digest"]


def load_pinned() -> Dict[str, Any]:
    """The pinned digests as stored in ``scale_digests.json``."""
    return json.loads(DIGEST_FILE.read_text())


def main(argv: list) -> int:
    check = "--check" in argv
    names = QUICK if "--quick" in argv else sorted(SCALE_GOLDEN)
    pinned = load_pinned() if DIGEST_FILE.exists() else {}
    out: Dict[str, Any] = dict(pinned) if "--quick" in argv else {}
    failures = []
    for name in names:
        started = time.perf_counter()
        result = compute_cell(name)
        wall = time.perf_counter() - started
        digest = result["state_digest"]
        out[name] = {
            "digest": digest,
            "events": result["events_executed"],
            "nodes": result["size"],
        }
        status = ""
        if check:
            expected = pinned.get(name, {}).get("digest")
            status = "ok" if digest == expected else f"MISMATCH (pinned {expected})"
            if digest != expected:
                failures.append(name)
        print(
            f"{name:14s} {digest[:16]}…  {wall:6.1f}s  "
            f"{result['events_executed']:>9d} ev  {status}"
        )
    if check:
        print("check " + ("passed" if not failures else f"FAILED: {failures}"))
        return 1 if failures else 0
    DIGEST_FILE.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    print(f"wrote {DIGEST_FILE}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
