"""Golden digest enforcement: the kernel must behave bit-identically.

Each pinned config in :mod:`tests.golden.regenerate` is re-run and its
state digest compared against ``digests.json``. A mismatch means the
kernel's observable behaviour changed — event ordering, RNG consumption,
or float arithmetic — which a performance or refactoring PR must never do.
"""

import pytest

from tests.golden import regenerate

POLICY = (
    "Golden digest mismatch for {name!r}.\n"
    "  pinned:   {pinned}\n"
    "  computed: {computed}\n"
    "The kernel's simulated behaviour changed. If this PR is a pure\n"
    "performance/refactor change, this is a BUG in the change (reordered\n"
    "events, extra or missing RNG draw, reassociated float arithmetic) —\n"
    "fix the change, do not regenerate.\n"
    "Only if the PR *intends* to change behaviour (protocol fix, model\n"
    "change, RNG layout change): regenerate with\n"
    "  PYTHONPATH=src python tests/golden/regenerate.py\n"
    "bump repro.sim.KERNEL_BEHAVIOR_VERSION (invalidates stale result\n"
    "caches), and explain the behaviour change in the PR description."
)


@pytest.fixture(scope="module")
def pinned():
    assert regenerate.DIGEST_FILE.exists(), (
        "tests/golden/digests.json is missing; generate it with "
        "PYTHONPATH=src python tests/golden/regenerate.py"
    )
    return regenerate.load_pinned()


def test_every_config_is_pinned(pinned):
    assert sorted(pinned) == sorted(regenerate.GOLDEN)


@pytest.mark.parametrize("name", sorted(regenerate.GOLDEN))
def test_golden_digest(name, pinned):
    computed = regenerate.compute_digest(name)
    expected = pinned[name]["digest"]
    assert computed == expected, POLICY.format(
        name=name, pinned=expected, computed=computed
    )
