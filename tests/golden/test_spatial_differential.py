"""Differential digests: the spatial index must be behaviour-invisible.

Every pinned golden config is re-run with ``spatial_index=True`` — grid-hash
candidate culling, sparse gain materialisation, the vectorised rx-map path —
and must reproduce the exact digest pinned for the brute-force dense build.
This is the strongest equivalence statement in the suite: not "similar
results" but the same events, same RNG stream, same floats, across clean,
interference, fault-injection, and always-on scenarios.

A mismatch here (with ``test_golden_digests`` green) means the spatial
dispatch path diverged from the dense walk: a culled audible link, reordered
neighbour iteration, or a numpy scalar leaking into simulation state. Fix
the spatial path; never regenerate the corpus to match it.
"""

import pytest

from tests.golden import regenerate


@pytest.mark.parametrize("name", sorted(regenerate.GOLDEN))
def test_spatial_index_reproduces_pinned_digest(name):
    pinned = regenerate.load_pinned()[name]["digest"]
    computed = regenerate.compute_digest(name, spatial_index=True)
    assert computed == pinned, (
        f"golden config {name!r} diverged with spatial_index=True:\n"
        f"  pinned (dense): {pinned}\n"
        f"  spatial:        {computed}\n"
        "The spatial index changed simulated behaviour — a culled audible "
        "link, reordered neighbour iteration, or a numpy type leak. Fix "
        "the index; do not regenerate the corpus."
    )
