"""Differential digests: the radio-profile seam must be behaviour-invisible.

Every pinned golden config is re-run with ``radio_profile="cc2420"`` — the
default profile spelled explicitly, dispatching airtime, PRR, thresholds,
noise-model construction, MAC construction, and energy pricing through the
:mod:`repro.radio.profiles` registry — and must reproduce the exact digest
pinned for the pre-registry implicit default. This is the refactor's
equivalence statement: extracting the PHY/MAC seam moved the constants, it
did not change a single event, RNG draw, or float.

A mismatch here (with ``test_golden_digests`` green) means the profile
dispatch path diverged from the hard-wired one: a reordered float
operation in the airtime/current math, an extra RNG draw in MAC
construction, or a threshold resolved from the wrong place. Fix the
profile plumbing; never regenerate the corpus to match it.
"""

import pytest

from tests.golden import regenerate


@pytest.mark.parametrize("name", sorted(regenerate.GOLDEN))
def test_explicit_default_profile_reproduces_pinned_digest(name):
    pinned = regenerate.load_pinned()[name]["digest"]
    computed = regenerate.compute_digest(name, radio_profile="cc2420")
    assert computed == pinned, (
        f"golden config {name!r} diverged with radio_profile='cc2420':\n"
        f"  pinned (implicit default): {pinned}\n"
        f"  explicit profile:          {computed}\n"
        "The radio-profile registry changed simulated behaviour — a "
        "reordered float op, an extra RNG draw, or a misresolved "
        "threshold. Fix the profile seam; do not regenerate the corpus."
    )
