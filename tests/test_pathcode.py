"""Unit and property tests for path codes (paper §III-B1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.pathcode import PathCode, best_match


def codes(max_length: int = 64):
    """Hypothesis strategy producing arbitrary path codes."""
    return st.integers(min_value=0, max_value=max_length).flatmap(
        lambda length: st.builds(
            PathCode,
            st.integers(min_value=0, max_value=max(0, (1 << length) - 1)),
            st.just(length),
        )
    )


class TestConstruction:
    def test_sink_code_is_one_zero_bit(self):
        sink = PathCode.sink()
        assert sink.length == 1
        assert str(sink) == "0"

    def test_from_bits_roundtrip(self):
        for bits in ("0", "1", "00101", "0010101", "00110010"):
            assert str(PathCode.from_bits(bits)) == bits

    def test_from_bits_rejects_garbage(self):
        with pytest.raises(ValueError):
            PathCode.from_bits("01x1")

    def test_empty_code(self):
        empty = PathCode.from_bits("")
        assert empty.length == 0
        assert str(empty) == "ε"

    def test_value_must_fit_length(self):
        with pytest.raises(ValueError):
            PathCode(4, 2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PathCode(-1, 3)
        with pytest.raises(ValueError):
            PathCode(0, -1)

    def test_immutability(self):
        code = PathCode.sink()
        with pytest.raises(AttributeError):
            code.value = 1


class TestPaperExamples:
    """The concrete codes of Figure 2."""

    def setup_method(self):
        self.sink = PathCode.from_bits("0")
        self.a = PathCode.from_bits("001")
        self.m = PathCode.from_bits("010")
        self.b = PathCode.from_bits("00101")
        self.e = PathCode.from_bits("0010101")
        self.d = PathCode.from_bits("0011001")

    def test_sink_extends_to_children(self):
        assert self.sink.extend(0b01, 2) == self.a
        assert self.sink.extend(0b10, 2) == self.m

    def test_parent_prefixes_child(self):
        assert self.sink.is_prefix_of(self.a)
        assert self.a.is_prefix_of(self.b)
        assert self.b.is_prefix_of(self.e)
        assert not self.b.is_prefix_of(self.d)

    def test_figure2_forwarding_check(self):
        # M overhears a packet for D with expected relay A (3 valid bits);
        # C's code (the paper gives D under C) is longer than A's, so any
        # node on D's path with more than 3 matched bits is a better relay.
        assert self.a.length == 3
        assert self.d.common_prefix_length(self.e) == 3  # diverge after "001"

    def test_c_example_position_encoding(self):
        # Figure 3: p's child c takes position 2 in a 5-bit space.
        p = PathCode.from_bits("0010")
        c = p.extend(2, 5)
        assert str(c) == "001000010"


class TestPrefixOperations:
    def test_is_prefix_of_self(self):
        code = PathCode.from_bits("0101")
        assert code.is_prefix_of(code)

    def test_longer_is_never_prefix_of_shorter(self):
        assert not PathCode.from_bits("0101").is_prefix_of(PathCode.from_bits("010"))

    def test_common_prefix_length(self):
        a = PathCode.from_bits("0010101")
        b = PathCode.from_bits("0011001")
        assert a.common_prefix_length(b) == 3
        assert b.common_prefix_length(a) == 3

    def test_common_prefix_with_empty(self):
        assert PathCode.from_bits("").common_prefix_length(PathCode.sink()) == 0

    def test_prefix_extraction(self):
        code = PathCode.from_bits("0010101")
        assert str(code.prefix(3)) == "001"
        assert code.prefix(0).length == 0
        assert code.prefix(7) == code

    def test_prefix_out_of_range(self):
        with pytest.raises(ValueError):
            PathCode.from_bits("01").prefix(3)

    def test_bit_access(self):
        code = PathCode.from_bits("0110")
        assert [code.bit(i) for i in range(4)] == [0, 1, 1, 0]
        assert list(code.bits()) == [0, 1, 1, 0]

    def test_bit_out_of_range(self):
        with pytest.raises(IndexError):
            PathCode.from_bits("01").bit(2)


class TestExtend:
    def test_extend_appends_position(self):
        parent = PathCode.from_bits("001")
        child = parent.extend(5, 3)
        assert str(child) == "001101"

    def test_extend_zero_space_rejected(self):
        with pytest.raises(ValueError):
            PathCode.sink().extend(0, 0)

    def test_extend_position_overflow_rejected(self):
        with pytest.raises(ValueError):
            PathCode.sink().extend(4, 2)

    def test_widen_last_preserves_position_value(self):
        parent = PathCode.from_bits("001")
        child = parent.extend(3, 2)  # 00111
        widened = child.widen_last(2, 3)
        assert widened == parent.extend(3, 3)  # 001011
        assert str(widened) == "001011"

    def test_widen_last_invalid(self):
        code = PathCode.from_bits("01")
        with pytest.raises(ValueError):
            code.widen_last(2, 1)
        with pytest.raises(ValueError):
            code.widen_last(3, 4)


class TestEqualityAndHash:
    def test_equal_codes_hash_equal(self):
        assert hash(PathCode.from_bits("010")) == hash(PathCode.from_bits("010"))

    def test_length_matters(self):
        # "01" != "001" even though both have value 1.
        assert PathCode(1, 2) != PathCode(1, 3)

    def test_usable_in_sets(self):
        s = {PathCode.from_bits("01"), PathCode.from_bits("01"), PathCode.from_bits("10")}
        assert len(s) == 2

    def test_not_equal_to_other_types(self):
        assert PathCode.sink() != "0"


class TestBestMatch:
    def test_picks_longest_prefix(self):
        target = PathCode.from_bits("0010101")
        candidates = {
            "a": PathCode.from_bits("001"),
            "b": PathCode.from_bits("00101"),
            "x": PathCode.from_bits("0011"),
        }
        key, length = best_match(target, candidates)
        assert key == "b"
        assert length == 5

    def test_none_when_no_prefix(self):
        target = PathCode.from_bits("111")
        key, length = best_match(target, {"a": PathCode.from_bits("0")})
        assert key is None
        assert length == -1

    def test_skips_none_codes(self):
        target = PathCode.from_bits("01")
        key, _ = best_match(target, {"a": None, "b": PathCode.from_bits("0")})
        assert key == "b"


class TestProperties:
    @given(codes(), st.integers(min_value=0, max_value=31), st.integers(min_value=1, max_value=5))
    def test_extend_makes_strict_prefix(self, parent, position, space):
        position %= 1 << space
        child = parent.extend(position, space)
        assert parent.is_prefix_of(child)
        assert child.length == parent.length + space
        assert not child.is_prefix_of(parent) or child == parent

    @given(codes(), codes())
    def test_common_prefix_is_symmetric(self, a, b):
        assert a.common_prefix_length(b) == b.common_prefix_length(a)

    @given(codes(), codes())
    def test_prefix_iff_common_prefix_covers(self, a, b):
        assert a.is_prefix_of(b) == (a.common_prefix_length(b) == a.length)

    @given(codes())
    def test_string_roundtrip(self, code):
        if code.length == 0:
            return
        assert PathCode.from_bits(str(code)) == code

    @given(codes(), st.integers(min_value=0, max_value=64))
    def test_prefix_of_prefix(self, code, n):
        n = min(n, code.length)
        assert code.prefix(n).is_prefix_of(code)

    @given(codes(), codes(), codes())
    def test_common_prefix_triangle(self, a, b, c):
        # cp(a,c) >= min(cp(a,b), cp(b,c)) — prefix metric ultrametricity.
        assert a.common_prefix_length(c) >= min(
            a.common_prefix_length(b), b.common_prefix_length(c)
        )

    @given(codes(), st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=15), st.integers(min_value=1, max_value=3))
    def test_widen_preserves_prefix_and_position(self, parent, space, position, extra):
        position %= 1 << space
        child = parent.extend(position, space)
        widened = child.widen_last(space, space + extra)
        assert parent.is_prefix_of(widened)
        assert widened == parent.extend(position, space + extra)
