"""The farm HTTP service: submit, poll, stream, resubmit-from-cache.

One server subprocess per test class (port 0 = kernel-assigned), spoken
to through :mod:`repro.farm.client` — the same stdlib client the CLI
uses, so these tests cover both ends of the wire.
"""

import json
import os
import pathlib
import re
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.farm import client, specs_from_payload
from repro.farm.jobs import MAX_CELLS, JobStore
from repro.runner import ParallelRunner
from repro.runner.taskspec import selftest_spec

SELFTEST_PAYLOAD = {"grid": "selftest", "cells": 4, "payload": 9}


def _spawn_server(tmp_path, *extra):
    env = dict(os.environ)
    src = str(pathlib.Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", "--port", "0",
            "--cache-dir", str(tmp_path / "cache"), *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    line = proc.stdout.readline()
    match = re.search(r"http://\S+", line)
    if match is None:
        proc.kill()
        pytest.fail(f"server did not announce an address: {line!r}")
    return proc, match.group(0)


@pytest.fixture(scope="class")
def server(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("farm-service")
    proc, url = _spawn_server(tmp_path)
    yield url
    proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=20) == 0  # clean shutdown is part of the API


@pytest.mark.usefixtures("server")
class TestServiceEndpoints:
    def test_healthz(self, server):
        health = client.health(server)
        assert health["ok"] is True
        assert "total" in health["jobs"]

    def test_submit_poll_results_roundtrip(self, server):
        job = client.submit(server, SELFTEST_PAYLOAD)
        assert job["state"] in ("queued", "running")
        status = client.wait(server, job["id"], timeout=60)
        assert status["state"] == "done"
        assert status["counters"]["cells"] == 4
        payload = client.results(server, job["id"])
        reference = ParallelRunner(jobs=1).run(
            specs_from_payload(SELFTEST_PAYLOAD)
        )
        assert payload["results"] == [o.result for o in reference]

    def test_resubmission_settles_entirely_from_cache(self, server):
        spec = {"grid": "selftest", "cells": 3, "payload": 77}
        first = client.wait(
            server, client.submit(server, spec)["id"], timeout=60
        )
        assert first["counters"]["executed"] == 3
        second = client.wait(
            server, client.submit(server, spec)["id"], timeout=60
        )
        # The acceptance criterion: cache hits == cells, zero re-execution.
        assert second["counters"]["cached"] == 3
        assert second["counters"]["executed"] == 0
        res1 = client.results(server, first["id"])["results"]
        res2 = client.results(server, second["id"])["results"]
        assert res1 == res2

    def test_sse_stream_replays_and_terminates(self, server):
        job = client.submit(server, SELFTEST_PAYLOAD)
        events = list(client.events(server, job["id"], timeout=60))
        assert events, "expected at least the terminal job event"
        messages = [e["message"] for e in events]
        assert messages[-1] == "done"
        # Cursored replay: asking again after the last seq yields only
        # the stream end (no duplicate history).
        tail = list(
            client.events(server, job["id"], after=events[-1]["seq"], timeout=30)
        )
        assert tail == []

    def test_job_listing_and_detail(self, server):
        job = client.submit(server, SELFTEST_PAYLOAD)
        client.wait(server, job["id"], timeout=60)
        listed = client._request(server, "/jobs")["jobs"]
        assert any(entry["id"] == job["id"] for entry in listed)
        detail = client.job(server, job["id"])
        assert len(detail["cell_detail"]) == 4
        assert all("fingerprint" in cell for cell in detail["cell_detail"])

    def test_bad_payload_is_a_400(self, server):
        with pytest.raises(client.FarmClientError) as excinfo:
            client.submit(server, {"grid": "nonsense"})
        assert excinfo.value.status == 400
        with pytest.raises(client.FarmClientError) as excinfo:
            client.submit(server, {"cells": []})
        assert excinfo.value.status == 400

    def test_unknown_job_is_a_404(self, server):
        with pytest.raises(client.FarmClientError) as excinfo:
            client.job(server, "no-such-job")
        assert excinfo.value.status == 404


class TestSpecPayloads:
    """specs_from_payload contract, independent of a running server."""

    def test_selftest_grid(self):
        specs = specs_from_payload({"grid": "selftest", "cells": 2})
        assert [s.kind for s in specs] == ["selftest", "selftest"]

    def test_comparison_grid_covers_the_matrix(self):
        specs = specs_from_payload(
            {
                "grid": "comparison",
                "variants": ["tele", "rpl"],
                "channels": [26, 19],
                "seeds": [1, 2],
                "schedule": {"n_controls": 2, "converge_seconds": 30.0},
            }
        )
        assert len(specs) == 8
        assert all(s.kind == "comparison" for s in specs)

    def test_chaos_grid(self):
        specs = specs_from_payload(
            {
                "grid": "chaos",
                "variants": ["tele"],
                "intensities": [0.25, 1.0],
                "seeds": [3],
            }
        )
        assert len(specs) == 2
        assert all(s.kind == "chaos" for s in specs)

    def test_raw_cells_roundtrip(self):
        spec = selftest_spec(7, payload=1)
        rebuilt = specs_from_payload({"cells": [spec.to_dict()]})
        assert rebuilt[0].fingerprint == spec.fingerprint

    def test_malformed_payloads_raise_value_error(self):
        for bad in (
            [],
            {"grid": "bogus"},
            {"cells": "not-a-list"},
            {"cells": [{"no": "kind"}]},
            {"grid": "selftest", "cells": 0},
            {"grid": "comparison", "schedule": "fast"},
        ):
            with pytest.raises(ValueError):
                specs_from_payload(bad)

    def test_cell_ceiling_enforced(self):
        with pytest.raises(ValueError):
            specs_from_payload({"grid": "selftest", "cells": MAX_CELLS + 1})


class TestJobStore:
    def test_identical_grids_share_a_fingerprint(self):
        store = JobStore()
        a = store.submit(SELFTEST_PAYLOAD)
        b = store.submit(dict(SELFTEST_PAYLOAD))
        assert a.grid == b.grid and a.id != b.id
        assert store.siblings(b) == [a]

    def test_progress_sink_flips_cell_status(self):
        store = JobStore()
        job = store.submit({"grid": "selftest", "cells": 1})
        sink = store.progress_sink(job)
        label = job.cells[0]["label"]
        sink("runner", f"run {label}", cell=label, attempt=0)
        assert job.cells[0]["status"] == "running"
        sink("runner", f"done {label}", cell=label, wall_s=0.5)
        assert job.cells[0]["status"] == "executed"
        assert [e["message"] for e in job.events] == [
            f"run {label}", f"done {label}"
        ]

    def test_events_after_blocks_until_terminal(self):
        store = JobStore()
        job = store.submit({"grid": "selftest", "cells": 1})
        started = time.monotonic()
        assert store.events_after(job, after=10, timeout=0.2) == []
        assert time.monotonic() - started >= 0.15
        store.finish(job, None, None, error="boom")
        assert job.state == "failed"
        # Terminal state short-circuits the wait.
        started = time.monotonic()
        assert store.events_after(job, after=10, timeout=5.0) == []
        assert time.monotonic() - started < 1.0
