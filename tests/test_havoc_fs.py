"""The havoc filesystem seam and the fail-closed storage it hardens.

The contract under test: any injected ENOSPC / EIO / torn write may cost
a retry or a cache miss, but never yields a wrong result, a torn marker
that parses, or a duplicate completion.
"""

import errno
import json

import pytest

import repro.havoc as havoc
from repro.farm.queue import LeaseQueue
from repro.farm.worker import WorkerStats, drain_queue, run_leased_cell
from repro.havoc import HavocEvent, HavocPlan
from repro.havoc import fs as havocfs
from repro.runner import ParallelRunner
from repro.runner.cache import ResultCache
from repro.runner.retry import RetryPolicy
from repro.runner.taskspec import selftest_spec


def plan_of(*events, seed=0):
    return HavocPlan(events=tuple(events), seed=seed, name="test")


@pytest.fixture(autouse=True)
def _clean_seams():
    yield
    havoc.deactivate()


class TestHavocFSDecisions:
    def test_window_covers_exact_op_indices(self, tmp_path):
        plan = plan_of(HavocEvent(kind="enospc", op="write", start=1, count=2))
        with havoc.active(plan):
            for index in range(4):
                target = tmp_path / f"f{index}"
                with open(target, "w") as handle:
                    if index in (1, 2):
                        with pytest.raises(OSError) as info:
                            havocfs.write(handle, "data")
                        assert info.value.errno == errno.ENOSPC
                    else:
                        havocfs.write(handle, "data")

    def test_decision_log_is_reproducible(self, tmp_path):
        plan = plan_of(
            HavocEvent(kind="eio", op="read", scope="victim", start=0)
        )
        target = tmp_path / "victim.json"
        target.write_bytes(b"x")
        logs = []
        for _ in range(2):
            with havoc.active(plan) as injector:
                with pytest.raises(OSError):
                    havocfs.read_bytes(target)
                assert havocfs.read_bytes(tmp_path / "victim.json") == b"x"
                logs.append(list(injector.log))
        assert logs[0] == logs[1]
        assert logs[0] == [("read", 0, str(target), "eio")]

    def test_torn_write_leaves_a_genuine_prefix(self, tmp_path):
        plan = plan_of(HavocEvent(kind="torn", op="write", start=0))
        target = tmp_path / "torn.json"
        with havoc.active(plan):
            with open(target, "w") as handle:
                with pytest.raises(OSError) as info:
                    havocfs.write(handle, "0123456789")
            assert info.value.errno == errno.ENOSPC
        content = target.read_bytes()
        assert content == b"01234"  # half landed, exactly like a full disk

    def test_scope_filters_by_path_substring(self, tmp_path):
        plan = plan_of(
            HavocEvent(kind="enospc", op="write", scope="queue", count=99)
        )
        with havoc.active(plan):
            with open(tmp_path / "cache-entry", "w") as handle:
                havocfs.write(handle, "ok")  # out of scope: untouched
            with open(tmp_path / "queue-marker", "w") as handle:
                with pytest.raises(OSError):
                    havocfs.write(handle, "boom")

    def test_passthrough_when_inactive(self, tmp_path):
        target = tmp_path / "plain"
        with open(target, "w") as handle:
            havocfs.write(handle, "plain")
        assert havocfs.read_bytes(target) == b"plain"
        assert havocfs.current() is None


class TestEnvActivation:
    def test_env_round_trip(self, tmp_path):
        plan = havoc.generate_plan(17)
        restored = HavocPlan.from_json(plan.to_json())
        assert restored == plan

    def test_malformed_env_plan_fails_loudly(self):
        from repro.havoc import _activate_from_env
        import os

        os.environ[havoc.ENV_VAR] = "{broken"
        try:
            with pytest.raises(ValueError):
                _activate_from_env()
        finally:
            del os.environ[havoc.ENV_VAR]


class TestFailClosedQueue:
    def test_enospc_on_marker_releases_lease_not_torn_result(self, tmp_path):
        """A failed ``done`` install must degrade to re-execution."""
        queue = LeaseQueue(tmp_path / "q", lease_ttl=5.0)
        spec = selftest_spec(0)
        queue.put(spec, 0)
        # Window sized to break the *first* done-marker write only.
        plan = plan_of(
            HavocEvent(kind="enospc", op="write", scope="done", count=1)
        )
        stats = WorkerStats()
        with havoc.active(plan):
            lease = queue.claim()
            assert lease is not None
            run_leased_cell(queue, lease, None, RetryPolicy(), stats)
        assert stats.io_errors == 1
        assert stats.executed == 0
        assert queue.unfinished() == 1  # released, not torn-completed
        # The fault window has passed: a clean pass drains it.
        stats2 = drain_queue(tmp_path / "q", lease_ttl=5.0)
        assert stats2.executed == 1
        assert queue.unfinished() == 0

    def test_torn_marker_never_parses_as_done(self, tmp_path):
        queue = LeaseQueue(tmp_path / "q", lease_ttl=5.0)
        spec = selftest_spec(1)
        queue.put(spec, 0)
        plan = plan_of(
            HavocEvent(kind="torn", op="write", scope="done", count=1)
        )
        stats = WorkerStats()
        with havoc.active(plan):
            lease = queue.claim()
            run_leased_cell(queue, lease, None, RetryPolicy(), stats)
        # The torn temp file was cleaned up; no half-written marker exists.
        done_files = list((tmp_path / "q" / "done").glob("*.json"))
        assert done_files == []
        assert stats.io_errors == 1
        assert queue.unfinished() == 1

    def test_torn_first_claim_does_not_charge_a_steal(self, tmp_path):
        queue = LeaseQueue(tmp_path / "q", lease_ttl=5.0, max_attempts=2)
        queue.put(selftest_spec(2), 0)
        plan = plan_of(
            HavocEvent(kind="torn", op="write", scope="leases", count=1)
        )
        with havoc.active(plan):
            with pytest.raises(OSError):  # fail closed, loudly
                queue.claim()
        # No torn lease file survives to be "stolen" (which would burn
        # half the poison budget on a fault that ran nothing).
        assert list((tmp_path / "q" / "leases").glob("*.json")) == []
        lease = queue.claim()
        assert lease is not None and lease.attempt == 0

    def test_worker_aborts_after_persistent_storage_failure(self, tmp_path):
        from repro.farm.worker import MAX_CONSECUTIVE_IO_ERRORS

        queue = LeaseQueue(tmp_path / "q", lease_ttl=5.0)
        queue.put(selftest_spec(3), 0)
        # The disk never comes back: every write fails.
        plan = plan_of(
            HavocEvent(kind="enospc", op="write", count=10_000)
        )
        with havoc.active(plan):
            stats = drain_queue(tmp_path / "q", lease_ttl=5.0, poll_s=0.01)
        assert stats.aborted is True
        assert stats.io_errors >= MAX_CONSECUTIVE_IO_ERRORS
        assert stats.executed == 0


class TestFailClosedCache:
    def test_torn_store_raises_and_installs_nothing(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = selftest_spec(0)
        plan = plan_of(HavocEvent(kind="torn", op="write", count=1))
        with havoc.active(plan):
            with pytest.raises(OSError):
                cache.store(spec, {"value": 1})
        # Fail closed: no entry, no temp litter, and a later store works.
        assert list((tmp_path / "cache").glob("*.json")) == []
        assert list((tmp_path / "cache").glob("*.tmp")) == []
        cache.store(spec, {"value": 1})
        assert cache.load(spec) == {"value": 1}

    def test_eio_load_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = selftest_spec(1)
        cache.store(spec, {"value": 2})
        plan = plan_of(
            HavocEvent(kind="eio", op="read", scope=spec.fingerprint)
        )
        with havoc.active(plan):
            assert cache.load(spec) is None  # miss, not a crash
        assert cache.load(spec) == {"value": 2}  # entry itself unharmed


class TestZeroFaultIdentity:
    def test_empty_plan_is_bit_identical_to_no_plan(self, tmp_path):
        specs = [selftest_spec(i) for i in range(3)]
        plain = ParallelRunner(jobs=1).run(specs)
        with havoc.active(plan_of()) as injector:
            under_plan = ParallelRunner(jobs=1).run(specs)
            assert injector.injected == 0
        assert [o.result for o in under_plan] == [o.result for o in plain]

    def test_queue_json_identical_under_empty_plan(self, tmp_path):
        spec = selftest_spec(9)
        queue_a = LeaseQueue(tmp_path / "qa", lease_ttl=5.0)
        queue_a.put(spec, 0)
        with havoc.active(plan_of()):
            queue_b = LeaseQueue(tmp_path / "qb", lease_ttl=5.0)
            queue_b.put(spec, 0)
        task_a = next((tmp_path / "qa" / "tasks").glob("*.json"))
        task_b = next((tmp_path / "qb" / "tasks").glob("*.json"))
        assert json.loads(task_a.read_text()) == json.loads(task_b.read_text())
