"""Tests for the ETX link estimator."""

from repro.net.linkest import UNKNOWN_ETX, LinkEstimator


class TestBeaconEstimation:
    def test_unknown_neighbor_has_max_etx(self):
        est = LinkEstimator()
        assert est.link_etx(42) == UNKNOWN_ETX
        assert not est.is_usable(42)

    def test_first_beacon_bootstraps_optimistically(self):
        est = LinkEstimator()
        est.beacon_received(1, seqno=1, rssi=-80)
        assert est.link_etx(1) < UNKNOWN_ETX
        assert est.is_usable(1)

    def test_perfect_reception_approaches_etx_one(self):
        est = LinkEstimator()
        for seqno in range(1, 21):
            est.beacon_received(1, seqno, rssi=-80)
        assert est.link_etx(1) <= 1.3

    def test_gaps_raise_etx(self):
        perfect, lossy = LinkEstimator(), LinkEstimator()
        for i in range(1, 21):
            perfect.beacon_received(1, i, rssi=-80)
        for i in range(1, 21):
            lossy.beacon_received(1, i * 3, rssi=-80)  # 2 of 3 missed
        assert lossy.link_etx(1) > perfect.link_etx(1) * 2

    def test_seqno_regression_tolerated(self):
        est = LinkEstimator()
        est.beacon_received(1, 10, rssi=-80)
        est.beacon_received(1, 3, rssi=-80)  # reboot / wrap
        assert est.link_etx(1) < UNKNOWN_ETX

    def test_rssi_tracked(self):
        est = LinkEstimator()
        est.beacon_received(1, 1, rssi=-72.5)
        assert est.rssi(1) == -72.5
        assert est.rssi(99) == -100.0


class TestDataEstimation:
    def test_data_overrides_beacons(self):
        est = LinkEstimator()
        for i in range(1, 11):
            est.beacon_received(1, i, rssi=-80)
        beacon_etx = est.link_etx(1)
        for _ in range(6):
            est.data_sent(1, success=False)
        assert est.link_etx(1) > beacon_etx

    def test_successful_data_lowers_etx(self):
        est = LinkEstimator()
        for _ in range(6):
            est.data_sent(1, success=True)
        assert est.link_etx(1) <= 1.5

    def test_all_failures_make_link_unusable(self):
        est = LinkEstimator()
        for _ in range(9):
            est.data_sent(1, success=False)
        assert not est.is_usable(1)

    def test_ewma_smooths_recovery(self):
        est = LinkEstimator()
        for _ in range(6):
            est.data_sent(1, success=False)
        bad = est.link_etx(1)
        for _ in range(3):
            est.data_sent(1, success=True)
        recovering = est.link_etx(1)
        assert recovering < bad
        assert recovering > 1.0


class TestHousekeeping:
    def test_neighbors_listing(self):
        est = LinkEstimator()
        est.beacon_received(1, 1, rssi=-80)
        est.data_sent(2, success=True)
        assert sorted(est.neighbors()) == [1, 2]

    def test_forget(self):
        est = LinkEstimator()
        est.beacon_received(1, 1, rssi=-80)
        est.forget(1)
        assert est.link_etx(1) == UNKNOWN_ETX
        est.forget(999)  # no-op
