"""Soak test: two simulated hours of full-stack operation under churn.

Not a correctness test of one behaviour but of the system's composure:
collection + periodic remote control + node failures and recoveries, with
invariants checked at the end. Catches leaks (unbounded queues/state),
wedged engines, and drifting counters that short tests never see.
"""

import pytest

from repro.experiments.harness import Network, NetworkConfig
from repro.sim.units import MINUTE, SECOND
from repro.workloads.control import ControlSchedule


@pytest.mark.parametrize("seed", [11])
def test_two_hour_soak_with_failures(seed):
    net = Network(
        NetworkConfig(
            topology="indoor-testbed",
            protocol="tele",
            seed=seed,
            zigbee_channel=19,  # the harsher environment
            collection_ipi=10 * MINUTE,
        )
    )
    net.converge(max_seconds=240)
    net.metrics.mark()
    schedule = ControlSchedule(
        net.sim,
        send=lambda destination, index: net.send_control(destination, payload=index),
        destinations=net.non_sink_nodes(),
        interval=2 * MINUTE,
        count=None,  # unbounded: one control every 2 min for the whole soak
        rng_name="soak-controls",
    )
    schedule.start(initial_delay=1 * SECOND)

    # Churn: a rolling failure — every 20 min a random relay dies for 5 min.
    rng = net.sim.rng("soak-failures")

    def fail_one():
        candidates = [
            n
            for n in net.non_sink_nodes()
            if not net.stacks[n].radio.failed and net.stacks[n].routing.children
        ]
        if candidates:
            victim = rng.choice(candidates)
            net.stacks[victim].radio.fail()

            def revive(v=victim):
                net.stacks[v].radio.recover()
                net.stacks[v].radio.turn_on()

            net.sim.schedule(5 * MINUTE, revive)
        net.sim.schedule(20 * MINUTE, fail_one)

    net.sim.schedule(10 * MINUTE, fail_one)

    net.run(2 * 3600.0)

    # --- invariants after two hours ---------------------------------------
    metrics = net.control_metrics
    assert len(metrics) >= 55  # ~60 controls issued
    pdr = metrics.pdr()
    assert pdr is not None and pdr >= 0.75, pdr  # churn bites, most survive
    # No wedged state machines: bounded caches everywhere.
    for node_id, protocol in net.protocols.items():
        forwarding = protocol.forwarding
        assert len(forwarding._states) <= forwarding.params.state_cache
        assert len(forwarding._delivered_serials) <= forwarding.params.state_cache
        assert len(forwarding._won_frames) <= forwarding.params.state_cache
        stack = net.stacks[node_id]
        assert len(stack.forwarding._queue) <= stack.forwarding.QUEUE_LIMIT
        assert len(stack.mac._queue) < 64, (node_id, len(stack.mac._queue))
    # Duty cycle stays in the paper's band even with churn + interference.
    duty = net.metrics.mean_duty_cycle()
    assert duty is not None and duty < 0.10, duty
    # Collection kept flowing.
    assert net.collection.generated > 0
    assert net.collection.delivery_ratio is None or net.collection.delivery_ratio > 0.5
    # The clock is where we told it to be (no runaway event loops).
    assert net.sim.now_seconds >= 2 * 3600.0
