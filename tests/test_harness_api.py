"""Tests for the experiment harness and the public API facade."""

import pytest

import repro
from repro.experiments.harness import Network, NetworkConfig
from repro.topology import Deployment, random_uniform


class TestBuildNetwork:
    def test_default_build(self):
        net = repro.build_network(seed=1)
        assert net.deployment.name == "indoor-testbed"
        assert net.config.protocol == "tele"
        assert net.sink == net.deployment.sink
        assert len(net.stacks) == 40

    def test_custom_deployment_object(self):
        deployment = random_uniform(n=10, width=50, height=50, seed=2)
        net = repro.build_network(config=NetworkConfig(topology=deployment, seed=2))
        assert net.deployment is deployment
        assert len(net.stacks) == 10

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            repro.build_network(topology="mars-base")

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            repro.build_network(protocol="carrier-pigeon")

    def test_unknown_config_override_rejected(self):
        with pytest.raises(TypeError):
            Network(NetworkConfig(), not_a_field=True)

    def test_bare_ctp_network(self):
        net = repro.build_network(protocol="none", seed=1)
        assert net.protocols == {}
        net.run(1.0)
        assert net.sim.now_seconds >= 1.0

    def test_wifi_interferer_only_on_overlapped_channel(self):
        clean = repro.build_network(zigbee_channel=26, seed=1)
        noisy = repro.build_network(zigbee_channel=19, seed=1)
        assert clean.interferer is None
        assert noisy.interferer is not None

    def test_drip_and_rpl_protocols_construct(self):
        for protocol in ("drip", "rpl"):
            net = repro.build_network(protocol=protocol, seed=1)
            assert len(net.protocols) == 40


class TestConvergenceHelpers:
    @pytest.fixture(scope="class")
    def small_net(self):
        deployment = random_uniform(n=12, width=40, height=40, seed=4)
        net = Network(
            NetworkConfig(
                topology=deployment, seed=4, always_on=True, collection_ipi=None
            )
        )
        net.converge(max_seconds=200)
        return net

    def test_fractions(self, small_net):
        assert small_net.routed_fraction() == 1.0
        assert small_net.coded_fraction() == 1.0

    def test_controller_snapshotted(self, small_net):
        for node in small_net.non_sink_nodes():
            assert small_net.controller.code_of(node) is not None

    def test_send_control_roundtrip(self, small_net):
        destination = small_net.non_sink_nodes()[0]
        record = small_net.send_control(destination, payload={"x": 1})
        small_net.run(30)
        assert record.delivered
        assert record.latency_s is not None
        assert record.athx is not None
        assert record in small_net.control_metrics.records

    def test_metrics_accumulate(self, small_net):
        assert len(small_net.control_metrics) >= 1
        assert small_net.metrics.mean_duty_cycle() is not None


class TestRecordsPlumbing:
    def test_unaddressable_destination_counts_as_failure(self):
        deployment = random_uniform(n=6, width=30, height=30, seed=5)
        net = Network(
            NetworkConfig(topology=deployment, seed=5, always_on=True, collection_ipi=None)
        )
        net.start()
        net.run(1.0)  # nowhere near converged: no codes yet
        destination = net.non_sink_nodes()[0]
        record = net.send_control(destination)
        net.run(5.0)
        assert not record.delivered
