"""Tests for the analytical code-length model, including model-vs-simulation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.analysis import (
    bits_for_children,
    expected_code_length,
    expected_length_by_hop,
    model_vs_measured,
    tree_code_lengths,
)
from repro.core.childtable import ChildTable


class TestBitsForChildren:
    def test_matches_algorithm1(self):
        for n in (1, 2, 5, 10, 31):
            assert bits_for_children(n) == ChildTable.required_space_bits(n)

    @given(st.integers(min_value=1, max_value=200))
    def test_capacity_sufficient(self, n):
        assert (1 << bits_for_children(n)) - 1 >= n


class TestExpectedLength:
    def test_single_hop(self):
        # Sink with 2 children: 1 (sink bit) + 2 bits space.
        assert expected_code_length([2]) == 1 + bits_for_children(2)

    def test_chain(self):
        assert expected_code_length([2, 1, 1]) == 1 + bits_for_children(2) + 2 * bits_for_children(1)

    def test_by_hop_curve_is_monotone(self):
        curve = expected_length_by_hop({0: 4.0, 1: 2.0, 2: 1.5, 3: 1.0}, max_hop=4)
        values = [curve[h] for h in sorted(curve)]
        assert values == sorted(values)
        assert curve[0] == 1.0

    def test_fractional_children_interpolate(self):
        lo = expected_length_by_hop({0: 2.0}, max_hop=1)[1]
        mid = expected_length_by_hop({0: 2.5}, max_hop=1)[1]
        hi = expected_length_by_hop({0: 3.0}, max_hop=1)[1]
        assert lo <= mid <= hi


class TestTreeLengths:
    def test_line_tree(self):
        parents = {0: None, 1: 0, 2: 1, 3: 2}
        lengths = tree_code_lengths(parents, sink=0)
        per_hop = bits_for_children(1)
        assert lengths == {0: 1, 1: 1 + per_hop, 2: 1 + 2 * per_hop, 3: 1 + 3 * per_hop}

    def test_star_tree(self):
        parents = {0: None, 1: 0, 2: 0, 3: 0}
        lengths = tree_code_lengths(parents, sink=0)
        space = bits_for_children(3)
        assert lengths[1] == lengths[2] == lengths[3] == 1 + space


class TestModelVsSimulation:
    def test_against_live_construction(self):
        """The analytic curve must track a real converged network within ~35 %
        (the model ignores reallocation churn and position-request timing)."""
        from repro.experiments.codestats import (
            children_by_hop,
            code_construction_run,
            code_length_by_hop,
        )

        net = code_construction_run(topology="indoor-testbed", seed=1)
        comparison = model_vs_measured(
            {h: v for h, v in code_length_by_hop(net).items() if 1 <= h <= 6},
            {h: v for h, v in children_by_hop(net).items() if h < 10**4},
        )
        assert comparison, "no comparable hops"
        for hop, row in comparison.items():
            assert 0.65 <= row["ratio"] <= 1.5, (hop, row)

    def test_empty_inputs(self):
        assert model_vs_measured({}, {}) == {}
