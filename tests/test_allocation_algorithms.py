"""Unit-level tests of Algorithms 2 and 3 with a scripted fake stack.

The integration tests exercise allocation over real radios; these drive the
engine's handlers directly with crafted frames so each branch of the paper's
pseudocode is pinned down deterministically.
"""

from dataclasses import dataclass, field
from typing import Any, List, Optional

import pytest

from repro.core.allocation import AllocationEngine, AllocationParams
from repro.core.messages import (
    AllocationAck,
    Confirmation,
    PositionRequest,
    TeleBeacon,
    TeleBeaconEntry,
)
from repro.core.pathcode import PathCode
from repro.net.messages import RoutingBeacon
from repro.radio.frame import BROADCAST, Frame, FrameType
from repro.sim import Simulator


@dataclass
class SentFrame:
    kind: str  # "broadcast" | "unicast"
    dst: Optional[int]
    frame_type: FrameType
    payload: Any


class FakeRouting:
    def __init__(self):
        self.parent: Optional[int] = None
        self.children = {}
        self.on_parent_found: List = []
        self.on_parent_change: List = []


class FakeStack:
    """Just enough NodeStack surface for an AllocationEngine."""

    def __init__(self, node_id: int):
        self.node_id = node_id
        self.routing = FakeRouting()
        self.sent: List[SentFrame] = []
        self.beacon_fillers: List = []
        self.beacon_observers: List = []

    def send_broadcast(self, frame_type, payload, length, done=None):
        self.sent.append(SentFrame("broadcast", None, frame_type, payload))

    def send_unicast(self, dst, frame_type, payload, length, done=None):
        self.sent.append(SentFrame("unicast", dst, frame_type, payload))

    def sent_of(self, frame_type):
        return [s for s in self.sent if s.frame_type is frame_type]


def make_engine(node_id=5, parent=1, is_sink=False, with_code="00101"):
    sim = Simulator(seed=1)
    stack = FakeStack(node_id)
    engine = AllocationEngine(sim, stack, params=AllocationParams(), is_sink=is_sink)
    if parent is not None:
        stack.routing.parent = parent
    if with_code is not None and not is_sink:
        engine.position = 1
        engine.position_space = 2
        engine._position_parent = parent
        engine._set_code(PathCode.from_bits(with_code))
    if is_sink:
        engine.start()
    return sim, stack, engine


def tele_beacon_frame(origin, code, space_bits, entries, extension=False):
    beacon = TeleBeacon(
        origin=origin,
        code=code,
        space_bits=space_bits,
        entries=entries,
        extension=extension,
    )
    return Frame(
        src=origin, dst=BROADCAST, type=FrameType.TELE_BEACON, payload=beacon, length=30
    )


class TestAlgorithm3ChildSide:
    """Children reacting to a parent's TeleAdjusting beacon."""

    def test_adopts_allocated_position_and_confirms(self):
        sim, stack, engine = make_engine(with_code=None)
        parent_code = PathCode.from_bits("001")
        frame = tele_beacon_frame(
            1, parent_code, 3, [TeleBeaconEntry(5, 4, False)]
        )
        engine.handle_tele_beacon(frame, -70)
        assert engine.position == 4
        assert engine.code == parent_code.extend(4, 3)
        confirmations = stack.sent_of(FrameType.CONFIRMATION)
        assert confirmations and confirmations[0].payload.position == 4

    def test_position_change_readopts(self):
        sim, stack, engine = make_engine(with_code="00101")
        parent_code = PathCode.from_bits("001")
        frame = tele_beacon_frame(1, parent_code, 3, [TeleBeaconEntry(5, 6, False)])
        engine.handle_tele_beacon(frame, -70)
        assert engine.position == 6
        assert engine.code == parent_code.extend(6, 3)

    def test_space_extension_widens_code(self):
        sim, stack, engine = make_engine(with_code=None)
        parent_code = PathCode.from_bits("001")
        engine.handle_tele_beacon(
            tele_beacon_frame(1, parent_code, 2, [TeleBeaconEntry(5, 1, False)]), -70
        )
        narrow = engine.code
        engine.handle_tele_beacon(
            tele_beacon_frame(
                1, parent_code, 3, [TeleBeaconEntry(5, 1, False)], extension=True
            ),
            -70,
        )
        assert engine.code.length == narrow.length + 1
        assert engine.code == parent_code.extend(1, 3)

    def test_not_in_entries_requests_position(self):
        sim, stack, engine = make_engine(with_code=None)
        frame = tele_beacon_frame(
            1, PathCode.from_bits("001"), 3, [TeleBeaconEntry(99, 2, False)]
        )
        engine.handle_tele_beacon(frame, -70)
        requests = stack.sent_of(FrameType.POSITION_REQUEST)
        assert requests and requests[0].dst == 1

    def test_beacon_from_non_parent_only_updates_neighbor_table(self):
        sim, stack, engine = make_engine(with_code=None)
        other_code = PathCode.from_bits("010")
        engine.handle_tele_beacon(
            tele_beacon_frame(7, other_code, 2, [TeleBeaconEntry(5, 1, False)]), -70
        )
        assert engine.position is None  # not adopted: 7 is not our parent
        assert engine.neighbor_codes.code_of(7) == other_code


class TestAlgorithm2ParentSide:
    """Parents reacting to children's routing beacons / requests."""

    def _parent_engine(self):
        sim, stack, engine = make_engine(node_id=1, parent=0, with_code="001")
        engine._initial_done = True
        engine.children.size_space(2)
        return sim, stack, engine

    def _routing_beacon(self, origin, parent, position, code=None):
        beacon = RoutingBeacon(
            origin=origin, parent=parent, path_etx=2.0, hop_count=2, seqno=1
        )
        beacon.tele_position = position
        if code is not None:
            beacon.tele_code = (code.value, code.length)
        return beacon

    def test_consistent_claim_confirms(self):
        sim, stack, engine = self._parent_engine()
        entry = engine.children.allocate(9)
        derived = engine.code.extend(entry.position, engine.children.space_bits)
        engine.observe_routing_beacon(
            self._routing_beacon(9, 1, entry.position, derived), -70
        )
        assert engine.children.entry(9).confirmed

    def test_mismatched_claim_reallocates_and_acks(self):
        sim, stack, engine = self._parent_engine()
        entry = engine.children.allocate(9)
        wrong = entry.position + 1
        engine.observe_routing_beacon(self._routing_beacon(9, 1, wrong), -70)
        acks = stack.sent_of(FrameType.ALLOCATION_ACK)
        assert acks and acks[0].dst == 9
        assert not engine.children.entry(9).confirmed

    def test_unknown_child_gets_allocation(self):
        sim, stack, engine = self._parent_engine()
        engine.observe_routing_beacon(self._routing_beacon(42, 1, None), -70)
        assert 42 in engine.children
        # claimed None for a *new* child → allocation + unicast ack
        acks = stack.sent_of(FrameType.ALLOCATION_ACK)
        assert acks and acks[-1].dst == 42

    def test_departed_child_frees_position(self):
        sim, stack, engine = self._parent_engine()
        engine.children.allocate(9)
        engine.observe_routing_beacon(self._routing_beacon(9, 777, 1), -70)
        assert 9 not in engine.children

    def test_orphan_code_repaired(self):
        sim, stack, engine = self._parent_engine()
        entry = engine.children.allocate(9)
        bogus = PathCode.from_bits("111111")
        engine.observe_routing_beacon(
            self._routing_beacon(9, 1, entry.position, bogus), -70
        )
        acks = stack.sent_of(FrameType.ALLOCATION_ACK)
        assert acks and acks[-1].dst == 9  # repair ack re-derives the code

    def test_position_request_answered(self):
        sim, stack, engine = self._parent_engine()
        request = PositionRequest(child=33, parent=1)
        frame = Frame(
            src=33, dst=1, type=FrameType.POSITION_REQUEST, payload=request, length=14
        )
        engine.handle_position_request(frame, -70)
        assert 33 in engine.children
        acks = stack.sent_of(FrameType.ALLOCATION_ACK)
        assert acks[-1].payload.child == 33
        assert acks[-1].payload.parent_code == engine.code

    def test_request_for_other_parent_ignored(self):
        sim, stack, engine = self._parent_engine()
        request = PositionRequest(child=33, parent=999)
        frame = Frame(
            src=33, dst=1, type=FrameType.POSITION_REQUEST, payload=request, length=14
        )
        engine.handle_position_request(frame, -70)
        assert 33 not in engine.children

    def test_confirmation_sets_flag(self):
        sim, stack, engine = self._parent_engine()
        entry = engine.children.allocate(9)
        confirmation = Confirmation(child=9, parent=1, position=entry.position)
        frame = Frame(
            src=9, dst=1, type=FrameType.CONFIRMATION, payload=confirmation, length=14
        )
        engine.handle_confirmation(frame, -70)
        assert engine.children.entry(9).confirmed


class TestAllocationAckChildSide:
    def test_ack_adopts_and_updates_neighbor_code(self):
        sim, stack, engine = make_engine(with_code=None)
        parent_code = PathCode.from_bits("001")
        ack = AllocationAck(
            parent=1, child=5, position=3, space_bits=3, parent_code=parent_code
        )
        frame = Frame(
            src=1, dst=5, type=FrameType.ALLOCATION_ACK, payload=ack, length=20
        )
        engine.handle_allocation_ack(frame, -70)
        assert engine.code == parent_code.extend(3, 3)
        assert engine.neighbor_codes.code_of(1) == parent_code

    def test_stale_ack_from_old_parent_ignored(self):
        sim, stack, engine = make_engine(with_code=None)
        stack.routing.parent = 2  # re-parented since the request
        ack = AllocationAck(
            parent=1, child=5, position=3, space_bits=3,
            parent_code=PathCode.from_bits("001"),
        )
        frame = Frame(
            src=1, dst=5, type=FrameType.ALLOCATION_ACK, payload=ack, length=20
        )
        engine.handle_allocation_ack(frame, -70)
        assert engine.code is None
