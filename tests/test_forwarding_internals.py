"""Focused tests for forwarding-engine internals: suppression, watchdog,
candidate filtering, courtesy acks."""

import pytest

from repro.core import Controller, TeleAdjusting
from repro.core.forwarding import ForwardingParams, _RelayState
from repro.core.messages import ControlPacket
from repro.core.pathcode import PathCode
from repro.net import NodeStack
from repro.radio.channel import Channel
from repro.radio.frame import BROADCAST, Frame, FrameType
from repro.radio.noise import ConstantNoise
from repro.radio.propagation import LogDistancePathLoss
from repro.sim import SECOND, Simulator


@pytest.fixture()
def net():
    """A converged 4-node line with always-on radios."""
    sim = Simulator(seed=3)
    positions = [(i * 12.0, 0.0) for i in range(4)]
    gains = LogDistancePathLoss(pl_d0=40.0, seed=3, shadowing_sigma=0.0).gain_matrix(
        positions
    )
    channel = Channel(sim, gains, noise_model=ConstantNoise())
    controller = Controller(channel=channel)
    protocols, stacks = {}, {}
    for i in range(4):
        stack = NodeStack(sim, channel, i, is_root=(i == 0), always_on=True)
        protocols[i] = TeleAdjusting(sim, stack, controller=controller)
        stacks[i] = stack
    for i in range(4):
        stacks[i].start()
        protocols[i].start()
    sim.run(until=120 * SECOND)
    controller.snapshot(protocols)
    return sim, stacks, protocols, controller


def control_for(protocols, dest, expected_relay=None, expected_length=0):
    return ControlPacket(
        destination=dest,
        destination_code=protocols[dest].allocation.code,
        expected_relay=expected_relay,
        expected_length=expected_length,
    )


def frame_for(control, src=0):
    return Frame(
        src=src, dst=BROADCAST, type=FrameType.CONTROL, payload=control, length=36
    )


class TestStaleSuppression:
    def test_fresh_copy_from_behind_rejected_while_working(self, net):
        sim, stacks, protocols, _ = net
        fwd = protocols[1].forwarding
        control = control_for(protocols, 3)
        state = _RelayState(control=control, came_from=0)
        state.sent_expected = 8
        state.sent_at = sim.now
        state.handed_over = True
        state.safe_downstream = False  # e.g. we backtracked
        fwd._put_state(control.serial, state)
        behind = control.advanced(None, 2)
        verdict = fwd.anycast_decision(frame_for(behind), -70)
        assert not verdict.accept  # not safe: no courtesy ack either

    def test_courtesy_ack_when_safely_forwarded(self, net):
        sim, stacks, protocols, _ = net
        fwd = protocols[1].forwarding
        control = control_for(protocols, 3)
        state = _RelayState(control=control, came_from=0)
        state.sent_expected = 8
        state.sent_at = sim.now
        state.handed_over = True
        state.safe_downstream = True
        fwd._put_state(control.serial, state)
        behind = control.advanced(None, 2)
        verdict = fwd.anycast_decision(frame_for(behind), -70)
        assert verdict.accept  # courtesy ack stops the flailing sender

    def test_suppression_expires_after_ttl(self, net):
        sim, stacks, protocols, _ = net
        params = protocols[1].forwarding.params
        fwd = protocols[1].forwarding
        control = control_for(protocols, 3)
        state = _RelayState(control=control, came_from=0)
        state.sent_expected = 8
        state.sent_at = sim.now - params.stale_ttl - 1
        state.handed_over = True
        state.safe_downstream = False
        fwd._put_state(control.serial, state)
        my_len = protocols[1].allocation.code.length
        behind = control.advanced(None, max(my_len - 1, 0))
        verdict = fwd.anycast_decision(frame_for(behind), -70)
        # TTL expired: node 1 may participate again (it is on the path).
        assert verdict.accept


class TestOverhearCancellation:
    def test_holder_cedes_to_farther_copy(self, net):
        sim, stacks, protocols, _ = net
        fwd = protocols[1].forwarding
        control = control_for(protocols, 3)
        state = _RelayState(control=control.advanced(None, 5), came_from=0)
        state.sent_expected = 5
        state.sent_at = sim.now
        fwd._put_state(control.serial, state)
        farther = control.advanced(None, 9)
        verdict = fwd.anycast_decision(frame_for(farther, src=2), -70)
        assert not verdict.accept
        assert state.handed_over
        assert state.safe_downstream

    def test_tie_breaks_by_node_id(self, net):
        sim, stacks, protocols, _ = net
        fwd = protocols[2].forwarding  # node id 2
        control = control_for(protocols, 3)
        state = _RelayState(control=control.advanced(None, 5), came_from=0)
        state.sent_expected = 5
        state.sent_at = sim.now
        fwd._put_state(control.serial, state)
        equal = control.advanced(None, 5)
        equal_from_lower = frame_for(equal, src=1)
        fwd.anycast_decision(equal_from_lower, -70)
        assert state.handed_over  # lower id wins the tie; we cede

    def test_tie_from_higher_id_keeps_ours(self, net):
        sim, stacks, protocols, _ = net
        fwd = protocols[1].forwarding  # node id 1
        control = control_for(protocols, 3)
        state = _RelayState(control=control.advanced(None, 5), came_from=0)
        state.sent_expected = 5
        state.sent_at = sim.now
        fwd._put_state(control.serial, state)
        equal_from_higher = frame_for(control.advanced(None, 5), src=2)
        fwd.anycast_decision(equal_from_higher, -70)
        assert not state.handed_over


class TestSinkWatchdog:
    def test_watchdog_refreshes_stale_destination_code(self, net):
        sim, stacks, protocols, controller = net
        fwd = protocols[0].forwarding
        real_code = protocols[3].allocation.code
        stale = PathCode.from_bits("1" * 8)
        pending = fwd.send_control(3, stale, payload="x")
        assert pending.control.destination_code == stale
        # Controller knows the real code (snapshotted in the fixture).
        sim.run(until=sim.now + fwd.params.sink_retry_interval + 2 * SECOND)
        assert pending.control.destination_code == real_code

    def test_watchdog_stops_after_ack(self, net):
        sim, stacks, protocols, _ = net
        fwd = protocols[0].forwarding
        pending = protocols[0].remote_control(2)
        sim.run(until=sim.now + 30 * SECOND)
        assert pending.acked_at is not None
        forwards_after_ack = fwd.controls_forwarded
        sim.run(until=sim.now + 30 * SECOND)
        assert fwd.controls_forwarded == forwards_after_ack


class TestCandidateFiltering:
    def test_unreachable_candidates_skipped(self, net):
        sim, stacks, protocols, _ = net
        fwd = protocols[0].forwarding
        target = protocols[3].allocation.code
        before = fwd._candidates(target, base_length=1)
        assert before
        for neighbor, _ in before:
            fwd.allocation.neighbor_codes.mark_unreachable(neighbor, sim.now)
        after = fwd._candidates(target, base_length=1)
        assert after == []

    def test_unreachable_expires(self, net):
        sim, stacks, protocols, _ = net
        fwd = protocols[0].forwarding
        target = protocols[3].allocation.code
        for neighbor, _ in fwd._candidates(target, base_length=1):
            fwd.allocation.neighbor_codes.mark_unreachable(neighbor, sim.now)
        ttl = fwd.allocation.neighbor_codes.unreachable_ttl
        sim.run(until=sim.now + ttl + SECOND)
        assert fwd._candidates(target, base_length=1)
