"""Property tests for the event queue under lazy deletion.

The queue stores ``(time, seq, event)`` tuples with tombstone cancellation;
these properties pin the contract the kernel depends on: strict
``(time, seq)`` dispatch order, FIFO ties, cancelled events never firing,
``pop_due`` honouring its bound, and the live-event accounting staying an
exact count when every cancel is routed through ``Simulator.cancel``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.events import EventQueue
from repro.sim.simulator import Simulator

delays = st.integers(min_value=0, max_value=1_000)
schedules = st.lists(
    st.tuples(delays, st.booleans()), min_size=0, max_size=60
)


@given(schedules)
def test_fire_order_and_cancellation(plan):
    """Non-cancelled events fire in (time, seq) order; cancelled never fire."""
    sim = Simulator(seed=0)
    fired = []
    events = []
    for index, (delay, _cancel) in enumerate(plan):
        events.append(sim.schedule(delay, fired.append, index))
    expected = []
    for index, (delay, cancel) in enumerate(plan):
        if cancel:
            sim.cancel(events[index])
        else:
            expected.append((delay, index))
    sim.run()
    expected.sort()  # (time, schedule order) = (time, seq) order
    assert fired == [index for _, index in expected]
    assert sim.pending_events() == 0


@given(schedules)
def test_pending_accounting_is_exact_via_simulator_cancel(plan):
    """Cancelling through the simulator keeps len(queue) an exact live count."""
    sim = Simulator(seed=0)
    events = [sim.schedule(delay, lambda: None) for delay, _ in plan]
    live = len(plan)
    for event, (_delay, cancel) in zip(events, plan):
        if cancel:
            sim.cancel(event)
            live -= 1
            # Double-cancel must not decrement twice.
            sim.cancel(event)
        assert sim.pending_events() == live


@given(schedules, st.integers(min_value=0, max_value=1_000))
def test_pop_due_respects_bound(plan, bound):
    """pop_due drains exactly the pending events with time <= bound, in order."""
    queue = EventQueue()
    events = []
    for delay, _ in plan:
        events.append(queue.push(delay, lambda: None))
    cancelled = set()
    for event, (_delay, cancel) in zip(events, plan):
        if cancel:
            event.cancel()
            queue.note_cancelled()
            cancelled.add(event)
    popped = []
    while True:
        event = queue.pop_due(bound)
        if event is None:
            break
        popped.append(event)
    assert all(e.time <= bound for e in popped)
    assert all(e not in cancelled for e in popped)
    expected = sorted(
        (e for e in events if e not in cancelled and e.time <= bound),
        key=lambda e: (e.time, e.seq),
    )
    assert popped == expected
    # The remainder is exactly the live events beyond the bound.
    assert len(queue) == sum(
        1 for e in events if e not in cancelled and e.time > bound
    )


@given(st.lists(st.tuples(delays, delays), min_size=1, max_size=30))
@settings(max_examples=50)
def test_reschedule_chains_fire_in_order(plan):
    """Events scheduled from inside callbacks still dispatch in global order."""
    sim = Simulator(seed=0)
    order = []

    def outer(index, inner_delay):
        order.append(("outer", index, sim.now))
        sim.schedule(inner_delay, inner, index)

    def inner(index):
        order.append(("inner", index, sim.now))

    for index, (delay, inner_delay) in enumerate(plan):
        sim.schedule(delay, outer, index, inner_delay)
    sim.run()
    times = [t for _, _, t in order]
    assert times == sorted(times)
    assert len(order) == 2 * len(plan)
    assert sim.pending_events() == 0


@given(schedules, st.integers(min_value=0, max_value=500))
@settings(max_examples=50)
def test_run_until_matches_full_run_prefix(plan, until):
    """run(until=t) fires exactly the full run's events with time <= t."""
    fired_full, fired_partial = [], []
    for fired, bound in ((fired_full, None), (fired_partial, until)):
        sim = Simulator(seed=0)
        for index, (delay, cancel) in enumerate(plan):
            event = sim.schedule(delay, lambda i=index: fired.append((sim.now, i)))
            if cancel:
                sim.cancel(event)
        sim.run(until=bound)
        if bound is not None:
            assert sim.now == bound
    assert fired_partial == [(t, i) for t, i in fired_full if t <= until]
