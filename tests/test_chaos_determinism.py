"""Determinism regressions for the chaos layer: same seed + same plan must
reproduce bit-identical metrics, and the parallel runner must match the
serial path exactly."""

from repro.experiments.chaos import run_chaos
from repro.runner import ParallelRunner, chaos_spec

#: Small-but-real chaos cell: enough sim time for faults to fire and a
#: couple of controls to flow, small enough for the test budget.
SMALL = dict(
    n_controls=2,
    control_interval_s=4.0,
    converge_seconds=30.0,
    drain_seconds=10.0,
)


def test_same_seed_same_plan_is_bit_identical():
    a = run_chaos("tele", scenario="crash-churn", intensity=1.0, seed=3, **SMALL)
    b = run_chaos("tele", scenario="crash-churn", intensity=1.0, seed=3, **SMALL)
    assert a["trace_digest"] == b["trace_digest"]
    assert a == b


def test_different_seed_diverges():
    a = run_chaos("tele", scenario="mixed", intensity=1.0, seed=1, **SMALL)
    b = run_chaos("tele", scenario="mixed", intensity=1.0, seed=2, **SMALL)
    assert a["trace_digest"] != b["trace_digest"]


def test_parallel_jobs_match_serial():
    def specs():
        return [
            chaos_spec("tele", scenario="mixed", intensity=0.5, seed=seed, **SMALL)
            for seed in (1, 2)
        ]

    serial = ParallelRunner(jobs=1).results(specs())
    parallel = ParallelRunner(jobs=2).results(specs())
    assert serial == parallel
