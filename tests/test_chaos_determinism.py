"""Determinism regressions for the chaos layer: same seed + same plan must
reproduce bit-identical metrics, and the parallel runner must match the
serial path exactly."""

from repro.experiments.chaos import run_chaos
from repro.runner import ParallelRunner, chaos_spec

#: Small-but-real chaos cell: enough sim time for faults to fire and a
#: couple of controls to flow, small enough for the test budget.
SMALL = dict(
    n_controls=2,
    control_interval_s=4.0,
    converge_seconds=30.0,
    drain_seconds=10.0,
)


def test_same_seed_same_plan_is_bit_identical():
    a = run_chaos("tele", scenario="crash-churn", intensity=1.0, seed=3, **SMALL)
    b = run_chaos("tele", scenario="crash-churn", intensity=1.0, seed=3, **SMALL)
    assert a["trace_digest"] == b["trace_digest"]
    assert a == b


def test_different_seed_diverges():
    a = run_chaos("tele", scenario="mixed", intensity=1.0, seed=1, **SMALL)
    b = run_chaos("tele", scenario="mixed", intensity=1.0, seed=2, **SMALL)
    assert a["trace_digest"] != b["trace_digest"]


def test_parallel_jobs_match_serial():
    def specs():
        return [
            chaos_spec("tele", scenario="mixed", intensity=0.5, seed=seed, **SMALL)
            for seed in (1, 2)
        ]

    serial = ParallelRunner(jobs=1).results(specs())
    parallel = ParallelRunner(jobs=2).results(specs())
    assert serial == parallel


def test_jobs1_vs_jobs4_identical_results_and_trace_digests():
    """Differential run of one chaos grid cell at jobs=1 vs jobs=4.

    Worker processes (spawn) and the in-process serial path must produce the
    same payload down to the trace digest — the strongest cross-path
    bit-identity statement the runner can make, and the regression tripwire
    for any kernel state that leaks across cells or processes.
    """

    def specs():
        return [
            chaos_spec(
                "tele", scenario="crash-churn", intensity=1.0, seed=3, **SMALL
            ),
            chaos_spec("tele", scenario="mixed", intensity=0.5, seed=1, **SMALL),
        ]

    serial = ParallelRunner(jobs=1).results(specs())
    parallel = ParallelRunner(jobs=4).results(specs())
    assert all(result is not None for result in serial)
    for s, p in zip(serial, parallel):
        assert s["trace_digest"] == p["trace_digest"]
        assert s == p
    # And both paths agree with a direct in-process run of the same cell.
    direct = run_chaos(
        "tele", scenario="crash-churn", intensity=1.0, seed=3, **SMALL
    )
    assert serial[0]["trace_digest"] == direct["trace_digest"]
    assert serial[0] == direct
