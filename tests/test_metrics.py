"""Tests for the metrics layer."""

import pytest

from repro.metrics.control import ControlMetrics, ControlRecord
from repro.metrics.stats import mean, percentile, summarize
from repro.sim.units import SECOND


def record(index=0, hop=2, sent=0, delivered=None, acked=None, athx=None):
    r = ControlRecord(
        index=index, destination=10 + index, hop_count=hop, sent_at=sent
    )
    r.delivered_at = delivered
    r.acked_at = acked
    r.athx = athx
    return r


class TestStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) is None

    def test_percentile_interpolates(self):
        assert percentile([0.0, 10.0], 50.0) == 5.0
        assert percentile([1.0], 90.0) == 1.0
        assert percentile([], 50.0) is None

    def test_percentile_bounds(self):
        values = [3.0, 1.0, 2.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 100.0) == 3.0
        with pytest.raises(ValueError):
            percentile(values, 101.0)

    def test_summarize_keys(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s["n"] == 4.0
        assert s["mean"] == 2.5
        assert s["min"] == 1.0
        assert s["max"] == 4.0
        assert s["median"] == 2.5


class TestControlRecord:
    def test_latency_and_rtt(self):
        r = record(sent=1 * SECOND, delivered=2 * SECOND, acked=3 * SECOND)
        assert r.delivered
        assert r.latency_s == pytest.approx(1.0)
        assert r.rtt_s == pytest.approx(2.0)

    def test_undelivered(self):
        r = record()
        assert not r.delivered
        assert r.latency_s is None
        assert r.rtt_s is None


class TestControlMetrics:
    def _filled(self):
        m = ControlMetrics()
        m.add(record(0, hop=1, sent=0, delivered=SECOND, athx=1))
        m.add(record(1, hop=1, sent=0))
        m.add(record(2, hop=3, sent=0, delivered=2 * SECOND, athx=2))
        m.add(record(3, hop=3, sent=0, delivered=4 * SECOND, athx=4))
        return m

    def test_pdr(self):
        m = self._filled()
        assert m.pdr() == pytest.approx(0.75)
        assert ControlMetrics().pdr() is None

    def test_pdr_by_hop(self):
        m = self._filled()
        assert m.pdr_by_hop() == {1: 0.5, 3: 1.0}

    def test_latency_by_hop(self):
        m = self._filled()
        by_hop = m.latency_by_hop()
        assert by_hop[1] == pytest.approx(1.0)
        assert by_hop[3] == pytest.approx(3.0)

    def test_athx_samples_and_ratio(self):
        m = self._filled()
        assert sorted(m.athx_samples()) == [(1, 1), (3, 2), (3, 4)]
        # ratios: 1/1, 2/3, 4/3 → mean = 1.0
        assert m.mean_athx_ratio() == pytest.approx(1.0)

    def test_mean_latency(self):
        m = self._filled()
        assert m.mean_latency() == pytest.approx((1.0 + 2.0 + 4.0) / 3)


class TestNetworkMetrics:
    def test_duty_cycle_and_tx_deltas(self):
        from repro.metrics.network import NetworkMetrics
        from repro.net import NodeStack
        from repro.radio.channel import Channel
        from repro.radio.frame import FrameType
        from repro.radio.noise import ConstantNoise
        from repro.radio.propagation import LogDistancePathLoss
        from repro.sim import Simulator

        sim = Simulator(seed=1)
        gains = LogDistancePathLoss(pl_d0=40.0, seed=1, shadowing_sigma=0.0).gain_matrix(
            [(0.0, 0.0), (10.0, 0.0)]
        )
        channel = Channel(sim, gains, noise_model=ConstantNoise())
        stacks = {
            0: NodeStack(sim, channel, 0, is_root=True),
            1: NodeStack(sim, channel, 1),
        }
        for s in stacks.values():
            s.start()
        metrics = NetworkMetrics(sim, stacks)
        sim.run(until=30 * SECOND)
        metrics.mark()
        beacons_at_mark = metrics.tx_since_mark()
        assert beacons_at_mark == 0
        sim.run(until=60 * SECOND)
        assert metrics.tx_since_mark() >= 0
        duty = metrics.duty_cycles()
        assert 0 not in duty  # root excluded by default
        assert 0.0 <= duty[1] <= 1.0
        with_root = metrics.duty_cycles(include_root=True)
        assert with_root[0] == pytest.approx(1.0)

    def test_tx_per_control_packet_guard(self):
        from repro.metrics.network import NetworkMetrics
        from repro.sim import Simulator

        metrics = NetworkMetrics(Simulator(), {})
        assert metrics.tx_per_control_packet(0) is None
