"""Execution tests for the CLI's light experiment paths and the harness glue.

The heavyweight comparison commands are exercised by the benchmarks; here we
drive the fast code-construction commands end to end through ``cli.main`` on
the small indoor topology, which keeps the suite quick while covering the
argument plumbing, table rendering, and CSV output for real data.
"""

import pytest

from repro import cli


@pytest.fixture(scope="module")
def indoor_args():
    return ["--topology", "indoor-testbed", "--seed", "1"]


class TestConstructionCommands:
    def test_table2_executes(self, capsys, indoor_args):
        rc = cli.main(["table2", *indoor_args])
        out = capsys.readouterr().out
        assert rc == 0
        assert "avg_bits" in out
        assert "1 " in out  # at least the 1-hop row

    def test_fig6b_executes(self, capsys, indoor_args):
        rc = cli.main(["fig6b", *indoor_args])
        out = capsys.readouterr().out
        assert rc == 0
        assert "avg_children" in out

    def test_fig6c_executes(self, capsys, indoor_args):
        rc = cli.main(["fig6c", *indoor_args])
        out = capsys.readouterr().out
        assert rc == 0
        assert "median" in out

    def test_fig6d_executes(self, capsys, indoor_args):
        rc = cli.main(["fig6d", *indoor_args])
        out = capsys.readouterr().out
        assert rc == 0
        assert "ratio" in out

    def test_csv_written(self, tmp_path, capsys, indoor_args):
        csv_path = tmp_path / "t2.csv"
        rc = cli.main(["table2", *indoor_args, "--csv", str(csv_path)])
        capsys.readouterr()
        assert rc == 0
        lines = csv_path.read_text().strip().splitlines()
        assert lines[0] == "hop,n,avg_bits,min_bits,max_bits"
        assert len(lines) > 3


class TestQuickstartCommand:
    def test_quickstart_delivers(self, capsys):
        rc = cli.main(["quickstart", "--topology", "indoor-testbed", "--seed", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "delivered=True" in out
