"""ResultCache under concurrent writers (the farm-workers-share-a-dir case).

The hazard being pinned: a reader observes a damaged entry, decides to
quarantine it, and meanwhile a concurrent writer atomically installs a
fresh valid entry in the same slot. Without the re-verify-under-lock
discipline the reader's ``os.replace`` would rename the *fresh* entry to
``*.corrupt`` — destroying a valid result. With it, the quarantine is
abandoned and the fresh entry survives.
"""

import threading

import pytest

from repro.runner import ResultCache, selftest_spec


def result_for(index):
    return {"index": index, "value": index * 7}


class TestQuarantineReVerify:
    def test_stale_observation_never_quarantines_a_healed_entry(self, tmp_path):
        """The exact interleave: damaged read → concurrent heal → quarantine."""
        cache = ResultCache(tmp_path)
        spec = selftest_spec(0)
        cache.store(spec, result_for(0))
        path = cache.path_for(spec)
        healed = path.read_bytes()
        # The reader observed these damaged bytes...
        damaged = b"{truncated garbage"
        # ...but by quarantine time the writer has already healed the slot.
        cache._quarantine(path, "invalid JSON", observed=damaged)
        assert path.exists(), "fresh valid entry was renamed aside"
        assert path.read_bytes() == healed
        assert cache.quarantined == 0
        assert cache.load(spec) == result_for(0)

    def test_matching_observation_still_quarantines(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = selftest_spec(1)
        cache.store(spec, result_for(1))
        path = cache.path_for(spec)
        path.write_bytes(b"{truncated garbage")
        assert cache.load(spec) is None
        assert cache.quarantined == 1
        assert not path.exists()
        assert path.with_name(path.name + ".corrupt").exists()

    def test_vanished_entry_is_a_silent_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = selftest_spec(2)
        path = cache.path_for(spec)
        cache._quarantine(path, "gone", observed=b"whatever")
        assert cache.quarantined == 0

    def test_locking_flag_degrades_gracefully(self, tmp_path):
        """locking=False keeps the rename discipline (no flock taken)."""
        cache = ResultCache(tmp_path, locking=False)
        assert cache.locking is False
        spec = selftest_spec(3)
        cache.store(spec, result_for(3))
        assert cache.load(spec) == result_for(3)
        assert not (tmp_path / ".lock").exists()


class TestTwoWriterStress:
    @pytest.mark.parametrize("locking", [True, False])
    def test_two_writers_one_vandal_no_lost_results(self, tmp_path, locking):
        """Two writer threads + a corrupting thread hammer one cache dir.

        Invariants: no call ever raises, and once the dust settles every
        slot heals to the canonical result — corruption costs misses,
        never a wrong payload and never a permanently destroyed slot.
        """
        specs = [selftest_spec(i) for i in range(8)]
        rounds = 40
        caches = [ResultCache(tmp_path, locking=locking) for _ in range(3)]
        errors = []

        def writer(cache):
            try:
                for _ in range(rounds):
                    for spec in specs:
                        cache.store(spec, result_for(spec.params["index"]))
                        loaded = cache.load(spec)
                        # A hit must be the canonical payload; a miss means a
                        # vandalised entry was quarantined mid-heal.
                        if loaded is not None:
                            assert loaded == result_for(spec.params["index"])
            except BaseException as exc:  # surfaced after join
                errors.append(exc)

        def vandal(cache):
            try:
                for _ in range(rounds * 2):
                    for spec in specs[::2]:
                        path = cache.path_for(spec)
                        try:
                            path.write_bytes(b"\xff\xfe not json")
                        except OSError:
                            pass
                        cache.load(spec)  # exercises the quarantine path
            except BaseException as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(caches[0],)),
            threading.Thread(target=writer, args=(caches[1],)),
            threading.Thread(target=vandal, args=(caches[2],)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors

        # Quiescent heal: one more store per slot must be durably loadable.
        final = ResultCache(tmp_path, locking=locking)
        for spec in specs:
            final.store(spec, result_for(spec.params["index"]))
            assert final.load(spec) == result_for(spec.params["index"])
