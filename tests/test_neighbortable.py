"""Tests for the neighbour code table (paper §III-B6 end, §III-C3)."""

from repro.core.neighbortable import NeighborCodeTable
from repro.core.pathcode import PathCode


def code(bits: str) -> PathCode:
    return PathCode.from_bits(bits)


class TestCodeUpdates:
    def test_update_and_lookup(self):
        table = NeighborCodeTable()
        table.update_code(5, code("010"), now=100)
        assert table.code_of(5) == code("010")
        assert 5 in table
        assert len(table) == 1

    def test_code_change_demotes_old(self):
        table = NeighborCodeTable(old_code_ttl=1000)
        table.update_code(5, code("010"), now=0)
        table.update_code(5, code("0111"), now=100)
        entry = table.entry(5)
        assert entry.new_code == code("0111")
        assert entry.old_code == code("010")
        assert entry.old_code_expires == 1100

    def test_same_code_does_not_demote(self):
        table = NeighborCodeTable()
        table.update_code(5, code("010"), now=0)
        table.update_code(5, code("010"), now=100)
        assert table.entry(5).old_code is None

    def test_old_code_expiry(self):
        table = NeighborCodeTable(old_code_ttl=1000)
        table.update_code(5, code("010"), now=0)
        table.update_code(5, code("0111"), now=100)
        live = dict(table.codes(now=500))
        assert live  # both codes present before expiry
        codes_at_500 = list(table.codes(now=500))
        assert (5, code("010")) in codes_at_500
        codes_at_2000 = list(table.codes(now=2000))
        assert (5, code("010")) not in codes_at_2000
        assert (5, code("0111")) in codes_at_2000


class TestUnreachable:
    def test_mark_with_ttl_expires(self):
        table = NeighborCodeTable(unreachable_ttl=1000)
        table.update_code(5, code("01"), now=0)
        table.mark_unreachable(5, now=100)
        assert table.entry(5).is_unreachable(500)
        assert not table.entry(5).is_unreachable(1200)

    def test_beacon_clears_flag(self):
        table = NeighborCodeTable()
        table.update_code(5, code("01"), now=0)
        table.mark_unreachable(5, now=100)
        table.heard_from(5, now=200)
        assert not table.entry(5).is_unreachable(300)

    def test_unreachable_excluded_from_codes(self):
        table = NeighborCodeTable(unreachable_ttl=1000)
        table.update_code(5, code("01"), now=0)
        table.update_code(6, code("10"), now=0)
        table.mark_unreachable(5, now=0)
        live = [n for n, _ in table.codes(now=100)]
        assert live == [6]
        included = [n for n, _ in table.codes(now=100, include_unreachable=True)]
        assert sorted(included) == [5, 6]

    def test_mark_unknown_neighbor_is_noop(self):
        table = NeighborCodeTable()
        table.mark_unreachable(42, now=0)  # must not raise
        assert 42 not in table


class TestBestOnPath:
    def test_longest_prefix_wins(self):
        table = NeighborCodeTable()
        target = code("0010101")
        table.update_code(1, code("001"), now=0)
        table.update_code(2, code("00101"), now=0)
        table.update_code(3, code("0011"), now=0)  # off path
        neighbor, length = table.best_on_path(target, now=0)
        assert neighbor == 2
        assert length == 5

    def test_min_length_threshold(self):
        table = NeighborCodeTable()
        target = code("0010101")
        table.update_code(1, code("001"), now=0)
        neighbor, length = table.best_on_path(target, now=0, min_length=3)
        assert neighbor is None
        assert length == -1

    def test_old_codes_participate(self):
        # The retained old code keeps a renamed neighbour addressable.
        table = NeighborCodeTable(old_code_ttl=10_000)
        target = code("0010101")
        table.update_code(1, code("00101"), now=0)
        table.update_code(1, code("0111"), now=100)  # moved subtree
        neighbor, length = table.best_on_path(target, now=200)
        assert neighbor == 1
        assert length == 5

    def test_unreachable_skipped(self):
        table = NeighborCodeTable(unreachable_ttl=10_000)
        target = code("0010101")
        table.update_code(1, code("00101"), now=0)
        table.mark_unreachable(1, now=0)
        assert table.best_on_path(target, now=100) == (None, -1)
