"""MAC contract battery: the same behavioural guarantees across adapters.

The protocols above the MAC rely on a handful of invariants — unicast
delivers-or-times-out within one train window, broadcast reaches awake
neighbours, anycast picks an acceptor, duplicates never reach the upper
layer twice, a reset cancels cleanly and the adapter keeps working. This
battery asserts them across materially different MAC configurations (wake
intervals, always-on, announce off, broadcast caps) and across every
:class:`repro.mac.MacAdapter` implementation (LPL and p-CSMA), so a new
adapter inherits the whole contract by being added to ``ADAPTERS``.
"""

import pytest

from repro.mac import AnycastDecision, LPLMac, MacAdapter, MacParams, PCsmaMac
from repro.radio.channel import Channel
from repro.radio.frame import BROADCAST, Frame, FrameType
from repro.radio.noise import ConstantNoise
from repro.radio.propagation import LogDistancePathLoss
from repro.radio.radio import Radio
from repro.sim import MILLISECOND, SECOND, Simulator

CONFIGS = {
    "default": MacParams(),
    "fast-wake": MacParams(wake_interval=256 * MILLISECOND),
    "slow-wake": MacParams(wake_interval=1024 * MILLISECOND),
    "no-announce": MacParams(handover_announce=False),
    "capped-broadcast": MacParams(broadcast_copies_cap=4),
}

#: Every registered MAC adapter must pass the whole battery. With plain
#: ``MacParams`` (no ``p0``) the p-CSMA adapter degrades to 1-persistent
#: CSMA, so both run the same configs on the same CC2420-profile channel.
ADAPTERS = {
    "lpl": LPLMac,
    "pcsma": PCsmaMac,
}


def build(params, mac_cls=LPLMac, n=3, spacing=8.0, seed=2, always_on_ids=(0,)):
    sim = Simulator(seed=seed)
    positions = [(i * spacing, 0.0) for i in range(n)]
    gains = LogDistancePathLoss(pl_d0=40.0, seed=seed, shadowing_sigma=0.0).gain_matrix(
        positions
    )
    channel = Channel(sim, gains, noise_model=ConstantNoise())
    macs = []
    for i in range(n):
        mac = mac_cls(
            sim, Radio(sim, channel, i), params=params, always_on=(i in always_on_ids)
        )
        macs.append(mac)
    for mac in macs:
        mac.start()
    return sim, macs


@pytest.fixture(params=sorted(CONFIGS), ids=sorted(CONFIGS))
def config(request):
    return CONFIGS[request.param]


@pytest.fixture(params=sorted(ADAPTERS), ids=sorted(ADAPTERS))
def mac_cls(request):
    cls = ADAPTERS[request.param]
    assert issubclass(cls, MacAdapter)
    return cls


class TestContract:
    def test_unicast_resolves_within_one_train_window(self, config, mac_cls):
        sim, macs = build(config, mac_cls)
        results = []
        sim.schedule(
            0,
            lambda: macs[0].send(
                Frame(src=0, dst=1, type=FrameType.DATA, length=40), results.append
            ),
        )
        horizon = config.wake_interval * 3
        sim.run(until=horizon)
        assert results, "send never resolved"
        result = results[0]
        assert result.ok
        assert result.finished - result.started <= config.wake_interval + config.train_slack

    def test_unicast_to_silent_node_times_out(self, config, mac_cls):
        sim, macs = build(config, mac_cls, spacing=200.0)
        results = []
        sim.schedule(
            0,
            lambda: macs[0].send(
                Frame(src=0, dst=1, type=FrameType.DATA, length=40), results.append
            ),
        )
        sim.run(until=config.wake_interval * 4)
        assert results and not results[0].ok

    def test_broadcast_reaches_duty_cycled_neighbor(self, config, mac_cls):
        if config.broadcast_copies_cap is not None:
            pytest.skip("capped broadcast targets always-on networks")
        sim, macs = build(config, mac_cls)
        received = []
        macs[1].receive_handler = lambda frame, rssi: received.append(frame.frame_id)
        sim.schedule(
            0,
            lambda: macs[0].send(
                Frame(src=0, dst=BROADCAST, type=FrameType.ROUTING_BEACON, length=28)
            ),
        )
        sim.run(until=config.wake_interval * 4)
        assert received

    def test_anycast_resolves_to_an_acceptor(self, config, mac_cls):
        sim, macs = build(config, mac_cls)
        macs[1].anycast_handler = lambda frame, rssi: AnycastDecision(True, slot=1)
        macs[2].anycast_handler = lambda frame, rssi: AnycastDecision.reject()
        macs[1].receive_handler = lambda frame, rssi: None
        results = []
        sim.schedule(
            0,
            lambda: macs[0].send_anycast(
                Frame(src=0, dst=BROADCAST, type=FrameType.CONTROL, length=36),
                results.append,
            ),
        )
        sim.run(until=config.wake_interval * 4)
        assert results and results[0].ok
        assert results[0].acker == 1

    def test_no_duplicate_deliveries(self, config, mac_cls):
        sim, macs = build(config, mac_cls)
        delivered = []
        macs[1].receive_handler = lambda frame, rssi: delivered.append(frame.frame_id)
        for _ in range(3):
            sim.schedule(
                0,
                lambda: macs[0].send(
                    Frame(src=0, dst=1, type=FrameType.DATA, length=40)
                ),
            )
        sim.run(until=config.wake_interval * 8)
        assert len(delivered) == len(set(delivered))

    def test_duty_cycle_of_idle_node_scales_with_wake_interval(self, config, mac_cls):
        sim, macs = build(config, mac_cls)
        sim.run(until=60 * SECOND)
        idle_duty = macs[2].duty_cycle()
        # Roughly listen_window / wake_interval, within generous bounds.
        expected = config.listen_window / config.wake_interval
        assert idle_duty < expected * 4 + 0.02

    def test_send_during_reception_resolves_without_radio_errors(
        self, config, mac_cls
    ):
        # A node asked to send while its radio is mid-reception must defer
        # (busy channel / RX state) rather than sample CCA into the ongoing
        # frame or raise — and the send must still resolve.
        sim, macs = build(config, mac_cls, always_on_ids=(0, 1))
        results = []
        sim.schedule(
            0,
            lambda: macs[0].send(
                Frame(src=0, dst=BROADCAST, type=FrameType.ROUTING_BEACON, length=100)
            ),
        )
        sim.schedule(
            2 * MILLISECOND,
            lambda: macs[1].send(
                Frame(src=1, dst=0, type=FrameType.DATA, length=40), results.append
            ),
        )
        sim.run(until=config.wake_interval * 8)
        assert results, "send during reception never resolved"

    def test_reset_cancels_pending_sends_and_recovers(self, config, mac_cls):
        # Mid-train reset (the fault injector's reboot path): the pending
        # send's callback fires with reason "cancelled", and the adapter
        # keeps working — a fresh send after the fault succeeds.
        sim, macs = build(config, mac_cls)
        first, second = [], []
        sim.schedule(
            0,
            lambda: macs[0].send(
                Frame(src=0, dst=1, type=FrameType.DATA, length=40), first.append
            ),
        )
        sim.schedule(1 * MILLISECOND, macs[0].reset)
        sim.schedule(
            config.wake_interval * 2,
            lambda: macs[0].send(
                Frame(src=0, dst=1, type=FrameType.DATA, length=40), second.append
            ),
        )
        sim.run(until=config.wake_interval * 6)
        assert first and not first[0].ok and first[0].reason == "cancelled"
        assert second and second[0].ok
