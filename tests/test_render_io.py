"""Tests for ASCII topology rendering and result persistence."""

import pytest

from repro.experiments.comparison import ComparisonResult
from repro.metrics.control import ControlMetrics, ControlRecord
from repro.metrics.io import comparison_to_dict, load_results, save_results
from repro.topology import indoor_testbed, random_uniform
from repro.topology.render import render_deployment, render_network


class TestRenderDeployment:
    def test_contains_sink_and_frame(self):
        deployment = indoor_testbed(seed=1)
        text = render_deployment(deployment)
        assert "S" in text
        assert text.count("+") >= 4  # box corners
        assert "40 nodes" in text

    def test_hop_glyphs(self):
        deployment = random_uniform(n=5, width=30, height=30, seed=2)
        hops = {n: n % 3 for n in range(5)}
        hops[deployment.sink] = 0
        text = render_deployment(deployment, hop_counts=hops)
        assert "hop count" in text

    def test_unrouted_marker(self):
        deployment = random_uniform(n=4, width=20, height=20, seed=3)
        hops = {n: 0xFFFF for n in range(4) if n != deployment.sink}
        text = render_deployment(deployment, hop_counts=hops)
        assert "?" in text

    def test_custom_labels(self):
        deployment = random_uniform(n=4, width=20, height=20, seed=3)
        text = render_deployment(deployment, label=lambda n: "X")
        assert "X" in text

    def test_tiny_grid_rejected(self):
        deployment = random_uniform(n=4, width=20, height=20, seed=3)
        with pytest.raises(ValueError):
            render_deployment(deployment, width=2, height=2)

    def test_render_network(self):
        import repro

        net = repro.build_network(topology="indoor-testbed", seed=1)
        net.run(30)
        text = render_network(net)
        assert "S" in text


class TestResultsIO:
    def _result(self):
        metrics = ControlMetrics()
        record = ControlRecord(index=0, destination=4, hop_count=2, sent_at=0)
        record.delivered_at = 1_500_000
        record.athx = 2
        metrics.add(record)
        return ComparisonResult(
            variant="tele",
            zigbee_channel=26,
            seed=1,
            n_controls=1,
            pdr=1.0,
            pdr_by_hop={2: 1.0},
            latency_by_hop={2: 1.5},
            mean_latency=1.5,
            tx_per_control=3.0,
            duty_cycle=0.03,
            athx_samples=[(2, 2)],
            control_metrics=metrics,
        )

    def test_dict_shape(self):
        payload = comparison_to_dict(self._result())
        assert payload["variant"] == "tele"
        assert payload["pdr_by_hop"] == {"2": 1.0}
        assert payload["records"][0]["latency_s"] == pytest.approx(1.5)

    def test_roundtrip_single(self, tmp_path):
        path = save_results(self._result(), tmp_path / "run.json")
        loaded = load_results(path)
        assert loaded["seed"] == 1
        assert loaded["athx_samples"] == [[2, 2]]

    def test_roundtrip_list(self, tmp_path):
        path = save_results([self._result(), self._result()], tmp_path / "runs.json")
        loaded = load_results(path)
        assert isinstance(loaded, list) and len(loaded) == 2
