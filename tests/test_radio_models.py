"""Tests for propagation, noise, and the CC2420 PHY model."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.radio.cc2420 import CC2420, packet_airtime
from repro.radio.noise import CPMNoiseModel, ConstantNoise, synthesize_meyer_like_trace
from repro.radio.propagation import LogDistancePathLoss


class TestPropagation:
    def test_path_loss_grows_with_distance(self):
        model = LogDistancePathLoss(shadowing_sigma=0.0)
        assert model.path_loss_db(10) > model.path_loss_db(5) > model.path_loss_db(1)

    def test_exponent_four_slope(self):
        model = LogDistancePathLoss(path_loss_exponent=4.0, pl_d0=40.0, shadowing_sigma=0.0)
        # 40 dB per decade of distance at n=4.
        assert model.path_loss_db(10) - model.path_loss_db(1) == pytest.approx(40.0)

    def test_below_reference_distance_clamped(self):
        model = LogDistancePathLoss(shadowing_sigma=0.0)
        assert model.path_loss_db(0.1) == model.path_loss_db(1.0)

    def test_gains_are_symmetric(self):
        model = LogDistancePathLoss(seed=7)
        a, b = (0.0, 0.0), (13.0, 5.0)
        assert model.link_gain_db(1, 2, a, b) == model.link_gain_db(2, 1, b, a)

    def test_shadowing_is_stable_per_link(self):
        model = LogDistancePathLoss(seed=7)
        g1 = model.link_gain_db(1, 2, (0, 0), (10, 0))
        g2 = model.link_gain_db(1, 2, (0, 0), (10, 0))
        assert g1 == g2

    def test_shadowing_differs_across_links(self):
        model = LogDistancePathLoss(seed=7, shadowing_sigma=4.0)
        g12 = model.link_gain_db(1, 2, (0, 0), (10, 0))
        g13 = model.link_gain_db(1, 3, (0, 0), (10, 0))
        assert g12 != g13

    def test_gain_matrix_covers_all_ordered_pairs(self):
        model = LogDistancePathLoss(seed=1)
        gains = model.gain_matrix([(0, 0), (5, 0), (10, 0)])
        assert len(gains) == 6
        assert (0, 0) not in gains

    def test_invalid_reference_distance(self):
        with pytest.raises(ValueError):
            LogDistancePathLoss(d0=0)


class TestCC2420:
    def test_power_level_anchors(self):
        assert CC2420.power_level_to_dbm(31) == 0.0
        assert CC2420.power_level_to_dbm(3) == -25.0

    def test_power_level_interpolation_monotone(self):
        previous = -100.0
        for level in range(2, 32):
            dbm = CC2420.power_level_to_dbm(level)
            assert dbm >= previous
            previous = dbm

    def test_level_two_extrapolates_below_minus_25(self):
        assert CC2420.power_level_to_dbm(2) < -25.0

    def test_prr_monotone_in_snr(self):
        prrs = [CC2420.prr(snr, 40) for snr in range(-5, 15)]
        assert all(b >= a - 1e-12 for a, b in zip(prrs, prrs[1:]))

    def test_prr_extremes(self):
        assert CC2420.prr(-20.0, 40) == 0.0
        assert CC2420.prr(20.0, 40) == 1.0

    def test_longer_frames_are_more_fragile(self):
        snr = 4.0
        assert CC2420.prr(snr, 100) <= CC2420.prr(snr, 20)

    def test_transitional_region_exists(self):
        # Somewhere between 0 and 8 dB the PRR must be genuinely intermediate.
        mid = [CC2420.prr(snr / 2, 40) for snr in range(0, 17)]
        assert any(0.05 < p < 0.95 for p in mid)

    def test_airtime_scales_with_length(self):
        assert packet_airtime(100) > packet_airtime(20)
        # 46 bytes at 250 kbps = 1472 µs.
        assert packet_airtime(40) == pytest.approx(1472, abs=2)

    @given(st.floats(min_value=-9.9, max_value=14.9), st.integers(min_value=1, max_value=127))
    def test_property_prr_is_probability(self, snr, length):
        prr = CC2420.prr(snr, length)
        assert 0.0 <= prr <= 1.0


class TestNoise:
    def test_trace_length_and_values(self):
        trace = synthesize_meyer_like_trace(length=5000, seed=1)
        assert len(trace) == 5000
        assert all(-120 < x < -20 for x in trace)

    def test_trace_has_quiet_floor_and_bursts(self):
        trace = synthesize_meyer_like_trace(length=20_000, seed=1)
        quiet = sum(1 for x in trace if x < -92)
        loud = sum(1 for x in trace if x > -85)
        assert quiet > len(trace) * 0.7  # mostly floor
        assert loud > 0  # but bursts exist

    def test_trace_deterministic_per_seed(self):
        assert synthesize_meyer_like_trace(seed=3) == synthesize_meyer_like_trace(seed=3)
        assert synthesize_meyer_like_trace(seed=3) != synthesize_meyer_like_trace(seed=4)

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            synthesize_meyer_like_trace(length=0)

    def test_cpm_samples_match_training_range(self):
        trace = synthesize_meyer_like_trace(length=5000, seed=2)
        model = CPMNoiseModel(trace, seed=5)
        samples = [model.sample() for _ in range(2000)]
        assert min(samples) >= min(trace) - 1e-9
        assert max(samples) <= max(trace) + 1e-9

    def test_cpm_preserves_burstiness(self):
        # Consecutive samples correlate: after a burst reading, the next
        # reading is much more likely to be loud than the marginal rate.
        trace = synthesize_meyer_like_trace(length=30_000, seed=2, burst_probability=0.02)
        model = CPMNoiseModel(trace, seed=5)
        samples = [model.sample() for _ in range(30_000)]
        loud = [x > -85 for x in samples]
        p_loud = sum(loud) / len(loud)
        follow = [loud[i + 1] for i in range(len(loud) - 1) if loud[i]]
        if follow:
            p_loud_after_loud = sum(follow) / len(follow)
            assert p_loud_after_loud > p_loud * 2

    def test_cpm_forks_are_independent(self):
        trace = synthesize_meyer_like_trace(length=3000, seed=2)
        master = CPMNoiseModel(trace, seed=5)
        a, b = master.fork(1), master.fork(2)
        sa = [a.sample() for _ in range(100)]
        sb = [b.sample() for _ in range(100)]
        assert sa != sb

    def test_cpm_validation(self):
        trace = synthesize_meyer_like_trace(length=100, seed=0)
        with pytest.raises(ValueError):
            CPMNoiseModel(trace, history=0)
        with pytest.raises(ValueError):
            CPMNoiseModel(trace, bin_width_db=0)
        with pytest.raises(ValueError):
            CPMNoiseModel(trace[:3], history=4)

    def test_constant_noise(self):
        noise = ConstantNoise(-95.0)
        assert noise.sample() == -95.0
        assert noise.fork(7).sample() == -95.0

    @given(
        readings=st.lists(
            st.floats(min_value=-130.0, max_value=-20.0, allow_nan=False),
            min_size=1,
            max_size=40,
        ),
        bin_width=st.floats(min_value=0.25, max_value=8.0, allow_nan=False),
    )
    def test_bin_batch_matches_scalar_floor_division(self, readings, bin_width):
        # The promise noise.py makes for its vectorised training path:
        # numpy floor_divide == Python's // on every float, bit for bit.
        trace = synthesize_meyer_like_trace(length=200, seed=0)
        model = CPMNoiseModel(trace, bin_width_db=bin_width, seed=1)
        scalar = [model._bin(x) for x in readings]
        assert model._bin_batch(readings) == scalar
        # Force the batch over the numpy threshold (>= 1024 readings) too.
        big = readings * (1024 // len(readings) + 1)
        assert model._bin_batch(big) == [model._bin(x) for x in big]

    def test_bin_batch_without_numpy(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        trace = synthesize_meyer_like_trace(length=200, seed=0)
        model = CPMNoiseModel(trace, seed=1)
        readings = [-98.7, -54.3, -110.0] * 400
        assert model._bin_batch(readings) == [model._bin(x) for x in readings]
