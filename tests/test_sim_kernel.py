"""Unit and property tests for the discrete-event simulation kernel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import MILLISECOND, SECOND, Simulator, Timer, from_seconds, to_seconds
from repro.sim.events import EventQueue
from repro.sim.simulator import SimulationError


class TestEventQueue:
    def test_empty_queue_pops_none(self):
        q = EventQueue()
        assert q.pop() is None
        assert len(q) == 0
        assert not q

    def test_orders_by_time(self):
        q = EventQueue()
        q.push(30, lambda: None)
        q.push(10, lambda: None)
        q.push(20, lambda: None)
        times = [q.pop().time for _ in range(3)]
        assert times == [10, 20, 30]

    def test_fifo_within_same_time(self):
        q = EventQueue()
        order = []
        q.push(5, order.append, (1,))
        q.push(5, order.append, (2,))
        q.push(5, order.append, (3,))
        while q:
            event = q.pop()
            event.callback(*event.args)
        assert order == [1, 2, 3]

    def test_cancelled_events_are_skipped(self):
        q = EventQueue()
        keep = q.push(10, lambda: "keep")
        drop = q.push(5, lambda: "drop")
        drop.cancel()
        q.note_cancelled()
        assert q.pop() is keep

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        first = q.push(5, lambda: None)
        q.push(10, lambda: None)
        first.cancel()
        assert q.peek_time() == 10

    def test_clear_empties_queue(self):
        q = EventQueue()
        for i in range(5):
            q.push(i, lambda: None)
        q.clear()
        assert len(q) == 0
        assert q.pop() is None

    def test_pending_property(self):
        q = EventQueue()
        event = q.push(1, lambda: None)
        assert event.pending
        event.cancel()
        assert not event.pending

    @given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=200))
    def test_property_pops_in_nondecreasing_time_order(self, times):
        q = EventQueue()
        for t in times:
            q.push(t, lambda: None)
        popped = []
        while q:
            popped.append(q.pop().time)
        assert popped == sorted(times)


class TestSimulator:
    def test_starts_at_time_zero(self):
        assert Simulator().now == 0

    def test_schedule_and_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(100, fired.append, "a")
        sim.schedule(50, fired.append, "b")
        sim.run()
        assert fired == ["b", "a"]
        assert sim.now == 100

    def test_run_until_advances_clock_exactly(self):
        sim = Simulator()
        sim.schedule(10 * SECOND, lambda: None)
        sim.run(until=3 * SECOND)
        assert sim.now == 3 * SECOND
        sim.run(until=20 * SECOND)
        assert sim.now == 20 * SECOND

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5, lambda: None)

    def test_cancel_prevents_firing(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(10, fired.append, 1)
        sim.cancel(event)
        sim.run()
        assert fired == []

    def test_stop_halts_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(1, fired.append, 1)
        sim.schedule(2, sim.stop)
        sim.schedule(3, fired.append, 2)
        sim.run()
        assert fired == [1]

    def test_max_events(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(i + 1, lambda: None)
        executed = sim.run(max_events=4)
        assert executed == 4

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 5:
                sim.schedule(10, chain, n + 1)

        sim.schedule(0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3, 4, 5]

    def test_reentrant_run_rejected(self):
        sim = Simulator()
        errors = []

        def inner():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1, inner)
        sim.run()
        assert len(errors) == 1

    def test_named_rngs_are_independent_and_deterministic(self):
        a = Simulator(seed=42)
        b = Simulator(seed=42)
        assert a.rng("x").random() == b.rng("x").random()
        # Creating another stream must not disturb an existing one.
        c = Simulator(seed=42)
        c.rng("other")
        assert c.rng("x").random() == Simulator(seed=42).rng("x").random()

    def test_different_seeds_differ(self):
        assert Simulator(seed=1).rng("x").random() != Simulator(seed=2).rng("x").random()

    def test_now_seconds(self):
        sim = Simulator()
        sim.schedule(1500 * MILLISECOND, lambda: None)
        sim.run()
        assert sim.now_seconds == pytest.approx(1.5)


class TestUnits:
    def test_roundtrip(self):
        assert to_seconds(from_seconds(1.25)) == pytest.approx(1.25)

    def test_one_second_is_a_million_ticks(self):
        assert from_seconds(1.0) == 1_000_000

    @given(st.integers(min_value=0, max_value=2**52))
    def test_property_tick_roundtrip_exact(self, ticks):
        assert from_seconds(to_seconds(ticks)) == ticks


class TestTimer:
    def test_one_shot_fires_once(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start_one_shot(5)
        sim.run(until=100)
        assert fired == [5]

    def test_periodic_fires_repeatedly(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start_periodic(10)
        sim.run(until=35)
        assert fired == [10, 20, 30]

    def test_stop_cancels(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start_periodic(10)
        sim.schedule(25, timer.stop)
        sim.run(until=100)
        assert fired == [10, 20]

    def test_restart_resets_deadline(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start_one_shot(10)
        sim.schedule(5, lambda: timer.start_one_shot(10))
        sim.run(until=100)
        assert fired == [15]

    def test_zero_period_rejected(self):
        with pytest.raises(ValueError):
            Timer(Simulator(), lambda: None).start_periodic(0)

    def test_running_property(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        assert not timer.running
        timer.start_one_shot(10)
        assert timer.running
        sim.run()
        assert not timer.running


class TestTracer:
    def test_disabled_by_default(self):
        sim = Simulator()
        sim.tracer.emit("cat", "msg")
        assert sim.tracer.records == []

    def test_records_when_enabled(self):
        sim = Simulator()
        sim.tracer.enable()
        sim.schedule(7, lambda: sim.tracer.emit("cat", "msg", node=3, extra=1))
        sim.run()
        (record,) = sim.tracer.records
        assert record.time == 7
        assert record.node == 3
        assert record.data == {"extra": 1}

    def test_category_filter(self):
        sim = Simulator()
        sim.tracer.enable(categories={"keep"})
        sim.tracer.emit("keep", "a")
        sim.tracer.emit("drop", "b")
        assert [r.category for r in sim.tracer.records] == ["keep"]

    def test_filter_helper(self):
        sim = Simulator()
        sim.tracer.enable()
        sim.tracer.emit("a", "x", node=1)
        sim.tracer.emit("a", "y", node=2)
        sim.tracer.emit("b", "z", node=1)
        assert len(sim.tracer.filter(category="a")) == 2
        assert len(sim.tracer.filter(node=1)) == 2
        assert len(sim.tracer.filter(category="a", node=1)) == 1
