"""Allocation invariants over randomized topologies.

Rather than driving hypothesis through whole simulations (too slow), these
tests sweep seeds/sizes of random deployments and assert the structural
invariants the protocol must deliver on every one of them.
"""

import pytest

from repro.core import Controller, TeleAdjusting
from repro.core.pathcode import PathCode
from repro.net import NodeStack
from repro.radio.channel import Channel
from repro.radio.noise import ConstantNoise
from repro.sim import SECOND, Simulator
from repro.topology import random_uniform
from repro.topology.analysis import unreachable_nodes


def converged_network(seed: int, n: int = 12, size: float = 45.0):
    deployment = random_uniform(n=n, width=size, height=size, seed=seed)
    sim = Simulator(seed=seed)
    channel = Channel(sim, deployment.gains(), noise_model=ConstantNoise())
    controller = Controller(channel=channel)
    protocols, stacks = {}, {}
    for i in range(deployment.size):
        stack = NodeStack(
            sim,
            channel,
            i,
            is_root=(i == deployment.sink),
            tx_power_dbm=deployment.node_tx_power(i),
            always_on=True,
        )
        protocols[i] = TeleAdjusting(sim, stack, controller=controller)
        stacks[i] = stack
    for i in stacks:
        stacks[i].start()
        protocols[i].start()
    sim.run(until=180 * SECOND)
    reachable = set(range(deployment.size)) - set(unreachable_nodes(deployment, 0.3))
    return deployment, sim, stacks, protocols, reachable


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
class TestInvariantsAcrossTopologies:
    def test_reachable_nodes_get_codes(self, seed):
        deployment, sim, stacks, protocols, reachable = converged_network(seed)
        for node in reachable:
            if stacks[node].routing.has_route:
                assert protocols[node].allocation.code is not None, (seed, node)

    def test_codes_unique_networkwide(self, seed):
        _, _, _, protocols, _ = converged_network(seed)
        codes = [
            p.allocation.code for p in protocols.values() if p.allocation.code
        ]
        assert len(set(codes)) == len(codes), seed

    def test_prefix_chain_reaches_sink(self, seed):
        deployment, sim, stacks, protocols, reachable = converged_network(seed)
        sink_code = PathCode.sink()
        for node, protocol in protocols.items():
            code = protocol.allocation.code
            if code is None or node == deployment.sink:
                continue
            assert sink_code.is_prefix_of(code), (seed, node, str(code))
            # Walk the allocation chain to the sink; prefixes must nest.
            current = node
            hops = 0
            while current != deployment.sink and hops < 50:
                parent = protocols[current].allocation._position_parent
                if parent is None:
                    break
                parent_code = protocols[parent].allocation.code
                child_code = protocols[current].allocation.code
                if parent_code is not None and child_code is not None:
                    # Mid-churn a parent may have renumbered; then its old
                    # code must cover the child instead.
                    covering = [
                        c
                        for c in protocols[parent].allocation.current_codes()
                        if c.is_prefix_of(child_code)
                    ]
                    assert covering or protocols[parent].allocation.code_changes, (
                        seed,
                        current,
                        parent,
                    )
                current = parent
                hops += 1

    def test_positions_unique_per_parent(self, seed):
        _, _, _, protocols, _ = converged_network(seed)
        for node, protocol in protocols.items():
            entries = protocol.allocation.children.entries()
            positions = [e.position for e in entries]
            assert len(set(positions)) == len(positions), (seed, node)
            assert all(p >= 1 for p in positions), (seed, node)

    def test_code_lengths_bounded_by_depth(self, seed):
        deployment, sim, stacks, protocols, _ = converged_network(seed)
        for node, protocol in protocols.items():
            code = protocol.allocation.code
            if code is None:
                continue
            hop = stacks[node].routing.hop_count
            if hop >= 0xFFFF:
                continue
            # Each hop contributes at least 1 and at most ~15 bits.
            assert code.length <= 1 + 15 * max(hop, 1), (seed, node)
