"""Stateful property test: the child table under arbitrary operation orders.

Hypothesis drives random sequences of allocate / confirm / remove / extend
and checks the table's core invariants after every step — position
uniqueness, the reserved zero position, capacity bounds, and confirmation
monotonicity.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.childtable import ChildTable, SpaceExhausted


class ChildTableMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.table = ChildTable()
        self.next_child = 0
        self.removed = set()

    @rule()
    def allocate_new_child(self):
        child = self.next_child
        self.next_child += 1
        try:
            entry = self.table.allocate(child, now=child)
        except SpaceExhausted:
            return
        assert entry.child == child
        assert not entry.confirmed

    @rule(data=st.data())
    def reallocate_existing(self, data):
        entries = self.table.entries()
        if not entries:
            return
        victim = data.draw(st.sampled_from([e.child for e in entries]))
        entry = self.table.reallocate(victim)
        assert entry.child == victim
        assert not entry.confirmed

    @rule(data=st.data())
    def confirm_right_position(self, data):
        entries = self.table.entries()
        if not entries:
            return
        entry = data.draw(st.sampled_from(entries))
        assert self.table.confirm(entry.child, entry.position)
        assert entry.confirmed

    @rule(data=st.data())
    def confirm_wrong_position_fails(self, data):
        entries = self.table.entries()
        if not entries:
            return
        entry = data.draw(st.sampled_from(entries))
        wrong = entry.position + 1 + (1 << self.table.space_bits)
        assert not self.table.confirm(entry.child, wrong)

    @rule(data=st.data())
    def remove_child(self, data):
        entries = self.table.entries()
        if not entries:
            return
        victim = data.draw(st.sampled_from([e.child for e in entries]))
        self.table.remove(victim)
        self.removed.add(victim)
        assert victim not in self.table

    @rule()
    def extend(self):
        if self.table.space_bits >= ChildTable.MAX_SPACE_BITS:
            return
        positions_before = {e.child: e.position for e in self.table.entries()}
        self.table.extend_space()
        positions_after = {e.child: e.position for e in self.table.entries()}
        assert positions_before == positions_after  # §III-B6

    @invariant()
    def positions_unique_and_nonzero(self):
        positions = [e.position for e in self.table.entries()]
        assert len(set(positions)) == len(positions)
        assert all(p >= 1 for p in positions)

    @invariant()
    def positions_fit_space(self):
        if self.table.space_bits == 0:
            assert len(self.table) == 0
            return
        limit = 1 << self.table.space_bits
        assert all(e.position < limit for e in self.table.entries())

    @invariant()
    def size_within_capacity(self):
        assert len(self.table) <= max(self.table.capacity(), 0)


TestChildTableStateful = ChildTableMachine.TestCase
TestChildTableStateful.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
