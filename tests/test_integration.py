"""System-level integration tests: determinism, dynamics, full scenarios."""

import pytest

import repro
from repro.experiments.harness import Network, NetworkConfig
from repro.topology import random_uniform


def run_small_scenario(seed: int):
    """A compact end-to-end run returning comparable outcome tuples."""
    deployment = random_uniform(n=12, width=45, height=45, seed=7)
    net = Network(
        NetworkConfig(
            topology=deployment, seed=seed, always_on=True, collection_ipi=None
        )
    )
    net.converge(max_seconds=150)
    outcomes = []
    for destination in net.non_sink_nodes()[:4]:
        record = net.send_control(destination, payload=destination)
        net.run(20)
        outcomes.append(
            (
                destination,
                record.delivered,
                record.delivered_at,
                record.athx,
            )
        )
    codes = tuple(
        str(net.protocols[n].allocation.code) for n in sorted(net.stacks)
    )
    return tuple(outcomes), codes


class TestDeterminism:
    def test_same_seed_reproduces_exactly(self):
        first = run_small_scenario(seed=11)
        second = run_small_scenario(seed=11)
        assert first == second

    def test_different_seed_differs(self):
        a = run_small_scenario(seed=11)
        b = run_small_scenario(seed=12)
        # Codes or outcomes must differ somewhere (different RNG streams).
        assert a != b


class TestDynamics:
    def test_node_failure_reroutes_collection(self):
        deployment = random_uniform(n=14, width=50, height=50, seed=9)
        net = Network(
            NetworkConfig(
                topology=deployment, seed=9, always_on=True, collection_ipi=None
            )
        )
        net.converge(max_seconds=150)
        # Fail a non-articulation relay and check the network re-coded.
        from repro.topology.analysis import articulation_nodes

        cuts = articulation_nodes(deployment, min_prr=0.5)
        relays = [
            n
            for n in net.non_sink_nodes()
            if net.stacks[n].routing.children and n not in cuts
        ]
        if not relays:
            pytest.skip("no safe relay to fail in this topology")
        victim = relays[0]
        orphans = list(net.stacks[victim].routing.children)
        net.stacks[victim].radio.fail()
        net.run(400)
        for orphan in orphans:
            stack = net.stacks[orphan]
            if not stack.routing.has_route:
                continue  # genuinely partitioned
            assert stack.routing.parent != victim

    def test_codes_follow_reparenting(self):
        deployment = random_uniform(n=10, width=40, height=40, seed=13)
        net = Network(
            NetworkConfig(
                topology=deployment, seed=13, always_on=True, collection_ipi=None
            )
        )
        net.converge(max_seconds=150)
        # Whatever the dynamics, the invariant holds: every coded node's
        # current code extends its allocation parent's current code, or the
        # node is mid-repair (code None).
        net.run(100)
        for node in net.non_sink_nodes():
            allocation = net.protocols[node].allocation
            if allocation.code is None or allocation._position_parent is None:
                continue
            parent_alloc = net.protocols[allocation._position_parent].allocation
            if parent_alloc.code is None:
                continue
            # Parent's code (current or retained old) must prefix ours.
            prefixes = [
                c
                for c in parent_alloc.current_codes()
                if c.is_prefix_of(allocation.code)
            ]
            stale_parent = parent_alloc.code_changes > 0
            assert prefixes or stale_parent, (node, allocation.code)


class TestCrossProtocolSanity:
    @pytest.mark.parametrize("protocol", ["tele", "drip", "rpl", "orpl"])
    def test_each_protocol_delivers_on_small_network(self, protocol):
        deployment = random_uniform(n=10, width=40, height=40, seed=21)
        net = Network(
            NetworkConfig(
                topology=deployment,
                protocol=protocol,
                seed=21,
                always_on=True,
                collection_ipi=None,
            )
        )
        net.converge(max_seconds=200)
        destination = max(
            net.non_sink_nodes(), key=lambda n: net.stacks[n].routing.hop_count
        )
        record = net.send_control(destination, payload="ping")
        net.run(60)
        assert record.delivered, protocol

    def test_duty_cycled_delivery(self):
        # The full LPL path (not always-on) still delivers.
        net = repro.build_network(topology="indoor-testbed", seed=5)
        net.converge(max_seconds=240)
        destination = next(
            n
            for n in net.non_sink_nodes()
            if 2 <= net.stacks[n].routing.hop_count <= 4
            and net.protocols[n].path_code is not None
        )
        record = net.send_control(destination, payload="lpl")
        net.run(60)
        assert record.delivered
        assert record.latency_s < 30.0
