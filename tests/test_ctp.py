"""Tests for CTP routing and forwarding over the full radio/MAC stack."""

import pytest

from repro.net import NodeStack
from repro.net.messages import COLLECT_APP_DATA, NO_ROUTE
from repro.radio.channel import Channel
from repro.radio.noise import ConstantNoise
from repro.radio.propagation import LogDistancePathLoss
from repro.sim import SECOND, Simulator


def build_line(n=4, spacing=12.0, seed=1, always_on=True):
    """A line topology where only adjacent nodes can talk."""
    sim = Simulator(seed=seed)
    positions = [(i * spacing, 0.0) for i in range(n)]
    gains = LogDistancePathLoss(pl_d0=40.0, seed=seed, shadowing_sigma=0.0).gain_matrix(
        positions
    )
    channel = Channel(sim, gains, noise_model=ConstantNoise())
    stacks = [
        NodeStack(
            sim,
            channel,
            i,
            is_root=(i == 0),
            always_on=always_on,
        )
        for i in range(n)
    ]
    return sim, channel, stacks


class TestRouteFormation:
    def test_line_forms_a_chain(self):
        sim, _, stacks = build_line(n=4)
        for s in stacks:
            s.start()
        sim.run(until=60 * SECOND)
        assert all(s.routing.has_route for s in stacks)
        assert stacks[1].routing.parent == 0
        assert stacks[2].routing.parent == 1
        assert stacks[3].routing.parent == 2
        assert [s.routing.hop_count for s in stacks] == [0, 1, 2, 3]

    def test_path_etx_monotone_along_chain(self):
        sim, _, stacks = build_line(n=4)
        for s in stacks:
            s.start()
        sim.run(until=60 * SECOND)
        etx = [s.routing.path_etx for s in stacks]
        assert etx[0] == 0.0
        assert etx[0] < etx[1] < etx[2] < etx[3]

    def test_root_advertises_zero(self):
        sim, _, stacks = build_line(n=2)
        for s in stacks:
            s.start()
        sim.run(until=20 * SECOND)
        assert stacks[0].routing.path_etx == 0.0
        assert stacks[0].routing.hop_count == 0

    def test_children_tracked(self):
        sim, _, stacks = build_line(n=3)
        for s in stacks:
            s.start()
        sim.run(until=60 * SECOND)
        assert 1 in stacks[0].routing.children
        assert 2 in stacks[1].routing.children

    def test_no_route_without_root(self):
        sim = Simulator(seed=1)
        positions = [(0.0, 0.0), (8.0, 0.0)]
        gains = LogDistancePathLoss(pl_d0=40.0, seed=1, shadowing_sigma=0.0).gain_matrix(
            positions
        )
        channel = Channel(sim, gains, noise_model=ConstantNoise())
        stacks = [
            NodeStack(sim, channel, i, is_root=False, always_on=True) for i in range(2)
        ]
        for s in stacks:
            s.start()
        sim.run(until=30 * SECOND)
        assert all(not s.routing.has_route for s in stacks)
        assert all(s.routing.path_etx >= NO_ROUTE for s in stacks)

    def test_parent_found_event_fires_once(self):
        sim, _, stacks = build_line(n=3)
        fired = []
        stacks[2].routing.on_parent_found.append(lambda: fired.append(sim.now))
        for s in stacks:
            s.start()
        sim.run(until=120 * SECOND)
        assert len(fired) == 1


class TestDataForwarding:
    def test_multihop_delivery_to_sink(self):
        sim, _, stacks = build_line(n=4)
        delivered = []
        stacks[0].forwarding.on_deliver = delivered.append
        for s in stacks:
            s.start()
        sim.run(until=60 * SECOND)
        stacks[3].forwarding.send(COLLECT_APP_DATA, {"v": 42})
        sim.run(until=sim.now + 30 * SECOND)
        assert len(delivered) == 1
        assert delivered[0].origin == 3
        assert delivered[0].payload == {"v": 42}
        assert delivered[0].thl == 2  # incremented at nodes 2 and 1

    def test_duplicate_suppression(self):
        sim, _, stacks = build_line(n=3)
        delivered = []
        stacks[0].forwarding.on_deliver = delivered.append
        for s in stacks:
            s.start()
        sim.run(until=60 * SECOND)
        # Same origin seqno sent twice: the second is a duplicate upstream.
        stacks[2].forwarding.send(COLLECT_APP_DATA, "x", origin_seqno=7)
        sim.run(until=sim.now + 20 * SECOND)
        stacks[2].forwarding.send(COLLECT_APP_DATA, "y", origin_seqno=7)
        sim.run(until=sim.now + 20 * SECOND)
        assert len(delivered) == 1

    def test_collect_handler_multiplexing(self):
        sim, _, stacks = build_line(n=2)
        by_id = {1: [], 2: []}
        stacks[0].forwarding.collect_handlers[1] = by_id[1].append
        stacks[0].forwarding.collect_handlers[2] = by_id[2].append
        for s in stacks:
            s.start()
        sim.run(until=30 * SECOND)
        stacks[1].forwarding.send(1, "a")
        stacks[1].forwarding.send(2, "b")
        sim.run(until=sim.now + 20 * SECOND)
        assert [p.payload for p in by_id[1]] == ["a"]
        assert [p.payload for p in by_id[2]] == ["b"]

    def test_root_originates_to_itself(self):
        sim, _, stacks = build_line(n=2)
        delivered = []
        stacks[0].forwarding.on_deliver = delivered.append
        for s in stacks:
            s.start()
        sim.run(until=10 * SECOND)
        stacks[0].forwarding.send(COLLECT_APP_DATA, "self")
        sim.run(until=sim.now + 1 * SECOND)
        assert len(delivered) == 1

    def test_queue_limit_drops(self):
        sim, _, stacks = build_line(n=2)
        for s in stacks:
            s.start()
        sim.run(until=30 * SECOND)
        for i in range(stacks[1].forwarding.QUEUE_LIMIT + 5):
            stacks[1].forwarding.send(COLLECT_APP_DATA, i)
        assert stacks[1].forwarding.packets_dropped >= 1


class TestBeaconPiggyback:
    def test_fillers_and_observers_run(self):
        sim, _, stacks = build_line(n=2)
        seen = []
        stacks[0].beacon_fillers.append(lambda b: setattr(b, "tele_position", 9))
        stacks[1].beacon_observers.append(
            lambda b, rssi: seen.append((b.origin, b.tele_position))
        )
        for s in stacks:
            s.start()
        sim.run(until=30 * SECOND)
        assert (0, 9) in seen

    def test_duplicate_handler_rejected(self):
        sim, _, stacks = build_line(n=2)
        from repro.radio.frame import FrameType

        stacks[0].register_handler(FrameType.CONTROL, lambda f, r: None)
        with pytest.raises(ValueError):
            stacks[0].register_handler(FrameType.CONTROL, lambda f, r: None)

    def test_ctp_owned_types_rejected(self):
        sim, _, stacks = build_line(n=2)
        from repro.radio.frame import FrameType

        with pytest.raises(ValueError):
            stacks[0].register_handler(FrameType.DATA, lambda f, r: None)
