"""Robustness machinery: watchdog, honest requeues, shutdown, self-healing cache.

Everything here uses the cheap "selftest" task kind so the engine's fault
handling is exercised without paying for packet-level simulations.
"""

import os
import signal
import threading
import time

import pytest

from repro.runner import (
    ParallelRunner,
    ResultCache,
    RetryPolicy,
    selftest_spec,
)

FAST_BACKOFF = RetryPolicy(retries=1, backoff_base_s=0.01, jitter=0.0)


class TestWatchdog:
    def test_hung_worker_is_killed_and_retried(self):
        # The hang (60 s) dwarfs the watchdog window (1 s): only an early
        # kill lets the grid finish fast. No coarse timeout is set, so the
        # watchdog is the only thing that can save it.
        specs = [
            selftest_spec(0),
            selftest_spec(1, fault={"hang_attempts": 1, "hang_s": 60.0}),
            selftest_spec(2),
        ]
        runner = ParallelRunner(
            jobs=2, policy=FAST_BACKOFF, watchdog=1.0, timeout=None
        )
        started = time.monotonic()
        outcomes = runner.run(specs)
        assert [o.status for o in outcomes] == ["executed"] * 3
        assert outcomes[1].attempts == 2
        assert time.monotonic() - started < 30.0

    def test_permanently_hung_cell_is_quarantined(self):
        specs = [selftest_spec(1, fault={"hang_attempts": 99, "hang_s": 60.0})]
        runner = ParallelRunner(
            jobs=2, policy=RetryPolicy(retries=0), watchdog=1.0, timeout=None
        )
        outcomes = runner.run(specs)
        assert outcomes[0].status == "failed"
        assert outcomes[0].quarantined
        assert "hung" in outcomes[0].error or "stalled" in outcomes[0].error

    def test_watchdog_validation(self):
        with pytest.raises(ValueError):
            ParallelRunner(watchdog=0.0)


class TestHonestAccounting:
    def test_innocent_siblings_do_not_burn_retry_budget(self):
        # One poison cell keeps crashing the pool; its siblings get caught
        # in the rebuilds. They must finish with attempts == 1 (their own
        # failures only) while the requeues column records the collateral.
        specs = [
            selftest_spec(0, sleep_s=0.2),
            selftest_spec(1, fault={"crash_attempts": 99}),
            selftest_spec(2, sleep_s=0.2),
        ]
        runner = ParallelRunner(jobs=3, policy=FAST_BACKOFF)
        outcomes = runner.run(specs)
        assert [o.status for o in outcomes] == ["executed", "failed", "executed"]
        assert outcomes[1].quarantined
        for innocent in (outcomes[0], outcomes[2]):
            assert innocent.attempts == 1
        assert runner.last_report.requeues >= 1
        assert "req" in runner.last_report.summary_table()

    def test_report_aggregates(self):
        runner = ParallelRunner(jobs=2, policy=FAST_BACKOFF)
        runner.run(
            [selftest_spec(0), selftest_spec(1, fault={"error_attempts": 1})]
        )
        counters = runner.last_report.counters()
        assert counters["executed"] == 2
        assert counters["retried"] == 1
        assert counters["backoff_s"] > 0
        assert counters["quarantined"] == []


class TestGracefulShutdown:
    def test_sigint_drains_and_journals_the_rest(self, tmp_path):
        # Fire SIGINT while the first (slow) cell runs: the engine finishes
        # it, skips the rest, and the journal makes the grid resumable.
        specs = [
            selftest_spec(0, sleep_s=0.6),
            selftest_spec(1),
            selftest_spec(2),
        ]
        runner = ParallelRunner(jobs=1, journal_dir=tmp_path, handle_signals=True)
        killer = threading.Timer(0.2, os.kill, (os.getpid(), signal.SIGINT))
        killer.start()
        try:
            outcomes = runner.run(specs)
        finally:
            killer.cancel()
        assert outcomes[0].status == "executed"
        assert [o.status for o in outcomes[1:]] == ["interrupted"] * 2
        assert runner.last_report.interrupted == 2
        assert "INTERRUPTED" in runner.last_report.summary_line()

        resumed = ParallelRunner(jobs=1, journal_dir=tmp_path, resume=True)
        again = resumed.run(specs)
        assert [o.status for o in again] == ["journal", "executed", "executed"]
        assert again[0].result == outcomes[0].result

    def test_signal_handlers_restored(self):
        before = signal.getsignal(signal.SIGINT)
        runner = ParallelRunner(jobs=1, handle_signals=True)
        runner.run([selftest_spec(0)])
        assert signal.getsignal(signal.SIGINT) is before


class TestSelfHealingCache:
    def _flip_byte(self, path):
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))

    def test_bit_flip_quarantines_and_reexecutes(self, tmp_path):
        spec = selftest_spec(1)
        cache = ResultCache(tmp_path)
        cold = ParallelRunner(jobs=1, cache=cache).run([spec])
        entry = cache.path_for(spec)
        self._flip_byte(entry)

        messages = []
        cache = ResultCache(
            tmp_path, progress=lambda cat, msg, **data: messages.append((cat, msg))
        )
        runner = ParallelRunner(jobs=1, cache=cache)
        warm = runner.run([spec])
        # The damaged entry degraded to a transparent re-execution...
        assert warm[0].status == "executed"
        assert warm[0].result == cold[0].result
        # ...was quarantined aside, not deleted...
        assert cache.quarantined == 1
        assert entry.with_name(entry.name + ".corrupt").exists()
        # ...was logged, and the slot now holds a fresh valid entry.
        assert any("quarantined" in msg for cat, msg in messages if cat == "cache")
        assert cache.load(spec) == cold[0].result
        assert ParallelRunner(jobs=1, cache=cache).run([spec])[0].status == "cached"

    def test_truncated_entry_is_quarantined(self, tmp_path):
        spec = selftest_spec(2)
        cache = ResultCache(tmp_path)
        ParallelRunner(jobs=1, cache=cache).run([spec])
        path = cache.path_for(spec)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert cache.load(spec) is None
        assert cache.quarantined == 1

    def test_wrong_schema_is_quarantined(self, tmp_path):
        spec = selftest_spec(3)
        cache = ResultCache(tmp_path)
        ParallelRunner(jobs=1, cache=cache).run([spec])
        path = cache.path_for(spec)
        path.write_text('{"schema": 999, "result": {}}')
        assert cache.load(spec) is None
        assert cache.quarantined == 1

    def test_corruption_never_aborts_a_grid(self, tmp_path):
        specs = [selftest_spec(i) for i in range(4)]
        cache = ResultCache(tmp_path)
        cold = ParallelRunner(jobs=1, cache=cache).run(specs)
        for spec in (specs[0], specs[2]):
            self._flip_byte(cache.path_for(spec))
        runner = ParallelRunner(jobs=2, cache=ResultCache(tmp_path))
        warm = runner.run(specs)
        assert [o.result for o in warm] == [o.result for o in cold]
        assert runner.last_report.executed == 2
        assert runner.last_report.cached == 2
        assert runner.last_report.failed == 0
