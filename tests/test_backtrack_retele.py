"""Backtracking (§III-C3) and the destination-unreachable countermeasure
(§III-C4, "Re-Tele")."""

import pytest

from repro.core import Controller, TeleAdjusting
from repro.core.forwarding import ForwardingParams
from repro.core.pathcode import PathCode
from repro.net import NodeStack
from repro.radio.channel import Channel
from repro.radio.noise import ConstantNoise
from repro.radio.propagation import LogDistancePathLoss
from repro.sim import SECOND, Simulator


def diamond(seed=1, re_tele=False):
    """Sink 0; two parallel relays 1 (path) and 2 (helper); destination 3.

    Positions put 1 and 2 both within range of 0 and 3, so the encoded path
    runs through one of them while the other can serve as the Re-Tele helper.
    """
    # Sink↔dest distance (26 m ⇒ below sensitivity) forces two real hops.
    positions = [(0.0, 0.0), (13.0, 5.0), (13.0, -5.0), (26.0, 0.0)]
    sim = Simulator(seed=seed)
    gains = LogDistancePathLoss(pl_d0=40.0, seed=seed, shadowing_sigma=0.0).gain_matrix(
        positions
    )
    channel = Channel(sim, gains, noise_model=ConstantNoise())
    controller = Controller(channel=channel)
    params = ForwardingParams(
        re_tele=re_tele,
        e2e_timeout=25 * SECOND,
        sink_retry_interval=6 * SECOND,
    )
    protocols, stacks = {}, {}
    for i in range(4):
        stack = NodeStack(sim, channel, i, is_root=(i == 0), always_on=True)
        protocols[i] = TeleAdjusting(
            sim, stack, controller=controller, forwarding_params=params
        )
        stacks[i] = stack
    for i in range(4):
        stacks[i].start()
        protocols[i].start()
    sim.run(until=90 * SECOND)
    controller.snapshot(protocols)
    return sim, channel, stacks, protocols, controller


class TestBacktrack:
    def test_relay_with_dead_subtree_returns_feedback(self):
        sim, channel, stacks, protocols, controller = diamond()
        # Kill the destination's radio entirely: nobody downstream answers.
        dest_code = protocols[3].allocation.code
        stacks[3].radio.fail()
        pending = protocols[0].remote_control(3, destination_code=dest_code)
        relay_backtracks_before = sum(
            p.forwarding.backtracks for p in protocols.values()
        )
        sim.run(until=sim.now + 40 * SECOND)
        backtracks = sum(p.forwarding.backtracks for p in protocols.values())
        assert backtracks > relay_backtracks_before
        assert not pending.delivered
        assert pending.failed

    def test_unreachable_marks_set_on_failure(self):
        sim, channel, stacks, protocols, controller = diamond()
        stacks[3].radio.fail()
        protocols[0].remote_control(3)
        sim.run(until=sim.now + 20 * SECOND)
        marked = [
            entry.neighbor
            for p in protocols.values()
            for entry in [
                p.allocation.neighbor_codes.entry(n)
                for n in p.allocation.neighbor_codes.neighbors()
            ]
            if entry is not None and entry.unreachable
        ]
        assert marked, "no neighbour was marked unreachable"

    def test_delivery_resumes_after_transient_failure(self):
        sim, channel, stacks, protocols, controller = diamond()
        # Take the destination down briefly; the sink watchdog must recover.
        stacks[3].radio.fail()
        pending = protocols[0].remote_control(3)

        def revive():
            stacks[3].radio.recover()
            stacks[3].radio.turn_on()

        sim.schedule(10 * SECOND, revive)
        sim.run(until=sim.now + 30 * SECOND)
        assert pending.delivered


class TestReTele:
    def test_helper_selection_prefers_different_prefix(self):
        controller = Controller()
        controller.set_neighbors(9, [1, 2])
        controller.report_code(1, PathCode.from_bits("00101"))  # shares prefix
        controller.report_code(2, PathCode.from_bits("0111"))  # diverges early
        helper = controller.pick_helper(9, avoid_code=PathCode.from_bits("0010110"))
        assert helper is not None
        assert helper[0] == 2

    def test_helper_requires_known_code(self):
        controller = Controller()
        controller.set_neighbors(9, [1])
        assert controller.pick_helper(9, avoid_code=PathCode.sink()) is None

    def test_re_tele_rescues_stale_destination_code(self):
        sim, channel, stacks, protocols, controller = diamond(re_tele=True)
        # The controller's registry holds a bogus (stale) code for the
        # destination — e.g. its reports were lost after a re-parenting — so
        # neither the encoded path nor the watchdog's code refresh can
        # resolve it. Only the §III-C4 helper detour remains.
        stale = PathCode.from_bits("1111111111")
        controller.report_code(3, stale)
        # …and its future reports keep getting lost:
        protocols[3].report_code_to_controller = lambda: False
        delivered = []
        protocols[3].forwarding.on_delivered = (
            lambda control, via_unicast: delivered.append(via_unicast)
        )
        pending = protocols[0].remote_control(3)
        sim.run(until=sim.now + 60 * SECOND)
        assert delivered, "Re-Tele never delivered"
        assert pending.re_tele_used
        assert delivered[0] is True  # final hop was the helper's unicast

    def test_plain_tele_fails_on_stale_code(self):
        sim, channel, stacks, protocols, controller = diamond(re_tele=False)
        stale = PathCode.from_bits("1111111111")
        controller.report_code(3, stale)
        protocols[3].report_code_to_controller = lambda: False
        pending = protocols[0].remote_control(3)
        sim.run(until=sim.now + 60 * SECOND)
        assert not pending.delivered
        assert pending.failed
