"""Lease-queue semantics: claims, steals, poison, and the worker loop."""

import json
import threading
import time

import pytest

from repro.farm.queue import QUEUE_SCHEMA, LeaseQueue
from repro.farm.worker import WorkerStats, drain_queue, run_leased_cell
from repro.runner import ParallelRunner
from repro.runner.retry import RetryPolicy
from repro.runner.taskspec import selftest_spec


def make_queue(tmp_path, **kwargs):
    kwargs.setdefault("lease_ttl", 5.0)
    return LeaseQueue(tmp_path / "q", **kwargs)


class TestEnqueueAndClaim:
    def test_put_is_idempotent(self, tmp_path):
        queue = make_queue(tmp_path)
        spec = selftest_spec(0)
        assert queue.put(spec, 0) is True
        assert queue.put(spec, 0) is False
        assert queue.unfinished() == 1

    def test_meta_records_schema(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.ensure()
        meta = json.loads((queue.root / "meta.json").read_text())
        assert meta["schema"] == QUEUE_SCHEMA

    def test_claim_is_exclusive(self, tmp_path):
        queue_a = make_queue(tmp_path, worker_id="a")
        queue_b = make_queue(tmp_path, worker_id="b")
        queue_a.put(selftest_spec(0), 0)
        lease = queue_a.claim()
        assert lease is not None and lease.worker == "a"
        assert queue_b.claim() is None  # held by a live lease

    def test_claims_follow_seq_order(self, tmp_path):
        queue = make_queue(tmp_path)
        specs = [selftest_spec(i) for i in range(3)]
        queue.put_all(specs)
        claimed = [queue.claim().fingerprint for _ in range(3)]
        assert claimed == [spec.fingerprint for spec in specs]

    def test_claim_returns_none_when_drained(self, tmp_path):
        queue = make_queue(tmp_path)
        spec = selftest_spec(0)
        queue.put(spec, 0)
        lease = queue.claim()
        queue.complete(lease, {"result": {"ok": 1}, "wall_s": 0.0})
        assert queue.claim() is None
        assert queue.unfinished() == 0


class TestLeaseStealing:
    def test_expired_lease_is_stolen_with_attempt_charge(self, tmp_path):
        dead = make_queue(tmp_path, lease_ttl=0.2, worker_id="dead")
        dead.put(selftest_spec(0), 0)
        lease = dead.claim()
        assert lease.attempt == 0
        time.sleep(0.3)  # the dead worker never renews
        stealer = make_queue(tmp_path, lease_ttl=0.2, worker_id="stealer")
        stolen = stealer.claim()
        assert stolen is not None
        assert stolen.attempt == 1  # the steal burned one retry

    def test_live_lease_survives_renewal(self, tmp_path):
        queue = make_queue(tmp_path, lease_ttl=0.4)
        queue.put(selftest_spec(0), 0)
        lease = queue.claim()
        for _ in range(3):
            time.sleep(0.2)
            assert queue.renew(lease) is True
        rival = make_queue(tmp_path, lease_ttl=0.4, worker_id="rival")
        assert rival.claim() is None

    def test_stolen_lease_fails_renewal(self, tmp_path):
        queue = make_queue(tmp_path, lease_ttl=0.2, worker_id="slow")
        queue.put(selftest_spec(0), 0)
        lease = queue.claim()
        time.sleep(0.3)
        stealer = make_queue(tmp_path, lease_ttl=5.0, worker_id="stealer")
        assert stealer.claim() is not None
        assert queue.renew(lease) is False  # the token changed hands

    def test_poison_cell_quarantined_after_budget(self, tmp_path):
        queue = make_queue(tmp_path, lease_ttl=0.1, max_attempts=2)
        spec = selftest_spec(0)
        queue.put(spec, 0)
        assert queue.claim() is not None  # attempt 0, then "dies"
        time.sleep(0.15)
        # Steal would be attempt 1 == max_attempts - 1: allowed once more.
        second = queue.claim()
        assert second is not None and second.attempt == 1
        time.sleep(0.15)
        # Next steal would be attempt 2 >= max_attempts: quarantine.
        assert queue.claim() is None
        marker = queue.outcome_for(spec.fingerprint)
        assert marker["terminal"] == "failed"
        assert marker["quarantined"] is True
        assert "lease expired" in marker["error"]

    def test_complete_is_idempotent(self, tmp_path):
        queue = make_queue(tmp_path)
        spec = selftest_spec(0)
        queue.put(spec, 0)
        lease = queue.claim()
        queue.complete(lease, {"result": {"v": 1}, "wall_s": 0.5})
        # A racing duplicate completion must not clobber the marker.
        queue.complete(lease, {"result": {"v": 2}, "wall_s": 9.9})
        assert queue.outcome_for(spec.fingerprint)["result"] == {"v": 1}


class TestWorkerLoop:
    def test_drain_queue_executes_all_cells(self, tmp_path):
        queue = make_queue(tmp_path)
        specs = [selftest_spec(i, payload=5) for i in range(4)]
        queue.put_all(specs)
        stats = drain_queue(queue.root, worker_id="w0")
        assert stats.executed == 4 and stats.failed == 0
        reference = ParallelRunner(jobs=1).run(specs)
        for spec, ref in zip(specs, reference):
            marker = queue.outcome_for(spec.fingerprint)
            assert marker["terminal"] == "done"
            assert marker["result"] == ref.result

    def test_two_threads_share_one_grid(self, tmp_path):
        queue = make_queue(tmp_path)
        specs = [selftest_spec(i, sleep_s=0.01) for i in range(8)]
        queue.put_all(specs)
        results = {}

        def work(name):
            results[name] = drain_queue(queue.root, worker_id=name)

        threads = [
            threading.Thread(target=work, args=(f"w{i}",)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        # At-least-once execution: a rare claim/settle race may re-run a
        # cell, but duplicate completions are no-ops and results identical.
        total = sum(s.executed + s.cached for s in results.values())
        assert total >= len(specs)
        assert all(s.failed == 0 for s in results.values())
        assert queue.unfinished() == 0
        reference = ParallelRunner(jobs=1).run(specs)
        for spec, ref in zip(specs, reference):
            assert queue.outcome_for(spec.fingerprint)["result"] == ref.result

    def test_worker_serves_from_shared_cache(self, tmp_path):
        from repro.runner import ResultCache

        cache = ResultCache(tmp_path / "cache")
        specs = [selftest_spec(i) for i in range(3)]
        for spec, outcome in zip(specs, ParallelRunner(jobs=1, cache=cache).run(specs)):
            assert outcome.result is not None
        queue = make_queue(tmp_path)
        queue.put_all(specs)
        stats = drain_queue(queue.root, cache_dir=cache.root, worker_id="warm")
        assert stats.cached == 3 and stats.executed == 0
        for spec in specs:
            assert queue.outcome_for(spec.fingerprint)["source"] == "cached"

    def test_transient_fault_retries_in_place_then_succeeds(self, tmp_path):
        queue = make_queue(tmp_path)
        flaky = selftest_spec(0, fault={"error_attempts": 1})
        queue.put(flaky, 0)
        lease = queue.claim()
        stats = WorkerStats(worker="w")
        run_leased_cell(
            queue, lease, cache=None,
            policy=RetryPolicy(retries=2, backoff_base_s=0.01), stats=stats,
        )
        marker = queue.outcome_for(flaky.fingerprint)
        assert marker is not None and marker["terminal"] == "done"
        assert marker["attempts"] == 2  # one fault + one success
        assert stats.retries == 1 and stats.executed == 1

    def test_budget_exhaustion_installs_failed_marker(self, tmp_path):
        queue = make_queue(tmp_path)
        bad = selftest_spec(0, fault={"error_attempts": 99})
        queue.put(bad, 0)
        lease = queue.claim()
        stats = WorkerStats(worker="w")
        run_leased_cell(
            queue, lease, cache=None,
            policy=RetryPolicy(retries=1, backoff_base_s=0.01), stats=stats,
        )
        marker = queue.outcome_for(bad.fingerprint)
        assert marker is not None and marker["terminal"] == "failed"
        assert "InjectedFault" in marker["error"]
        assert stats.failed == 1

    def test_max_cells_bounds_one_worker(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.put_all([selftest_spec(i) for i in range(5)])
        stats = drain_queue(queue.root, max_cells=2, worker_id="bounded")
        assert stats.claimed == 2
        assert queue.unfinished() == 3

    def test_stop_event_exits_promptly(self, tmp_path):
        queue = make_queue(tmp_path)
        stop = threading.Event()
        stop.set()
        stats = drain_queue(queue.root, follow=True, stop=stop, worker_id="s")
        assert stats.claimed == 0


class TestValidation:
    def test_bad_ttl_and_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            LeaseQueue(tmp_path / "q", lease_ttl=0)
        with pytest.raises(ValueError):
            LeaseQueue(tmp_path / "q", max_attempts=0)
