"""The havoc soak: a chaos grid completes bit-identically under havoc.

The acceptance test for the whole havoc layer. A small chaos grid runs
through the full farm stack — HTTP service, lease queue, external worker
processes — while a seeded havoc schedule:

- SIGKILLs a worker at its first lease (``kill`` @ checkpoint
  ``claimed``): the lease expires and the cell is stolen;
- opens an ENOSPC window on the surviving worker's storage: marker
  installs fail, leases are released, the cell re-runs after the window;
- drops the client's live SSE subscription mid-stream (``sse_drop``):
  the client must reconnect from ``Last-Event-ID``.

Despite all of it, the job must finish with trace digests bit-identical
to an undisturbed in-process run — infrastructure faults may cost time,
never results. And because every schedule is a pure function of its
seed, a failing soak is replayed exactly by quoting the seed.
"""

import os
import pathlib
import re
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.farm import client, specs_from_payload
from repro.havoc import ENV_VAR, HavocEvent, HavocPlan
from repro.runner import ParallelRunner

FAST = dict(
    n_controls=2, control_interval_s=4.0, converge_seconds=30.0,
    drain_seconds=10.0,
)

CHAOS_PAYLOAD = {
    "grid": "chaos",
    "variants": ["tele", "re-tele"],
    "scenario": "crash-churn",
    "intensities": [0.5],
    "seeds": [1],
    "schedule": FAST,
}

#: The three injections the soak must actually observe.
SERVER_PLAN = HavocPlan(
    events=(HavocEvent(kind="sse_drop", op="events", start=3),),
    seed=101, name="soak-server",
)
VICTIM_PLAN = HavocPlan(
    events=(HavocEvent(kind="kill", op="claimed", start=0),),
    seed=102, name="soak-victim",
)
SURVIVOR_PLAN = HavocPlan(
    events=(
        HavocEvent(kind="enospc", op="write", scope="done", start=0, count=1),
    ),
    seed=103, name="soak-survivor",
)


def _env(extra=None):
    env = dict(os.environ)
    src = str(pathlib.Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(ENV_VAR, None)
    if extra:
        env.update(extra)
    return env


def _spawn_server(tmp_path, plan):
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", "--port", "0",
            "--cache-dir", str(tmp_path / "cache"),
            "--queue-dir", str(tmp_path / "queues"),
            "--no-self-drain",
            "--lease-ttl", "2.0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=_env({ENV_VAR: plan.to_json()}),
    )
    line = proc.stdout.readline()
    match = re.search(r"http://\S+", line)
    if match is None:
        proc.kill()
        pytest.fail(f"server did not announce an address: {line!r}")
    return proc, match.group(0)


def _spawn_worker(tmp_path, queue_dir, plan):
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "farm", "worker",
            "--queue-dir", str(queue_dir),
            "--cache-dir", str(tmp_path / "worker-cache"),
            "--lease-ttl", "2.0",
            "--follow",
            "--quiet",
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        env=_env({ENV_VAR: plan.to_json()}),
    )


class TestHavocSoak:
    def test_chaos_grid_survives_the_schedule_bit_identically(self, tmp_path):
        # Reference: the same grid, in-process, no farm, no havoc.
        specs = specs_from_payload(CHAOS_PAYLOAD)
        reference = ParallelRunner(jobs=1).run(specs)
        expected = [o.result["trace_digest"] for o in reference]

        server, url = _spawn_server(tmp_path, SERVER_PLAN)
        workers = []
        try:
            job = client.submit(url, CHAOS_PAYLOAD)
            # The per-grid queue directory appears once the job dispatches.
            queues = tmp_path / "queues"
            deadline = time.monotonic() + 30
            queue_dir = None
            while time.monotonic() < deadline:
                candidates = list(queues.glob("*/tasks"))
                if candidates:
                    queue_dir = candidates[0].parent
                    break
                time.sleep(0.1)
            assert queue_dir is not None, "job never enqueued cells"

            victim = _spawn_worker(tmp_path, queue_dir, VICTIM_PLAN)
            workers.append(victim)
            survivor = _spawn_worker(tmp_path, queue_dir, SURVIVOR_PLAN)
            workers.append(survivor)

            # Watch the SSE stream through the injected drop; the client
            # must resume from Last-Event-ID, not restart or die.
            reconnects = []
            seen_seqs = []
            for event in client.watch(
                url, job["id"], timeout=240,
                on_reconnect=lambda n, cursor: reconnects.append(cursor),
            ):
                if "seq" in event:
                    seen_seqs.append(event["seq"])

            status = client.wait(url, job["id"], timeout=60)
            assert status["state"] == "done", status

            payload = client.results(url, job["id"])
            digests = [cell["trace_digest"] for cell in payload["results"]]
            assert digests == expected  # bit-identical under havoc

            # The schedule actually fired: the victim died by SIGKILL...
            assert victim.wait(timeout=30) == -signal.SIGKILL
            # ...and the SSE stream was dropped and resumed at least once,
            # with no event replayed after the resume cursor.
            assert len(reconnects) >= 1
            assert seen_seqs == sorted(set(seen_seqs))
        finally:
            for worker in workers:
                if worker.poll() is None:
                    worker.terminate()
                    worker.wait(timeout=15)
            server.send_signal(signal.SIGTERM)
            assert server.wait(timeout=30) == 0

    def test_same_seed_reproduces_the_same_schedule(self):
        from repro.havoc import generate_plan

        for seed in (0, 7, 12345):
            assert generate_plan(seed).to_json() == generate_plan(seed).to_json()
        # And the soak's own pinned plans serialise stably.
        for plan in (SERVER_PLAN, VICTIM_PLAN, SURVIVOR_PLAN):
            assert HavocPlan.from_json(plan.to_json()) == plan
