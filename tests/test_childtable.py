"""Tests for the child-node table (paper Table I, Algorithm 1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.childtable import ChildTable, SpaceExhausted


class TestSpaceSizing:
    """Algorithm 1 lines 1–6."""

    def test_space_covers_children_plus_reserve(self):
        for n in range(1, 40):
            bits = ChildTable.required_space_bits(n)
            capacity = (1 << bits) - 1  # position 0 reserved
            assert capacity >= n, f"{n} children won't fit {bits} bits"

    def test_reserve_is_capped_at_ten(self):
        # For 40 children the reserve must be 10, not 20.
        bits = ChildTable.required_space_bits(40)
        assert (1 << bits) >= 40 + 10 + 1
        assert ChildTable.required_space_bits(40) <= 6

    def test_two_children_get_two_bits(self):
        # The paper's Figure 2: two discovered children → 2-bit space.
        assert ChildTable.required_space_bits(2) == 2

    def test_size_space_is_idempotent(self):
        table = ChildTable()
        first = table.size_space(3)
        second = table.size_space(30)
        assert first == second  # initial sizing happens once

    @given(st.integers(min_value=1, max_value=500))
    def test_property_capacity_sufficient(self, n):
        bits = ChildTable.required_space_bits(n)
        assert (1 << bits) - 1 >= n
        assert bits <= ChildTable.MAX_SPACE_BITS or n > 2**14


class TestAllocation:
    def test_positions_unique(self):
        table = ChildTable()
        table.size_space(5)
        positions = {table.allocate(child).position for child in range(5)}
        assert len(positions) == 5

    def test_position_zero_never_allocated(self):
        table = ChildTable()
        table.size_space(10)
        for child in range(10):
            assert table.allocate(child).position != 0

    def test_reallocation_returns_existing(self):
        table = ChildTable()
        table.size_space(2)
        first = table.allocate(7)
        second = table.allocate(7)
        assert first is second
        assert len(table) == 1

    def test_allocate_extends_space_when_full(self):
        table = ChildTable()
        table.size_space(1)
        bits = table.space_bits
        for child in range(table.capacity()):
            table.allocate(child)
        table.allocate(999)  # overflow triggers extension
        assert table.space_bits == bits + 1
        assert 999 in table

    def test_extension_keeps_positions(self):
        table = ChildTable()
        table.size_space(2)
        before = {e.child: e.position for e in table.entries()}
        for child in range(table.capacity()):
            table.allocate(child)
        snapshot = {e.child: e.position for e in table.entries()}
        table.extend_space()
        after = {e.child: e.position for e in table.entries()}
        assert snapshot == after
        del before

    def test_extension_cap(self):
        table = ChildTable()
        table.space_bits = ChildTable.MAX_SPACE_BITS
        with pytest.raises(SpaceExhausted):
            table.extend_space()

    def test_allocate_without_sizing_bootstraps(self):
        table = ChildTable()
        entry = table.allocate(1)
        assert entry.position >= 1
        assert table.space_bits >= 1


class TestConfirmation:
    """Algorithm 2 consistency handling."""

    def test_confirm_matching_entry(self):
        table = ChildTable()
        entry = table.allocate(5)
        assert not entry.confirmed
        assert table.confirm(5, entry.position)
        assert entry.confirmed

    def test_confirm_wrong_position_fails(self):
        table = ChildTable()
        entry = table.allocate(5)
        assert not table.confirm(5, entry.position + 1)
        assert not entry.confirmed

    def test_confirm_unknown_child_fails(self):
        table = ChildTable()
        assert not table.confirm(42, 1)

    def test_reallocate_gives_fresh_unconfirmed_entry(self):
        table = ChildTable()
        table.size_space(4)
        old = table.allocate(5)
        old.confirmed = True
        table.allocate(6)
        new = table.reallocate(5)
        assert not new.confirmed
        # Fresh position must not collide with other children.
        assert new.position != table.entry(6).position

    def test_remove_frees_position(self):
        table = ChildTable()
        table.size_space(1)
        entry = table.allocate(5)
        position = entry.position
        table.remove(5)
        assert 5 not in table
        # The freed position is reusable.
        table.allocate(6)
        assert table.entry(6).position in {position, *range(1, 1 << table.space_bits)}


class TestPropertyAllocation:
    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=60, unique=True))
    def test_property_all_positions_unique_and_nonzero(self, children):
        table = ChildTable()
        table.size_space(len(children) // 2 + 1)
        entries = [table.allocate(child) for child in children]
        positions = [e.position for e in entries]
        assert len(set(positions)) == len(children)
        assert all(p >= 1 for p in positions)
        assert all(p < (1 << table.space_bits) for p in positions)
