"""Property tests for the city-scale deployment generators.

Guarantees held for ``city_blocks``, ``clustered_field``, and ``forest``
(the spatial-index workloads): seeded determinism (same seed, same field,
byte for byte), no duplicate coordinates, the declared minimum pairwise
separation, geometry bounds, and — after the deterministic repair pass —
every node connected to the sink over usable (PRR ≥ 0.5) links.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import city_blocks, clustered_field, forest
from repro.topology.analysis import unreachable_nodes

GENERATORS = {
    "city-blocks": lambda seed: city_blocks(
        blocks_x=3, blocks_y=3, nodes_per_block=8, seed=seed
    ),
    "clustered": lambda seed: clustered_field(
        clusters=5, nodes_per_cluster=10, seed=seed
    ),
    "forest": lambda seed: forest(n=120, seed=seed),
}

seeds = st.integers(min_value=0, max_value=2**16)


def min_pairwise_distance(positions):
    return min(
        math.dist(a, b)
        for i, a in enumerate(positions)
        for b in positions[i + 1 :]
    )


@pytest.mark.parametrize("name", sorted(GENERATORS))
class TestGeneratorContract:
    @given(seed=seeds)
    @settings(max_examples=8, deadline=None)
    def test_seeded_determinism(self, name, seed):
        first = GENERATORS[name](seed)
        second = GENERATORS[name](seed)
        assert first.positions == second.positions
        assert first.sink == second.sink
        assert first.to_dict() == second.to_dict()

    @given(seed=seeds)
    @settings(max_examples=8, deadline=None)
    def test_no_duplicate_positions(self, name, seed):
        deployment = GENERATORS[name](seed)
        assert len(set(deployment.positions)) == deployment.size

    @given(seed=seeds)
    @settings(max_examples=6, deadline=None)
    def test_connected_to_sink(self, name, seed):
        deployment = GENERATORS[name](seed)
        assert unreachable_nodes(deployment) == []

    @given(seed=seeds)
    @settings(max_examples=4, deadline=None)
    def test_different_seeds_differ(self, name, seed):
        a = GENERATORS[name](seed)
        b = GENERATORS[name](seed + 1)
        assert a.positions != b.positions


class TestGeometryBounds:
    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=6, deadline=None)
    def test_forest_density_and_separation(self, seed):
        density = 170.0
        deployment = forest(n=150, density_m2_per_node=density, seed=seed)
        side = math.sqrt(150 * density)
        assert deployment.size == 150
        # The connectivity repair pass may re-home a stranded node up to
        # 12 m outside the sampled field; bounds hold up to that slack.
        slack = 12.0 + 1e-9
        for x, y in deployment.positions:
            assert -slack <= x <= side + slack and -slack <= y <= side + slack
        # The repair pass may re-home stranded nodes closer than the sampled
        # separation (it heals connectivity, not spacing), but never closer
        # than its own floor of the generator's min_separation_m.
        assert min_pairwise_distance(deployment.positions) >= 2.0 - 1e-9

    def test_forest_node_count_scales_area(self):
        small = forest(n=100, seed=3)
        large = forest(n=400, seed=3)
        small_side = max(x for x, _ in small.positions)
        large_side = max(x for x, _ in large.positions)
        assert large_side > small_side * 1.5  # area tracks n · density

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=6, deadline=None)
    def test_city_blocks_inside_street_plan(self, seed):
        blocks, block_m, street_m = 3, 40.0, 12.0
        deployment = city_blocks(
            blocks_x=blocks, blocks_y=blocks, nodes_per_block=8,
            block_m=block_m, street_m=street_m, seed=seed,
        )
        assert deployment.size == blocks * blocks * 8
        extent = blocks * block_m + (blocks - 1) * street_m
        slack = 12.0 + 1e-9  # connectivity-repair re-homing slack
        for x, y in deployment.positions:
            assert -slack <= x <= extent + slack
            assert -slack <= y <= extent + slack

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=6, deadline=None)
    def test_clustered_field_counts(self, seed):
        deployment = clustered_field(clusters=4, nodes_per_cluster=9, seed=seed)
        assert deployment.size == 4 * 9

    def test_sink_is_a_valid_node(self):
        for name, build in GENERATORS.items():
            deployment = build(0)
            assert 0 <= deployment.sink < deployment.size, name
