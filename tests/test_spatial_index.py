"""Spatial-index equivalence: grid culling must never change behaviour.

The contracts held here (see docs/performance.md, "Spatial index"):

- grid range queries return a **superset** of the true disc, exactly
  refined by the caller;
- the candidate set is a superset of every receiver that can clear the
  interference floor, shadowing margin included;
- sparse gains are bit-identical to the dense matrix's floats for every
  pair both materialise, and the sparse map misses no pair the channel
  could ever hear;
- a Channel built on a SpatialChannel derives the same audible rows and
  rx-power maps as one built on the dense O(N²) matrix, numpy or not;
- mobility (``move_node``) and dense gain patches (``update_link_gains``)
  invalidate the memoised per-source rx maps (the PR 3 caches) — a moved
  node must never be priced at its old position.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.radio.channel import Channel
from repro.radio.frame import Frame, FrameType
from repro.radio.noise import ConstantNoise
from repro.radio.propagation import LogDistancePathLoss
from repro.radio.radio import Radio
from repro.radio.spatial import (
    GridIndex,
    SpatialChannel,
    SpatialIndexParams,
    get_numpy,
    interference_range_m,
    sparse_gain_matrix,
)
from repro.sim import Simulator

# Coordinates use a bounded grid so hypothesis explores collisions and
# cell-boundary cases (multiples of typical cell sizes) aggressively.
coord = st.floats(
    min_value=-400.0, max_value=400.0, allow_nan=False, allow_infinity=False
)
positions_strategy = st.lists(st.tuples(coord, coord), min_size=1, max_size=60)


def brute_force_disc(positions, center, radius):
    return sorted(
        i
        for i, p in enumerate(positions)
        if math.dist(p, center) <= radius
    )


class TestGridIndexSuperset:
    @given(
        positions=positions_strategy,
        center=st.tuples(coord, coord),
        radius=st.floats(min_value=0.0, max_value=150.0, allow_nan=False),
        cell=st.floats(min_value=2.0, max_value=200.0, allow_nan=False),
    )
    @settings(max_examples=120)
    def test_candidates_superset_of_disc(self, positions, center, radius, cell):
        index = GridIndex(positions, cell_size=cell)
        got = index.candidates_within(center, radius)
        assert got == sorted(got), "candidates must come back ascending"
        assert set(got) >= set(brute_force_disc(positions, center, radius))

    @given(
        positions=positions_strategy,
        node=st.integers(min_value=0, max_value=59),
        radius=st.floats(min_value=0.0, max_value=300.0, allow_nan=False),
    )
    @settings(max_examples=60)
    def test_neighbors_exclude_self(self, positions, node, radius):
        node = node % len(positions)
        index = GridIndex(positions, cell_size=25.0)
        got = index.neighbors_of(node, radius)
        assert node not in got
        expected = set(brute_force_disc(positions, positions[node], radius))
        expected.discard(node)
        assert set(got) >= expected

    @given(positions=positions_strategy)
    @settings(max_examples=40)
    def test_move_keeps_queries_consistent(self, positions):
        index = GridIndex(positions, cell_size=30.0)
        index.move(0, (999.0, -999.0))
        # The moved node is findable at its new home, absent from a query
        # that covers the whole original field but not the new home, and no
        # node was lost from the index.
        assert 0 in index.candidates_within((999.0, -999.0), 1.0)
        assert 0 not in index.candidates_within((0.0, 0.0), 500.0)
        total = index.candidates_within((0.0, 0.0), 2_000.0)
        assert total == list(range(len(positions)))


class TestCullingSuperset:
    """Candidates cover every receiver that can clear the floor."""

    @given(
        positions=st.lists(st.tuples(coord, coord), min_size=2, max_size=40),
        seed=st.integers(min_value=0, max_value=2**16),
        floor=st.floats(min_value=-120.0, max_value=-80.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_candidates_cover_above_floor_pairs(self, positions, seed, floor):
        propagation = LogDistancePathLoss(
            pl_d0=40.0, seed=seed, shadowing_sigma=3.2
        )
        spatial = SpatialChannel(positions, propagation, cull_floor_dbm=floor)
        dense = propagation.gain_matrix(positions)
        for (a, b), gain in dense.items():
            if gain >= floor:
                assert b in spatial.candidates(a), (
                    f"pair {(a, b)} clears the floor ({gain:.1f} >= {floor}) "
                    "but was culled"
                )

    @given(
        positions=st.lists(st.tuples(coord, coord), min_size=2, max_size=40),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_sparse_gains_bit_identical_to_dense(self, positions, seed):
        propagation = LogDistancePathLoss(pl_d0=40.0, seed=seed, shadowing_sigma=3.2)
        dense = propagation.gain_matrix(positions)
        sparse, _ = sparse_gain_matrix(
            propagation, positions, interference_floor_dbm=-110.0
        )
        # Bit-identical floats wherever both materialise a pair…
        for key, gain in sparse.items():
            assert gain == dense[key]
        # …and nothing audible is missing (6σ margin over the -110 floor).
        for key, gain in dense.items():
            if gain >= -110.0 + 3.0:
                assert key in sparse

    def test_interference_range_monotone_in_floor(self):
        propagation = LogDistancePathLoss(pl_d0=40.0, seed=1, shadowing_sigma=3.2)
        ranges = [
            interference_range_m(propagation, 0.0, floor)
            for floor in (-90.0, -100.0, -110.0)
        ]
        assert ranges == sorted(ranges), "lower floor must mean larger radius"


def build_pair_of_channels(positions, seed, fading=0.0, no_numpy=False, monkeypatch=None):
    """One dense and one spatial Channel over identical physics."""
    if no_numpy:
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    propagation = LogDistancePathLoss(pl_d0=40.0, seed=seed, shadowing_sigma=3.2)
    dense_gains = propagation.gain_matrix(positions)
    dense = Channel(
        Simulator(seed=seed),
        dense_gains,
        noise_model=ConstantNoise(),
        fading_sigma_db=fading,
    )
    spatial = Channel(
        Simulator(seed=seed),
        noise_model=ConstantNoise(),
        fading_sigma_db=fading,
        spatial=SpatialChannel(
            positions, propagation, cull_floor_dbm=-110.0 - 3.0 * fading
        ),
    )
    return dense, spatial


class TestChannelEquivalence:
    @pytest.mark.parametrize("no_numpy", [False, True])
    @pytest.mark.parametrize("fading", [0.0, 2.5])
    def test_audible_rows_and_rx_maps_match(self, fading, no_numpy, monkeypatch):
        rng_positions = __import__("random").Random(7)
        positions = [
            (rng_positions.uniform(0, 300), rng_positions.uniform(0, 300))
            for _ in range(120)
        ]
        dense, spatial = build_pair_of_channels(
            positions, seed=3, fading=fading, no_numpy=no_numpy, monkeypatch=monkeypatch
        )
        assert dense._audible.keys() == spatial._audible.keys()
        for src in dense._audible:
            assert dense._audible[src] == spatial._audible[src]
            for bucket in (-1, 0, 4):
                want = dense._compute_rx_map(src, 0.0, bucket)
                got = spatial._compute_rx_map(src, 0.0, bucket)
                assert want == got
                assert all(
                    type(k) is int and type(v) is float for k, v in got.items()
                ), "numpy scalar types must not leak into rx maps"

    def test_link_gain_on_demand_matches_dense(self):
        rng = __import__("random").Random(11)
        positions = [(rng.uniform(0, 200), rng.uniform(0, 200)) for _ in range(60)]
        dense, spatial = build_pair_of_channels(positions, seed=5)
        for a in range(len(positions)):
            for b in range(len(positions)):
                if a == b:
                    continue
                want = dense.link_gain(a, b)
                got = spatial.link_gain(a, b)
                if got is None:
                    # Culled ⇒ far below audibility in the dense map too.
                    assert want is None or want < -110.0
                else:
                    assert got == want
                    if want >= -110.0:
                        assert spatial.expected_prr(a, b) == dense.expected_prr(a, b)


def make_spatial_channel(positions, seed=1):
    sim = Simulator(seed=seed)
    propagation = LogDistancePathLoss(pl_d0=40.0, seed=seed, shadowing_sigma=0.0)
    channel = Channel(
        sim,
        noise_model=ConstantNoise(),
        spatial=SpatialChannel(positions, propagation, cull_floor_dbm=-110.0),
    )
    radios = [Radio(sim, channel, i) for i in range(len(positions))]
    return sim, channel, radios


class TestRxCacheInvalidation:
    """The memoised per-source rx maps must die with the topology they priced."""

    def _prime_cache(self, sim, channel, radios, src=0):
        radios[src].turn_on()
        radios[src].transmit(Frame(src=src, dst=1, type=FrameType.DATA))
        sim.run(until=sim.now + 10_000_000)
        assert src in channel._rx_cache
        return channel._rx_cache[src][3]

    def test_move_node_invalidates_rx_cache(self):
        positions = [(0.0, 0.0), (10.0, 0.0), (20.0, 0.0)]
        sim, channel, radios = make_spatial_channel(positions)
        for r in radios[1:]:
            r.turn_on()
        old_map = self._prime_cache(sim, channel, radios)
        assert 1 in old_map
        epoch_before = channel._fault_epoch
        channel.move_node(1, (5000.0, 5000.0))
        assert channel._fault_epoch > epoch_before
        assert channel.link_gain(0, 1) is None
        new_map = self._prime_cache(sim, channel, radios)
        assert new_map is not old_map, "stale rx map survived the move"
        assert 1 not in new_map, "moved node still priced at its old position"

    def test_move_node_back_restores_links(self):
        positions = [(0.0, 0.0), (10.0, 0.0), (20.0, 0.0)]
        sim, channel, radios = make_spatial_channel(positions)
        gain_before = channel.link_gain(0, 1)
        channel.move_node(1, (4000.0, 0.0))
        channel.move_node(1, (10.0, 0.0))
        # Shadowing is pinned to the node pair, so the gain comes back exact.
        assert channel.link_gain(0, 1) == gain_before
        assert 1 in channel.audible_neighbors(0)
        assert 0 in channel.audible_neighbors(1)

    def test_move_node_requires_spatial_mode(self):
        sim = Simulator(seed=1)
        propagation = LogDistancePathLoss(pl_d0=40.0, seed=1, shadowing_sigma=0.0)
        gains = propagation.gain_matrix([(0.0, 0.0), (10.0, 0.0)])
        channel = Channel(sim, gains, noise_model=ConstantNoise())
        with pytest.raises(ValueError, match="spatial"):
            channel.move_node(0, (1.0, 1.0))

    def test_update_link_gains_invalidates_rx_cache(self):
        sim = Simulator(seed=1)
        propagation = LogDistancePathLoss(pl_d0=40.0, seed=1, shadowing_sigma=0.0)
        positions = [(0.0, 0.0), (10.0, 0.0), (20.0, 0.0)]
        channel = Channel(
            sim, propagation.gain_matrix(positions), noise_model=ConstantNoise()
        )
        radios = [Radio(sim, channel, i) for i in range(3)]
        for r in radios:
            r.turn_on()
        radios[0].transmit(Frame(src=0, dst=1, type=FrameType.DATA))
        sim.run(until=sim.now + 10_000_000)
        old_map = channel._rx_cache[0][3]
        assert 1 in old_map
        channel.update_link_gains({(0, 1): None, (1, 0): None})
        assert 1 not in channel.audible_neighbors(0)
        radios[0].transmit(Frame(src=0, dst=2, type=FrameType.DATA))
        sim.run(until=sim.now + 10_000_000)
        new_map = channel._rx_cache[0][3]
        assert new_map is not old_map
        assert 1 not in new_map, "severed link still priced in the rx map"

    def test_spatial_rejects_dense_gains_too(self):
        positions = [(0.0, 0.0), (10.0, 0.0)]
        propagation = LogDistancePathLoss(pl_d0=40.0, seed=1, shadowing_sigma=0.0)
        with pytest.raises(ValueError, match="not both"):
            Channel(
                Simulator(seed=1),
                gains={(0, 1): -60.0},
                noise_model=ConstantNoise(),
                spatial=SpatialChannel(positions, propagation),
            )

    def test_culling_floor_above_audible_floor_rejected(self):
        positions = [(0.0, 0.0), (10.0, 0.0)]
        propagation = LogDistancePathLoss(pl_d0=40.0, seed=1, shadowing_sigma=0.0)
        with pytest.raises(ValueError, match="culling"):
            Channel(
                Simulator(seed=1),
                noise_model=ConstantNoise(),
                fading_sigma_db=3.0,  # audible floor −119; culling at −110 drops links
                spatial=SpatialChannel(positions, propagation, cull_floor_dbm=-110.0),
            )


class TestParamsAndNumpyGate:
    def test_params_canonical_dict(self):
        params = SpatialIndexParams()
        assert params.to_dict() == {
            "cell_size_m": None,
            "interference_floor_dbm": -110.0,
            "shadow_sigma_multiple": 6.0,
        }

    def test_numpy_gate_honours_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_NUMPY", raising=False)
        has_numpy = get_numpy() is not None
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        assert get_numpy() is None
        if has_numpy:
            monkeypatch.delenv("REPRO_NO_NUMPY")
            assert get_numpy() is not None
