"""Retry policy: classification, seeded backoff, fail-fast behaviour."""

import pytest

from repro.runner import (
    InjectedFault,
    ParallelRunner,
    RetryPolicy,
    RunError,
    selftest_spec,
)
from repro.runner.taskspec import TaskSpec


class TestClassification:
    @pytest.mark.parametrize(
        "error",
        [RunError("bad config"), ValueError("x"), TypeError("x"), KeyError("x")],
    )
    def test_deterministic_errors(self, error):
        assert RetryPolicy().classify(error) == "deterministic"

    @pytest.mark.parametrize(
        "error", [InjectedFault("flaky"), OSError("disk"), RuntimeError("?")]
    )
    def test_transient_errors(self, error):
        assert RetryPolicy().classify(error) == "transient"


class TestBackoff:
    def test_deterministic_across_calls(self):
        policy = RetryPolicy(seed=7)
        assert policy.delay("cell", 0) == policy.delay("cell", 0)
        assert RetryPolicy(seed=7).delay("cell", 3) == policy.delay("cell", 3)

    def test_seed_changes_jitter(self):
        assert RetryPolicy(seed=1).delay("cell", 0) != RetryPolicy(seed=2).delay(
            "cell", 0
        )

    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(
            backoff_base_s=1.0, backoff_factor=2.0, backoff_max_s=3.0, jitter=0.0
        )
        assert policy.delay("c", 0) == 1.0
        assert policy.delay("c", 1) == 2.0
        assert policy.delay("c", 5) == 3.0  # capped

    def test_jitter_bounds(self):
        policy = RetryPolicy(backoff_base_s=1.0, jitter=0.25)
        for attempt in range(6):
            base = min(
                policy.backoff_base_s * policy.backoff_factor**attempt,
                policy.backoff_max_s,
            )
            delay = policy.delay("cell", attempt)
            assert 0.75 * base <= delay <= 1.25 * base

    def test_zero_base_is_zero_delay(self):
        assert RetryPolicy(backoff_base_s=0.0).delay("c", 4) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_max_attempts(self):
        assert RetryPolicy(retries=0).max_attempts == 1
        assert RetryPolicy(retries=3).max_attempts == 4


def _raising_spec(index, exc_name):
    # The selftest executor raises KeyError on a missing param; build a spec
    # whose params are wrong in a *deterministic* way.
    return TaskSpec("selftest", {"index": index}, label=f"broken{index}")


class TestEngineIntegration:
    def test_deterministic_error_fails_fast(self):
        # Missing params -> KeyError inside the executor: retrying is
        # pointless, so exactly one attempt must be charged despite retries.
        runner = ParallelRunner(jobs=1, retries=5)
        outcomes = runner.run([_raising_spec(0, "KeyError")])
        assert outcomes[0].status == "failed"
        assert outcomes[0].attempts == 1
        assert runner.last_report.backoff_s == 0.0

    def test_deterministic_error_fails_fast_parallel(self):
        runner = ParallelRunner(jobs=2, retries=5)
        outcomes = runner.run([selftest_spec(0), _raising_spec(1, "KeyError")])
        assert [o.status for o in outcomes] == ["executed", "failed"]
        assert outcomes[1].attempts == 1

    def test_transient_error_retries_with_backoff(self):
        policy = RetryPolicy(retries=2, backoff_base_s=0.01, jitter=0.0)
        runner = ParallelRunner(jobs=1, policy=policy)
        outcomes = runner.run([selftest_spec(0, fault={"error_attempts": 2})])
        assert outcomes[0].status == "executed"
        assert outcomes[0].attempts == 3
        # Two failed attempts: 0.01 + 0.02 of scheduled backoff.
        assert runner.last_report.backoff_s == pytest.approx(0.03)

    def test_policy_overrides_retries_argument(self):
        runner = ParallelRunner(jobs=1, retries=9, policy=RetryPolicy(retries=0))
        outcomes = runner.run([selftest_spec(0, fault={"error_attempts": 1})])
        assert outcomes[0].status == "failed"
        assert outcomes[0].attempts == 1
