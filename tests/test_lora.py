"""LoRa profile: airtime formula, PRR waterfall, p-CSMA, and the grid.

The numbers pinned here are the Semtech modem formula evaluated at the
profile's defaults (SF10, 125 kHz, CR 4/5, 12-symbol preamble): one symbol
is 8192 µs, a 40-byte frame is 53 payload symbols, and the whole frame
occupies the channel for 567.296 ms — which is what makes every schedule
in :mod:`repro.experiments.lora` minutes-scale.
"""

import pytest

from repro.experiments.lora import LORA_DEFAULTS, lora_config, run_lora
from repro.mac.pcsma import PCsmaParams
from repro.radio.lora import SNR_FLOOR_DB, LoRaProfile
from repro.radio.profiles import get_radio_profile
from repro.topology import profile_field


@pytest.fixture(scope="module")
def lora():
    return get_radio_profile("lora")


class TestAirtime:
    def test_symbol_time(self, lora):
        # 2^10 / 125 kHz = 8.192 ms per chirp symbol.
        assert lora.symbol_time_us() == 8192

    def test_payload_symbols_pin(self, lora):
        assert lora.payload_symbols(40) == 53
        assert lora.payload_symbols(11) == 23

    def test_airtime_pins(self, lora):
        # preamble (12 + 4.25 symbols) + 53 payload symbols at 8192 µs.
        assert lora.packet_airtime(40) == 567_296
        assert lora.packet_airtime(11) == 321_536

    def test_genuinely_sub_kbps(self, lora):
        assert lora.bit_rate_bps < 1000
        # Effective throughput of a 40-byte frame is even lower.
        effective = 40 * 8 / (lora.packet_airtime(40) / 1e6)
        assert effective < 600

    def test_airtime_monotonic_in_length(self, lora):
        airtimes = [lora.packet_airtime(n) for n in range(1, 256, 16)]
        assert airtimes == sorted(airtimes)

    def test_roughly_400x_slower_than_cc2420(self, lora):
        cc2420 = get_radio_profile("cc2420")
        ratio = lora.packet_airtime(40) / cc2420.packet_airtime(40)
        assert 300 < ratio < 500


class TestPrr:
    def test_decodes_below_the_noise_floor(self, lora):
        # The SF10 correlator works down to -15 dB SNR; at a comfortable
        # margin above the floor the link is solid.
        assert SNR_FLOOR_DB[lora.spreading_factor] == -15.0
        assert lora.prr(-9.0, 40) == 1.0

    def test_waterfall_clamps(self, lora):
        assert lora.prr(-17.5, 40) == 0.0  # 2.5 dB below the floor
        assert lora.prr(0.0, 40) == 1.0

    def test_monotonic_in_snr(self, lora):
        snrs = [-17.0 + i * 0.5 for i in range(17)]
        prrs = [lora.prr(snr, 40) for snr in snrs]
        assert prrs == sorted(prrs)
        assert prrs[0] == 0.0 and prrs[-1] == 1.0

    def test_longer_frames_are_more_fragile(self, lora):
        # Mid-waterfall, more symbols mean more chances to lose one.
        assert lora.prr(-12.0, 200) < lora.prr(-12.0, 11)


class TestPcsma:
    def test_p0_formula(self):
        # p0 = (1 - 1/n0)^(n0-1): the LoRaMesh persistence that maximises
        # slot success for n0 contenders.
        assert PCsmaParams(n0=5).p0 == pytest.approx(0.4096)
        assert PCsmaParams(n0=1).p0 == 1.0
        assert PCsmaParams(n0=2).p0 == 0.5

    def test_lora_defaults_scale_with_airtime(self, lora):
        params = PCsmaParams.lora_defaults()
        # The ack gap must hold a whole 11-byte ack plus turnaround.
        assert params.ack_gap > lora.packet_airtime(11) + lora.turnaround_ticks
        # Broadcast trains are capped: an uncapped 12 s train of 567 ms
        # copies would occupy the channel for the whole wake interval.
        assert params.broadcast_copies_cap is not None

    def test_profile_builds_pcsma(self, lora):
        from repro.mac.pcsma import PCsmaMac
        from repro.radio.channel import Channel
        from repro.radio.noise import ConstantNoise
        from repro.radio.radio import Radio
        from repro.sim import Simulator

        sim = Simulator(seed=1)
        channel = Channel(
            sim, {(0, 1): -60.0, (1, 0): -60.0},
            noise_model=ConstantNoise(lora.noise_floor_dbm), profile=lora,
        )
        mac = lora.build_mac(
            sim, Radio(sim, channel, 0), params=lora.default_mac_params(True),
            always_on=True,
        )
        assert isinstance(mac, PCsmaMac)
        assert mac.ack_airtime == lora.packet_airtime(11)
        assert mac.turnaround == lora.turnaround_ticks

    def test_cca_threshold_sits_above_the_noise_floor(self, lora):
        # Energy-detect CCA below the noise floor never reads clear — the
        # network would be mute (this was a real bug).
        assert lora.cca_threshold_dbm > lora.noise_floor_dbm


class TestField:
    def test_field_is_km_scale_and_connected(self):
        field = profile_field("lora", n=25, seed=0)
        xs = [p[0] for p in field.positions]
        ys = [p[1] for p in field.positions]
        assert max(xs) - min(xs) > 2_000.0  # kilometres, not metres
        assert field.size == 25

    def test_cc2420_field_is_metre_scale(self):
        field = profile_field("cc2420", n=9, seed=0)
        xs = [p[0] for p in field.positions]
        assert max(xs) - min(xs) < 200.0


class TestGrid:
    def test_config_fingerprints_the_profile(self):
        config = lora_config("tele", seed=0)
        d = config.to_dict()
        assert d["radio_profile"] == "lora"
        assert d["collection_ipi"] is None
        assert d["always_on"] is True

    def test_run_lora_delivers_controls(self):
        result = run_lora(
            "tele",
            seed=0,
            n_controls=3,
            control_interval_s=60.0,
            converge_seconds=900.0,
            drain_seconds=120.0,
        )
        assert result["converged"]
        assert result["n_controls"] == 3
        assert result["pdr"] is not None and result["pdr"] > 0.0
        assert result["bit_rate_bps"] < 1000

    def test_defaults_shared_with_spec_builder(self):
        from repro.runner import lora_spec

        spec = lora_spec("drip", seed=2)
        assert spec.params["schedule"] == LORA_DEFAULTS
        assert spec.params["config"]["radio_profile"] == "lora"
        assert spec.kind == "lora"
