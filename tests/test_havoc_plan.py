"""Havoc plans: validation, matching, serialisation, seeded generation."""

import pytest

from repro.havoc import HavocEvent, HavocPlan, generate_plan
from repro.havoc.plan import FS_KINDS, HAVOC_KINDS, HTTP_KINDS, PROC_KINDS


class TestEventValidation:
    def test_every_kind_belongs_to_exactly_one_seam(self):
        assert set(HAVOC_KINDS) == set(FS_KINDS) | set(PROC_KINDS) | set(
            HTTP_KINDS
        )
        assert len(HAVOC_KINDS) == len(FS_KINDS) + len(PROC_KINDS) + len(
            HTTP_KINDS
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown havoc kind"):
            HavocEvent(kind="meteor")

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError, match="start"):
            HavocEvent(kind="enospc", start=-1)

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError, match="count"):
            HavocEvent(kind="enospc", count=0)

    def test_stall_without_delay_rejected(self):
        for kind in ("slow_fsync", "stall", "sse_stall"):
            with pytest.raises(ValueError, match="delay_s"):
                HavocEvent(kind=kind)

    def test_unknown_dict_key_rejected(self):
        with pytest.raises(ValueError, match="unknown HavocEvent keys"):
            HavocEvent.from_dict({"kind": "enospc", "colour": "red"})


class TestEventMatching:
    def test_empty_filters_match_everything(self):
        event = HavocEvent(kind="enospc")
        assert event.matches("write", "/any/path")
        assert event.matches("fsync", "")

    def test_op_filter_is_exact(self):
        event = HavocEvent(kind="enospc", op="write")
        assert event.matches("write", "x")
        assert not event.matches("fsync", "x")

    def test_scope_filter_is_substring(self):
        event = HavocEvent(kind="enospc", scope="journal")
        assert event.matches("write", "/run/journal/abc.jsonl")
        assert not event.matches("write", "/run/cache/abc.json")


class TestSerialisation:
    def test_round_trip(self):
        plan = HavocPlan(
            events=(
                HavocEvent(kind="torn", op="write", scope="q", start=2),
                HavocEvent(kind="kill", op="claimed", start=1),
                HavocEvent(kind="sse_stall", op="events", delay_s=0.5),
            ),
            seed=9,
            name="trip",
        )
        assert HavocPlan.from_json(plan.to_json()) == plan

    def test_canonical_json_is_stable(self):
        plan = generate_plan(3)
        assert plan.to_json() == HavocPlan.from_json(plan.to_json()).to_json()

    def test_malformed_json_raises(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            HavocPlan.from_json("{nope")

    def test_non_object_raises(self):
        with pytest.raises(ValueError, match="JSON object"):
            HavocPlan.from_json("[1, 2]")

    def test_for_kinds_partitions_by_seam(self):
        plan = generate_plan(5, enospc_windows=2, kills=1, sse_drops=1)
        assert len(plan.for_kinds(FS_KINDS)) == 2
        assert len(plan.for_kinds(PROC_KINDS)) == 1
        assert len(plan.for_kinds(HTTP_KINDS)) == 1


class TestGeneratePlan:
    def test_same_seed_same_plan(self):
        assert generate_plan(42) == generate_plan(42)
        assert generate_plan(42).to_json() == generate_plan(42).to_json()

    def test_different_seeds_differ(self):
        produced = {generate_plan(seed).to_json() for seed in range(20)}
        assert len(produced) > 1

    def test_requested_event_counts(self):
        plan = generate_plan(7, enospc_windows=3, kills=2, sse_drops=1)
        kinds = [event.kind for event in plan.events]
        assert kinds.count("enospc") == 3
        assert kinds.count("kill") == 2
        assert kinds.count("sse_drop") == 1

    def test_plan_is_independent_of_global_random_state(self):
        import random

        random.seed(123)
        first = generate_plan(11)
        random.seed(999)
        assert generate_plan(11) == first
