"""The `python -m repro run` grid subcommand.

The simulation itself is stubbed (monkeypatched ``run_comparison``); these
tests cover the CLI wiring: grid expansion, cache behaviour, journal/resume
flags, telemetry output, CSV/JSON export, and exit codes. ``jobs=1`` keeps
execution in-process so the stub is visible to the engine. The one
exception is the SIGTERM test at the bottom, which runs a real (compressed)
grid in a subprocess to pin the 0/1/3 exit-code contract end to end.
"""

import json
import os
import signal
import subprocess
import sys
import threading
from pathlib import Path

import pytest

import repro
from repro import cli
from repro.experiments.comparison import ComparisonResult


@pytest.fixture
def stub_comparison(monkeypatch):
    calls = []

    def fake_run_comparison(variant, zigbee_channel=26, seed=0, **kwargs):
        calls.append((variant, zigbee_channel, seed))
        return ComparisonResult(
            variant=variant,
            zigbee_channel=zigbee_channel,
            seed=seed,
            n_controls=kwargs.get("n_controls", 2),
            pdr=0.875,
            pdr_by_hop={1: 1.0, 2: 0.75},
            latency_by_hop={1: 0.8},
            mean_latency=1.5,
            tx_per_control=4.25,
            duty_cycle=0.031,
            athx_samples=[(1, 1)],
        )

    monkeypatch.setattr(
        "repro.experiments.comparison.run_comparison", fake_run_comparison
    )
    return calls


def run_cli(tmp_path, *extra):
    return cli.main(
        [
            "run", "fig8", "--seeds", "1", "2", "--controls", "2",
            "--cache-dir", str(tmp_path / "cache"), "--quiet", *extra,
        ]
    )


class TestRunParser:
    def test_run_subcommand_parses(self):
        parser = cli.build_parser()
        args = parser.parse_args(
            ["run", "fig7", "--jobs", "4", "--cache-dir", ".repro-cache",
             "--seeds", "1", "2", "--timeout", "30"]
        )
        assert args.grid == "fig7"
        assert args.jobs == 4
        assert args.seeds == [1, 2]
        assert args.timeout == 30.0
        assert callable(args.func)

    def test_unknown_grid_rejected(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["run", "fig99"])

    def test_robustness_flags_parse(self):
        args = cli.build_parser().parse_args(
            ["run", "fig8", "--journal-dir", "J", "--resume",
             "--watchdog", "5", "--converge", "30", "--drain", "10"]
        )
        assert args.journal_dir == "J"
        assert args.resume is True
        assert args.watchdog == 5.0
        assert args.converge == 30.0
        assert args.drain == 10.0

    def test_robustness_flags_default_off(self):
        args = cli.build_parser().parse_args(["run", "fig8"])
        assert args.journal_dir is None
        assert args.resume is False
        assert args.watchdog is None
        assert args.converge is None and args.drain is None


class TestRunExecution:
    def test_grid_expands_variants_by_seeds(self, tmp_path, stub_comparison, capsys):
        rc = run_cli(tmp_path)
        assert rc == 0
        # fig8 grid: (tele, rpl) × channel 26 × seeds (1, 2).
        assert sorted(stub_comparison) == sorted(
            [("tele", 26, 1), ("tele", 26, 2), ("rpl", 26, 1), ("rpl", 26, 2)]
        )
        out = capsys.readouterr().out
        assert "4 cells: 4 executed, 0 cached" in out
        assert "seed-averaged (n=2)" in out

    def test_second_invocation_is_fully_cached(self, tmp_path, stub_comparison, capsys):
        run_cli(tmp_path)
        del stub_comparison[:]
        rc = run_cli(tmp_path)
        assert rc == 0
        assert stub_comparison == []  # nothing re-simulated
        assert "4 cells: 0 executed, 4 cached" in capsys.readouterr().out

    def test_no_cache_always_simulates(self, tmp_path, stub_comparison, capsys):
        run_cli(tmp_path)
        del stub_comparison[:]
        run_cli(tmp_path, "--no-cache")
        assert len(stub_comparison) == 4
        assert "4 executed, 0 cached" in capsys.readouterr().out

    def test_out_and_csv_written(self, tmp_path, stub_comparison, capsys):
        out_json = tmp_path / "runs.json"
        out_csv = tmp_path / "cells.csv"
        rc = run_cli(tmp_path, "--out", str(out_json), "--csv", str(out_csv))
        assert rc == 0
        saved = json.loads(out_json.read_text())
        assert len(saved) == 4
        assert {item["variant"] for item in saved} == {"tele", "rpl"}
        assert out_csv.read_text().startswith("variant,ch,seed,status")

    def test_failing_cells_reported_and_nonzero_exit(
        self, tmp_path, monkeypatch, capsys
    ):
        def explode(*args, **kwargs):
            raise RuntimeError("boom")

        monkeypatch.setattr("repro.experiments.comparison.run_comparison", explode)
        rc = run_cli(tmp_path)
        assert rc == 1
        out = capsys.readouterr().out
        assert "4 failed" in out
        assert "boom" in out

    def test_resume_serves_cells_from_journal(
        self, tmp_path, stub_comparison, capsys
    ):
        journal = tmp_path / "journal"
        run_cli(tmp_path, "--journal-dir", str(journal))
        del stub_comparison[:]
        # --no-cache forces the resume path to answer from the journal, not
        # the result cache the first run also populated.
        rc = run_cli(
            tmp_path, "--journal-dir", str(journal), "--resume", "--no-cache"
        )
        assert rc == 0
        assert stub_comparison == []  # nothing re-simulated
        assert "4 resumed" in capsys.readouterr().out


class TestExitCodeContract:
    def test_sigterm_interrupts_resumably(self, tmp_path):
        # A real (compressed) grid in a subprocess: SIGTERM after the first
        # completed cell must exit 3 (resumable), and --resume must finish
        # the grid with exit 0. This is the CLI half of the crash-safety
        # acceptance; the engine half lives in test_runner_equivalence.
        argv = [
            sys.executable, "-m", "repro", "run", "fig8",
            "--seeds", "1", "--controls", "2", "--interval", "4",
            "--converge", "30", "--drain", "10",
            "--journal-dir", str(tmp_path / "journal"),
            "--cache-dir", str(tmp_path / "cache"), "--no-cache",
        ]
        env = dict(
            os.environ, PYTHONPATH=str(Path(repro.__file__).resolve().parents[1])
        )
        victim = subprocess.Popen(
            argv,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        backstop = threading.Timer(300.0, victim.kill)
        backstop.start()
        saw_done = False
        try:
            for line in victim.stderr:
                if "[runner] done" in line:
                    saw_done = True
                    victim.send_signal(signal.SIGTERM)
                    break
            rc = victim.wait(timeout=120)
        finally:
            backstop.cancel()
            victim.stderr.close()
        assert saw_done, "grid produced no completed cell"
        assert rc == cli.EXIT_INTERRUPTED

        resumed = subprocess.run(
            argv + ["--resume"],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=env,
            timeout=300,
        )
        assert resumed.returncode == cli.EXIT_OK
        assert "resumed" in resumed.stdout
