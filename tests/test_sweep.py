"""Tests for the sweep/aggregation machinery."""

import pytest

from repro.experiments.sweep import (
    AggregateMetric,
    SweepPoint,
    sweep_network_size,
    sweep_wake_interval,
)


class TestAggregateMetric:
    def test_empty(self):
        metric = AggregateMetric()
        assert metric.mean is None
        assert metric.min is None
        assert metric.max is None
        assert metric.summary() == "n/a"

    def test_aggregation(self):
        metric = AggregateMetric()
        for value in (1.0, 2.0, None, 3.0):
            metric.add(value)
        assert metric.mean == pytest.approx(2.0)
        assert metric.min == 1.0
        assert metric.max == 3.0
        assert "n=3" in metric.summary()


class TestNetworkSizeSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return sweep_network_size(sizes=(8, 16), n_controls=6, seed=2)

    def test_point_per_size(self, points):
        assert [p.x for p in points] == [8.0, 16.0]

    def test_delivery_reliable_at_both_sizes(self, points):
        for point in points:
            assert point.pdr is not None and point.pdr >= 0.6, point

    def test_codes_grow_with_size(self, points):
        small, large = points
        assert large.detail["max_code_bits"] >= small.detail["max_code_bits"]
        assert small.detail["coded_fraction"] >= 0.8
        assert large.detail["coded_fraction"] >= 0.8

    def test_detail_fields_present(self, points):
        for point in points:
            assert set(point.detail) == {
                "max_code_bits",
                "mean_code_bits",
                "coded_fraction",
            }


class TestSweepPointSerialisation:
    def test_round_trip(self):
        point = SweepPoint(
            x=512.0, pdr=0.9, duty_cycle=0.03, mean_latency=1.5,
            detail={"max_code_bits": 12.0},
        )
        assert SweepPoint.from_dict(point.to_dict()) == point

    def test_round_trip_with_nones(self):
        point = SweepPoint(x=1.0, pdr=None, duty_cycle=None, mean_latency=None)
        assert SweepPoint.from_dict(point.to_dict()) == point


class TestSweepsOnRunner:
    def test_wake_sweep_caches_and_rehydrates(self, tmp_path):
        from repro.runner import ParallelRunner, ResultCache

        kwargs = dict(
            wake_intervals_ms=(256, 512), n_controls=2, seed=2,
            converge_seconds=30.0,
        )
        runner = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
        cold = sweep_wake_interval(runner=runner, **kwargs)
        assert runner.last_report.executed == 2
        warm_runner = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
        warm = sweep_wake_interval(runner=warm_runner, **kwargs)
        assert warm_runner.last_report.cached == 2
        assert warm_runner.last_report.executed == 0
        assert warm == cold
