"""Charge-accounting properties of :func:`interval_charge_mc`.

The battery depletion monitor and the streaming soak metrics both drain
window-by-window through this one pure core; these properties are what
make that sound: monotonicity in radio on-time, physical bounds between
the sleep-only and listen-only extremes, exact additivity across window
splits (so incremental draining sums to the whole-run figure), and
agreement with the per-level CC2420 TX currents under LPL wake cycles.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.harness import Network, NetworkConfig
from repro.radio.cc2420 import CC2420, packet_airtime
from repro.radio.energy import (
    RX_CURRENT_MA,
    SLEEP_CURRENT_MA,
    TX_CURRENT_MA,
    energy_report,
    interval_charge_mc,
    tx_current_ma,
)
from repro.sim.units import SECOND, to_seconds

INTERVAL = 60 * SECOND

ticks = st.integers(min_value=0, max_value=INTERVAL)
powers = st.floats(min_value=-30.0, max_value=5.0, allow_nan=False)


class TestChargeProperties:
    @given(on_a=ticks, on_b=ticks, tx=ticks, power=powers)
    @settings(max_examples=200, deadline=None)
    def test_charge_monotone_in_on_time(self, on_a, on_b, tx, power):
        """More radio on-time can never cost less charge (RX > sleep)."""
        low, high = sorted((on_a, on_b))
        assert interval_charge_mc(low, tx, INTERVAL, power) <= (
            interval_charge_mc(high, tx, INTERVAL, power) + 1e-12
        )

    @given(on=ticks, tx=ticks, power=powers)
    @settings(max_examples=200, deadline=None)
    def test_charge_bounded_by_extremes(self, on, tx, power):
        charge = interval_charge_mc(on, tx, INTERVAL, power)
        sleep_only = to_seconds(INTERVAL) * SLEEP_CURRENT_MA
        listen_only = to_seconds(INTERVAL) * RX_CURRENT_MA
        assert sleep_only - 1e-12 <= charge <= listen_only + 1e-12

    @given(on=ticks, tx=ticks, power=powers)
    @settings(max_examples=200, deadline=None)
    def test_tx_time_never_raises_charge(self, on, tx, power):
        """Every CC2420 TX current sits below RX current, so converting
        listen time into transmit time can only reduce the draw."""
        assert interval_charge_mc(on, tx, INTERVAL, power) <= (
            interval_charge_mc(on, 0, INTERVAL, power) + 1e-12
        )

    @given(
        split=st.integers(min_value=1, max_value=INTERVAL - 1),
        duty=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        power=powers,
    )
    @settings(max_examples=200, deadline=None)
    def test_window_split_additivity(self, split, duty, power):
        """Draining two sub-windows sums to the whole window (what makes
        the depletion monitor and the streaming metrics agree with a
        single whole-run energy report)."""
        a, b = split, INTERVAL - split
        on_a = round(a * duty)
        on_b = round(b * duty)
        whole = interval_charge_mc(on_a + on_b, 0, INTERVAL, power)
        parts = interval_charge_mc(on_a, 0, a, power) + interval_charge_mc(
            on_b, 0, b, power
        )
        assert parts == pytest.approx(whole, rel=1e-9, abs=1e-9)

    def test_clamps_and_validation(self):
        # tx_time clamps into on_time, on_time into the interval.
        assert interval_charge_mc(INTERVAL * 2, 0, INTERVAL, 0.0) == (
            interval_charge_mc(INTERVAL, 0, INTERVAL, 0.0)
        )
        assert interval_charge_mc(SECOND, INTERVAL, INTERVAL, 0.0) == (
            interval_charge_mc(SECOND, SECOND, INTERVAL, 0.0)
        )
        with pytest.raises(ValueError, match="interval"):
            interval_charge_mc(0, 0, 0, 0.0)


class TestPerLevelTxCurrents:
    @pytest.mark.parametrize("dbm,ma", sorted(TX_CURRENT_MA.items()))
    def test_datasheet_anchors(self, dbm, ma):
        assert tx_current_ma(dbm) == ma

    @pytest.mark.parametrize("level", [3, 7, 11, 15, 19, 23, 27, 31])
    def test_power_levels_interpolate_within_table(self, level):
        dbm = CC2420.power_level_to_dbm(level)
        ma = tx_current_ma(dbm)
        assert TX_CURRENT_MA[-25.0] <= ma <= TX_CURRENT_MA[0.0]

    def test_higher_power_draws_more(self):
        levels = [CC2420.power_level_to_dbm(lvl) for lvl in (3, 11, 19, 27, 31)]
        currents = [tx_current_ma(dbm) for dbm in levels]
        assert currents == sorted(currents)

    @given(power=powers)
    @settings(max_examples=100, deadline=None)
    def test_charge_monotone_in_tx_power(self, power):
        lo = interval_charge_mc(SECOND, SECOND, INTERVAL, power)
        hi = interval_charge_mc(SECOND, SECOND, INTERVAL, power + 1.0)
        assert lo <= hi + 1e-12


class TestLplWakeCycles:
    """Charge accounting against a real LPL-duty-cycled network."""

    @pytest.fixture(scope="class")
    def net(self):
        network = Network(
            NetworkConfig(topology="indoor-testbed", protocol="tele", seed=6)
        )
        network.converge(max_seconds=120)
        network.run(120)
        return network

    def test_lpl_duty_cycle_between_extremes(self, net):
        for node, stack in net.stacks.items():
            if node == net.sink:  # the root listens continuously
                continue
            radio = stack.radio
            duty = radio.on_time() / net.sim.now
            assert 0.0 < duty < 1.0

    def test_report_equals_pure_core(self, net):
        interval = net.sim.now
        for stack in net.stacks.values():
            radio = stack.radio
            report = energy_report(radio, interval)
            expected = interval_charge_mc(
                min(radio.on_time(), interval),
                radio.tx_count * packet_airtime(40),
                interval,
                radio.tx_power_dbm,
            )
            assert report.charge_mc == expected

    def test_wake_cycles_dominate_idle_charge(self, net):
        """An idle LPL node's draw sits well below always-listening but
        above pure sleep — the wake cycles are visible in the charge."""
        interval = net.sim.now
        quietest = min(
            (stack.radio for stack in net.stacks.values()),
            key=lambda r: r.on_time(),
        )
        report = energy_report(quietest, interval)
        assert report.average_current_ma > SLEEP_CURRENT_MA
        assert report.average_current_ma < RX_CURRENT_MA / 2
