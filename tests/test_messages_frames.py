"""Edge-case tests for frames and protocol message payloads."""

import pytest

from repro.core.messages import (
    AllocationAck,
    Confirmation,
    ControlPacket,
    FeedbackPacket,
    PositionRequest,
    TeleBeacon,
    TeleBeaconEntry,
)
from repro.core.pathcode import PathCode
from repro.net.messages import DataPacket, RoutingBeacon
from repro.radio.frame import BROADCAST, Frame, FrameType


class TestFrame:
    def test_unique_frame_ids(self):
        a = Frame(src=0, dst=1, type=FrameType.DATA)
        b = Frame(src=0, dst=1, type=FrameType.DATA)
        assert a.frame_id != b.frame_id

    def test_clone_gets_fresh_id_but_same_fields(self):
        a = Frame(src=3, dst=BROADCAST, type=FrameType.CONTROL, payload="p", length=50)
        b = a.clone()
        assert b.frame_id != a.frame_id
        assert (b.src, b.dst, b.type, b.payload, b.length) == (
            3,
            BROADCAST,
            FrameType.CONTROL,
            "p",
            50,
        )

    def test_broadcast_detection(self):
        assert Frame(src=0, dst=BROADCAST, type=FrameType.DATA).is_broadcast
        assert not Frame(src=0, dst=5, type=FrameType.DATA).is_broadcast

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            Frame(src=0, dst=1, type=FrameType.DATA, length=0)


class TestTeleBeacon:
    def test_length_grows_with_entries(self):
        empty = TeleBeacon(origin=1, code=PathCode.sink(), space_bits=2)
        full = TeleBeacon(
            origin=1,
            code=PathCode.sink(),
            space_bits=2,
            entries=[TeleBeaconEntry(i, i + 1, False) for i in range(5)],
        )
        assert full.length() > empty.length()

    def test_length_capped_at_frame_size(self):
        huge = TeleBeacon(
            origin=1,
            code=PathCode.sink(),
            space_bits=5,
            entries=[TeleBeaconEntry(i, i + 1, False) for i in range(100)],
        )
        assert huge.length() <= 120


class TestControlPacket:
    def test_serials_unique(self):
        code = PathCode.from_bits("0101")
        a = ControlPacket(destination=1, destination_code=code, expected_relay=None, expected_length=0)
        b = ControlPacket(destination=1, destination_code=code, expected_relay=None, expected_length=0)
        assert a.serial != b.serial

    def test_advanced_preserves_identity_and_bumps_athx(self):
        code = PathCode.from_bits("0101")
        original = ControlPacket(
            destination=9,
            destination_code=code,
            expected_relay=None,
            expected_length=0,
            payload="p",
            final_unicast_to=4,
            origin_time=123,
        )
        nxt = original.advanced(expected_relay=2, expected_length=3)
        assert nxt.serial == original.serial
        assert nxt.athx == original.athx + 1
        assert nxt.expected_relay == 2
        assert nxt.expected_length == 3
        assert nxt.payload == "p"
        assert nxt.final_unicast_to == 4
        assert nxt.origin_time == 123

    def test_lengths_defined(self):
        assert ControlPacket.LENGTH > 0
        assert FeedbackPacket.LENGTH > 0
        assert AllocationAck.LENGTH > 0
        assert Confirmation.LENGTH > 0
        assert PositionRequest.LENGTH > 0


class TestDataPacket:
    def test_key_identifies_origin_packet(self):
        a = DataPacket(origin=1, origin_seqno=7, collect_id=2)
        b = DataPacket(origin=1, origin_seqno=7, collect_id=2, thl=5)
        c = DataPacket(origin=1, origin_seqno=8, collect_id=2)
        assert a.key() == b.key()  # thl does not affect identity
        assert a.key() != c.key()


class TestRoutingBeacon:
    def test_piggyback_fields_default_none(self):
        beacon = RoutingBeacon(origin=1, parent=0, path_etx=1.0, hop_count=1, seqno=3)
        assert beacon.tele_position is None
        assert beacon.tele_code is None
