"""Space extension (§III-B6) exercised end to end.

A parent whose bit space fills up must extend it by one bit, keep all
existing positions, notify children, and the whole subtree must re-derive
codes that remain prefix-consistent.
"""

import math

import pytest

from repro.core import Controller, TeleAdjusting
from repro.core.allocation import AllocationParams
from repro.net import NodeStack
from repro.radio.channel import Channel
from repro.radio.noise import ConstantNoise
from repro.radio.propagation import LogDistancePathLoss
from repro.sim import SECOND, Simulator


def star_with_late_joiners(n_initial=2, n_late=6, seed=8):
    """A sink with a few initial leaves; more appear later (radios off)."""
    positions = [(0.0, 0.0)]
    total = n_initial + n_late
    for i in range(total):
        angle = 2 * math.pi * i / total
        positions.append((8.0 * math.cos(angle), 8.0 * math.sin(angle)))
    sim = Simulator(seed=seed)
    gains = LogDistancePathLoss(pl_d0=40.0, seed=seed, shadowing_sigma=0.0).gain_matrix(
        positions
    )
    channel = Channel(sim, gains, noise_model=ConstantNoise())
    controller = Controller(channel=channel)
    protocols, stacks = {}, {}
    params = AllocationParams(stability_rounds=4)
    for i in range(len(positions)):
        stack = NodeStack(sim, channel, i, is_root=(i == 0), always_on=True)
        protocols[i] = TeleAdjusting(
            sim, stack, controller=controller, allocation_params=params
        )
        stacks[i] = stack
    late = list(range(n_initial + 1, total + 1))
    for i in range(len(positions)):
        stacks[i].start()
        protocols[i].start()
    for node in late:
        stacks[node].radio.fail()  # not present at initial allocation
    return sim, stacks, protocols, late


class TestSpaceExtension:
    def test_late_joiners_force_extension_and_codes_stay_consistent(self):
        sim, stacks, protocols, late = star_with_late_joiners()
        sim.run(until=60 * SECOND)
        sink_alloc = protocols[0].allocation
        initial_space = sink_alloc.children.space_bits
        assert initial_space >= 2
        initial_codes = {
            node: protocols[node].allocation.code
            for node in protocols
            if protocols[node].allocation.code is not None and node != 0
        }
        assert initial_codes, "initial members never coded"
        # The late wave joins: more children than the reserve anticipated.
        for node in late:
            stacks[node].radio.recover()
            stacks[node].radio.turn_on()
        sim.run(until=sim.now + 240 * SECOND)
        # Everyone ends up coded…
        for node, protocol in protocols.items():
            assert protocol.allocation.code is not None, node
        # …the space either grew or had enough reserve; if it grew, the
        # early members' positions were preserved (paper §III-B6).
        final_space = sink_alloc.children.space_bits
        assert final_space >= initial_space
        for node, old_code in initial_codes.items():
            allocation = protocols[node].allocation
            if allocation._position_parent != 0:
                continue
            entry = sink_alloc.children.entry(node)
            assert entry is not None
            # The numeric position survived any extension.
            assert entry.position == allocation.position
        # Prefix consistency holds across the whole (re-derived) tree.
        sink_code = protocols[0].allocation.code
        codes = set()
        for node, protocol in protocols.items():
            code = protocol.allocation.code
            assert sink_code.is_prefix_of(code)
            assert code not in codes or node == 0
            codes.add(code)

    def test_extension_widens_child_codes(self):
        sim, stacks, protocols, late = star_with_late_joiners(n_initial=2, n_late=6)
        sim.run(until=60 * SECOND)
        sink_alloc = protocols[0].allocation
        coded_before = {
            node: protocols[node].allocation.code.length
            for node in protocols
            if protocols[node].allocation.code is not None and node != 0
        }
        space_before = sink_alloc.children.space_bits
        for node in late:
            stacks[node].radio.recover()
            stacks[node].radio.turn_on()
        sim.run(until=sim.now + 240 * SECOND)
        space_after = sink_alloc.children.space_bits
        if space_after > space_before:
            grew = space_after - space_before
            for node, old_len in coded_before.items():
                allocation = protocols[node].allocation
                if allocation._position_parent == 0 and allocation.code is not None:
                    assert allocation.code.length == old_len + grew, node
