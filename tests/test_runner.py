"""The execution engine: ordering, caching, retries, crashes, timeouts.

These tests use the cheap built-in "selftest" task kind so the engine's
machinery is exercised without paying for packet-level simulations.
"""

import json

import pytest

from repro.runner import (
    InjectedFault,
    ParallelRunner,
    ResultCache,
    TaskSpec,
    execute_spec,
    selftest_spec,
)


def values(outcomes):
    return [o.result["value"] if o.result else None for o in outcomes]


class TestSpecBasics:
    def test_round_trip(self):
        spec = selftest_spec(3, sleep_s=0.5, fault={"crash_attempts": 1})
        again = TaskSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert again == spec

    def test_fault_and_label_not_in_fingerprint(self):
        plain = selftest_spec(3)
        faulty = selftest_spec(3, fault={"crash_attempts": 1})
        relabelled = TaskSpec(plain.kind, plain.params, label="other")
        assert plain.fingerprint == faulty.fingerprint == relabelled.fingerprint

    def test_params_change_fingerprint(self):
        assert selftest_spec(3).fingerprint != selftest_spec(4).fingerprint

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown task kind"):
            execute_spec(TaskSpec("nope", {}))


class TestSerialPath:
    def test_results_in_spec_order(self):
        specs = [selftest_spec(i) for i in (5, 1, 9)]
        outcomes = ParallelRunner(jobs=1).run(specs)
        assert [o.spec for o in outcomes] == specs
        assert values(outcomes) == [o["value"] for o in map(execute_spec, specs)]

    def test_injected_error_is_retried(self):
        specs = [selftest_spec(0, fault={"error_attempts": 1})]
        outcomes = ParallelRunner(jobs=1, retries=2).run(specs)
        assert outcomes[0].status == "executed"
        assert outcomes[0].attempts == 2

    def test_in_process_crash_fault_raises_then_retries(self):
        # In-process, a "crash" degrades to InjectedFault via the same path.
        specs = [selftest_spec(0, fault={"crash_attempts": 1})]
        outcomes = ParallelRunner(jobs=1, retries=1).run(specs)
        assert outcomes[0].status == "executed"
        assert outcomes[0].attempts == 2

    def test_retry_budget_exhaustion_fails_cell_only(self):
        specs = [
            selftest_spec(0),
            selftest_spec(1, fault={"error_attempts": 99}),
            selftest_spec(2),
        ]
        runner = ParallelRunner(jobs=1, retries=1)
        outcomes = runner.run(specs)
        assert [o.status for o in outcomes] == ["executed", "failed", "executed"]
        assert outcomes[1].result is None
        assert "InjectedFault" in outcomes[1].error
        report = runner.last_report
        assert report.failed == 1 and report.executed == 2
        assert "failed" in report.summary_table()


class TestCache:
    def test_second_run_is_all_cache_hits(self, tmp_path):
        specs = [selftest_spec(i) for i in range(4)]
        cache = ResultCache(tmp_path)
        first = ParallelRunner(jobs=1, cache=cache)
        cold = first.run(specs)
        assert first.last_report.executed == 4 and first.last_report.cached == 0
        second = ParallelRunner(jobs=1, cache=cache)
        warm = second.run(specs)
        assert second.last_report.executed == 0 and second.last_report.cached == 4
        assert values(warm) == values(cold)
        assert cache.stores == 4 and cache.hits == 4

    def test_stale_version_is_a_miss(self, tmp_path):
        spec = selftest_spec(1)
        cache = ResultCache(tmp_path)
        ParallelRunner(jobs=1, cache=cache).run([spec])
        path = cache.path_for(spec)
        stored = json.loads(path.read_text())
        stored["version"] = "0.0.0-stale"
        path.write_text(json.dumps(stored))
        assert cache.load(spec) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        spec = selftest_spec(1)
        cache = ResultCache(tmp_path)
        cache.path_for(spec).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(spec).write_text("{not json")
        assert cache.load(spec) is None
        outcomes = ParallelRunner(jobs=1, cache=cache).run([spec])
        assert outcomes[0].status == "executed"

    def test_failed_cells_are_not_cached(self, tmp_path):
        spec = selftest_spec(1, fault={"error_attempts": 99})
        cache = ResultCache(tmp_path)
        ParallelRunner(jobs=1, retries=0, cache=cache).run([spec])
        assert cache.stores == 0
        assert cache.load(spec) is None

    def test_kernel_version_bump_changes_fingerprint(self, monkeypatch):
        import repro.runner.taskspec as taskspec_module

        before = selftest_spec(1).fingerprint
        monkeypatch.setattr(
            taskspec_module, "KERNEL_BEHAVIOR_VERSION",
            taskspec_module.KERNEL_BEHAVIOR_VERSION + 1,
        )
        assert selftest_spec(1).fingerprint != before

    def test_kernel_version_bump_invalidates_cache_entries(
        self, tmp_path, monkeypatch
    ):
        import repro.runner.cache as cache_module

        spec = selftest_spec(1)
        cache = ResultCache(tmp_path)
        ParallelRunner(jobs=1, cache=cache).run([spec])
        assert cache.load(spec) is not None
        # A kernel that behaves differently must not serve results simulated
        # by the old kernel, even for an identical (pre-bump) fingerprint.
        monkeypatch.setattr(
            cache_module, "KERNEL_BEHAVIOR_VERSION",
            cache_module.KERNEL_BEHAVIOR_VERSION + 1,
        )
        assert cache.load(spec) is None


class TestParallelPath:
    def test_order_independent_of_completion_order(self):
        # The first-submitted cell sleeps longest; order must still hold.
        specs = [
            selftest_spec(0, sleep_s=0.4),
            selftest_spec(1, sleep_s=0.0),
            selftest_spec(2, sleep_s=0.1),
        ]
        outcomes = ParallelRunner(jobs=2).run(specs)
        assert values(outcomes) == values(ParallelRunner(jobs=1).run(specs))

    def test_worker_crash_is_retried_and_grid_completes(self):
        specs = [
            selftest_spec(0),
            selftest_spec(1, fault={"crash_attempts": 1}),
            selftest_spec(2),
            selftest_spec(3),
        ]
        runner = ParallelRunner(jobs=2, retries=2)
        outcomes = runner.run(specs)
        assert [o.status for o in outcomes] == ["executed"] * 4
        crashed = outcomes[1]
        assert crashed.attempts >= 2
        assert runner.last_report.retried >= 1

    def test_poisoned_cell_fails_alone(self):
        specs = [
            selftest_spec(0),
            selftest_spec(1, fault={"crash_attempts": 99}),
            selftest_spec(2),
        ]
        runner = ParallelRunner(jobs=2, retries=1)
        outcomes = runner.run(specs)
        assert [o.status for o in outcomes] == ["executed", "failed", "executed"]
        assert "died" in outcomes[1].error
        summary = runner.last_report.summary_table()
        assert "failed" in summary and "died" in summary

    def test_hung_cell_times_out_and_grid_completes(self):
        specs = [
            selftest_spec(0),
            selftest_spec(1, fault={"hang_attempts": 99, "hang_s": 60.0}),
            selftest_spec(2),
        ]
        runner = ParallelRunner(jobs=2, retries=0, timeout=1.5)
        outcomes = runner.run(specs)
        assert outcomes[1].status == "failed"
        assert "timed out" in outcomes[1].error
        assert outcomes[0].status == "executed"
        assert outcomes[2].status == "executed"
        # The whole grid must finish in bounded time (no 60 s hang).
        assert runner.last_report.wall_s < 30.0

    def test_progress_sink_receives_tracer_style_events(self):
        events = []
        runner = ParallelRunner(
            jobs=2, progress=lambda category, message, **data: events.append(
                (category, message, data)
            )
        )
        runner.run([selftest_spec(0), selftest_spec(1)])
        assert all(category == "runner" for category, _, _ in events)
        assert any(message.startswith("done") for _, message, _ in events)
        assert any("executed" in message for _, message, _ in events)


class TestValidation:
    def test_jobs_must_be_non_negative(self):
        with pytest.raises(ValueError):
            ParallelRunner(jobs=-1)

    def test_jobs_zero_auto_detects_cpu_count(self):
        import os

        runner = ParallelRunner(jobs=0)
        assert runner.jobs == (os.cpu_count() or 1)
        assert runner.jobs_requested == 0
        runner.run([selftest_spec(0)])
        assert runner.last_report.jobs == runner.jobs
        assert runner.last_report.jobs_requested == 0

    def test_retries_must_be_non_negative(self):
        with pytest.raises(ValueError):
            ParallelRunner(retries=-1)

    def test_injected_fault_is_a_runtime_error(self):
        assert issubclass(InjectedFault, RuntimeError)
