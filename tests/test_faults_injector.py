"""Injector semantics, and countermeasures driven through the fault hooks:
unacked forwards must raise the feedback/backtrack path, an unreachable
destination must end in a clean failure or a Re-Tele rescue."""

from repro.core.forwarding import ForwardingParams
from repro.experiments.harness import Network, NetworkConfig
from repro.faults import BLACKOUT_DB, FaultEvent, FaultPlan
from repro.radio.frame import FrameType
from repro.radio.propagation import LogDistancePathLoss
from repro.sim import SECOND
from repro.topology import Deployment


def diamond_deployment(seed=1):
    """Sink 0; parallel relays 1 and 2; destination 3 (two real hops)."""
    return Deployment(
        name="diamond",
        positions=[(0.0, 0.0), (13.0, 5.0), (13.0, -5.0), (26.0, 0.0)],
        sink=0,
        tx_power_dbm=0.0,
        propagation=LogDistancePathLoss(pl_d0=40.0, seed=seed, shadowing_sigma=0.0),
    )


def diamond_net(plan=None, re_tele=False, seed=1):
    config = NetworkConfig(
        topology=diamond_deployment(seed),
        protocol="tele",
        seed=seed,
        noise="constant",
        always_on=True,
        fading_sigma_db=0.0,
        collection_ipi=None,
        re_tele=re_tele,
        forwarding_params=ForwardingParams(
            re_tele=re_tele,
            e2e_timeout=25 * SECOND,
            sink_retry_interval=6 * SECOND,
        ),
        faults=plan,
    )
    net = Network(config)
    net.converge(max_seconds=90.0, target=1.0)
    return net


def plan_of(*events):
    return FaultPlan(events=events, auto_arm=False)


class TestInjectorSemantics:
    def test_crash_wipes_code_then_reacquires(self):
        net = diamond_net(
            plan_of(FaultEvent(kind="crash", at_s=2.0, node=3, duration_s=10.0))
        )
        assert net.protocols[3].allocation.code is not None
        net.fault_injector.arm()
        net.run(4.0)  # crashed, not yet rebooted: radio dead, state kept
        assert net.fault_injector.stats.crashes == 1
        assert net.fault_injector.stats.reboots == 0
        net.run(10.0)  # past the reboot
        assert net.fault_injector.stats.reboots == 1
        net.run(60.0)
        assert net.protocols[3].allocation.code is not None, (
            "rebooted node never re-acquired a path code"
        )

    def test_stun_preserves_code(self):
        net = diamond_net(
            plan_of(FaultEvent(kind="stun", at_s=2.0, node=3, duration_s=5.0))
        )
        code_before = net.protocols[3].allocation.code
        assert code_before is not None
        net.fault_injector.arm()
        net.run(7.2)  # just past the un-stun
        assert net.fault_injector.stats.stuns == 1
        assert net.fault_injector.stats.reboots == 0
        # Unlike a crash, a stun keeps protocol state: the code survives the
        # outage itself (the network may still churn it *later*).
        assert net.protocols[3].allocation.code == code_before
        net.run(30.0)
        assert net.protocols[3].allocation.code is not None

    def test_link_blackout_applies_and_clears(self):
        net = diamond_net(
            plan_of(
                FaultEvent(kind="link", at_s=2.0, node=3, peer=1, duration_s=8.0)
            )
        )
        net.fault_injector.arm()
        net.run(4.0)
        assert net.channel.link_faults == {(1, 3): BLACKOUT_DB}
        net.run(10.0)
        assert net.channel.link_faults == {}
        assert net.fault_injector.stats.link_faults == 1
        assert net.fault_injector.stats.link_restores == 1

    def test_parent_switch_churns_then_reparents(self):
        net = diamond_net(
            plan_of(FaultEvent(kind="parent_switch", at_s=2.0, node=3))
        )
        net.fault_injector.arm()
        net.run(60.0)
        assert net.fault_injector.stats.parent_kicks == 1
        assert net.stacks[3].routing.parent is not None
        assert net.protocols[3].allocation.code is not None

    def test_arm_is_idempotent(self):
        net = diamond_net(
            plan_of(FaultEvent(kind="stun", at_s=2.0, node=3, duration_s=2.0))
        )
        net.fault_injector.arm()
        net.fault_injector.arm()
        net.run(30.0)
        assert net.fault_injector.stats.stuns == 1


class TestCountermeasuresUnderFaults:
    def test_unreachable_destination_backtracks_and_fails_clean(self):
        # A permanent drop-everything filter at the destination: forwards go
        # unacked, relays must backtrack, feedback must reach the sink, and
        # the control must end as an honest failure (never a false delivery).
        net = diamond_net(
            plan_of(
                FaultEvent(kind="packet_loss", at_s=0.5, node=3, drop_prob=1.0)
            )
        )
        net.fault_injector.arm()
        net.run(1.0)
        record = net.send_control(3)
        net.run(45.0)
        assert net.fault_injector.stats.packets_dropped > 0
        backtracks = sum(p.forwarding.backtracks for p in net.protocols.values())
        assert backtracks > 0, "no relay ever backtracked"
        feedback_tx = sum(
            s.tx_by_type.get(FrameType.FEEDBACK, 0) for s in net.stacks.values()
        )
        assert feedback_tx > 0, "no feedback packet was transmitted"
        assert not record.delivered

    def test_corruption_counts_separately(self):
        net = diamond_net(
            plan_of(
                FaultEvent(
                    kind="packet_loss",
                    at_s=0.5,
                    node=3,
                    drop_prob=0.0,
                    corrupt_prob=1.0,
                    duration_s=10.0,
                )
            )
        )
        net.fault_injector.arm()
        net.run(1.0)
        net.send_control(3)
        net.run(12.0)
        assert net.fault_injector.stats.packets_corrupted > 0
        assert net.fault_injector.stats.packets_dropped == 0
        # Filter expired: the channel is clean again.
        assert net.channel.reception_filters == []

    def test_re_tele_rescues_filtered_coded_path(self):
        # Block only the *coded* (broadcast anycast) control delivery at the
        # destination; the Re-Tele helper's final unicast hop still passes.
        # The sink must give up on the encoded path and invoke §III-C4.
        net = diamond_net(re_tele=True)

        def drop_coded_control(src, dst, frame):
            return not (
                dst == 3 and frame.type == FrameType.CONTROL and frame.is_broadcast
            )

        net.channel.reception_filters.append(drop_coded_control)
        record = net.send_control(3)
        net.run(60.0)
        re_tele = sum(
            p.forwarding.re_tele_invocations for p in net.protocols.values()
        )
        assert re_tele > 0, "sink never invoked Re-Tele"
        assert record.delivered
        assert record.via_unicast, "delivery should have come via the helper"
