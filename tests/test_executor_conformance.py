"""Executor conformance: every executor produces bit-identical results.

The scheduler/executor split (:mod:`repro.runner.executors`) is only safe
if *where* a cell runs never leaks into *what* it computes. These tests
drive the same small chaos grid through all three executors — in-process,
local process pool, and the farm lease queue (self-drain and subprocess
workers) — and require equal ``trace_digest`` values per cell plus
equivalent telemetry semantics.

The SIGKILL test is the farm's acceptance criterion: a worker holding a
lease is killed outright; its cells must be re-leased after the TTL and
the grid must still complete bit-identically to the serial reference.
"""

import signal
import subprocess
import sys
import time

import pytest

from repro.farm import QueueExecutor
from repro.farm.queue import LeaseQueue
from repro.runner import (
    InProcessExecutor,
    LocalPoolExecutor,
    ParallelRunner,
    ResultCache,
)
from repro.runner.taskspec import chaos_spec, selftest_spec

#: The conformance grid: small but real — chaos cells exercise the full
#: simulator (faults included) and carry a trace digest of every event.
FAST = dict(
    n_controls=2, control_interval_s=4.0, converge_seconds=30.0, drain_seconds=10.0
)


def chaos_grid():
    return [
        chaos_spec("tele", scenario="crash-churn", intensity=0.5, seed=1, **FAST),
        chaos_spec("re-tele", scenario="crash-churn", intensity=0.5, seed=1, **FAST),
    ]


def digests(outcomes):
    return [o.result["trace_digest"] for o in outcomes]


@pytest.fixture(scope="module")
def serial_reference():
    runner = ParallelRunner(jobs=1)
    outcomes = runner.run(chaos_grid())
    assert runner.last_report.executor == "in-process"
    return outcomes


class TestBitIdentity:
    def test_local_pool_matches_serial(self, serial_reference):
        runner = ParallelRunner(jobs=2)
        outcomes = runner.run(chaos_grid())
        assert runner.last_report.executor == "local-pool"
        assert digests(outcomes) == digests(serial_reference)

    def test_queue_self_drain_matches_serial(self, serial_reference, tmp_path):
        executor = QueueExecutor(tmp_path / "q", workers=0, self_drain=True)
        runner = ParallelRunner(executor=executor)
        outcomes = runner.run(chaos_grid())
        assert runner.last_report.executor == "queue"
        assert digests(outcomes) == digests(serial_reference)

    def test_queue_subprocess_workers_match_serial(self, serial_reference, tmp_path):
        executor = QueueExecutor(
            tmp_path / "q", workers=2, self_drain=False, lease_ttl=30.0
        )
        runner = ParallelRunner(executor=executor)
        outcomes = runner.run(chaos_grid())
        assert digests(outcomes) == digests(serial_reference)

    def test_explicit_executor_objects_are_honoured(self):
        assert ParallelRunner(executor=InProcessExecutor()).executor.slots == 1
        runner = ParallelRunner(jobs=4, executor=LocalPoolExecutor(2))
        assert runner.executor.slots == 2


class TestTelemetryEquivalence:
    """Same grid, same counters — regardless of the executor."""

    def test_counters_match_across_executors(self, tmp_path):
        specs = [selftest_spec(i, payload=11) for i in range(5)]
        reports = {}
        for name, runner in (
            ("in-process", ParallelRunner(jobs=1)),
            ("local-pool", ParallelRunner(jobs=2)),
            ("queue", ParallelRunner(executor=QueueExecutor(tmp_path / "q"))),
        ):
            outcomes = runner.run(specs)
            assert [o.status for o in outcomes] == ["executed"] * 5
            reports[name] = runner.last_report
        for name, report in reports.items():
            assert report.executor == name
            assert report.executed == 5
            assert report.failed == 0 and report.cached == 0
            assert [c.label for c in report.cells] == [s.name for s in specs]
            assert [c.status for c in report.cells] == ["executed"] * 5

    def test_queue_failures_report_like_engine_failures(self, tmp_path):
        specs = [
            selftest_spec(0),
            selftest_spec(1, fault={"error_attempts": 99}),
        ]
        runner = ParallelRunner(
            executor=QueueExecutor(tmp_path / "q"), retries=1
        )
        outcomes = runner.run(specs)
        assert outcomes[0].status == "executed"
        assert outcomes[1].status == "failed"
        assert outcomes[1].result is None
        assert "InjectedFault" in outcomes[1].error
        report = runner.last_report
        assert report.failed == 1 and report.executed == 1
        assert report.cells[1].attempts == 2  # budget honoured farm-wide

    def test_queue_uses_shared_cache_for_dedup(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        specs = [selftest_spec(i) for i in range(4)]
        first = ParallelRunner(
            executor=QueueExecutor(tmp_path / "q1"), cache=cache
        )
        first.run(specs)
        assert first.last_report.executed == 4
        second = ParallelRunner(
            executor=QueueExecutor(tmp_path / "q2"), cache=cache
        )
        outcomes = second.run(specs)
        assert second.last_report.cached == 4
        assert second.last_report.executed == 0
        assert all(o.status == "cached" for o in outcomes)


class TestWorkerDeathRecovery:
    """The acceptance test: SIGKILL a leased worker, lose nothing."""

    def test_sigkilled_worker_cells_are_re_leased(self, tmp_path):
        import os
        import pathlib

        import repro

        queue_dir = tmp_path / "q"
        specs = [selftest_spec(i, sleep_s=3.0, payload=23) for i in range(2)]
        # The sleep only pads wall time; results depend on (index, payload)
        # alone, so the serial reference can skip the sleep.
        serial = ParallelRunner(jobs=1).run(
            [selftest_spec(i, payload=23) for i in range(2)]
        )
        reference = [o.result for o in serial]

        queue = LeaseQueue(queue_dir, lease_ttl=1.0)
        queue.put_all(specs)

        env = dict(os.environ)
        src = str(pathlib.Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        worker = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "farm", "worker",
                "--queue-dir", str(queue_dir),
                "--lease-ttl", "1.0",
                "--worker-id", "victim",
                "--quiet",
            ],
            env=env,
        )
        try:
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                leases = list(queue.leases_dir.glob("*.json"))
                if leases:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("worker never claimed a lease")
            worker.send_signal(signal.SIGKILL)
            worker.wait(timeout=10)
        finally:
            if worker.poll() is None:
                worker.kill()

        # Drain the rest through the scheduler: the victim's lease expires
        # after the TTL, the cell is stolen (charging one attempt), and the
        # grid completes with results identical to the serial reference.
        executor = QueueExecutor(
            queue_dir, workers=0, self_drain=True, lease_ttl=1.0
        )
        runner = ParallelRunner(executor=executor, retries=2)
        outcomes = runner.run(specs)
        assert [o.status for o in outcomes] == ["executed", "executed"]
        values = [o.result["value"] for o in outcomes]
        assert values == [r["value"] for r in reference]
        # The stolen cell's telemetry shows the charged attempt.
        attempts = [c.attempts for c in runner.last_report.cells]
        assert max(attempts) >= 2
        assert runner.last_report.failed == 0
