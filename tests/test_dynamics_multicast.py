"""Dynamics interacting with the extensions: multicast under failures,
controller edge cases, simulator run() contracts."""

import pytest

from repro.core import Controller, TeleAdjusting
from repro.core.pathcode import PathCode
from repro.net import NodeStack
from repro.radio.channel import Channel
from repro.radio.noise import ConstantNoise
from repro.radio.propagation import LogDistancePathLoss
from repro.sim import SECOND, Simulator


def build_tree(seed=1):
    positions = [
        (0.0, 0.0),
        (12.0, 8.0),
        (12.0, -8.0),
        (24.0, 12.0),
        (24.0, 6.0),
        (24.0, -14.0),
    ]
    sim = Simulator(seed=seed)
    gains = LogDistancePathLoss(pl_d0=40.0, seed=seed, shadowing_sigma=0.0).gain_matrix(
        positions
    )
    channel = Channel(sim, gains, noise_model=ConstantNoise())
    controller = Controller(channel=channel)
    protocols, stacks = {}, {}
    for i in range(len(positions)):
        stack = NodeStack(sim, channel, i, is_root=(i == 0), always_on=True)
        protocols[i] = TeleAdjusting(sim, stack, controller=controller)
        stacks[i] = stack
    for i in range(len(positions)):
        stacks[i].start()
        protocols[i].start()
    sim.run(until=120 * SECOND)
    controller.snapshot(protocols)
    return sim, stacks, protocols, controller


class TestMulticastUnderFailure:
    def test_dead_member_missing_but_rest_covered(self):
        sim, stacks, protocols, controller = build_tree()
        prefix = protocols[1].allocation.code
        members = {
            n
            for n, p in protocols.items()
            if p.allocation.code is not None and prefix.is_prefix_of(p.allocation.code)
        }
        dead = max(members - {1})
        stacks[dead].radio.fail()
        applied = set()
        for n, p in protocols.items():
            p.forwarding.on_apply = lambda payload, me=n: applied.add(me)
        protocols[0].forwarding.send_multicast(prefix, payload="x")
        sim.run(until=sim.now + 40 * SECOND)
        assert dead not in applied
        assert applied >= (members - {dead})

    def test_multicast_to_leaf_prefix_is_a_singleton(self):
        sim, stacks, protocols, controller = build_tree()
        leaf = 5
        prefix = protocols[leaf].allocation.code
        applied = []
        for n, p in protocols.items():
            p.forwarding.on_apply = lambda payload, me=n: applied.append(me)
        protocols[0].forwarding.send_multicast(prefix, payload="solo")
        sim.run(until=sim.now + 30 * SECOND)
        assert set(applied) == {leaf}


class TestControllerEdgeCases:
    def test_snapshot_counts_only_coded(self):
        controller = Controller()
        count = controller.snapshot({})
        assert count == 0

    def test_helper_skips_destination_itself(self):
        controller = Controller()
        controller.set_neighbors(5, [5, 7])
        controller.report_code(5, PathCode.from_bits("0011"))
        controller.report_code(7, PathCode.from_bits("0101"))
        helper = controller.pick_helper(5, avoid_code=PathCode.from_bits("0011"))
        assert helper is not None and helper[0] == 7

    def test_helper_respects_link_quality_gate(self):
        sim, stacks, protocols, controller = build_tree()
        # Node 3's physical neighbours include far nodes below MIN_HELPER_PRR;
        # whatever helper is chosen must have a usable last hop.
        helper = controller.pick_helper(
            3, avoid_code=protocols[3].allocation.code
        )
        if helper is not None:
            from repro.radio.channel import Channel as _C

            prr = protocols[0].stack.mac.radio.channel.expected_prr(helper[0], 3)
            assert prr >= controller.MIN_HELPER_PRR

    def test_known_nodes_listing(self):
        controller = Controller()
        controller.report_code(3, PathCode.sink())
        assert controller.known_nodes() == [3]


class TestSimulatorRunContracts:
    def test_run_until_is_resumable(self):
        sim = Simulator(seed=1)
        hits = []
        for t in (10, 20, 30):
            sim.schedule(t, hits.append, t)
        sim.run(until=15)
        assert hits == [10]
        sim.run(until=100)
        assert hits == [10, 20, 30]

    def test_max_events_leaves_queue_intact(self):
        sim = Simulator(seed=1)
        hits = []
        for t in (1, 2, 3):
            sim.schedule(t, hits.append, t)
        sim.run(max_events=2)
        assert hits == [1, 2]
        sim.run()
        assert hits == [1, 2, 3]

    def test_pending_events_upper_bound(self):
        sim = Simulator(seed=1)
        events = [sim.schedule(10, lambda: None) for _ in range(5)]
        assert sim.pending_events() == 5
        sim.cancel(events[0])
        assert sim.pending_events() == 4
