"""Tests for the RPL downward-routing baseline."""

import pytest

from repro.baselines.rpl import RplDownward, RplParams
from repro.net import NodeStack
from repro.radio.channel import Channel
from repro.radio.noise import ConstantNoise
from repro.radio.propagation import LogDistancePathLoss
from repro.sim import SECOND, Simulator


def build(n=4, spacing=12.0, seed=1, params=None):
    sim = Simulator(seed=seed)
    positions = [(i * spacing, 0.0) for i in range(n)]
    gains = LogDistancePathLoss(pl_d0=40.0, seed=seed, shadowing_sigma=0.0).gain_matrix(
        positions
    )
    channel = Channel(sim, gains, noise_model=ConstantNoise())
    stacks, rpls = {}, {}
    for i in range(n):
        stack = NodeStack(sim, channel, i, is_root=(i == 0), always_on=True)
        rpls[i] = RplDownward(sim, stack, params=params)
        stacks[i] = stack
    for i in range(n):
        stacks[i].start()
        rpls[i].start()
    return sim, channel, stacks, rpls


class TestDaoPropagation:
    def test_sink_learns_all_destinations(self):
        sim, _, _, rpls = build(n=4)
        sim.run(until=120 * SECOND)
        assert set(rpls[0].routes) == {1, 2, 3}

    def test_routes_point_to_correct_next_hop(self):
        sim, _, _, rpls = build(n=4)
        sim.run(until=120 * SECOND)
        assert rpls[0].routes[3].next_hop == 1
        assert rpls[1].routes[3].next_hop == 2
        assert rpls[0].routes[1].next_hop == 1

    def test_intermediate_node_stores_subtree_only(self):
        sim, _, _, rpls = build(n=4)
        sim.run(until=120 * SECOND)
        assert set(rpls[2].routes) == {3}
        assert set(rpls[1].routes) == {2, 3}

    def test_dao_counts_are_bounded(self):
        sim, _, _, rpls = build(n=4)
        sim.run(until=300 * SECOND)
        # Periodic refresh (30 s) plus change-triggered cascades, but no
        # storms: well under a few per node per refresh interval.
        for node in (1, 2, 3):
            assert rpls[node].daos_sent < 40, (node, rpls[node].daos_sent)


class TestDownwardForwarding:
    def test_delivery_along_stored_route(self):
        sim, _, _, rpls = build(n=4)
        sim.run(until=120 * SECOND)
        delivered = []
        rpls[3].on_delivered = delivered.append
        pending = rpls[0].send_control(3, payload={"k": 1})
        sim.run(until=sim.now + 30 * SECOND)
        assert delivered and delivered[0].payload == {"k": 1}
        assert delivered[0].hops == 3
        assert pending.delivered
        assert pending.acked_at is not None

    def test_no_route_fails_immediately(self):
        sim, _, _, rpls = build(n=3)
        sim.run(until=1 * SECOND)  # too early: no DAOs yet
        outcomes = []
        rpls[0].send_control(2, done=outcomes.append)
        sim.run(until=sim.now + 5 * SECOND)
        assert outcomes and outcomes[0].failed
        assert outcomes[0].fail_reason == "no-route"

    def test_dead_next_hop_drops_packet(self):
        params = RplParams(max_hop_tries=2, e2e_timeout=30 * SECOND)
        sim, _, stacks, rpls = build(n=4, params=params)
        sim.run(until=120 * SECOND)
        stacks[2].radio.fail()
        outcomes = []
        rpls[0].send_control(3, done=outcomes.append)
        sim.run(until=sim.now + 60 * SECOND)
        assert outcomes and outcomes[0].failed
        assert rpls[1].controls_dropped >= 1

    def test_send_from_non_root_rejected(self):
        sim, _, _, rpls = build(n=2)
        with pytest.raises(RuntimeError):
            rpls[1].send_control(0)

    def test_on_apply_at_destination(self):
        sim, _, _, rpls = build(n=3)
        sim.run(until=120 * SECOND)
        applied = []
        rpls[2].on_apply = applied.append
        rpls[0].send_control(2, payload="set-x")
        sim.run(until=sim.now + 20 * SECOND)
        assert applied == ["set-x"]


class TestRouteLifetime:
    def test_stale_routes_expire_from_reachable_set(self):
        params = RplParams(route_lifetime=40 * SECOND, dao_interval=15 * SECOND)
        sim, _, stacks, rpls = build(n=3, params=params)
        sim.run(until=90 * SECOND)
        assert 2 in rpls[0].routes
        # Kill node 2: its DAOs stop, so node 1 stops advertising it.
        stacks[2].radio.fail()
        sim.run(until=sim.now + 120 * SECOND)
        reachable_via_1 = rpls[1]._reachable_set()
        assert 2 not in reachable_via_1


class TestLoopGuard:
    def test_ttl_bounds_looping_packets(self):
        """Two nodes whose stored routes point at each other must not
        ping-pong a packet forever (paper: RPL 'network loop', Fig 8(c))."""
        from repro.baselines.rpl import RplParams, _RouteEntry

        params = RplParams(max_hops=8)
        sim, _, stacks, rpls = build(n=4, params=params)
        sim.run(until=120 * SECOND)
        # Corrupt the tables into a loop for destination 3: 1→2 and 2→1.
        rpls[1].routes[3] = _RouteEntry(next_hop=2, refreshed_at=sim.now)
        rpls[2].routes[3] = _RouteEntry(next_hop=1, refreshed_at=sim.now)
        stacks[3].radio.fail()  # ensure nothing breaks the loop by delivering
        outcomes = []
        rpls[0].send_control(3, done=outcomes.append)
        sim.run(until=sim.now + 60 * SECOND)
        total_forwards = sum(r.controls_forwarded for r in rpls.values())
        assert total_forwards <= params.max_hops * 3 + 10
        dropped_reasons = [o.fail_reason for o in outcomes if o.failed]
        assert outcomes and outcomes[0].failed
