"""Tests for the Trickle timer (RFC 6206 behaviour)."""

from repro.net.trickle import TrickleTimer
from repro.sim import Simulator

import pytest


def make(sim, fires, i_min=1000, doublings=3, k=1):
    return TrickleTimer(
        sim, lambda: fires.append(sim.now), i_min=i_min, i_max_doublings=doublings, k=k
    )


class TestBasics:
    def test_fires_within_first_interval(self):
        sim = Simulator(seed=1)
        fires = []
        timer = make(sim, fires)
        timer.start()
        sim.run(until=1000)
        assert len(fires) == 1
        assert 500 <= fires[0] < 1000

    def test_interval_doubles_up_to_max(self):
        sim = Simulator(seed=1)
        timer = make(sim, [], i_min=1000, doublings=2)
        timer.start()
        sim.run(until=20_000)
        assert timer.interval == 4000  # 1000 * 2**2

    def test_fire_count_is_logarithmic(self):
        sim = Simulator(seed=3)
        fires = []
        timer = make(sim, fires, i_min=1000, doublings=10, k=0)
        timer.start()
        sim.run(until=1_000_000)
        # Intervals 1000, 2000, ... doubling: ~log2(1e6/1e3)=10 + tail.
        assert 5 < len(fires) < 30

    def test_start_is_idempotent(self):
        sim = Simulator(seed=1)
        fires = []
        timer = make(sim, fires)
        timer.start()
        timer.start()
        sim.run(until=999)
        assert len(fires) <= 1

    def test_stop_halts(self):
        sim = Simulator(seed=1)
        fires = []
        timer = make(sim, fires)
        timer.start()
        timer.stop()
        sim.run(until=100_000)
        assert fires == []

    def test_invalid_params(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            TrickleTimer(sim, lambda: None, i_min=1)
        with pytest.raises(ValueError):
            TrickleTimer(sim, lambda: None, i_max_doublings=-1)


class TestSuppression:
    def test_k_consistent_messages_suppress(self):
        sim = Simulator(seed=1)
        fires = []
        timer = make(sim, fires, k=1)
        timer.start()
        # Flood consistency before the fire point of every interval.
        for t in range(0, 50_000, 200):
            sim.schedule(t, timer.hear_consistent)
        sim.run(until=50_000)
        assert fires == []

    def test_k_zero_never_suppresses(self):
        sim = Simulator(seed=1)
        fires = []
        timer = make(sim, fires, k=0)
        timer.start()
        for t in range(0, 10_000, 100):
            sim.schedule(t, timer.hear_consistent)
        sim.run(until=10_000)
        assert len(fires) >= 3

    def test_counter_resets_each_interval(self):
        sim = Simulator(seed=1)
        timer = make(sim, [], k=5)
        timer.start()
        timer.hear_consistent()
        timer.hear_consistent()
        assert timer.counter == 2
        sim.run(until=1001)  # first interval over
        assert timer.counter == 0


class TestReset:
    def test_inconsistency_resets_interval(self):
        sim = Simulator(seed=1)
        timer = make(sim, [], i_min=1000, doublings=4)
        timer.start()
        sim.run(until=30_000)
        assert timer.interval > 1000
        timer.hear_inconsistent()
        assert timer.interval == 1000

    def test_reset_when_already_minimal_is_noop(self):
        sim = Simulator(seed=1)
        fires = []
        timer = make(sim, fires, i_min=1000)
        timer.start()
        sim.run(until=400)
        timer.reset()  # interval already i_min: must not reschedule
        sim.run(until=1000)
        assert len(fires) <= 1

    def test_reset_starts_stopped_timer(self):
        sim = Simulator(seed=1)
        fires = []
        timer = make(sim, fires)
        timer.reset()
        assert timer.running
        sim.run(until=1000)
        assert len(fires) == 1

    def test_reset_fires_quickly_after_long_idle(self):
        sim = Simulator(seed=1)
        fires = []
        timer = make(sim, fires, i_min=1000, doublings=6)
        timer.start()
        sim.run(until=100_000)
        count = len(fires)
        timer.hear_inconsistent()
        sim.run(until=sim.now + 1000)
        assert len(fires) == count + 1  # fired within one i_min
