"""Acceptance: the parallel path is a pure optimisation.

``run_comparison_multi`` over several seeds through ``ParallelRunner``
with ``jobs > 1`` must produce results equal per metric and per seed to the
serial path, and a warm cache must answer a repeat invocation without
re-simulating a single cell. The crash-safety acceptance rides along: a
grid SIGKILLed mid-run and resumed from its journal must merge to results
bit-identical to an uninterrupted run — trace digests included. Schedules
are compressed to keep this suite minutes-scale; equality is exact, not
approximate.
"""

import os
import signal
import subprocess
import sys
import textwrap
import threading
from pathlib import Path

import pytest

import repro
from repro.experiments.chaos import chaos_grid_specs
from repro.experiments.sweep import run_comparison_multi
from repro.runner import ParallelRunner

SEEDS = (1, 2, 3, 4)
#: Compressed schedule: enough simulated time for codes to form and a couple
#: of control rounds, small enough that 8 cells stay test-suite friendly.
FAST = dict(
    n_controls=2, control_interval_s=4.0, converge_seconds=30.0, drain_seconds=10.0
)


@pytest.fixture(scope="module")
def serial():
    return run_comparison_multi("tele", seeds=SEEDS, jobs=1, **FAST)


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("repro-cache"))


@pytest.fixture(scope="module")
def parallel(cache_dir):
    return run_comparison_multi("tele", seeds=SEEDS, jobs=2, cache_dir=cache_dir, **FAST)


def test_serial_path_ran_every_seed(serial):
    assert [run.seed for run in serial.runs] == list(SEEDS)
    assert serial.telemetry.executed == len(SEEDS)
    assert serial.telemetry.cached == 0


def test_parallel_equals_serial_per_seed_per_metric(serial, parallel):
    assert [run.seed for run in parallel.runs] == list(SEEDS)
    for serial_run, parallel_run in zip(serial.runs, parallel.runs):
        for metric in (
            "variant", "zigbee_channel", "seed", "n_controls", "pdr",
            "pdr_by_hop", "latency_by_hop", "mean_latency", "tx_per_control",
            "duty_cycle", "athx_samples",
        ):
            assert getattr(serial_run, metric) == getattr(parallel_run, metric), metric
        assert (
            serial_run.control_metrics.records == parallel_run.control_metrics.records
        )


def test_parallel_aggregates_equal_serial(serial, parallel):
    for metric in ("pdr", "tx_per_control", "duty_cycle", "latency"):
        assert getattr(serial, metric).values == getattr(parallel, metric).values


def test_warm_cache_re_simulates_zero_cells(parallel, cache_dir):
    assert parallel.telemetry.executed == len(SEEDS)  # cold run simulated all
    warm = run_comparison_multi(
        "tele", seeds=SEEDS, jobs=2, cache_dir=cache_dir, **FAST
    )
    assert warm.telemetry.executed == 0
    assert warm.telemetry.cached == len(SEEDS)
    for cold_run, warm_run in zip(parallel.runs, warm.runs):
        assert cold_run.pdr == warm_run.pdr
        assert cold_run.mean_latency == warm_run.mean_latency
        assert cold_run.control_metrics.records == warm_run.control_metrics.records


def test_changed_schedule_misses_cache(parallel, cache_dir):
    changed = dict(FAST, n_controls=3)
    result = run_comparison_multi(
        "tele", seeds=SEEDS[:1], jobs=1, cache_dir=cache_dir, **changed
    )
    assert result.telemetry.executed == 1
    assert result.telemetry.cached == 0


# --------------------------------------------------------------- kill-resume

#: Chaos cells carry a trace digest, so "bit-identical after resume" is
#: checkable down to the event stream, not just the summary metrics.
CHAOS_GRID = dict(
    variants=["re-tele"],
    intensities=[1.0],
    seeds=[1, 2, 3],
    scenario="crash-churn",
    n_controls=2,
    control_interval_s=4.0,
    converge_seconds=30.0,
    drain_seconds=10.0,
)

#: The victim process: run the chaos grid with a journal, printing one
#: "done" progress line per completed cell so the parent knows when the
#: journal holds at least one durable result — then the parent SIGKILLs us.
_VICTIM_SCRIPT = textwrap.dedent(
    """
    import sys
    from repro.experiments.chaos import chaos_grid_specs
    from repro.runner import ParallelRunner

    jobs, journal_dir = int(sys.argv[1]), sys.argv[2]
    specs = chaos_grid_specs(
        ["re-tele"], [1.0], [1, 2, 3], scenario="crash-churn",
        n_controls=2, control_interval_s=4.0,
        converge_seconds=30.0, drain_seconds=10.0,
    )
    progress = lambda cat, msg, **data: print(f"[{cat}] {msg}", flush=True)
    ParallelRunner(jobs=jobs, journal_dir=journal_dir, progress=progress).run(specs)
    """
)


@pytest.fixture(scope="module")
def chaos_reference():
    """The uninterrupted run every resumed run must match bit for bit."""
    specs = chaos_grid_specs(**CHAOS_GRID)
    return [outcome.result for outcome in ParallelRunner(jobs=1).run(specs)]


@pytest.mark.parametrize("jobs", [1, 4])
def test_sigkilled_grid_resumes_bit_identical(tmp_path, chaos_reference, jobs):
    journal_dir = tmp_path / f"journal-{jobs}"
    env = dict(
        os.environ, PYTHONPATH=str(Path(repro.__file__).resolve().parents[1])
    )
    victim = subprocess.Popen(
        [sys.executable, "-c", _VICTIM_SCRIPT, str(jobs), str(journal_dir)],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
        start_new_session=True,  # so SIGKILL can take the pool workers too
    )

    def _nuke() -> None:
        try:
            os.killpg(victim.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass

    backstop = threading.Timer(300.0, _nuke)
    backstop.start()
    saw_done = False
    try:
        # A "done" progress line is emitted only after the journal record
        # for that cell is fsynced — the hard kill right after it models a
        # crash with at least one durable completion.
        for line in victim.stdout:
            if "done " in line:
                saw_done = True
                break
        _nuke()
        victim.wait(timeout=60)
    finally:
        backstop.cancel()
        victim.stdout.close()
    assert saw_done, "victim produced no completed cell before exiting"

    specs = chaos_grid_specs(**CHAOS_GRID)
    resumed = ParallelRunner(jobs=jobs, journal_dir=journal_dir, resume=True)
    outcomes = resumed.run(specs)

    report = resumed.last_report
    assert report.resumed >= 1, "resume served nothing from the journal"
    assert report.failed == 0 and report.interrupted == 0
    merged = [outcome.result for outcome in outcomes]
    assert merged == chaos_reference  # every metric, bit for bit
    assert [r["trace_digest"] for r in merged] == [
        r["trace_digest"] for r in chaos_reference
    ]
