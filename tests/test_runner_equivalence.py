"""Acceptance: the parallel path is a pure optimisation.

``run_comparison_multi`` over several seeds through ``ParallelRunner``
with ``jobs > 1`` must produce results equal per metric and per seed to the
serial path, and a warm cache must answer a repeat invocation without
re-simulating a single cell. Schedules are compressed to keep this suite
minutes-scale; equality is exact, not approximate.
"""

import pytest

from repro.experiments.sweep import run_comparison_multi

SEEDS = (1, 2, 3, 4)
#: Compressed schedule: enough simulated time for codes to form and a couple
#: of control rounds, small enough that 8 cells stay test-suite friendly.
FAST = dict(
    n_controls=2, control_interval_s=4.0, converge_seconds=30.0, drain_seconds=10.0
)


@pytest.fixture(scope="module")
def serial():
    return run_comparison_multi("tele", seeds=SEEDS, jobs=1, **FAST)


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("repro-cache"))


@pytest.fixture(scope="module")
def parallel(cache_dir):
    return run_comparison_multi("tele", seeds=SEEDS, jobs=2, cache_dir=cache_dir, **FAST)


def test_serial_path_ran_every_seed(serial):
    assert [run.seed for run in serial.runs] == list(SEEDS)
    assert serial.telemetry.executed == len(SEEDS)
    assert serial.telemetry.cached == 0


def test_parallel_equals_serial_per_seed_per_metric(serial, parallel):
    assert [run.seed for run in parallel.runs] == list(SEEDS)
    for serial_run, parallel_run in zip(serial.runs, parallel.runs):
        for metric in (
            "variant", "zigbee_channel", "seed", "n_controls", "pdr",
            "pdr_by_hop", "latency_by_hop", "mean_latency", "tx_per_control",
            "duty_cycle", "athx_samples",
        ):
            assert getattr(serial_run, metric) == getattr(parallel_run, metric), metric
        assert (
            serial_run.control_metrics.records == parallel_run.control_metrics.records
        )


def test_parallel_aggregates_equal_serial(serial, parallel):
    for metric in ("pdr", "tx_per_control", "duty_cycle", "latency"):
        assert getattr(serial, metric).values == getattr(parallel, metric).values


def test_warm_cache_re_simulates_zero_cells(parallel, cache_dir):
    assert parallel.telemetry.executed == len(SEEDS)  # cold run simulated all
    warm = run_comparison_multi(
        "tele", seeds=SEEDS, jobs=2, cache_dir=cache_dir, **FAST
    )
    assert warm.telemetry.executed == 0
    assert warm.telemetry.cached == len(SEEDS)
    for cold_run, warm_run in zip(parallel.runs, warm.runs):
        assert cold_run.pdr == warm_run.pdr
        assert cold_run.mean_latency == warm_run.mean_latency
        assert cold_run.control_metrics.records == warm_run.control_metrics.records


def test_changed_schedule_misses_cache(parallel, cache_dir):
    changed = dict(FAST, n_controls=3)
    result = run_comparison_multi(
        "tele", seeds=SEEDS[:1], jobs=1, cache_dir=cache_dir, **changed
    )
    assert result.telemetry.executed == 1
    assert result.telemetry.cached == 0
