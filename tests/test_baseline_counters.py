"""Counter and bookkeeping behaviours of the baseline protocols."""

import pytest

from repro.baselines.orpl import BloomFilter, OrplControl, OrplDownward, OrplParams
from repro.net import NodeStack
from repro.radio.channel import Channel
from repro.radio.frame import BROADCAST, Frame, FrameType
from repro.radio.noise import ConstantNoise
from repro.radio.propagation import LogDistancePathLoss
from repro.sim import SECOND, Simulator


def build_orpl(n=4, spacing=12.0, seed=1, params=None):
    sim = Simulator(seed=seed)
    positions = [(i * spacing, 0.0) for i in range(n)]
    gains = LogDistancePathLoss(pl_d0=40.0, seed=seed, shadowing_sigma=0.0).gain_matrix(
        positions
    )
    channel = Channel(sim, gains, noise_model=ConstantNoise())
    stacks, orpls = {}, {}
    for i in range(n):
        stack = NodeStack(sim, channel, i, is_root=(i == 0), always_on=True)
        orpls[i] = OrplDownward(sim, stack, params=params)
        stacks[i] = stack
    for i in range(n):
        stacks[i].start()
        orpls[i].start()
    return sim, stacks, orpls


class TestOrplCounters:
    def test_false_positive_drop_counted(self):
        sim, stacks, orpls = build_orpl(n=3)
        sim.run(until=120 * SECOND)
        victim = orpls[1]
        # Force a claim for a node that does not exist: inject its id into
        # the bloom, hand the packet over, and watch the dead-end drop.
        ghost = 9999
        victim.subtree.add(ghost)
        control = OrplControl(destination=ghost, payload=None, holder_depth=0)
        frame = Frame(
            src=0, dst=BROADCAST, type=FrameType.CONTROL, payload=control, length=32
        )
        assert victim._anycast_decision(frame, -70).accept
        victim._on_control(frame, -70)
        sim.run(until=sim.now + 20 * SECOND)
        assert victim.false_positive_drops >= 1

    def test_forward_counter_increments(self):
        sim, stacks, orpls = build_orpl(n=3)
        sim.run(until=120 * SECOND)
        before = orpls[0].controls_forwarded
        orpls[0].send_control(2)
        sim.run(until=sim.now + 20 * SECOND)
        assert orpls[0].controls_forwarded > before

    def test_watchdog_retries_until_timeout(self):
        params = OrplParams(e2e_timeout=25 * SECOND, sink_retry_interval=6 * SECOND)
        sim, stacks, orpls = build_orpl(n=3, params=params)
        sim.run(until=120 * SECOND)
        stacks[2].radio.fail()
        outcomes = []
        orpls[0].send_control(2, done=outcomes.append)
        first_round = orpls[0].controls_forwarded
        sim.run(until=sim.now + 40 * SECOND)
        assert orpls[0].controls_forwarded > first_round  # watchdog refired
        assert outcomes and outcomes[0].failed

    def test_bloom_fill_ratio_reflects_subtree(self):
        sim, stacks, orpls = build_orpl(n=4)
        sim.run(until=120 * SECOND)
        # The sink's filter covers the whole network; a leaf's only itself.
        assert orpls[0].subtree.fill_ratio() > orpls[3].subtree.fill_ratio()


class TestDripVersioning:
    def test_pending_keyed_by_version(self):
        from repro.baselines.drip import Drip

        sim = Simulator(seed=2)
        gains = LogDistancePathLoss(pl_d0=40.0, seed=2, shadowing_sigma=0.0).gain_matrix(
            [(0.0, 0.0), (8.0, 0.0)]
        )
        channel = Channel(sim, gains, noise_model=ConstantNoise())
        stacks = {
            i: NodeStack(sim, channel, i, is_root=(i == 0), always_on=True)
            for i in range(2)
        }
        drips = {i: Drip(sim, stacks[i]) for i in range(2)}
        for i in range(2):
            stacks[i].start()
            drips[i].start()
        sim.run(until=20 * SECOND)
        first = drips[0].disseminate("a", destination=1)
        second = drips[0].disseminate("b", destination=1)
        assert first.value.version == 1
        assert second.value.version == 2
        sim.run(until=sim.now + 60 * SECOND)
        # Only the newest version is retained at the receiver…
        assert drips[1].current_value().payload == "b"
        # …and its pending entry acked; the superseded one timed out or not,
        # but the registry keeps both entries addressable.
        assert (1, 2) in [k for k in drips[0].pending]
