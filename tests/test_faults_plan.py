"""FaultPlan value semantics, chaos presets, and fingerprint stability."""

import pytest

from repro.experiments.harness import Network, NetworkConfig
from repro.faults import CHAOS_SCENARIOS, FaultEvent, FaultPlan, chaos_plan
from repro.runner import chaos_spec, fingerprint_of
from repro.topology import random_uniform


class TestFaultEvent:
    def test_round_trip(self):
        event = FaultEvent(kind="link", at_s=3.0, node=1, peer=2, duration_s=5.0)
        assert FaultEvent.from_dict(event.to_dict()) == event

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(kind="meteor", at_s=0.0, node=1)

    def test_crash_needs_node_and_duration(self):
        with pytest.raises(ValueError, match="needs a node"):
            FaultEvent(kind="crash", at_s=0.0, duration_s=5.0)
        with pytest.raises(ValueError, match="needs a duration"):
            FaultEvent(kind="crash", at_s=0.0, node=1)

    def test_link_needs_distinct_endpoints(self):
        with pytest.raises(ValueError, match="must differ"):
            FaultEvent(kind="link", at_s=0.0, node=1, peer=1)
        with pytest.raises(ValueError, match="both node and peer"):
            FaultEvent(kind="link", at_s=0.0, node=1)

    def test_probabilities_bounded(self):
        with pytest.raises(ValueError, match="drop_prob"):
            FaultEvent(kind="packet_loss", at_s=0.0, drop_prob=1.5)
        with pytest.raises(ValueError, match="corrupt_prob"):
            FaultEvent(kind="packet_loss", at_s=0.0, corrupt_prob=-0.1)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown FaultEvent keys"):
            FaultEvent.from_dict({"kind": "stun", "at_s": 0.0, "node": 1,
                                  "duration_s": 1.0, "severity": 9})


class TestFaultPlan:
    def test_events_sorted_and_normalised(self):
        plan = FaultPlan(
            events=(
                {"kind": "stun", "at_s": 9.0, "node": 2, "duration_s": 1.0},
                FaultEvent(kind="crash", at_s=1.0, node=1, duration_s=5.0),
            )
        )
        assert [e.at_s for e in plan.events] == [1.0, 9.0]
        assert all(isinstance(e, FaultEvent) for e in plan.events)

    def test_round_trip_and_span(self):
        plan = FaultPlan(
            events=(FaultEvent(kind="crash", at_s=2.0, node=1, duration_s=8.0),),
            auto_arm=False,
            name="demo",
        )
        again = FaultPlan.from_dict(plan.to_dict())
        assert again == plan
        assert plan.span_s() == 10.0
        assert not plan.is_empty
        assert FaultPlan().is_empty

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown FaultPlan keys"):
            FaultPlan.from_dict({"events": [], "armed": True})


class TestChaosPlan:
    def test_deterministic_for_same_inputs(self):
        a = chaos_plan("mixed", 1.0, n_nodes=10, seed=4)
        b = chaos_plan("mixed", 1.0, n_nodes=10, seed=4)
        assert a == b
        assert a.to_dict() == b.to_dict()

    def test_seed_changes_plan(self):
        a = chaos_plan("crash-churn", 1.0, n_nodes=10, seed=1)
        b = chaos_plan("crash-churn", 1.0, n_nodes=10, seed=2)
        assert a != b

    def test_zero_intensity_is_empty(self):
        assert chaos_plan("mixed", 0.0, n_nodes=10, seed=1).is_empty

    def test_sink_never_targeted(self):
        for scenario in CHAOS_SCENARIOS:
            plan = chaos_plan(scenario, 2.0, n_nodes=8, sink=3, seed=7)
            assert all(e.node != 3 for e in plan.events)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            chaos_plan("armageddon", 1.0, n_nodes=10)


class TestFingerprintStability:
    def test_fault_free_config_omits_faults_key(self):
        # Regression: pre-faults-layer cache entries must stay reachable, so
        # a config without faults serialises exactly as it did before the
        # faults field existed.
        assert "faults" not in NetworkConfig().to_dict()

    def test_faulted_config_serialises_plan(self):
        config = NetworkConfig(faults=FaultPlan())
        data = config.to_dict()
        assert data["faults"] == {"name": "", "auto_arm": True, "events": []}

    def test_plan_changes_fingerprint(self):
        base = fingerprint_of(NetworkConfig().to_dict())
        empty = fingerprint_of(NetworkConfig(faults=FaultPlan()).to_dict())
        planned = fingerprint_of(
            NetworkConfig(
                faults=FaultPlan(
                    events=(
                        FaultEvent(kind="stun", at_s=1.0, node=1, duration_s=2.0),
                    )
                )
            ).to_dict()
        )
        assert len({base, empty, planned}) == 3

    def test_chaos_spec_fingerprint_deterministic(self):
        a = chaos_spec("tele", scenario="mixed", intensity=0.5, seed=3)
        b = chaos_spec("tele", scenario="mixed", intensity=0.5, seed=3)
        assert a.fingerprint == b.fingerprint
        c = chaos_spec("tele", scenario="mixed", intensity=0.75, seed=3)
        assert c.fingerprint != a.fingerprint


def _run_small_net(faults):
    """A short always-on run; returns a full behavioural transcript."""
    config = NetworkConfig(
        topology=random_uniform(6, 40.0, 40.0, seed=2, sink=0),
        protocol="tele",
        seed=2,
        always_on=True,
        faults=faults,
    )
    net = Network(config)
    net.converge(max_seconds=40.0, target=1.0)
    coded = [n for n in net.non_sink_nodes() if net.protocols[n].path_code is not None]
    record = net.send_control(coded[-1]) if coded else None
    net.run(10.0)
    transcript = {
        "now": net.sim.now,
        "tx": {n: dict(s.tx_by_type) for n, s in net.stacks.items()},
        "record": None
        if record is None
        else (record.destination, record.sent_at, record.delivered_at,
              record.acked_at, record.athx),
    }
    return transcript


class TestZeroFaultIdentity:
    def test_empty_plan_is_bit_identical_to_no_plan(self):
        # Acceptance: running with a zero-fault FaultPlan is bit-identical
        # to running without the faults layer at all — the hooks must not
        # perturb any RNG stream or event ordering.
        assert _run_small_net(None) == _run_small_net(FaultPlan())
