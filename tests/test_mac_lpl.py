"""Tests for the LPL duty-cycled MAC."""

import pytest

from repro.mac import AnycastDecision, LPLMac, MacParams
from repro.radio.channel import Channel
from repro.radio.frame import BROADCAST, Frame, FrameType
from repro.radio.noise import ConstantNoise
from repro.radio.propagation import LogDistancePathLoss
from repro.radio.radio import Radio
from repro.sim import MILLISECOND, SECOND, Simulator


def build_network(n=3, spacing=6.0, seed=1, always_on_ids=(0,), params=None):
    sim = Simulator(seed=seed)
    positions = [(i * spacing, 0.0) for i in range(n)]
    gains = LogDistancePathLoss(pl_d0=40.0, seed=seed, shadowing_sigma=0.0).gain_matrix(
        positions
    )
    channel = Channel(sim, gains, noise_model=ConstantNoise())
    macs = []
    for i in range(n):
        radio = Radio(sim, channel, i)
        mac = LPLMac(sim, radio, params=params, always_on=(i in always_on_ids))
        macs.append(mac)
    return sim, channel, macs


class TestUnicast:
    def test_delivery_and_ack(self):
        sim, _, macs = build_network()
        received = []
        for mac in macs:
            mac.receive_handler = (
                lambda frame, rssi, me=mac.node_id: received.append((me, frame.src))
            )
            mac.start()
        results = []
        sim.schedule(
            10 * MILLISECOND,
            lambda: macs[0].send(
                Frame(src=0, dst=1, type=FrameType.DATA, length=40), results.append
            ),
        )
        sim.run(until=3 * SECOND)
        assert results[0].ok
        assert results[0].acker == 1
        assert (1, 0) in received

    def test_unicast_latency_bounded_by_wake_interval(self):
        sim, _, macs = build_network()
        for mac in macs:
            mac.start()
        results = []
        sim.schedule(
            0,
            lambda: macs[0].send(
                Frame(src=0, dst=1, type=FrameType.DATA, length=40), results.append
            ),
        )
        sim.run(until=3 * SECOND)
        assert results[0].ok
        duration = results[0].finished - results[0].started
        assert duration <= macs[0].params.wake_interval + macs[0].params.train_slack

    def test_unreachable_destination_times_out(self):
        sim, _, macs = build_network(spacing=100.0)
        for mac in macs:
            mac.start()
        results = []
        sim.schedule(
            0,
            lambda: macs[0].send(
                Frame(src=0, dst=1, type=FrameType.DATA, length=40), results.append
            ),
        )
        sim.run(until=3 * SECOND)
        assert not results[0].ok
        assert results[0].reason == "timeout"

    def test_duplicate_copies_delivered_once(self):
        sim, _, macs = build_network()
        delivered = []
        macs[1].receive_handler = lambda frame, rssi: delivered.append(frame.frame_id)
        for mac in macs:
            mac.start()
        sim.schedule(
            0, lambda: macs[0].send(Frame(src=0, dst=1, type=FrameType.DATA, length=40))
        )
        sim.run(until=3 * SECOND)
        assert len(delivered) == len(set(delivered))


class TestBroadcast:
    def test_reaches_all_neighbors(self):
        sim, _, macs = build_network(n=4, spacing=4.0)
        received = set()
        for mac in macs:
            mac.receive_handler = (
                lambda frame, rssi, me=mac.node_id: received.add(me)
            )
            mac.start()
        sim.schedule(
            0,
            lambda: macs[0].send(
                Frame(src=0, dst=BROADCAST, type=FrameType.ROUTING_BEACON, length=28)
            ),
        )
        sim.run(until=3 * SECOND)
        assert received == {1, 2, 3}

    def test_broadcast_train_fills_wake_interval(self):
        sim, _, macs = build_network()
        for mac in macs:
            mac.start()
        results = []
        sim.schedule(
            0,
            lambda: macs[0].send(
                Frame(src=0, dst=BROADCAST, type=FrameType.ROUTING_BEACON, length=28),
                results.append,
            ),
        )
        sim.run(until=3 * SECOND)
        assert results[0].ok
        assert results[0].copies > 50  # many copies over 512 ms

    def test_broadcast_copies_cap(self):
        params = MacParams(broadcast_copies_cap=3)
        sim, _, macs = build_network(params=params, always_on_ids=(0, 1, 2))
        for mac in macs:
            mac.start()
        results = []
        sim.schedule(
            0,
            lambda: macs[0].send(
                Frame(src=0, dst=BROADCAST, type=FrameType.ROUTING_BEACON, length=28),
                results.append,
            ),
        )
        sim.run(until=3 * SECOND)
        assert results[0].copies == 3


class TestAnycast:
    def test_best_slot_wins(self):
        sim, _, macs = build_network(n=3, spacing=4.0, always_on_ids=(0, 1, 2))
        macs[1].anycast_handler = lambda frame, rssi: AnycastDecision(True, slot=3)
        macs[2].anycast_handler = lambda frame, rssi: AnycastDecision(True, slot=0)
        delivered = []
        for mac in macs:
            mac.receive_handler = (
                lambda frame, rssi, me=mac.node_id: delivered.append(me)
                if frame.type is FrameType.CONTROL
                else None
            )
            mac.start()
        results = []
        sim.schedule(
            0,
            lambda: macs[0].send_anycast(
                Frame(src=0, dst=BROADCAST, type=FrameType.CONTROL, length=36),
                results.append,
            ),
        )
        sim.run(until=3 * SECOND)
        assert results[0].ok
        assert results[0].acker == 2
        assert delivered == [2]  # the loser suppressed itself

    def test_no_acceptor_times_out(self):
        sim, _, macs = build_network(n=3, spacing=4.0)
        for mac in macs:
            mac.anycast_handler = lambda frame, rssi: AnycastDecision.reject()
            mac.start()
        results = []
        sim.schedule(
            0,
            lambda: macs[0].send_anycast(
                Frame(src=0, dst=BROADCAST, type=FrameType.CONTROL, length=36),
                results.append,
            ),
        )
        sim.run(until=3 * SECOND)
        assert not results[0].ok

    def test_sleeping_acceptor_wakes_and_wins(self):
        sim, _, macs = build_network(n=2, spacing=4.0, always_on_ids=(0,))
        macs[1].anycast_handler = lambda frame, rssi: AnycastDecision(True, slot=0)
        macs[1].receive_handler = lambda frame, rssi: None
        for mac in macs:
            mac.start()
        results = []
        sim.schedule(
            0,
            lambda: macs[0].send_anycast(
                Frame(src=0, dst=BROADCAST, type=FrameType.CONTROL, length=36),
                results.append,
            ),
        )
        sim.run(until=3 * SECOND)
        assert results[0].ok
        assert results[0].acker == 1


class TestCancel:
    def test_cancel_queued_send(self):
        sim, _, macs = build_network()
        for mac in macs:
            mac.start()
        results = []
        frame_a = Frame(src=0, dst=1, type=FrameType.DATA, length=40)
        frame_b = Frame(src=0, dst=1, type=FrameType.CONTROL, length=40)
        sim.schedule(0, lambda: macs[0].send(frame_a, results.append))
        sim.schedule(0, lambda: macs[0].send(frame_b, results.append))
        sim.schedule(
            1 * MILLISECOND,
            lambda: macs[0].cancel_matching(lambda f: f.type is FrameType.CONTROL),
        )
        sim.run(until=3 * SECOND)
        assert len(results) == 2
        cancelled = [r for r in results if r.reason == "cancelled"]
        assert len(cancelled) == 1
        assert cancelled[0].frame.type is FrameType.CONTROL

    def test_cancel_current_train(self):
        sim, _, macs = build_network(spacing=100.0)  # nobody can hear: train runs long
        for mac in macs:
            mac.start()
        results = []
        frame = Frame(src=0, dst=1, type=FrameType.DATA, length=40)
        sim.schedule(0, lambda: macs[0].send(frame, results.append))
        sim.schedule(
            100 * MILLISECOND, lambda: macs[0].cancel_matching(lambda f: True)
        )
        sim.run(until=3 * SECOND)
        assert results[0].reason == "cancelled"

    def test_cancel_nonmatching_is_noop(self):
        sim, _, macs = build_network()
        for mac in macs:
            mac.start()
        count = macs[0].cancel_matching(lambda f: False)
        assert count == 0


class TestDutyCycle:
    def test_always_on_node_is_at_one(self):
        sim, _, macs = build_network()
        for mac in macs:
            mac.start()
        sim.run(until=10 * SECOND)
        assert macs[0].duty_cycle() == pytest.approx(1.0)

    def test_idle_duty_cycled_node_is_low(self):
        sim, _, macs = build_network()
        for mac in macs:
            mac.start()
        sim.run(until=60 * SECOND)
        # listen_window / wake_interval = 6/512 ≈ 1.2 %, plus slack.
        assert macs[2].duty_cycle() < 0.05

    def test_handover_announce_off(self):
        params = MacParams(handover_announce=False)
        sim, _, macs = build_network(params=params, always_on_ids=(0, 1))
        macs[1].anycast_handler = lambda frame, rssi: AnycastDecision(True, slot=0)
        macs[1].receive_handler = lambda frame, rssi: None
        for mac in macs:
            mac.start()
        results = []
        sim.schedule(
            0,
            lambda: macs[0].send_anycast(
                Frame(src=0, dst=BROADCAST, type=FrameType.CONTROL, length=36),
                results.append,
            ),
        )
        sim.run(until=2 * SECOND)
        assert results[0].ok
