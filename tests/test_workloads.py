"""Tests for workloads: WiFi interference, collection traffic, control schedule."""

import pytest

from repro.radio.propagation import LogDistancePathLoss
from repro.sim import MILLISECOND, SECOND, Simulator
from repro.workloads.collection import CollectionWorkload
from repro.workloads.control import ControlSchedule
from repro.workloads.interference import WifiInterferer, WifiParams


class TestWifiParams:
    def test_channel19_full_coupling(self):
        assert WifiParams.zigbee_channel(19).coupling_db == 0.0

    def test_channel26_essentially_off(self):
        assert WifiParams.zigbee_channel(26).coupling_db <= -50.0

    def test_intermediate_channels_partial(self):
        c22 = WifiParams.zigbee_channel(22).coupling_db
        assert -50 < c22 < 0

    def test_overrides(self):
        params = WifiParams.zigbee_channel(19, tx_power_dbm=20.0)
        assert params.tx_power_dbm == 20.0


class TestWifiInterferer:
    def _make(self, coupling=0.0):
        sim = Simulator(seed=1)
        positions = [(0.0, 0.0), (5.0, 0.0)]
        propagation = LogDistancePathLoss(pl_d0=40.0, seed=1, shadowing_sigma=0.0)
        params = WifiParams(position=(2.0, 1.0), coupling_db=coupling)
        interferer = WifiInterferer(sim, positions, propagation, params)
        return sim, interferer

    def test_idle_contributes_nothing(self):
        sim, interferer = self._make()
        assert interferer.interference_dbm_at(0) is None

    def test_bursts_alternate(self):
        sim, interferer = self._make()
        interferer.start()
        active_samples = []

        def sample():
            active_samples.append(interferer.active)
            sim.schedule(5 * MILLISECOND, sample)

        sim.schedule(0, sample)
        sim.run(until=2 * SECOND)
        assert any(active_samples) and not all(active_samples)

    def test_power_declines_with_distance(self):
        sim, interferer = self._make()
        interferer.active = True
        near = interferer.interference_dbm_at(0)
        far = interferer.interference_dbm_at(1)
        assert near is not None and far is not None
        assert near > far

    def test_decoupled_channel_silent(self):
        sim, interferer = self._make(coupling=-80.0)
        interferer.active = True
        assert interferer.interference_dbm_at(0) is None

    def test_busy_time_accounted(self):
        sim, interferer = self._make()
        interferer.start()
        sim.run(until=5 * SECOND)
        assert 0 < interferer.busy_time < 5 * SECOND


class TestControlSchedule:
    def test_fires_requested_count(self):
        sim = Simulator(seed=1)
        sent = []
        schedule = ControlSchedule(
            sim, send=lambda d, i: sent.append((d, i)), destinations=[5, 6, 7],
            interval=SECOND, count=4,
        )
        schedule.start()
        sim.run(until=10 * SECOND)
        assert len(sent) == 4
        assert [i for _, i in sent] == [0, 1, 2, 3]
        assert all(d in (5, 6, 7) for d, _ in sent)

    def test_unbounded_schedule_keeps_firing(self):
        sim = Simulator(seed=1)
        sent = []
        schedule = ControlSchedule(
            sim, send=lambda d, i: sent.append(d), destinations=[1], interval=SECOND
        )
        schedule.start()
        sim.run(until=10 * SECOND + 1)
        assert len(sent) >= 9

    def test_history_recorded(self):
        sim = Simulator(seed=1)
        schedule = ControlSchedule(
            sim, send=lambda d, i: None, destinations=[3], interval=SECOND, count=2
        )
        schedule.start()
        sim.run(until=5 * SECOND)
        assert schedule.history == [3, 3]

    def test_empty_destinations_rejected(self):
        with pytest.raises(ValueError):
            ControlSchedule(Simulator(), send=lambda d, i: None, destinations=[])

    def test_start_idempotent(self):
        sim = Simulator(seed=1)
        sent = []
        schedule = ControlSchedule(
            sim, send=lambda d, i: sent.append(d), destinations=[1],
            interval=SECOND, count=3,
        )
        schedule.start()
        schedule.start()
        sim.run(until=10 * SECOND)
        assert len(sent) == 3


class TestCollectionWorkload:
    def test_periodic_generation_and_delivery(self):
        from repro.net import NodeStack
        from repro.radio.channel import Channel
        from repro.radio.noise import ConstantNoise

        sim = Simulator(seed=1)
        positions = [(0.0, 0.0), (10.0, 0.0), (20.0, 0.0)]
        gains = LogDistancePathLoss(pl_d0=40.0, seed=1, shadowing_sigma=0.0).gain_matrix(
            positions
        )
        channel = Channel(sim, gains, noise_model=ConstantNoise())
        stacks = {
            i: NodeStack(sim, channel, i, is_root=(i == 0), always_on=True)
            for i in range(3)
        }
        workload = CollectionWorkload(sim, stacks, ipi=20 * SECOND)
        for stack in stacks.values():
            stack.start()
        workload.start()
        sim.run(until=200 * SECOND)
        assert workload.generated >= 10
        assert workload.delivery_ratio is not None
        assert workload.delivery_ratio > 0.8
