"""Tests for one-to-many delivery via code prefixes (repro.core.multicast)."""

import pytest

from repro.core import Controller, TeleAdjusting
from repro.core.multicast import MULTICAST, is_multicast, member_of
from repro.core.messages import ControlPacket
from repro.core.pathcode import PathCode
from repro.net import NodeStack
from repro.radio.channel import Channel
from repro.radio.noise import ConstantNoise
from repro.radio.propagation import LogDistancePathLoss
from repro.sim import SECOND, Simulator


def build_tree(seed=1):
    """Sink with two subtrees: 1→(3,4) and 2→(5)."""
    positions = [
        (0.0, 0.0),      # 0 sink
        (12.0, 8.0),     # 1
        (12.0, -8.0),    # 2
        (24.0, 12.0),    # 3 child of 1
        (24.0, 6.0),     # 4 child of 1
        (24.0, -14.0),   # 5 child of 2 (out of range of 1)
    ]
    sim = Simulator(seed=seed)
    gains = LogDistancePathLoss(pl_d0=40.0, seed=seed, shadowing_sigma=0.0).gain_matrix(
        positions
    )
    channel = Channel(sim, gains, noise_model=ConstantNoise())
    controller = Controller(channel=channel)
    protocols, stacks = {}, {}
    for i in range(len(positions)):
        stack = NodeStack(sim, channel, i, is_root=(i == 0), always_on=True)
        protocols[i] = TeleAdjusting(sim, stack, controller=controller)
        stacks[i] = stack
    for i in range(len(positions)):
        stacks[i].start()
        protocols[i].start()
    sim.run(until=120 * SECOND)
    controller.snapshot(protocols)
    return sim, stacks, protocols, controller


class TestHelpers:
    def test_is_multicast(self):
        control = ControlPacket(
            destination=MULTICAST,
            destination_code=PathCode.sink(),
            expected_relay=None,
            expected_length=0,
        )
        assert is_multicast(control)
        control.destination = 5
        assert not is_multicast(control)

    def test_member_of_uses_current_code_only(self):
        sim, stacks, protocols, _ = build_tree()
        node3 = protocols[3]
        prefix = protocols[1].allocation.code
        assert member_of(node3.forwarding, prefix)
        # A node outside the subtree is not a member…
        node5 = protocols[5]
        assert not member_of(node5.forwarding, prefix)
        # …even if an old code placed it there.
        node5.allocation._set_code(prefix.extend(3, 2))
        node5.allocation._set_code(PathCode.from_bits("111"))
        assert not member_of(node5.forwarding, prefix)
        assert member_of(node5.forwarding, prefix, include_old=True)


class TestSubtreeDelivery:
    def test_subtree_members_receive_exactly_once(self):
        sim, stacks, protocols, controller = build_tree()
        prefix = protocols[1].allocation.code
        members = {
            n
            for n, p in protocols.items()
            if p.allocation.code is not None
            and prefix.is_prefix_of(p.allocation.code)
        }
        assert members >= {1}
        applied = []
        for node, protocol in protocols.items():
            protocol.forwarding.on_apply = (
                lambda payload, me=node: applied.append(me)
            )
        protocols[0].forwarding.send_multicast(prefix, payload="subtree-cmd")
        sim.run(until=sim.now + 40 * SECOND)
        assert set(applied) == members
        assert len(applied) == len(set(applied))  # exactly once each

    def test_one_to_all_via_sink_prefix(self):
        sim, stacks, protocols, controller = build_tree()
        applied = set()
        for node, protocol in protocols.items():
            protocol.forwarding.on_apply = (
                lambda payload, me=node: applied.add(me)
            )
        # The sink's code prefixes every node: one-to-all dissemination.
        protocols[0].forwarding.send_multicast(PathCode.sink(), payload="all")
        sim.run(until=sim.now + 60 * SECOND)
        assert applied == set(protocols)

    def test_other_subtree_untouched(self):
        sim, stacks, protocols, controller = build_tree()
        prefix = protocols[2].allocation.code
        applied = set()
        for node, protocol in protocols.items():
            protocol.forwarding.on_apply = (
                lambda payload, me=node: applied.add(me)
            )
        protocols[0].forwarding.send_multicast(prefix, payload="only-2s")
        sim.run(until=sim.now + 40 * SECOND)
        assert 1 not in applied
        assert 3 not in applied and 4 not in applied
        assert 2 in applied and 5 in applied
