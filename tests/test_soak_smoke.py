"""CI soak-smoke acceptance: memory-flat, reclaiming, bit-identical.

Gated behind ``REPRO_SOAK=1`` (CI's ``soak-smoke`` job — soaks take tens
of seconds each). Three promises from docs/soak.md are asserted on real
runs:

1. **Flat memory** — peak RSS is independent of soak length: a 3× longer
   soak may not grow the process peak by more than a small slack, and the
   absolute peak stays bounded. (Streaming windows + record draining are
   what make this true; an accumulating history would fail the ratio.)
2. **Reclamation works** — battery deaths produce nonzero code-space
   reclamation counters.
3. **Same-seed stability** — repeating a soak bit-identically reproduces
   both the stream digest and the end-state soak digest.
"""

import os
import resource
import sys

import pytest

from repro.experiments.soak import run_soak

pytestmark = pytest.mark.skipif(
    not os.environ.get("REPRO_SOAK"),
    reason="endurance smoke runs tens of seconds per soak; set REPRO_SOAK=1",
)

SMOKE = dict(
    variant="tele", seed=1,
    window_s=300.0, control_interval_s=30.0, converge_seconds=120.0,
    churn_intensity=1.0, battery_mah=0.6, reclaim_ttl_s=300.0,
    tail_windows=8,
)

#: Peak-RSS ceiling for the 40-node paper-scale soak, bytes. Generous —
#: the observed peak is ~40 MB — but low enough that any per-event or
#: per-window accumulation over a multi-hour soak blows through it.
RSS_CEILING_BYTES = 512 * 1024 * 1024


def _peak_rss_bytes() -> int:
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    return rss if sys.platform == "darwin" else rss * 1024


def test_soak_smoke_acceptance():
    short = run_soak(duration_s=1800.0, **SMOKE)
    peak_after_short = _peak_rss_bytes()

    # 2: depletion ran and the allocation space was reclaimed.
    assert short["converged"]
    assert short["deaths"] > 0
    assert short["positions_reclaimed"] > 0
    assert short["mobility"]["moves"] > 0

    # 3: same-seed repeat is bit-identical.
    again = run_soak(duration_s=1800.0, **SMOKE)
    assert again["stream_digest"] == short["stream_digest"]
    assert again["soak_digest"] == short["soak_digest"]
    assert again["events_executed"] == short["events_executed"]

    # 1: a 3x longer soak must not need meaningfully more memory.
    longer = run_soak(duration_s=5400.0, **SMOKE)
    assert longer["windows"] > short["windows"]
    peak_after_long = _peak_rss_bytes()
    assert peak_after_long < RSS_CEILING_BYTES, (
        f"peak RSS {peak_after_long / 2**20:.0f} MiB exceeds the "
        f"{RSS_CEILING_BYTES / 2**20:.0f} MiB soak ceiling"
    )
    slack = 96 * 1024 * 1024
    assert peak_after_long <= peak_after_short * 1.25 + slack, (
        f"peak RSS grew from {peak_after_short / 2**20:.0f} MiB to "
        f"{peak_after_long / 2**20:.0f} MiB on a 3x longer soak — "
        "streaming metrics are supposed to make memory independent of "
        "soak length (see docs/soak.md)"
    )
