"""Churn composition: fault-plan kicks and mobility must not double-churn.

Two regression surfaces guard PR 9's endurance layer:

- *Build time*: :func:`chaos_plan` never schedules two ``parent_switch``
  events for the same node within the churn window (rejection-sampled at
  plan construction). The pinned crash-churn plan digest proves the
  dedupe never re-draws on conflict-free seeds — the golden chaos digests
  depend on that plan being bit-identical to its pre-dedupe form.
- *Run time*: the :class:`ChurnGuard` suppresses a mobility kick landing
  on a node a fault plan just kicked (and vice versa), but NEVER
  suppresses fault-vs-fault (plans dedupe themselves; runtime suppression
  would change which planned events fire and break the pinned digests).
"""

import pytest

from repro.experiments.harness import Network, NetworkConfig
from repro.faults import FaultEvent, FaultPlan, chaos_plan
from repro.faults.injector import ChurnGuard, FaultInjector
from repro.faults.plan import PARENT_SWITCH_CHURN_WINDOW_S
from repro.runner import fingerprint_of
from repro.sim.units import SECOND
from repro.topology.mobility import MobilityParams

#: chaos_plan('crash-churn', 1.0, n_nodes=40, sink=0, seed=3) — the plan
#: behind the golden ``chaos-crash-churn`` digest. Pinned so the build-time
#: kick dedupe (which only re-draws on an actual same-node conflict) can
#: never silently reshape it.
PINNED_CRASH_CHURN_FP = (
    "e031fcca8572b423bded65ac8fa6db4e1806f47ed8cc85f0d1058e0422faf696"
)


class _StubSim:
    """Just enough simulator for guard unit tests: a settable clock."""

    def __init__(self) -> None:
        self.now = 0


# ----------------------------------------------------------- plan dedupe

class TestPlanKickDedupe:
    def test_pinned_plan_unchanged(self):
        plan = chaos_plan("crash-churn", 1.0, n_nodes=40, sink=0, seed=3)
        assert fingerprint_of(plan.to_dict()) == PINNED_CRASH_CHURN_FP

    @pytest.mark.parametrize("intensity", [1.0, 2.5])
    def test_no_double_churn_within_window(self, intensity):
        for seed in range(20):
            plan = chaos_plan(
                "crash-churn", intensity, n_nodes=12, sink=0, seed=seed
            )
            last = {}
            for event in plan.events:
                if event.kind != "parent_switch":
                    continue
                previous = last.get(event.node)
                if previous is not None:
                    assert event.at_s - previous >= PARENT_SWITCH_CHURN_WINDOW_S, (
                        f"seed {seed}: node {event.node} kicked at {previous}s "
                        f"and again at {event.at_s}s"
                    )
                last[event.node] = event.at_s

    def test_saturated_window_still_schedules(self):
        """When every node was kicked recently the builder must fall back
        to repeating one rather than dropping the event (plan length is
        part of the intensity contract)."""
        plan = chaos_plan("crash-churn", 2.5, n_nodes=3, sink=0, seed=1)
        kicks = [e for e in plan.events if e.kind == "parent_switch"]
        assert len(kicks) > 0


# ---------------------------------------------------------- guard window

class TestChurnGuard:
    def test_cross_source_blocked_within_window(self):
        sim = _StubSim()
        guard = ChurnGuard(sim)
        guard.note(4, "faults")
        sim.now += round(1.0 * SECOND)
        assert guard.blocked(4, "mobility")
        assert not guard.blocked(5, "mobility")

    def test_mobility_vs_mobility_blocked(self):
        sim = _StubSim()
        guard = ChurnGuard(sim)
        guard.note(4, "mobility")
        sim.now += round(1.0 * SECOND)
        assert guard.blocked(4, "mobility")

    def test_fault_vs_fault_never_blocked(self):
        # Plans dedupe at build time; runtime suppression of planned
        # events would change what fires and break pinned chaos digests.
        sim = _StubSim()
        guard = ChurnGuard(sim)
        guard.note(4, "faults")
        sim.now += round(0.5 * SECOND)
        assert not guard.blocked(4, "faults")

    def test_window_ages_out(self):
        sim = _StubSim()
        guard = ChurnGuard(sim)
        guard.note(4, "faults")
        sim.now += round((PARENT_SWITCH_CHURN_WINDOW_S + 0.1) * SECOND)
        assert not guard.blocked(4, "mobility")


# ------------------------------------------------------- run-time wiring

def _small_net(**overrides) -> Network:
    net = Network(
        NetworkConfig(
            topology="indoor-testbed", protocol="tele", seed=4, **overrides
        )
    )
    net.converge(max_seconds=120)
    return net


class TestRuntimeComposition:
    def test_fault_kick_suppresses_mobility_kick(self):
        net = _small_net(
            mobility=MobilityParams(model="waypoint", nodes=[10])
        )
        # A fault-plan kick just hit node 10 …
        net.churn_guard.note(10, "faults")
        # … so the mobility arrival right after must not re-kick it.
        before = net.mobility.kicks
        net.mobility._arrived(10)
        assert net.mobility.kicks == before
        assert net.mobility.kicks_suppressed == 1

    def test_mobility_kick_suppresses_fault_kick(self):
        net = _small_net(faults=FaultPlan(events=(), auto_arm=False))
        injector = net.fault_injector
        net.churn_guard.note(10, "mobility")
        event = FaultEvent(kind="parent_switch", at_s=1.0, node=10)
        injector._do_parent_switch(0, event)
        assert injector.parent_kicks_suppressed == 1

    def test_fault_kick_fires_without_recent_churn(self):
        net = _small_net(faults=FaultPlan(events=(), auto_arm=False))
        injector = net.fault_injector
        parent_before = net.stacks[10].routing.parent
        event = FaultEvent(kind="parent_switch", at_s=1.0, node=10)
        injector._do_parent_switch(0, event)
        assert injector.parent_kicks_suppressed == 0
        assert net.stacks[10].routing.parent is None or (
            net.stacks[10].routing.parent != parent_before
        )

    def test_kill_node_is_permanent(self):
        net = _small_net(faults=FaultPlan(events=(), auto_arm=False))
        injector = net.fault_injector
        injector.kill_node(10, reason="battery")
        assert net.stacks[10].radio.failed
        assert injector.deaths == [(net.sim.now, 10)]
        assert injector.fired[-1] == (net.sim.now, "battery", 10)
        net.run(10 * 60)
        # Unlike a crash fault there is no reboot: the radio stays down.
        assert net.stacks[10].radio.failed


class TestZeroChurnIdentity:
    def test_guard_absent_from_unfaulted_runs(self):
        """A network with no faults/mobility/battery constructs no injector
        and no drivers — nothing endurance-related can perturb it."""
        net = Network(NetworkConfig(topology="indoor-testbed", protocol="tele", seed=4))
        assert net.fault_injector is None
        assert net.mobility is None
        assert net.battery is None
        assert isinstance(net.churn_guard, ChurnGuard)

    def test_battery_only_config_gets_synthetic_injector(self):
        net = Network(
            NetworkConfig(
                topology="indoor-testbed",
                protocol="tele",
                seed=4,
                battery={"capacity_mah": 1.0},
            )
        )
        assert isinstance(net.fault_injector, FaultInjector)
        assert net.fault_injector.plan.events == ()
        assert not net.fault_injector.plan.auto_arm
