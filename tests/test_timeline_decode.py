"""Tests for path decoding and packet timelines (observability features)."""

import pytest

from repro.core import Controller, TeleAdjusting
from repro.core.pathcode import PathCode
from repro.experiments.timeline import (
    TELE_CATEGORIES,
    packet_timeline,
    render_timeline,
    serials_seen,
    summarize,
)
from repro.net import NodeStack
from repro.radio.channel import Channel
from repro.radio.noise import ConstantNoise
from repro.radio.propagation import LogDistancePathLoss
from repro.sim import SECOND, Simulator


class TestDecodePath:
    def test_decodes_registered_prefix_chain(self):
        controller = Controller()
        sink = PathCode.sink()
        a = sink.extend(1, 2)
        b = a.extend(3, 3)
        controller.report_code(0, sink)
        controller.report_code(4, a)
        controller.report_code(9, b)
        path = controller.decode_path(b)
        assert path == [(0, sink), (4, a), (9, b)]

    def test_gaps_for_unreported_relays(self):
        controller = Controller()
        sink = PathCode.sink()
        a = sink.extend(1, 2)
        b = a.extend(3, 3)
        controller.report_code(0, sink)
        controller.report_code(9, b)  # middle relay never reported
        path = controller.decode_path(b)
        assert [node for node, _ in path] == [0, 9]

    def test_empty_registry(self):
        controller = Controller()
        assert controller.decode_path(PathCode.from_bits("0101")) == []

    def test_live_network_decode(self):
        sim = Simulator(seed=4)
        positions = [(i * 12.0, 0.0) for i in range(4)]
        gains = LogDistancePathLoss(pl_d0=40.0, seed=4, shadowing_sigma=0.0).gain_matrix(
            positions
        )
        channel = Channel(sim, gains, noise_model=ConstantNoise())
        controller = Controller(channel=channel)
        protocols = {}
        for i in range(4):
            stack = NodeStack(sim, channel, i, is_root=(i == 0), always_on=True)
            protocols[i] = TeleAdjusting(sim, stack, controller=controller)
            stack.start()
            protocols[i].start()
        sim.run(until=120 * SECOND)
        controller.snapshot(protocols)
        deep = protocols[3].allocation.code
        path = controller.decode_path(deep)
        nodes = [node for node, _ in path]
        assert nodes == [0, 1, 2, 3]  # the full relay chain of the line
        # Prefixes nest along the decoded path.
        for (_, shorter), (_, longer) in zip(path, path[1:]):
            assert shorter.is_prefix_of(longer)


@pytest.fixture(scope="module")
def traced_run():
    sim = Simulator(seed=5)
    positions = [(i * 12.0, 0.0) for i in range(4)]
    gains = LogDistancePathLoss(pl_d0=40.0, seed=5, shadowing_sigma=0.0).gain_matrix(
        positions
    )
    channel = Channel(sim, gains, noise_model=ConstantNoise())
    controller = Controller(channel=channel)
    protocols = {}
    for i in range(4):
        stack = NodeStack(sim, channel, i, is_root=(i == 0), always_on=True)
        protocols[i] = TeleAdjusting(sim, stack, controller=controller)
        stack.start()
        protocols[i].start()
    sim.run(until=120 * SECOND)
    controller.snapshot(protocols)
    sim.tracer.enable(categories=TELE_CATEGORIES)
    pending = protocols[0].remote_control(3, payload="x")
    sim.run(until=sim.now + 30 * SECOND)
    return sim, pending


class TestTimeline:
    def test_events_recorded_for_serial(self, traced_run):
        sim, pending = traced_run
        serial = pending.control.serial
        events = packet_timeline(sim.tracer, serial)
        assert events, "no events traced"
        kinds = [e.kind for e in events]
        assert "forward" in kinds
        assert kinds[-1] == "deliver" or "deliver" in kinds

    def test_events_time_ordered(self, traced_run):
        sim, pending = traced_run
        events = packet_timeline(sim.tracer, pending.control.serial)
        times = [e.time_s for e in events]
        assert times == sorted(times)

    def test_render_contains_nodes_and_markers(self, traced_run):
        sim, pending = traced_run
        text = render_timeline(sim.tracer, pending.control.serial)
        assert "serial" in text
        assert "→" in text
        assert "✔" in text

    def test_render_unknown_serial(self, traced_run):
        sim, _ = traced_run
        assert "no trace records" in render_timeline(sim.tracer, 999_999)

    def test_serials_and_summary(self, traced_run):
        sim, pending = traced_run
        serial = pending.control.serial
        assert serial in serials_seen(sim.tracer)
        counts = summarize(sim.tracer)[serial]
        assert counts["forward"] >= 1
        assert counts["deliver"] == 1
