"""Hostile-conditions coverage for the farm HTTP service.

Malformed, oversized, stalled, and dropped requests must land as 4xx (or
a closed connection) — never a 500, never a dead event loop — and a
saturated service must shed load with 429 + ``Retry-After`` that the
resilient client turns into a short wait.

Uses the raw-socket helpers from :mod:`repro.havoc.http` to produce
byte-level abuse a well-behaved urllib client cannot.
"""

import json
import os
import pathlib
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.farm import client
from repro.havoc import http as havochttp
from repro.runner.retry import RetryPolicy


def _spawn_server(tmp_path, *extra):
    env = dict(os.environ)
    src = str(pathlib.Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", "--port", "0",
            "--cache-dir", str(tmp_path / "cache"), *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    line = proc.stdout.readline()
    match = re.search(r"http://([0-9.]+):(\d+)", line)
    if match is None:
        proc.kill()
        pytest.fail(f"server did not announce an address: {line!r}")
    return proc, match.group(0), match.group(1), int(match.group(2))


@pytest.fixture(scope="class")
def hostile_server(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("farm-hostile")
    proc, url, host, port = _spawn_server(
        tmp_path, "--read-timeout", "1.5", "--max-pending", "8"
    )
    yield url, host, port
    proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=20) == 0  # survived every abuse, exited clean


def _status_of(response: bytes) -> int:
    """The HTTP status in a raw response (0 for a bare connection close)."""
    match = re.match(rb"HTTP/1\.1 (\d{3}) ", response)
    return int(match.group(1)) if match else 0


class TestMalformedRequests:
    def test_garbage_request_line_gets_400(self, hostile_server):
        url, host, port = hostile_server
        reply = havochttp.raw_request(host, port, b"]]NOT HTTP[[\r\n\r\n")
        assert _status_of(reply) == 400

    def test_nonnumeric_content_length_gets_400(self, hostile_server):
        url, host, port = hostile_server
        reply = havochttp.raw_request(
            host, port,
            b"POST /jobs HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
        )
        assert _status_of(reply) == 400

    def test_negative_content_length_gets_400(self, hostile_server):
        url, host, port = hostile_server
        reply = havochttp.raw_request(
            host, port,
            b"POST /jobs HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
        )
        assert _status_of(reply) == 400

    def test_oversized_declared_body_gets_413(self, hostile_server):
        url, host, port = hostile_server
        reply = havochttp.raw_request(
            host, port,
            b"POST /jobs HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n",
        )
        assert _status_of(reply) == 413

    def test_unknown_route_gets_404(self, hostile_server):
        url, host, port = hostile_server
        reply = havochttp.raw_request(host, port, b"GET /nope HTTP/1.1\r\n\r\n")
        assert _status_of(reply) == 404

    def test_wrong_method_gets_405(self, hostile_server):
        url, host, port = hostile_server
        reply = havochttp.raw_request(
            host, port, b"DELETE /jobs HTTP/1.1\r\n\r\n"
        )
        assert _status_of(reply) == 405

    def test_bad_json_submit_gets_400_with_detail(self, hostile_server):
        url, host, port = hostile_server
        body = b"{not json"
        reply = havochttp.raw_request(
            host, port,
            b"POST /jobs HTTP/1.1\r\nContent-Length: "
            + str(len(body)).encode() + b"\r\n\r\n" + body,
        )
        assert _status_of(reply) == 400
        payload = json.loads(reply.split(b"\r\n\r\n", 1)[1])
        assert "bad JSON" in payload["error"]

    def test_stalled_body_gets_408_within_read_timeout(self, hostile_server):
        url, host, port = hostile_server
        started = time.monotonic()
        reply = havochttp.stalled_request(
            host, port,
            b"POST /jobs HTTP/1.1\r\nContent-Length: 100\r\n\r\n",
            timeout=30.0,
        )
        elapsed = time.monotonic() - started
        assert _status_of(reply) == 408
        assert elapsed < 10.0  # 1.5s timeout + margin, not a pinned handler

    def test_stalled_head_gets_408(self, hostile_server):
        url, host, port = hostile_server
        reply = havochttp.stalled_request(
            host, port, b"GET /healthz HTT", timeout=30.0
        )
        assert _status_of(reply) == 408

    def test_mid_body_drop_does_not_kill_the_service(self, hostile_server):
        url, host, port = hostile_server
        havochttp.drop_mid_body(
            host, port,
            b"POST /jobs HTTP/1.1\r\nContent-Length: 50\r\n\r\n",
            b"{only half",
        )
        assert client.health(url)["ok"] is True

    def test_client_error_carries_server_detail(self, hostile_server):
        url, host, port = hostile_server
        with pytest.raises(client.FarmClientError) as info:
            client.job(url, "no-such-job")
        assert info.value.status == 404
        assert "no-such-job" in str(info.value)  # the server's own message

    def test_unreachable_server_raises_client_error(self, hostile_server):
        url, host, port = hostile_server
        fast = RetryPolicy(retries=1, backoff_base_s=0.01)
        with pytest.raises(client.FarmClientError, match="cannot reach"):
            client._request(
                f"http://127.0.0.1:1", "/healthz", timeout=2.0, policy=fast
            )

    @given(chunk=st.binary(min_size=0, max_size=200))
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_fuzzed_bytes_never_yield_500(self, hostile_server, chunk):
        url, host, port = hostile_server
        # Terminate the head so the server parses immediately instead of
        # waiting out its read timeout on every example.
        reply = havochttp.raw_request(host, port, chunk + b"\r\n\r\n")
        status = _status_of(reply)
        assert status < 500  # 4xx, 2xx, or a bare close — never a 5xx
        assert b"Traceback" not in reply

    def test_service_is_healthy_after_the_hostilities(self, hostile_server):
        url, host, port = hostile_server
        health = client.health(url)
        assert health["ok"] is True
        assert health["state"] == "ok"


class TestBackpressure:
    @pytest.fixture(scope="class")
    def saturated(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("farm-saturated")
        proc, url, host, port = _spawn_server(tmp_path, "--max-pending", "1")
        yield url, host, port
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0

    def _submit_raw(self, url, payload):
        """One submission with NO retries — to observe the raw 429."""
        request = urllib.request.Request(
            url + "/jobs",
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
        return urllib.request.urlopen(request, timeout=10)

    def test_saturated_service_sheds_load_and_recovers(self, saturated):
        url, host, port = saturated
        slow = {"grid": "selftest", "cells": 1, "sleep_s": 3.0}
        first = client.submit(url, slow)

        # The admission bound is hit: a raw (retry-free) submit gets 429
        # with Retry-After, and /healthz reports degraded — load is shed
        # *before* the service falls over, not after.
        with pytest.raises(urllib.error.HTTPError) as info:
            self._submit_raw(url, {"grid": "selftest", "cells": 1})
        assert info.value.code == 429
        assert float(info.value.headers["Retry-After"]) > 0
        body = json.loads(info.value.read())
        assert body["pending"] >= body["max_pending"]

        health = client.health(url)
        assert health["state"] == "degraded"
        assert health["ok"] is False
        assert health["pending"] >= health["max_pending"]

        # The resilient client backs off (honouring Retry-After) and
        # succeeds once the slow job finishes — a 429 is a wait, not an
        # error.
        patient = RetryPolicy(retries=8, backoff_base_s=0.5, backoff_max_s=2.0)
        second = client.submit(
            url, {"grid": "selftest", "cells": 2, "payload": 5}, policy=patient
        )
        assert client.wait(url, first["id"], timeout=60)["state"] == "done"
        assert client.wait(url, second["id"], timeout=60)["state"] == "done"
        assert client.health(url)["state"] == "ok"


class TestGracefulDrain:
    def test_sigterm_finishes_inflight_job_then_exits_zero(self, tmp_path):
        proc, url, host, port = _spawn_server(tmp_path)
        try:
            job = client.submit(
                url, {"grid": "selftest", "cells": 1, "sleep_s": 2.0}
            )
            proc.send_signal(signal.SIGTERM)
            # Drain: the in-flight job runs to completion before exit 0 —
            # its cache/journal writes land, nothing is abandoned.
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
        assert job["state"] in ("queued", "running")
