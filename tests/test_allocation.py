"""Integration tests for path-code allocation (Algorithms 1–3) on live stacks."""

import pytest

from repro.core import Controller, TeleAdjusting
from repro.core.allocation import AllocationParams
from repro.core.pathcode import PathCode
from repro.net import NodeStack
from repro.radio.channel import Channel
from repro.radio.noise import ConstantNoise
from repro.radio.propagation import LogDistancePathLoss
from repro.sim import SECOND, Simulator


def build(positions, seed=1, fading=0.0, always_on=True):
    sim = Simulator(seed=seed)
    gains = LogDistancePathLoss(pl_d0=40.0, seed=seed, shadowing_sigma=0.0).gain_matrix(
        positions
    )
    channel = Channel(sim, gains, noise_model=ConstantNoise(), fading_sigma_db=fading)
    controller = Controller(channel=channel)
    stacks, protocols = [], {}
    for i in range(len(positions)):
        stack = NodeStack(sim, channel, i, is_root=(i == 0), always_on=always_on)
        protocols[i] = TeleAdjusting(sim, stack, controller=controller)
        stacks.append(stack)
    for stack, protocol in zip(stacks, protocols.values()):
        stack.start()
        protocol.start()
    return sim, channel, stacks, protocols, controller


def line(n, spacing=12.0):
    return [(i * spacing, 0.0) for i in range(n)]


def star(n_leaves, radius=8.0):
    import math

    positions = [(0.0, 0.0)]
    for i in range(n_leaves):
        angle = 2 * math.pi * i / n_leaves
        positions.append((radius * math.cos(angle), radius * math.sin(angle)))
    return positions


class TestSinkBootstrap:
    def test_sink_code_is_single_zero_bit(self):
        sim, _, _, protocols, _ = build(line(2))
        assert protocols[0].allocation.code == PathCode.sink()

    def test_sink_never_requests_positions(self):
        sim, _, _, protocols, _ = build(line(2))
        sim.run(until=60 * SECOND)
        assert protocols[0].allocation.position is None


class TestLineAllocation:
    def test_every_node_gets_a_code(self):
        sim, _, _, protocols, _ = build(line(4))
        sim.run(until=90 * SECOND)
        for node, protocol in protocols.items():
            assert protocol.allocation.code is not None, f"node {node} uncoded"

    def test_parent_code_prefixes_child_code(self):
        sim, _, stacks, protocols, _ = build(line(4))
        sim.run(until=90 * SECOND)
        for node in (1, 2, 3):
            parent = stacks[node].routing.parent
            parent_code = protocols[parent].allocation.code
            child_code = protocols[node].allocation.code
            assert parent_code.is_prefix_of(child_code), (node, parent)
            assert parent_code.length < child_code.length

    def test_codes_are_unique(self):
        sim, _, _, protocols, _ = build(line(5))
        sim.run(until=120 * SECOND)
        codes = [p.allocation.code for p in protocols.values()]
        assert len(set(codes)) == len(codes)

    def test_positions_confirmed(self):
        sim, _, _, protocols, _ = build(line(3))
        sim.run(until=120 * SECOND)
        for node in (0, 1):
            for entry in protocols[node].allocation.children.entries():
                assert entry.confirmed, (node, entry)

    def test_convergence_metrics_recorded(self):
        sim, _, _, protocols, _ = build(line(3))
        sim.run(until=90 * SECOND)
        for node in (1, 2):
            beacons = protocols[node].allocation.beacons_to_converge()
            assert beacons is not None
            assert beacons >= 0


class TestStarAllocation:
    def test_star_children_all_under_sink(self):
        sim, _, _, protocols, _ = build(star(6))
        sim.run(until=90 * SECOND)
        sink_code = protocols[0].allocation.code
        positions = set()
        for node in range(1, 7):
            allocation = protocols[node].allocation
            assert allocation.code is not None
            assert sink_code.is_prefix_of(allocation.code)
            assert allocation.position not in positions
            positions.add(allocation.position)

    def test_space_sized_for_child_count(self):
        sim, _, _, protocols, _ = build(star(6))
        sim.run(until=90 * SECOND)
        space = protocols[0].allocation.children.space_bits
        # 6 children + reserve(≥3) + reserved position 0 ⇒ ≥ 4 bits.
        assert space >= 4
        assert space <= 6


class TestNeighborCodeLearning:
    def test_neighbors_learn_codes_from_beacons(self):
        sim, _, _, protocols, _ = build(line(3))
        sim.run(until=120 * SECOND)
        # Node 1 should know node 2's code (and vice versa) via beacons.
        table = protocols[1].allocation.neighbor_codes
        assert table.code_of(2) == protocols[2].allocation.code

    def test_controller_snapshot_collects_codes(self):
        sim, _, _, protocols, controller = build(line(3))
        sim.run(until=90 * SECOND)
        count = controller.snapshot(protocols)
        assert count == 3
        assert controller.code_of(2) == protocols[2].allocation.code


class TestCodeReporting:
    def test_codes_piggyback_on_data_traffic(self):
        sim, _, stacks, protocols, controller = build(line(3))
        sim.run(until=90 * SECOND)
        # Any data packet the node originates carries its code to the sink.
        stacks[2].forwarding.send(1, {"reading": 42})
        sim.run(until=sim.now + 30 * SECOND)
        # No snapshot: the registry must have been fed by the piggyback.
        assert controller.code_of(2) == protocols[2].allocation.code

    def test_explicit_report_api_still_works(self):
        sim, _, _, protocols, controller = build(line(3))
        sim.run(until=90 * SECOND)
        assert protocols[1].report_code_to_controller()
        sim.run(until=sim.now + 30 * SECOND)
        assert controller.code_of(1) == protocols[1].allocation.code


class TestOrphanRepair:
    def test_orphaned_child_code_gets_repaired(self):
        sim, _, stacks, protocols, _ = build(line(4))
        sim.run(until=120 * SECOND)
        victim = protocols[2].allocation
        correct = victim.code
        # Corrupt node 2's code directly (simulates a missed cascade). Repair
        # rides on routing beacons, whose Trickle interval can reach ~4 min
        # at steady state — give it time.
        victim._set_code(PathCode.from_bits("111111"))
        sim.run(until=sim.now + 600 * SECOND)
        # Parent-side verification against beacon piggybacks must restore a
        # consistent code (prefix-derivable from the parent).
        parent = stacks[2].routing.parent
        parent_code = protocols[parent].allocation.code
        assert victim.code is not None
        assert parent_code.is_prefix_of(victim.code)
        del correct

    def test_old_code_retained_after_change(self):
        sim, _, _, protocols, _ = build(line(3))
        sim.run(until=90 * SECOND)
        allocation = protocols[2].allocation
        before = allocation.code
        allocation._set_code(PathCode.from_bits("10101"))
        assert allocation.valid_old_code() == before
        assert before in allocation.current_codes()


class TestParams:
    def test_custom_stability_rounds(self):
        params = AllocationParams(stability_rounds=2)
        sim = Simulator(seed=1)
        positions = line(3)
        gains = LogDistancePathLoss(pl_d0=40.0, seed=1, shadowing_sigma=0.0).gain_matrix(
            positions
        )
        channel = Channel(sim, gains, noise_model=ConstantNoise())
        protocols = {}
        for i in range(3):
            stack = NodeStack(sim, channel, i, is_root=(i == 0), always_on=True)
            protocols[i] = TeleAdjusting(sim, stack, allocation_params=params)
            stack.start()
            protocols[i].start()
        sim.run(until=60 * SECOND)
        assert all(p.allocation.code is not None for p in protocols.values())
