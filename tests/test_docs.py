"""The documentation's interactive examples must actually work."""

import doctest
from pathlib import Path

import pytest

DOCS = Path(__file__).resolve().parent.parent / "docs"


def test_protocol_walkthrough_doctests():
    results = doctest.testfile(
        str(DOCS / "protocol.md"),
        module_relative=False,
        optionflags=doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE,
    )
    assert results.attempted >= 5, "walkthrough lost its examples"
    assert results.failed == 0


def test_readme_quickstart_snippet_is_valid():
    """The README's quickstart must keep working verbatim."""
    import repro

    net = repro.build_network(topology="indoor-testbed", protocol="tele", seed=1)
    net.converge()
    record = net.send_control(7, payload={"ipi_s": 600})
    net.run(30)
    assert record.destination == 7
    # `delivered`, `latency_s`, `athx` are the advertised fields.
    _ = (record.delivered, record.latency_s, record.athx)
