#!/usr/bin/env python
"""End-to-end farm smoke: server, worker, resubmit-from-cache, shutdown.

The CI ``farm-smoke`` job runs this; it is equally runnable locally::

    PYTHONPATH=src python scripts/farm_smoke.py

Sequence (any failure exits non-zero):

1. start ``python -m repro serve`` on a kernel-assigned port with a queue
   directory and a shared result cache;
2. attach one external ``python -m repro farm worker --follow`` process;
3. submit a tiny selftest grid, poll it to completion, fetch results;
4. resubmit the identical spec and require ``cached == cells`` with zero
   re-executions — the results-as-a-service acceptance;
5. SIGTERM both processes and require clean exit (server exit code 0).
"""

import json
import os
import pathlib
import re
import signal
import subprocess
import sys
import tempfile
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.farm import client  # noqa: E402


def main() -> int:
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="repro-farm-smoke-"))
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    queue_root = workdir / "queues"
    cache_dir = workdir / "cache"

    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", "--port", "0",
            "--cache-dir", str(cache_dir),
            "--queue-dir", str(queue_root),
            "--no-self-drain",
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    worker = None
    try:
        line = server.stdout.readline()
        match = re.search(r"http://\S+", line)
        assert match, f"no server address in {line!r}"
        url = match.group(0)
        print(f"server up at {url}")
        assert client.health(url)["ok"] is True

        payload = {"grid": "selftest", "cells": 6, "payload": 42}
        job = client.submit(url, payload)
        print(f"submitted job {job['id']} ({job['cells']} cells)")

        # The server was started --no-self-drain: nothing completes until a
        # worker attaches, which is exactly what this step proves. The
        # queue directory is per grid fingerprint, so the worker watches
        # the job's subdirectory.
        deadline = time.monotonic() + 30
        queue_dir = None
        while time.monotonic() < deadline and queue_dir is None:
            candidates = list(queue_root.glob("*/tasks"))
            queue_dir = candidates[0].parent if candidates else None
            time.sleep(0.1)
        assert queue_dir is not None, "server never materialised a queue"
        worker = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "farm", "worker",
                "--queue-dir", str(queue_dir),
                "--cache-dir", str(cache_dir),
                "--follow", "--quiet",
            ],
            env=env,
        )
        print(f"worker attached to {queue_dir}")

        status = client.wait(url, job["id"], timeout=120)
        assert status["state"] == "done", status
        counters = status["counters"]
        assert counters["executed"] == 6, counters
        results = client.results(url, job["id"])["results"]
        assert len(results) == 6 and all(r is not None for r in results)
        print(f"job done: {counters['executed']} executed, results fetched")

        events = list(client.events(url, job["id"], timeout=30))
        assert events and events[-1]["message"] == "done"
        print(f"SSE stream replayed {len(events)} events and terminated")

        job2 = client.submit(url, payload)
        status2 = client.wait(url, job2["id"], timeout=120)
        counters2 = status2["counters"]
        assert counters2["cached"] == 6 and counters2["executed"] == 0, counters2
        results2 = client.results(url, job2["id"])["results"]
        assert results2 == results, "resubmitted results differ"
        print("resubmission served 100% from cache (0 re-executions)")

        worker.send_signal(signal.SIGTERM)
        assert worker.wait(timeout=20) == 0, "worker did not exit cleanly"
        worker = None
        server.send_signal(signal.SIGTERM)
        code = server.wait(timeout=20)
        assert code == 0, f"server exited {code}"
        print("clean SIGTERM shutdown (server exit 0)")
        print(json.dumps({"farm_smoke": "ok", "cells": 6, "cache_hits": 6}))
        return 0
    finally:
        for proc in (worker, server):
            if proc is not None and proc.poll() is None:
                proc.kill()


if __name__ == "__main__":
    raise SystemExit(main())
