#!/usr/bin/env python
"""End-to-end farm smoke: server, worker, resubmit-from-cache, shutdown.

The CI ``farm-smoke`` job runs this; it is equally runnable locally::

    PYTHONPATH=src python scripts/farm_smoke.py

Sequence (any failure exits non-zero):

1. start ``python -m repro serve`` on a kernel-assigned port with a queue
   directory and a shared result cache;
2. attach one external ``python -m repro farm worker --follow`` process;
3. submit a tiny selftest grid, poll it to completion, fetch results;
4. resubmit the identical spec and require ``cached == cells`` with zero
   re-executions — the results-as-a-service acceptance;
5. SIGTERM both processes and require clean exit (server exit code 0).

``--havoc SEED`` runs the same sequence under a seeded havoc schedule
(:func:`repro.havoc.generate_plan`): the server streams SSE through an
injected drop, one worker SIGKILLs itself at a lease boundary, the other
rides out an ENOSPC window — and the grid must still complete with the
same results, exercising the hardening the CI ``havoc-smoke`` job pins.
"""

import argparse
import json
import os
import pathlib
import re
import signal
import subprocess
import sys
import tempfile
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.farm import client  # noqa: E402
from repro.havoc import ENV_VAR, HavocEvent, HavocPlan, generate_plan  # noqa: E402


def _base_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(ENV_VAR, None)
    return env


def _spawn_server(cache_dir, queue_root, plan=None):
    env = _base_env()
    if plan is not None:
        env[ENV_VAR] = plan.to_json()
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", "--port", "0",
            "--cache-dir", str(cache_dir),
            "--queue-dir", str(queue_root),
            "--no-self-drain",
            "--lease-ttl", "2.0",
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    line = server.stdout.readline()
    match = re.search(r"http://\S+", line)
    assert match, f"no server address in {line!r}"
    return server, match.group(0)


def _spawn_worker(queue_dir, cache_dir, plan=None):
    env = _base_env()
    if plan is not None:
        env[ENV_VAR] = plan.to_json()
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "farm", "worker",
            "--queue-dir", str(queue_dir),
            "--cache-dir", str(cache_dir),
            "--lease-ttl", "2.0",
            "--follow", "--quiet",
        ],
        env=env,
    )


def _await_queue_dir(queue_root, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        candidates = list(queue_root.glob("*/tasks"))
        if candidates:
            return candidates[0].parent
        time.sleep(0.1)
    raise AssertionError("server never materialised a queue")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--havoc", type=int, default=None, metavar="SEED",
        help="run the smoke under a seeded havoc schedule",
    )
    args = parser.parse_args()

    workdir = pathlib.Path(tempfile.mkdtemp(prefix="repro-farm-smoke-"))
    queue_root = workdir / "queues"
    cache_dir = workdir / "cache"

    server_plan = worker_plans = None
    if args.havoc is not None:
        # One seeded schedule, split across the processes that enact it:
        # the server gets the SSE drop, worker 0 the SIGKILL, worker 1 the
        # ENOSPC window. generate_plan is pure in its seed, so re-running
        # with the same --havoc value replays the identical injections.
        plan = generate_plan(args.havoc, name=f"smoke-{args.havoc}")
        by_kind = {e.kind: e for e in plan.events}
        server_plan = HavocPlan(
            events=(by_kind["sse_drop"],), seed=plan.seed, name=plan.name
        )
        worker_plans = [
            HavocPlan(
                events=(HavocEvent(kind="kill", op="claimed", start=0),),
                seed=plan.seed, name=plan.name,
            ),
            HavocPlan(
                events=(by_kind["enospc"],), seed=plan.seed, name=plan.name
            ),
        ]
        print(f"havoc schedule (seed {args.havoc}): {plan.to_json()}")

    server, url = _spawn_server(cache_dir, queue_root, server_plan)
    workers = []
    try:
        print(f"server up at {url}")
        assert client.health(url)["ok"] is True

        payload = {"grid": "selftest", "cells": 6, "sleep_s": 0.3, "payload": 42}
        job = client.submit(url, payload)
        print(f"submitted job {job['id']} ({job['cells']} cells)")

        # The server was started --no-self-drain: nothing completes until a
        # worker attaches, which is exactly what this step proves. The
        # queue directory is per grid fingerprint, so workers watch the
        # job's subdirectory.
        queue_dir = _await_queue_dir(queue_root)
        if worker_plans is None:
            workers.append(_spawn_worker(queue_dir, cache_dir))
        else:
            for worker_plan in worker_plans:
                workers.append(_spawn_worker(queue_dir, cache_dir, worker_plan))
        print(f"{len(workers)} worker(s) attached to {queue_dir}")

        if args.havoc is not None:
            # Prove the SSE reconnect: watch through the injected drop.
            reconnects = []
            for _ in client.watch(
                url, job["id"], timeout=180,
                on_reconnect=lambda n, c: reconnects.append(c),
            ):
                pass
            print(f"SSE stream survived {len(reconnects)} drop(s)")

        status = client.wait(url, job["id"], timeout=180)
        assert status["state"] == "done", status
        counters = status["counters"]
        assert counters["executed"] == 6, counters
        results = client.results(url, job["id"])["results"]
        assert len(results) == 6 and all(r is not None for r in results)
        print(f"job done: {counters['executed']} executed, results fetched")

        if args.havoc is not None:
            # The victim worker must actually have been SIGKILLed.
            assert workers[0].wait(timeout=60) == -signal.SIGKILL, (
                "victim worker did not die by SIGKILL"
            )
            print("victim worker died by SIGKILL; its cells were stolen")

        events = list(client.events(url, job["id"], timeout=30))
        assert events and events[-1]["message"] == "done"
        print(f"SSE stream replayed {len(events)} events and terminated")

        job2 = client.submit(url, payload)
        status2 = client.wait(url, job2["id"], timeout=180)
        counters2 = status2["counters"]
        assert counters2["cached"] == 6 and counters2["executed"] == 0, counters2
        results2 = client.results(url, job2["id"])["results"]
        assert results2 == results, "resubmitted results differ"
        print("resubmission served 100% from cache (0 re-executions)")

        for worker in workers:
            if worker.poll() is None:
                worker.send_signal(signal.SIGTERM)
                assert worker.wait(timeout=20) == 0, "worker did not exit cleanly"
        workers = []
        server.send_signal(signal.SIGTERM)
        code = server.wait(timeout=20)
        assert code == 0, f"server exited {code}"
        print("clean SIGTERM shutdown (server exit 0)")
        print(json.dumps({
            "farm_smoke": "ok",
            "cells": 6,
            "cache_hits": 6,
            "havoc_seed": args.havoc,
        }))
        return 0
    finally:
        for proc in (*workers, server):
            if proc is not None and proc.poll() is None:
                proc.kill()


if __name__ == "__main__":
    raise SystemExit(main())
