"""TeleAdjusting adapter: the paper's protocol behind the registry seam."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.core import TeleAdjusting
from repro.core.allocation import AllocationEngine
from repro.core.forwarding import ForwardingParams, TeleForwarding
from repro.core.pathcode import PathCode
from repro.protocols.base import ControlProtocolAdapter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.messages import ControlPacket
    from repro.experiments.harness import Network
    from repro.metrics.control import ControlRecord
    from repro.net.node import NodeStack


class TeleProtocolAdapter(ControlProtocolAdapter):
    """Per-node TeleAdjusting instance plus the harness's oracle hooks."""

    name = "tele"
    coverage_metric = "coded_fraction"

    def __init__(
        self,
        network: "Network",
        node_id: int,
        stack: "NodeStack",
        forwarding_params: Optional[ForwardingParams] = None,
    ) -> None:
        super().__init__(network, node_id, stack)
        self.engine = TeleAdjusting(
            network.sim,
            stack,
            controller=network.controller,
            allocation_params=network.config.allocation_params,
            forwarding_params=forwarding_params,
        )
        self.engine.forwarding.on_delivered = self._delivered
        #: Every adapter in this network, shared by :meth:`build` so the
        #: sink can reach peers with full typing.
        self._peers: Dict[int, "TeleProtocolAdapter"] = {self.node_id: self}

    @classmethod
    def build(cls, network: "Network") -> Dict[int, ControlProtocolAdapter]:
        config = network.config
        # One ForwardingParams shared by every node, as the harness always
        # built it (explicit params win over the re_tele/opportunistic flags).
        forwarding_params = config.forwarding_params or ForwardingParams(
            re_tele=config.re_tele,
            opportunistic=config.opportunistic,
        )
        adapters = {
            node_id: cls(network, node_id, stack, forwarding_params)
            for node_id, stack in network.stacks.items()
        }
        for adapter in adapters.values():
            adapter._peers = adapters
        return dict(adapters)

    # -------------------------------------------------- engine passthroughs
    @property
    def allocation(self) -> AllocationEngine:
        """The node's path-code allocation engine."""
        return self.engine.allocation

    @property
    def forwarding(self) -> TeleForwarding:
        """The node's opportunistic forwarding engine."""
        return self.engine.forwarding

    @property
    def path_code(self) -> Optional[PathCode]:
        """This node's current path code, or None."""
        return self.engine.path_code

    def _engines(self) -> Dict[int, TeleAdjusting]:
        return {node_id: peer.engine for node_id, peer in self._peers.items()}

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        self.engine.start()

    def reset_state(self) -> None:
        self.engine.reset_state()

    # ----------------------------------------------------------- convergence
    def coverage_fraction(self) -> float:
        """Fraction of nodes holding a TeleAdjusting path code."""
        coded = sum(
            1 for peer in self._peers.values() if peer.engine.allocation.code is not None
        )
        return coded / len(self._peers)

    def on_converged(self) -> None:
        self.network.controller.snapshot(self._engines())

    # -------------------------------------------------------------- controls
    def send_control(
        self, record: "ControlRecord", destination: int, payload: object
    ) -> None:
        network = self.network
        # Refresh the controller's code registry (nodes keep reporting in
        # the real system; the snapshot stands in for that).
        network.controller.snapshot(self._engines())
        registered = network.controller.code_of(destination)
        if registered is None:
            return  # unaddressable: an honest delivery failure
        # Oracle-only metric (the protocol never sees this comparison):
        # count sends addressed with a code the destination no longer
        # holds — e.g. it crashed and its registry entry went stale.
        live = self._peers[destination].engine.allocation.code
        if live != registered:
            network.stale_code_sends += 1
        pending = self.engine.remote_control(
            destination, payload=payload, done=lambda p: self.control_done(record, p)
        )
        self.register_record(pending.control.serial, record)

    def _delivered(self, control: "ControlPacket", via_unicast: bool) -> None:
        record = self.resolve_record(control.serial)
        if record is not None and record.delivered_at is None:
            record.delivered_at = self.network.sim.now
            record.athx = control.athx
            record.via_unicast = via_unicast

    # --------------------------------------------------------------- summary
    def summary(self) -> Dict[str, int]:
        return {
            "backtracks": self.engine.forwarding.backtracks,
            "re_tele_invocations": self.engine.forwarding.re_tele_invocations,
            "code_changes": self.engine.allocation.code_changes,
        }
