"""ORPL adapter: bloom-filter opportunistic downward routing behind the seam."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.baselines.orpl import OrplControl, OrplDownward
from repro.protocols.base import ControlProtocolAdapter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.harness import Network
    from repro.metrics.control import ControlRecord
    from repro.net.node import NodeStack


class OrplProtocolAdapter(ControlProtocolAdapter):
    """Per-node ORPL instance; coverage is the sink's bloom-filter claims."""

    name = "orpl"
    coverage_metric = "orpl_coverage_fraction"

    def __init__(self, network: "Network", node_id: int, stack: "NodeStack") -> None:
        super().__init__(network, node_id, stack)
        self.engine = OrplDownward(
            network.sim, stack, params=network.config.orpl_params
        )
        self.engine.on_delivered = self._delivered

    def claims(self, destination: int) -> bool:
        """Does this node's sub-tree summary claim the destination?"""
        return self.engine.claims(destination)

    def start(self) -> None:
        self.engine.start()

    def coverage_fraction(self) -> float:
        """Fraction of nodes the sink's bloom claims."""
        network = self.network
        covered = sum(1 for n in network.non_sink_nodes() if self.engine.claims(n))
        return covered / max(len(network.stacks) - 1, 1)

    def send_control(
        self, record: "ControlRecord", destination: int, payload: object
    ) -> None:
        pending = self.engine.send_control(
            destination, payload=payload, done=lambda p: self.control_done(record, p)
        )
        self.register_record(pending.control.serial, record)

    def _delivered(self, control: OrplControl) -> None:
        record = self.resolve_record(control.serial)
        if record is not None and record.delivered_at is None:
            record.delivered_at = self.network.sim.now
            record.athx = control.athx
