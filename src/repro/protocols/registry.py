"""The protocol registry: name → adapter class, variant → config overrides.

One process-wide :class:`ProtocolRegistry` (``repro.protocols.REGISTRY``)
maps every ``NetworkConfig.protocol`` name to its
:class:`~repro.protocols.base.ControlProtocolAdapter` class, plus every
*comparison variant* ("re-tele" is protocol "tele" with ``re_tele=True``)
to the config overrides that realise it. The harness, the experiment
drivers, the runner's spec builders, and the CLI all dispatch through it —
registering a new adapter (``repro.protocols.register_protocol``) makes the
protocol runnable everywhere at once.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Tuple, Type

from repro.protocols.base import ControlProtocolAdapter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.harness import Network, NetworkConfig


class ProtocolRegistry:
    """Registered control protocols and their comparison variants."""

    def __init__(self) -> None:
        self._adapters: Dict[str, Optional[Type[ControlProtocolAdapter]]] = {}
        #: variant name -> (protocol name, NetworkConfig field overrides)
        self._variants: Dict[str, Tuple[str, Dict[str, Any]]] = {}

    # ------------------------------------------------------------- mutation
    def register(
        self,
        name: str,
        adapter: Optional[Type[ControlProtocolAdapter]],
        variants: Optional[Mapping[str, Mapping[str, Any]]] = None,
        replace: bool = False,
    ) -> None:
        """Register a protocol under ``name``.

        ``adapter`` is the per-node adapter class (None for a protocol that
        builds no per-node instances, like ``"none"``). ``variants`` maps
        comparison-variant names to ``NetworkConfig`` field overrides; the
        default is one variant named after the protocol with no overrides.
        Duplicate names are rejected unless ``replace=True``.
        """
        if not name or not isinstance(name, str):
            raise ValueError(f"protocol name must be a non-empty string, got {name!r}")
        if name in self._adapters and not replace:
            raise ValueError(
                f"protocol {name!r} is already registered; "
                f"pass replace=True to override"
            )
        if variants is None:
            variants = {name: {}} if adapter is not None else {}
        for variant in variants:
            owner = self._variants.get(variant)
            if owner is not None and owner[0] != name and not replace:
                raise ValueError(
                    f"variant {variant!r} is already registered by "
                    f"protocol {owner[0]!r}"
                )
        if replace and name in self._adapters:
            # Drop the previous registration's variants before re-adding.
            self._variants = {
                v: spec for v, spec in self._variants.items() if spec[0] != name
            }
        self._adapters[name] = adapter
        for variant, overrides in variants.items():
            self._variants[variant] = (name, dict(overrides))

    def unregister(self, name: str) -> None:
        """Remove a protocol and its variants (no-op when absent)."""
        self._adapters.pop(name, None)
        self._variants = {
            v: spec for v, spec in self._variants.items() if spec[0] != name
        }

    # -------------------------------------------------------------- queries
    def get(self, name: str) -> Optional[Type[ControlProtocolAdapter]]:
        """The adapter class registered under ``name``.

        Raises ``ValueError`` listing the registered names for unknown
        protocols (mirrors the harness's unknown-topology error).
        """
        try:
            return self._adapters[name]
        except KeyError:
            raise ValueError(
                f"unknown protocol {name!r}; "
                f"choose from {sorted(self._adapters)} "
                f"or register one with repro.protocols.register_protocol"
            ) from None

    def names(self) -> List[str]:
        """Registered protocol names, in registration order."""
        return list(self._adapters)

    def variant_names(self) -> List[str]:
        """Registered comparison-variant names, in registration order."""
        return list(self._variants)

    def resolve_variant(self, variant: str) -> Tuple[str, Dict[str, Any]]:
        """``(protocol name, NetworkConfig overrides)`` for a variant name."""
        try:
            protocol, overrides = self._variants[variant]
        except KeyError:
            raise ValueError(
                f"unknown variant {variant!r}; "
                f"choose from {tuple(self._variants)}"
            ) from None
        return protocol, dict(overrides)

    # ------------------------------------------------------------ harness use
    def validate_config(self, config: "NetworkConfig") -> None:
        """Reject unknown protocol names / bad per-protocol params early."""
        adapter = self.get(config.protocol)
        if adapter is not None:
            adapter.validate_config(config)

    def build_instances(
        self, network: "Network"
    ) -> Dict[int, ControlProtocolAdapter]:
        """Per-node adapters for ``network.config.protocol`` (may be empty)."""
        adapter = self.get(network.config.protocol)
        if adapter is None:
            return {}
        return adapter.build(network)
