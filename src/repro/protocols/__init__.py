"""Protocol plugin architecture: typed adapters + the process-wide registry.

The harness (:class:`repro.experiments.harness.Network`) is a protocol-
agnostic shell: everything protocol-specific — building per-node instances,
convergence coverage, issuing controls, delivery/ack record hooks, fault
reboot, recovery counters — lives behind a
:class:`~repro.protocols.base.ControlProtocolAdapter` looked up in
:data:`REGISTRY`. The paper's four protocols (TeleAdjusting, Drip, RPL,
ORPL) register here; third parties add their own with
:func:`register_protocol` and immediately work through ``Network``, the
experiment drivers, the runner grid (``jobs=1``), and the CLI::

    from repro.protocols import ControlProtocolAdapter, register_protocol

    class FloodAdapter(ControlProtocolAdapter):
        name = "flood"
        ...

    register_protocol("flood", FloodAdapter)
    net = repro.build_network(protocol="flood")

See ``docs/api.md`` → "Writing a protocol plugin" for the contract.
"""

from __future__ import annotations

from typing import Any, List, Mapping, Optional, Tuple, Type

from repro.protocols.base import ControlProtocolAdapter, PendingLike
from repro.protocols.drip import DripProtocolAdapter
from repro.protocols.orpl import OrplProtocolAdapter
from repro.protocols.registry import ProtocolRegistry
from repro.protocols.rpl import RplProtocolAdapter
from repro.protocols.tele import TeleProtocolAdapter

#: The process-wide registry every harness-level lookup goes through.
REGISTRY = ProtocolRegistry()

# The paper's protocols. Registration order fixes the canonical variant
# order: ("tele", "re-tele", "drip", "rpl", "orpl").
REGISTRY.register(
    "tele",
    TeleProtocolAdapter,
    variants={"tele": {}, "re-tele": {"re_tele": True}},
)
REGISTRY.register("drip", DripProtocolAdapter)
REGISTRY.register("rpl", RplProtocolAdapter)
REGISTRY.register("orpl", OrplProtocolAdapter)
# Bare CTP: a valid protocol name that builds no per-node instances.
REGISTRY.register("none", None, variants={})


def register_protocol(
    name: str,
    adapter: Optional[Type[ControlProtocolAdapter]],
    variants: Optional[Mapping[str, Mapping[str, Any]]] = None,
    replace: bool = False,
) -> None:
    """Public extension point: register a protocol adapter by name.

    After registration, ``NetworkConfig(protocol=name)`` builds and runs the
    adapter with no harness edits, and each entry of ``variants`` (default:
    one variant named after the protocol) becomes a valid comparison
    variant for :func:`repro.experiments.comparison.run_comparison`, the
    runner's spec builders, and the CLI's ``--variants`` choices.
    """
    REGISTRY.register(name, adapter, variants=variants, replace=replace)


def unregister_protocol(name: str) -> None:
    """Remove a registered protocol (mainly for tests and plugin reloads)."""
    REGISTRY.unregister(name)


def protocol_names() -> List[str]:
    """Registered protocol names, in registration order."""
    return REGISTRY.names()


def variant_names() -> List[str]:
    """Registered comparison-variant names, in registration order."""
    return REGISTRY.variant_names()


def resolve_variant(variant: str) -> Tuple[str, dict]:
    """``(protocol, NetworkConfig overrides)`` for a comparison variant."""
    return REGISTRY.resolve_variant(variant)


__all__ = [
    "REGISTRY",
    "ControlProtocolAdapter",
    "DripProtocolAdapter",
    "OrplProtocolAdapter",
    "PendingLike",
    "ProtocolRegistry",
    "RplProtocolAdapter",
    "TeleProtocolAdapter",
    "protocol_names",
    "register_protocol",
    "resolve_variant",
    "unregister_protocol",
    "variant_names",
]
