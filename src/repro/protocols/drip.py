"""Drip adapter: network-wide dissemination behind the registry seam."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.baselines.drip import Drip, DripValue
from repro.protocols.base import ControlProtocolAdapter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.harness import Network
    from repro.metrics.control import ControlRecord
    from repro.net.node import NodeStack


class DripProtocolAdapter(ControlProtocolAdapter):
    """Per-node Drip instance; convergence is plain CTP route acquisition."""

    name = "drip"

    def __init__(self, network: "Network", node_id: int, stack: "NodeStack") -> None:
        super().__init__(network, node_id, stack)
        self.engine = Drip(network.sim, stack, params=network.config.drip_params)
        self.engine.on_delivered = self._delivered

    def start(self) -> None:
        self.engine.start()

    def send_control(
        self, record: "ControlRecord", destination: int, payload: object
    ) -> None:
        pending = self.engine.disseminate(
            payload,
            destination=destination,
            done=lambda p: self.control_done(record, p),
        )
        self.register_record(pending.value.version, record)

    def _delivered(self, value: DripValue) -> None:
        record = self.resolve_record(value.version)
        if record is not None and record.delivered_at is None:
            record.delivered_at = self.network.sim.now
