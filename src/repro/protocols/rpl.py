"""RPL adapter: storing-mode downward routing behind the registry seam."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.baselines.rpl import RplControl, RplDownward, _RouteEntry
from repro.protocols.base import ControlProtocolAdapter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.harness import Network
    from repro.metrics.control import ControlRecord
    from repro.net.node import NodeStack


class RplProtocolAdapter(ControlProtocolAdapter):
    """Per-node RPL instance; coverage is the sink's stored route table."""

    name = "rpl"
    coverage_metric = "rpl_routed_fraction"
    #: DAOs deserve one extra beat even after coverage looks complete.
    post_converge_settle_s = 20.0

    def __init__(self, network: "Network", node_id: int, stack: "NodeStack") -> None:
        super().__init__(network, node_id, stack)
        self.engine = RplDownward(network.sim, stack, params=network.config.rpl_params)
        self.engine.on_delivered = self._delivered

    @property
    def routes(self) -> Dict[int, _RouteEntry]:
        """The node's stored ``destination → next hop`` table."""
        return self.engine.routes

    def start(self) -> None:
        self.engine.start()

    def coverage_fraction(self) -> float:
        """Fraction of destinations in the sink's RPL table."""
        return len(self.engine.routes) / max(len(self.network.stacks) - 1, 1)

    def send_control(
        self, record: "ControlRecord", destination: int, payload: object
    ) -> None:
        if destination not in self.engine.routes:
            return  # no stored route: RPL drops at the sink
        pending = self.engine.send_control(
            destination, payload=payload, done=lambda p: self.control_done(record, p)
        )
        self.register_record(pending.control.serial, record)

    def _delivered(self, control: RplControl) -> None:
        record = self.resolve_record(control.serial)
        if record is not None and record.delivered_at is None:
            record.delivered_at = self.network.sim.now
            record.athx = control.hops
