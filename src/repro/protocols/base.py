"""The adapter contract between the harness and a control protocol.

A :class:`ControlProtocolAdapter` is the *only* seam through which
:class:`~repro.experiments.harness.Network` touches a control protocol.
One adapter instance runs per node (``Network.protocols`` maps node id →
adapter); the sink's adapter additionally answers the network-level
questions (convergence coverage, issuing controls). The harness never
branches on a protocol name — every per-protocol behaviour lives behind
this interface, so a new protocol registers with the
:class:`~repro.protocols.registry.ProtocolRegistry` and plugs in without
harness edits (see ``docs/api.md`` → "Writing a protocol plugin").

What the harness guarantees to an adapter:

- ``build(network)`` is called once, after the deployment, channel, node
  stacks, and controller exist, in node-id order, and before ``start``.
- ``start()`` is called once per adapter when the network starts.
- ``send_control(record, destination, payload)`` is called on the *sink's*
  adapter only; the adapter fills the record's delivery fields as the
  simulation advances (via :meth:`resolve_record` lookups keyed by a
  protocol-chosen pending key).
- ``reset_state()`` is called on a node's adapter when fault injection
  reboots that node.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, ClassVar, Dict, Hashable, Optional, Protocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.harness import Network, NetworkConfig
    from repro.metrics.control import ControlRecord
    from repro.net.node import NodeStack


class PendingLike(Protocol):
    """What every protocol's sink-side pending object must expose."""

    acked_at: Optional[int]


class ControlProtocolAdapter(ABC):
    """Per-node binding of one control protocol into one network.

    Subclasses wire their protocol engine to the node's stack in
    ``__init__``, and implement the sink-side hooks. The base class
    provides the pending-key → :class:`ControlRecord` bookkeeping and the
    shared end-to-end-ack completion hook.
    """

    #: Registry name of the protocol family (``NetworkConfig.protocol``).
    name: ClassVar[str] = ""
    #: Which named coverage metric this protocol's convergence answers
    #: (``"coded_fraction"``, ``"rpl_routed_fraction"``, …); "" for plain
    #: route acquisition.
    coverage_metric: ClassVar[str] = ""
    #: Extra settling time (simulated seconds) the comparison/chaos drivers
    #: grant after convergence looks complete (RPL's DAO beat).
    post_converge_settle_s: ClassVar[float] = 0.0

    def __init__(self, network: "Network", node_id: int, stack: "NodeStack") -> None:
        self.network = network
        self.node_id = node_id
        self.stack = stack

    # ------------------------------------------------------------- building
    @classmethod
    def build(cls, network: "Network") -> Dict[int, "ControlProtocolAdapter"]:
        """One adapter per node, in node-id order.

        Override to share per-network state (parameter objects, peer maps)
        across the per-node instances.
        """
        return {
            node_id: cls(network, node_id, stack)
            for node_id, stack in network.stacks.items()
        }

    @classmethod
    def validate_config(cls, config: "NetworkConfig") -> None:
        """Config-time hook: raise ``ValueError`` on bad per-protocol params.

        Runs when a :class:`NetworkConfig` naming this protocol is built —
        before any channel or stack exists, and before a runner fingerprint
        is computed. The default accepts everything.
        """

    # ------------------------------------------------------------ lifecycle
    @abstractmethod
    def start(self) -> None:
        """Start this node's protocol instance (idempotent)."""

    def reset_state(self) -> None:
        """Fault-injection hook: wipe volatile state, as a reboot would."""

    # ----------------------------------------------------------- convergence
    def coverage_fraction(self) -> float:
        """Fraction of nodes the protocol's addressing state covers.

        Asked of the sink's adapter by :meth:`Network.converge`. The default
        is CTP route acquisition.
        """
        return self.network.routed_fraction()

    def on_converged(self) -> None:
        """Called on the sink's adapter after the convergence loop ends."""

    def settle_seconds(self) -> float:
        """Post-convergence settling time the experiment drivers honour."""
        return float(self.post_converge_settle_s)

    # -------------------------------------------------------------- controls
    @abstractmethod
    def send_control(
        self, record: "ControlRecord", destination: int, payload: object
    ) -> None:
        """Issue one control from the sink; fill ``record`` as it progresses.

        Called on the sink's adapter only. Implementations register the
        pending key with :meth:`register_record` and later resolve delivery
        callbacks through :meth:`resolve_record`. Returning without
        registering is an honest delivery failure (the record stays
        undelivered).
        """

    def register_record(self, key: Hashable, record: "ControlRecord") -> None:
        """Bind a protocol-chosen pending key to a live control record."""
        self.network._records_by_key[(self.name, key)] = record

    def resolve_record(self, key: Hashable) -> Optional["ControlRecord"]:
        """The record registered under ``key``, or None."""
        return self.network._records_by_key.get((self.name, key))

    def control_done(self, record: "ControlRecord", pending: PendingLike) -> None:
        """Shared done hook: propagate the end-to-end ack time."""
        if pending.acked_at is not None:
            record.acked_at = pending.acked_at

    # --------------------------------------------------------------- summary
    def summary(self) -> Dict[str, int]:
        """Protocol-specific per-node counters for recovery/chaos reports."""
        return {}
