"""ASCII rendering of deployments and converged trees.

Terminal-friendly maps for examples and debugging: where the nodes sit,
which one is the sink, and how deep each node's route is. No plotting
dependencies — the output pastes into issues and logs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.topology.deployments import Deployment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.harness import Network

#: Glyph for hop counts 0-15; deeper and unknown get distinct markers.
_HOP_GLYPHS = "S123456789abcdef"


def render_deployment(
    deployment: Deployment,
    width: int = 60,
    height: int = 22,
    hop_counts: Optional[Dict[int, int]] = None,
    label: Optional[Callable[[int], str]] = None,
) -> str:
    """Map the field onto a ``width`` × ``height`` character grid.

    Each node renders as one character: ``S`` for the sink, its hop count
    (hex digit) when ``hop_counts`` is given, else ``o``. ``label`` overrides
    per-node glyphs entirely (first character of its return value is used).
    Collisions (several nodes in one cell) show the *shallowest* node.
    """
    if width < 4 or height < 4:
        raise ValueError("grid too small to render anything useful")
    xs = [p[0] for p in deployment.positions]
    ys = [p[1] for p in deployment.positions]
    min_x, max_x = min(xs), max(xs)
    min_y, max_y = min(ys), max(ys)
    span_x = max(max_x - min_x, 1e-9)
    span_y = max(max_y - min_y, 1e-9)
    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    depth: List[List[int]] = [[1 << 30] * width for _ in range(height)]

    def glyph_for(node: int) -> str:
        """Glyph for one node under the current options."""
        if label is not None:
            text = label(node)
            return text[0] if text else "o"
        if node == deployment.sink:
            return "S"
        if hop_counts is not None:
            hop = hop_counts.get(node)
            if hop is None or hop >= 0xFFFF:
                return "?"
            if hop < len(_HOP_GLYPHS):
                return _HOP_GLYPHS[hop]
            return "+"
        return "o"

    for node, (x, y) in enumerate(deployment.positions):
        col = round((x - min_x) / span_x * (width - 1))
        row = round((y - min_y) / span_y * (height - 1))
        node_depth = (
            hop_counts.get(node, 1 << 29) if hop_counts is not None else node
        )
        if node == deployment.sink:
            node_depth = -1  # the sink always wins its cell
        if node_depth < depth[row][col]:
            depth[row][col] = node_depth
            grid[row][col] = glyph_for(node)

    border = "+" + "-" * width + "+"
    body = "\n".join("|" + "".join(row) + "|" for row in grid)
    legend = (
        f"{deployment.name}: {deployment.size} nodes over "
        f"{span_x:.0f} m x {span_y:.0f} m; S = sink"
    )
    if hop_counts is not None:
        legend += ", digits = hop count, ? = unrouted"
    return "\n".join([legend, border, body, border])


def render_network(network: "Network", **kwargs: object) -> str:
    """Render a harness :class:`~repro.experiments.harness.Network` with its
    current CTP hop counts."""
    hop_counts = {
        node_id: stack.routing.hop_count
        for node_id, stack in network.stacks.items()
    }
    return render_deployment(network.deployment, hop_counts=hop_counts, **kwargs)
