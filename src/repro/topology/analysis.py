"""Topology analysis helpers (connectivity, expected tree shape).

Built on :mod:`networkx` (one of the allowed dependencies) so deployments
can be sanity-checked *before* spending simulation time: is the network
connected at this power level, how deep will the tree be, where are the
articulation points whose failure partitions the field — the questions the
paper's testbed construction answers empirically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from repro.radio.profiles import RadioProfile, get_radio_profile
from repro.topology.deployments import Deployment


def link_graph(
    deployment: Deployment,
    min_prr: float = 0.5,
    frame_bytes: int = 40,
    profile: Optional[RadioProfile] = None,
) -> "nx.Graph":
    """Undirected graph of links whose clean-channel PRR is ≥ ``min_prr``.

    PRR is computed from the deployment's propagation model, each node's
    transmit power, and the radio profile's sensitivity/noise/PRR curve
    (default: CC2420) — exactly like
    :meth:`repro.radio.channel.Channel.expected_prr` but without building a
    simulator.
    """
    if profile is None:
        profile = get_radio_profile(None)
    graph = nx.Graph()
    graph.add_nodes_from(range(deployment.size))
    if deployment.size > 512:
        # City scale: all-pairs gains are O(N²) memory. Links below the radio
        # sensitivity can never carry a usable PRR, so build only the pairs
        # that could clear it (grid-hash culling with the standard shadowing
        # margin) — the resulting graph is identical.
        from repro.radio.spatial import sparse_gain_matrix

        max_tx = max(
            [deployment.tx_power_dbm, *deployment.tx_power_overrides.values()]
        )
        gains, _ = sparse_gain_matrix(
            deployment.propagation,
            deployment.positions,
            max_tx_power_dbm=max_tx,
            interference_floor_dbm=profile.sensitivity_dbm,
        )
    else:
        gains = deployment.gains()
    for (a, b), gain in gains.items():
        if a >= b:
            continue
        power_ab = deployment.node_tx_power(a) + gain
        power_ba = deployment.node_tx_power(b) + gains[(b, a)]
        rx = min(power_ab, power_ba)
        if rx < profile.sensitivity_dbm:
            continue
        snr = rx - profile.noise_floor_dbm
        prr = profile.prr(snr, frame_bytes)
        if prr >= min_prr:
            graph.add_edge(a, b, prr=prr)
    return graph


def is_connected(
    deployment: Deployment,
    min_prr: float = 0.5,
    profile: Optional[RadioProfile] = None,
) -> bool:
    """True when every node can reach the sink over usable links."""
    graph = link_graph(deployment, min_prr, profile=profile)
    if deployment.size == 0:
        return True
    return nx.is_connected(graph)


def hop_counts(
    deployment: Deployment,
    min_prr: float = 0.5,
    profile: Optional[RadioProfile] = None,
) -> Dict[int, int]:
    """Shortest-path hop count from each node to the sink (graph distance).

    Nodes disconnected at ``min_prr`` are absent from the result. This is
    the lower bound the CTP tree converges toward on clean channels.
    """
    graph = link_graph(deployment, min_prr, profile=profile)
    return dict(nx.single_source_shortest_path_length(graph, deployment.sink))


def expected_max_depth(deployment: Deployment, min_prr: float = 0.5) -> int:
    """The deepest reachable node's hop count (0 when nothing is reachable)."""
    counts = hop_counts(deployment, min_prr)
    return max(counts.values(), default=0)


def articulation_nodes(deployment: Deployment, min_prr: float = 0.5) -> Set[int]:
    """Nodes whose failure disconnects part of the network.

    These are where the paper's backtracking / Re-Tele countermeasures earn
    their keep: a control packet crossing an articulation point has no
    opportunistic alternatives.
    """
    graph = link_graph(deployment, min_prr)
    return set(nx.articulation_points(graph))


def unreachable_nodes(
    deployment: Deployment,
    min_prr: float = 0.5,
    profile: Optional[RadioProfile] = None,
) -> List[int]:
    """Nodes with no usable path to the sink at this PRR threshold."""
    reachable = hop_counts(deployment, min_prr, profile=profile)
    return sorted(set(range(deployment.size)) - set(reachable))


def degree_stats(deployment: Deployment, min_prr: float = 0.5) -> Dict[str, float]:
    """Min/mean/max usable-neighbour counts."""
    graph = link_graph(deployment, min_prr)
    degrees = [d for _, d in graph.degree()]
    if not degrees:
        return {"min": 0.0, "mean": 0.0, "max": 0.0}
    return {
        "min": float(min(degrees)),
        "mean": sum(degrees) / len(degrees),
        "max": float(max(degrees)),
    }
