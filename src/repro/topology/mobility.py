"""Deterministic node mobility, compiled onto the simulator event queue.

Two classic models drive endurance soaks:

- ``waypoint`` — random waypoint inside the deployment's bounding box:
  pick a destination uniformly, walk there at a uniformly drawn speed,
  pause, repeat. The workhorse churn generator.
- ``commuter`` — each mover oscillates between its home (its deployed
  position) and a per-node "work" anchor drawn within
  ``commute_radius_m``, with pauses at both ends. Models the daily
  back-and-forth of body-worn or vehicle-mounted nodes: churn is
  recurrent, so path codes that were correct yesterday become correct
  again tomorrow — the regime where Re-Tele repair cost matters most.

Like fault plans, mobility is *compiled onto the queue*: the driver
schedules discrete position updates every ``step_s`` of walk time, each
one calling :meth:`Channel.move_node` (spatial or dense — PR 9 gave the
dense channel its own move path), so link gains, audible rows, and
memoised rx maps always price the node where it currently stands.

Determinism: every draw comes from the simulator's named ``"mobility"``
RNG stream, which is created lazily — configs without mobility never
touch it, so enabling the layer cannot perturb any pre-existing stream
and zero-mobility runs stay bit-identical to the golden digests.

Arriving at a waypoint optionally kicks the node's CTP re-parenting
(``kick_routing``): the node noticed its link budget changed and asks for
a fresh parent instead of waiting out beacon staleness. Kicks go through
the network's :class:`~repro.faults.injector.ChurnGuard` so a fault plan's
``parent_switch`` and mobility never double-churn one node within the
guard window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.sim.units import SECOND

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.harness import Network

MOBILITY_MODELS = ("waypoint", "commuter")


@dataclass
class MobilityParams:
    """Knobs for a deterministic mobility process (config-embeddable)."""

    #: One of :data:`MOBILITY_MODELS`.
    model: str = "waypoint"
    #: Explicit mover ids; None draws ``fraction`` of the non-sink nodes.
    nodes: Optional[List[int]] = None
    #: Fraction of non-sink nodes that move when ``nodes`` is None.
    fraction: float = 0.25
    #: Uniform speed range in m/s (pedestrian by default).
    speed_mps: Tuple[float, float] = (0.5, 1.5)
    #: Uniform pause range at each waypoint, seconds.
    pause_s: Tuple[float, float] = (10.0, 60.0)
    #: Walk-step granularity: one ``move_node`` per this many seconds of
    #: motion. Smaller = smoother gains, more events.
    step_s: float = 2.0
    #: Commuter model: max distance from home to the work anchor (m).
    commute_radius_m: float = 60.0
    #: Movers start walking only after this much sim time (lets the
    #: network converge on the deployed topology first).
    start_s: float = 0.0
    #: Kick CTP re-parenting on waypoint arrival (guard-deduplicated).
    kick_routing: bool = True

    def __post_init__(self) -> None:
        if self.model not in MOBILITY_MODELS:
            raise ValueError(
                f"unknown mobility model {self.model!r}; choose from {MOBILITY_MODELS}"
            )
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        if self.speed_mps[0] <= 0.0 or self.speed_mps[1] < self.speed_mps[0]:
            raise ValueError("speed_mps must be a positive (low, high) range")
        if self.pause_s[0] < 0.0 or self.pause_s[1] < self.pause_s[0]:
            raise ValueError("pause_s must be a non-negative (low, high) range")
        if self.step_s <= 0.0:
            raise ValueError("step_s must be positive")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "commute_radius_m": self.commute_radius_m,
            "fraction": self.fraction,
            "kick_routing": self.kick_routing,
            "model": self.model,
            "nodes": list(self.nodes) if self.nodes is not None else None,
            "pause_s": list(self.pause_s),
            "speed_mps": list(self.speed_mps),
            "start_s": self.start_s,
            "step_s": self.step_s,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MobilityParams":
        kwargs = dict(data)
        for key in ("speed_mps", "pause_s"):
            if key in kwargs and kwargs[key] is not None:
                kwargs[key] = tuple(kwargs[key])
        return cls(**kwargs)


@dataclass
class _MoverState:
    """Where one mover is and where it's headed."""

    pos: Tuple[float, float]
    target: Optional[Tuple[float, float]] = None
    speed: float = 0.0
    #: Commuter phase: the anchor we will walk to *next*.
    heading_to_work: bool = True


class MobilityDriver:
    """Compiles one :class:`MobilityParams` process onto a network's queue."""

    def __init__(self, network: "Network", params: MobilityParams) -> None:
        self.network = network
        self.params = params
        self.sim = network.sim
        self._rng = self.sim.rng("mobility")
        positions = network.deployment.positions
        xs = [p[0] for p in positions]
        ys = [p[1] for p in positions]
        self._bbox = (min(xs), min(ys), max(xs), max(ys))
        self.movers: List[int] = self._pick_movers()
        self._state: Dict[int, _MoverState] = {
            n: _MoverState(pos=(float(positions[n][0]), float(positions[n][1])))
            for n in self.movers
        }
        #: Commuter anchors: node -> (home, work).
        self._anchors: Dict[int, Tuple[Tuple[float, float], Tuple[float, float]]] = {}
        if params.model == "commuter":
            for n in self.movers:
                home = self._state[n].pos
                self._anchors[n] = (home, self._draw_work_anchor(home))
        # Counters (flat — soaks never accumulate per-move logs).
        self.moves = 0
        self.waypoints = 0
        self.kicks = 0
        self.kicks_suppressed = 0
        self.dead_movers = 0
        self._started = False

    # -------------------------------------------------------------- selection
    def _pick_movers(self) -> List[int]:
        candidates = [n for n in range(self.network.deployment.size)
                      if n != self.network.sink]
        if self.params.nodes is not None:
            chosen = sorted(set(self.params.nodes))
            for n in chosen:
                if n == self.network.sink:
                    raise ValueError("the sink does not move")
                if not 0 <= n < self.network.deployment.size:
                    raise ValueError(f"unknown mover node {n}")
            return chosen
        count = round(len(candidates) * self.params.fraction)
        if count <= 0:
            return []
        # sample() keeps draw count deterministic in the mover count.
        return sorted(self._rng.sample(candidates, count))

    def _draw_work_anchor(self, home: Tuple[float, float]) -> Tuple[float, float]:
        min_x, min_y, max_x, max_y = self._bbox
        radius = self.params.commute_radius_m
        x = home[0] + self._rng.uniform(-radius, radius)
        y = home[1] + self._rng.uniform(-radius, radius)
        return (min(max(x, min_x), max_x), min(max(y, min_y), max_y))

    # ------------------------------------------------------------------ start
    def start(self) -> None:
        """Schedule the first leg of every mover (idempotent)."""
        if self._started:
            return
        self._started = True
        start_ticks = round(self.params.start_s * SECOND)
        for n in self.movers:
            # Desynchronise departures across one pause window so movers
            # don't all recompute links on the same tick.
            jitter = round(self._rng.uniform(0.0, self.params.pause_s[1]) * SECOND)
            self.sim.schedule(start_ticks + jitter, self._depart, n)

    # ------------------------------------------------------------------- legs
    def _alive(self, node: int) -> bool:
        return not self.network.stacks[node].radio.failed

    def _depart(self, node: int) -> None:
        """Pick the next waypoint and start walking toward it."""
        if not self._alive(node):
            # Dead nodes stop consuming events; one counter, no log.
            self.dead_movers += 1
            return
        state = self._state[node]
        if self.params.model == "commuter":
            home, work = self._anchors[node]
            state.target = work if state.heading_to_work else home
            state.heading_to_work = not state.heading_to_work
        else:
            min_x, min_y, max_x, max_y = self._bbox
            state.target = (
                self._rng.uniform(min_x, max_x),
                self._rng.uniform(min_y, max_y),
            )
        state.speed = self._rng.uniform(*self.params.speed_mps)
        self._schedule_step(node)

    def _schedule_step(self, node: int) -> None:
        self.sim.schedule(round(self.params.step_s * SECOND), self._step, node)

    def _step(self, node: int) -> None:
        """Advance one walk step; on arrival, pause then depart again."""
        if not self._alive(node):
            self.dead_movers += 1
            return
        state = self._state[node]
        target = state.target
        if target is None:  # pragma: no cover - defensive
            return
        x, y = state.pos
        dx = target[0] - x
        dy = target[1] - y
        dist = (dx * dx + dy * dy) ** 0.5
        step_m = state.speed * self.params.step_s
        if dist <= step_m:
            state.pos = target
            state.target = None
            self._apply_move(node, target)
            self._arrived(node)
            return
        frac = step_m / dist
        state.pos = (x + dx * frac, y + dy * frac)
        self._apply_move(node, state.pos)
        self._schedule_step(node)

    def _apply_move(self, node: int, pos: Tuple[float, float]) -> None:
        self.network.channel.move_node(node, pos)
        self.moves += 1

    def _arrived(self, node: int) -> None:
        self.waypoints += 1
        if self.params.kick_routing:
            guard = self.network.churn_guard
            if guard is not None and guard.blocked(node, "mobility"):
                self.kicks_suppressed += 1
            else:
                self.network.stacks[node].routing.parent_unreachable()
                if guard is not None:
                    guard.note(node, "mobility")
                self.kicks += 1
        pause = self._rng.uniform(*self.params.pause_s)
        self.sim.schedule(round(pause * SECOND), self._depart, node)

    # ---------------------------------------------------------------- queries
    def position(self, node: int) -> Tuple[float, float]:
        """Current position of a mover (deployment position otherwise)."""
        state = self._state.get(node)
        if state is not None:
            return state.pos
        p = self.network.deployment.positions[node]
        return (float(p[0]), float(p[1]))

    def summary(self) -> Dict[str, int]:
        """Flat counters for reports (no per-move state)."""
        return {
            "movers": len(self.movers),
            "moves": self.moves,
            "waypoints": self.waypoints,
            "kicks": self.kicks,
            "kicks_suppressed": self.kicks_suppressed,
            "dead_movers": self.dead_movers,
        }
