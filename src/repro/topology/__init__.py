"""Deployment topologies used in the paper's evaluation and at city scale.

- ``tight_grid`` — 225 nodes in a 200 m × 200 m field divided 15×15, high
  gain, sink at the centre (paper's *Tight-grid*).
- ``sparse_linear`` — 225 nodes in a 60 m × 600 m strip divided 5×45, low
  gain, sink at one endpoint (paper's *Sparse-linear*).
- ``indoor_testbed`` — 40 TelosB-like nodes: 22 on a 2×11 board plus 18
  scattered nearby, CC2420 power level 2, up to 6 hops.
- ``random_uniform`` — generic random deployment for examples and tests.
- ``profile_field`` — jittered grid whose spacing is derived from a radio
  profile's usable link range (km-scale for LoRa, m-scale for CC2420).

City-scale generators (the spatial-index workloads, see docs/performance.md):

- ``city_blocks`` — Manhattan street plan: nodes uniform inside square
  blocks, empty streets the radio must bridge.
- ``clustered_field`` — dense clusters chained along a random backbone,
  connected by construction.
- ``forest`` — multi-thousand-node uniform field at a target density with a
  minimum pairwise separation.

Mobility (endurance soaks, see docs/soak.md):

- :mod:`repro.topology.mobility` — deterministic random-waypoint and
  commuter walks compiled onto the simulator queue.
"""

from repro.topology.mobility import MobilityDriver, MobilityParams
from repro.topology.deployments import (
    Deployment,
    city_blocks,
    clustered_field,
    forest,
    indoor_testbed,
    profile_field,
    random_uniform,
    sparse_linear,
    tight_grid,
)

__all__ = [
    "Deployment",
    "tight_grid",
    "sparse_linear",
    "indoor_testbed",
    "random_uniform",
    "profile_field",
    "city_blocks",
    "clustered_field",
    "forest",
    "MobilityDriver",
    "MobilityParams",
]
