"""Concrete deployments: node placement plus radio parameters."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.radio.cc2420 import CC2420
from repro.radio.propagation import LogDistancePathLoss

Position = Tuple[float, float]


@dataclass
class Deployment:
    """A placed network: positions, sink, and propagation parameters.

    ``tx_power_dbm`` applies to every node; per-node overrides can be set
    after construction via :attr:`tx_power_overrides`.
    """

    name: str
    positions: List[Position]
    sink: int
    tx_power_dbm: float
    propagation: LogDistancePathLoss
    tx_power_overrides: Dict[int, float] = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Number of nodes in the deployment."""
        return len(self.positions)

    def node_tx_power(self, node_id: int) -> float:
        """Transmit power for one node (override-aware)."""
        return self.tx_power_overrides.get(node_id, self.tx_power_dbm)

    def gains(self) -> Dict[Tuple[int, int], float]:
        """All-pairs link gains (dB) from the propagation model."""
        return self.propagation.gain_matrix(self.positions)

    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON-ready description (used for experiment cache keys).

        Keys are sorted and positions are plain lists, so two deployments
        serialise identically iff they place the same radios the same way.
        """
        return {
            "name": self.name,
            "positions": [[float(x), float(y)] for x, y in self.positions],
            "propagation": self.propagation.to_dict(),
            "sink": self.sink,
            "tx_power_dbm": self.tx_power_dbm,
            "tx_power_overrides": {
                str(k): v for k, v in sorted(self.tx_power_overrides.items())
            },
        }

    def distance(self, a: int, b: int) -> float:
        """Euclidean distance between two nodes (metres)."""
        ax, ay = self.positions[a]
        bx, by = self.positions[b]
        return ((ax - bx) ** 2 + (ay - by) ** 2) ** 0.5


def _jittered_grid(
    columns: int,
    rows: int,
    cell_w: float,
    cell_h: float,
    rng: random.Random,
    jitter: float = 0.8,
) -> List[Position]:
    """One node per grid cell, placed uniformly inside the (shrunken) cell.

    ``jitter`` scales how much of the cell the node may wander within; the
    paper deploys nodes "randomly ... divided into 15×15" grids, i.e. a
    jittered grid, not a perfect lattice.
    """
    positions: List[Position] = []
    for row in range(rows):
        for col in range(columns):
            cx = (col + 0.5) * cell_w
            cy = (row + 0.5) * cell_h
            dx = (rng.random() - 0.5) * cell_w * jitter
            dy = (rng.random() - 0.5) * cell_h * jitter
            positions.append((cx + dx, cy + dy))
    return positions


def tight_grid(seed: int = 0) -> Deployment:
    """Paper's *Tight-grid*: 225 nodes, 200 m × 200 m, 15×15, high gain.

    The sink is the node whose cell is at the centre of the field.
    """
    rng = random.Random(seed)
    positions = _jittered_grid(15, 15, 200.0 / 15, 200.0 / 15, rng)
    sink = 7 * 15 + 7  # centre cell of the 15×15 grid
    return Deployment(
        name="tight-grid",
        positions=positions,
        sink=sink,
        tx_power_dbm=0.0,  # "high gain"
        propagation=LogDistancePathLoss(
            path_loss_exponent=4.0, pl_d0=40.0, shadowing_sigma=3.2, seed=seed
        ),
    )


def sparse_linear(seed: int = 0) -> Deployment:
    """Paper's *Sparse-linear*: 225 nodes, 60 m × 600 m, 5×45, low gain.

    The sink sits at one endpoint of the strip (first column).
    """
    rng = random.Random(seed ^ 0x5EED)
    positions = _jittered_grid(45, 5, 600.0 / 45, 60.0 / 5, rng)
    # Node ids are row-major over (5 rows × 45 cols); the sink is the middle
    # row's first column: row 2, col 0.
    sink = 2 * 45 + 0
    return Deployment(
        name="sparse-linear",
        positions=positions,
        sink=sink,
        tx_power_dbm=-5.0,  # "low gain"
        propagation=LogDistancePathLoss(
            path_loss_exponent=4.0, pl_d0=40.0, shadowing_sigma=3.2, seed=seed
        ),
    )


def indoor_testbed(seed: int = 0) -> Deployment:
    """Paper's indoor testbed: 22 board nodes (2×11) + 18 scattered, power 2.

    CC2420 power level 2 keeps links to a few metres so the 40-node network
    spans up to 6 hops, as in the paper's experiments.
    """
    rng = random.Random(seed ^ 0xB0A2D)
    positions: List[Position] = []
    # Board: 2 rows × 11 columns, 2 m spacing, at y = 4 and 6.
    for row in range(2):
        for col in range(11):
            positions.append((2.0 + col * 2.0, 4.0 + row * 2.0))
    # 18 nodes scattered around the board inside a 30 m × 12 m room.
    for _ in range(18):
        positions.append((rng.uniform(0.0, 30.0), rng.uniform(0.0, 12.0)))
    sink = 0  # first board node, at one end of the room
    return Deployment(
        name="indoor-testbed",
        positions=positions,
        sink=sink,
        tx_power_dbm=CC2420.power_level_to_dbm(2),
        propagation=LogDistancePathLoss(
            path_loss_exponent=4.0, pl_d0=40.0, shadowing_sigma=3.2, seed=seed
        ),
    )


def random_uniform(
    n: int,
    width: float,
    height: float,
    seed: int = 0,
    sink: Optional[int] = None,
    tx_power_dbm: float = 0.0,
) -> Deployment:
    """Uniformly random deployment for examples and tests."""
    if n < 2:
        raise ValueError("need at least a sink and one node")
    rng = random.Random(seed ^ 0xAB1E)
    positions = [(rng.uniform(0, width), rng.uniform(0, height)) for _ in range(n)]
    if sink is None:
        # Pick the node closest to the field centre as sink.
        cx, cy = width / 2, height / 2
        sink = min(
            range(n),
            key=lambda i: (positions[i][0] - cx) ** 2 + (positions[i][1] - cy) ** 2,
        )
    return Deployment(
        name=f"random-{n}",
        positions=positions,
        sink=sink,
        tx_power_dbm=tx_power_dbm,
        propagation=LogDistancePathLoss(
            path_loss_exponent=4.0, pl_d0=40.0, shadowing_sigma=3.2, seed=seed
        ),
    )
