"""Concrete deployments: node placement plus radio parameters."""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple, Union

from repro.radio.cc2420 import CC2420
from repro.radio.propagation import LogDistancePathLoss

if TYPE_CHECKING:  # runtime imports stay lazy: profiles registers MACs on import
    from repro.radio.profiles import RadioProfile

Position = Tuple[float, float]


@dataclass
class Deployment:
    """A placed network: positions, sink, and propagation parameters.

    ``tx_power_dbm`` applies to every node; per-node overrides can be set
    after construction via :attr:`tx_power_overrides`.
    """

    name: str
    positions: List[Position]
    sink: int
    tx_power_dbm: float
    propagation: LogDistancePathLoss
    tx_power_overrides: Dict[int, float] = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Number of nodes in the deployment."""
        return len(self.positions)

    def node_tx_power(self, node_id: int) -> float:
        """Transmit power for one node (override-aware)."""
        return self.tx_power_overrides.get(node_id, self.tx_power_dbm)

    def gains(self) -> Dict[Tuple[int, int], float]:
        """All-pairs link gains (dB) from the propagation model."""
        return self.propagation.gain_matrix(self.positions)

    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON-ready description (used for experiment cache keys).

        Keys are sorted and positions are plain lists, so two deployments
        serialise identically iff they place the same radios the same way.
        """
        return {
            "name": self.name,
            "positions": [[float(x), float(y)] for x, y in self.positions],
            "propagation": self.propagation.to_dict(),
            "sink": self.sink,
            "tx_power_dbm": self.tx_power_dbm,
            "tx_power_overrides": {
                str(k): v for k, v in sorted(self.tx_power_overrides.items())
            },
        }

    def distance(self, a: int, b: int) -> float:
        """Euclidean distance between two nodes (metres)."""
        ax, ay = self.positions[a]
        bx, by = self.positions[b]
        return ((ax - bx) ** 2 + (ay - by) ** 2) ** 0.5


def _jittered_grid(
    columns: int,
    rows: int,
    cell_w: float,
    cell_h: float,
    rng: random.Random,
    jitter: float = 0.8,
) -> List[Position]:
    """One node per grid cell, placed uniformly inside the (shrunken) cell.

    ``jitter`` scales how much of the cell the node may wander within; the
    paper deploys nodes "randomly ... divided into 15×15" grids, i.e. a
    jittered grid, not a perfect lattice.
    """
    positions: List[Position] = []
    for row in range(rows):
        for col in range(columns):
            cx = (col + 0.5) * cell_w
            cy = (row + 0.5) * cell_h
            dx = (rng.random() - 0.5) * cell_w * jitter
            dy = (rng.random() - 0.5) * cell_h * jitter
            positions.append((cx + dx, cy + dy))
    return positions


def tight_grid(seed: int = 0) -> Deployment:
    """Paper's *Tight-grid*: 225 nodes, 200 m × 200 m, 15×15, high gain.

    The sink is the node whose cell is at the centre of the field.
    """
    rng = random.Random(seed)
    positions = _jittered_grid(15, 15, 200.0 / 15, 200.0 / 15, rng)
    sink = 7 * 15 + 7  # centre cell of the 15×15 grid
    return Deployment(
        name="tight-grid",
        positions=positions,
        sink=sink,
        tx_power_dbm=0.0,  # "high gain"
        propagation=LogDistancePathLoss(
            path_loss_exponent=4.0, pl_d0=40.0, shadowing_sigma=3.2, seed=seed
        ),
    )


def sparse_linear(seed: int = 0) -> Deployment:
    """Paper's *Sparse-linear*: 225 nodes, 60 m × 600 m, 5×45, low gain.

    The sink sits at one endpoint of the strip (first column).
    """
    rng = random.Random(seed ^ 0x5EED)
    positions = _jittered_grid(45, 5, 600.0 / 45, 60.0 / 5, rng)
    # Node ids are row-major over (5 rows × 45 cols); the sink is the middle
    # row's first column: row 2, col 0.
    sink = 2 * 45 + 0
    return Deployment(
        name="sparse-linear",
        positions=positions,
        sink=sink,
        tx_power_dbm=-5.0,  # "low gain"
        propagation=LogDistancePathLoss(
            path_loss_exponent=4.0, pl_d0=40.0, shadowing_sigma=3.2, seed=seed
        ),
    )


def indoor_testbed(seed: int = 0) -> Deployment:
    """Paper's indoor testbed: 22 board nodes (2×11) + 18 scattered, power 2.

    CC2420 power level 2 keeps links to a few metres so the 40-node network
    spans up to 6 hops, as in the paper's experiments.
    """
    rng = random.Random(seed ^ 0xB0A2D)
    positions: List[Position] = []
    # Board: 2 rows × 11 columns, 2 m spacing, at y = 4 and 6.
    for row in range(2):
        for col in range(11):
            positions.append((2.0 + col * 2.0, 4.0 + row * 2.0))
    # 18 nodes scattered around the board inside a 30 m × 12 m room.
    for _ in range(18):
        positions.append((rng.uniform(0.0, 30.0), rng.uniform(0.0, 12.0)))
    sink = 0  # first board node, at one end of the room
    return Deployment(
        name="indoor-testbed",
        positions=positions,
        sink=sink,
        tx_power_dbm=CC2420.power_level_to_dbm(2),
        propagation=LogDistancePathLoss(
            path_loss_exponent=4.0, pl_d0=40.0, shadowing_sigma=3.2, seed=seed
        ),
    )


class _MinSeparationSampler:
    """Incremental grid hash enforcing a minimum pairwise distance.

    The city-scale generators place thousands of nodes by rejection
    sampling; checking a candidate against the 3×3 cell neighbourhood (cell
    size = the separation) keeps each attempt O(local density) instead of
    O(placed so far), the same idea as :class:`repro.radio.spatial.GridIndex`
    but append-only. A positive separation also guarantees no duplicate
    coordinates, which the digest fingerprints rely on.
    """

    def __init__(self, min_separation: float) -> None:
        if min_separation <= 0:
            raise ValueError("min separation must be positive")
        self.min_separation = float(min_separation)
        self._cells: Dict[Tuple[int, int], List[Position]] = {}

    def try_add(self, pos: Position) -> bool:
        """Accept ``pos`` iff it clears the separation from all placed nodes."""
        cs = self.min_separation
        cx, cy = int(pos[0] // cs), int(pos[1] // cs)
        limit = cs * cs
        for nx in range(cx - 1, cx + 2):
            for ny in range(cy - 1, cy + 2):
                for ox, oy in self._cells.get((nx, ny), ()):
                    if (ox - pos[0]) ** 2 + (oy - pos[1]) ** 2 < limit:
                        return False
        self._cells.setdefault((cx, cy), []).append(pos)
        return True


def _sample_separated(
    rng: random.Random,
    draw: Callable[[random.Random], Position],
    sampler: _MinSeparationSampler,
    count: int,
    context: str,
    max_attempts_per_node: int = 200,
) -> List[Position]:
    """Draw ``count`` positions honouring the sampler's separation bound."""
    positions: List[Position] = []
    for _ in range(count):
        for _attempt in range(max_attempts_per_node):
            pos = draw(rng)
            if sampler.try_add(pos):
                positions.append(pos)
                break
        else:
            raise ValueError(
                f"cannot place {count} nodes in {context}: separation "
                f"{sampler.min_separation} m leaves no room — lower the "
                "density or the separation"
            )
    return positions


def _ensure_connected(
    deployment: Deployment,
    rng: random.Random,
    min_separation_m: float,
    max_rounds: int = 50,
    profile: Optional[RadioProfile] = None,
) -> Deployment:
    """Deterministically re-home unreachable nodes next to reachable ones.

    Random placement plus per-link shadowing occasionally strands a node
    (or a small pocket) without a usable path to the sink. The city-scale
    generators promise sink-connectivity for every seed, so each repair
    round moves every stranded node to a fresh spot near a randomly chosen
    reachable node — close enough for a solid link, still honouring the
    minimum separation — and re-checks. All draws come from the generator's
    own ``rng``, so the repaired layout is as deterministic as the original.
    """
    from repro.topology.analysis import unreachable_nodes  # lazy: no cycle

    positions = deployment.positions
    for _ in range(max_rounds):
        bad = unreachable_nodes(deployment, profile=profile)
        if not bad:
            return deployment
        good = sorted(set(range(deployment.size)) - set(bad))
        if not good:
            raise ValueError("sink has no usable links at all; raise density")
        for u in bad:
            for _attempt in range(200):
                ax, ay = positions[good[rng.randrange(len(good))]]
                angle = rng.uniform(0.0, 2.0 * math.pi)
                radius = rng.uniform(min_separation_m, 12.0)
                cand = (ax + radius * math.cos(angle), ay + radius * math.sin(angle))
                if all(
                    (px - cand[0]) ** 2 + (py - cand[1]) ** 2
                    >= min_separation_m**2
                    for i, (px, py) in enumerate(positions)
                    if i != u
                ):
                    positions[u] = cand
                    break
            else:
                raise ValueError(
                    "connectivity repair could not find a free spot; lower "
                    "the density or the separation"
                )
        # Shadowing is pinned per node pair, so moving a node re-prices its
        # links from fresh distances without disturbing anyone else's.
    raise ValueError("connectivity repair did not converge; raise density")


def _center_node(positions: List[Position]) -> int:
    """Index of the node closest to the bounding-box centre."""
    cx = (min(p[0] for p in positions) + max(p[0] for p in positions)) / 2
    cy = (min(p[1] for p in positions) + max(p[1] for p in positions)) / 2
    return min(
        range(len(positions)),
        key=lambda i: (positions[i][0] - cx) ** 2 + (positions[i][1] - cy) ** 2,
    )


def city_blocks(
    blocks_x: int = 6,
    blocks_y: int = 6,
    nodes_per_block: int = 12,
    block_m: float = 40.0,
    street_m: float = 12.0,
    min_separation_m: float = 1.0,
    seed: int = 0,
    tx_power_dbm: float = 0.0,
) -> Deployment:
    """City-block grid: nodes uniform inside square blocks, streets empty.

    Models metering/streetlight deployments on a Manhattan street plan:
    ``blocks_x × blocks_y`` blocks of ``block_m`` a side, separated by
    ``street_m``-wide empty streets the radio must bridge. Defaults keep
    in-block density (~180 m²/node) and street gaps (12 m) well inside the
    CC2420 usable range at 0 dBm, so the network is connected for any seed.
    The sink is the node nearest the city centre.
    """
    if blocks_x < 1 or blocks_y < 1 or nodes_per_block < 1:
        raise ValueError("need at least one block and one node per block")
    rng = random.Random(seed ^ 0xC17B)
    pitch = block_m + street_m
    sampler = _MinSeparationSampler(min_separation_m)
    positions: List[Position] = []
    for by in range(blocks_y):
        for bx in range(blocks_x):
            x0 = bx * pitch
            y0 = by * pitch

            def in_block(r: random.Random, x0: float = x0, y0: float = y0) -> Position:
                return (x0 + r.uniform(0.0, block_m), y0 + r.uniform(0.0, block_m))

            positions.extend(
                _sample_separated(
                    rng, in_block, sampler, nodes_per_block,
                    f"a {block_m} m block",
                )
            )
    deployment = Deployment(
        name=f"city-blocks-{blocks_x}x{blocks_y}x{nodes_per_block}",
        positions=positions,
        sink=_center_node(positions),
        tx_power_dbm=tx_power_dbm,
        propagation=LogDistancePathLoss(
            path_loss_exponent=4.0, pl_d0=40.0, shadowing_sigma=3.2, seed=seed
        ),
    )
    return _ensure_connected(deployment, rng, min_separation_m)


def clustered_field(
    clusters: int = 12,
    nodes_per_cluster: int = 25,
    cluster_radius_m: float = 25.0,
    backbone_spacing_m: float = 18.0,
    min_separation_m: float = 1.0,
    seed: int = 0,
    tx_power_dbm: float = 0.0,
) -> Deployment:
    """Clustered random field: dense clusters chained along a random backbone.

    Cluster centres form a random walk with ``backbone_spacing_m`` steps, so
    consecutive clusters always overlap radio-wise (spacing defaults below
    the usable link range and well below ``2·cluster_radius_m``) and the
    whole field is connected by construction. Nodes are uniform in each
    cluster disc with a minimum pairwise separation. The sink is the node
    nearest the field centre.
    """
    if clusters < 1 or nodes_per_cluster < 1:
        raise ValueError("need at least one cluster and one node per cluster")
    if backbone_spacing_m <= 0 or cluster_radius_m <= 0:
        raise ValueError("backbone spacing and cluster radius must be positive")
    rng = random.Random(seed ^ 0xC1F5)
    centers: List[Position] = [(0.0, 0.0)]
    while len(centers) < clusters:
        # Step from a random existing centre; reject steps landing on top of
        # another centre so clusters spread instead of piling up.
        base = centers[rng.randrange(len(centers))]
        angle = rng.uniform(0.0, 2.0 * math.pi)
        cand = (
            base[0] + backbone_spacing_m * math.cos(angle),
            base[1] + backbone_spacing_m * math.sin(angle),
        )
        if all(
            (cx - cand[0]) ** 2 + (cy - cand[1]) ** 2
            >= (0.5 * backbone_spacing_m) ** 2
            for cx, cy in centers
        ):
            centers.append(cand)
    sampler = _MinSeparationSampler(min_separation_m)
    positions: List[Position] = []
    for cx, cy in centers:

        def in_disc(r: random.Random, cx: float = cx, cy: float = cy) -> Position:
            angle = r.uniform(0.0, 2.0 * math.pi)
            radius = cluster_radius_m * r.random() ** 0.5  # uniform over the disc
            return (cx + radius * math.cos(angle), cy + radius * math.sin(angle))

        positions.extend(
            _sample_separated(
                rng, in_disc, sampler, nodes_per_cluster,
                f"a {cluster_radius_m} m cluster",
            )
        )
    deployment = Deployment(
        name=f"clustered-{clusters}x{nodes_per_cluster}",
        positions=positions,
        sink=_center_node(positions),
        tx_power_dbm=tx_power_dbm,
        propagation=LogDistancePathLoss(
            path_loss_exponent=4.0, pl_d0=40.0, shadowing_sigma=3.2, seed=seed
        ),
    )
    return _ensure_connected(deployment, rng, min_separation_m)


def forest(
    n: int = 2000,
    density_m2_per_node: float = 170.0,
    min_separation_m: float = 2.0,
    seed: int = 0,
    tx_power_dbm: float = 0.0,
) -> Deployment:
    """Multi-thousand-node forest: uniform square field at a target density.

    The field side is derived from ``n · density_m2_per_node`` (the paper's
    tight-grid density by default, ~178 m²/node, which keeps the network
    connected at 0 dBm), and ``min_separation_m`` enforces a lower bound on
    pairwise distance — sensors are never co-located. This is the scale
    workload: 2k–10k nodes is intractable with dense all-pairs gains and is
    exactly what the spatial index is for. The sink is the node nearest the
    field centre.
    """
    if n < 2:
        raise ValueError("need at least a sink and one node")
    if density_m2_per_node <= 0:
        raise ValueError("density must be positive")
    side = (n * density_m2_per_node) ** 0.5
    rng = random.Random(seed ^ 0xF03E57)
    sampler = _MinSeparationSampler(min_separation_m)

    def in_field(r: random.Random) -> Position:
        return (r.uniform(0.0, side), r.uniform(0.0, side))

    positions = _sample_separated(
        rng, in_field, sampler, n, f"a {side:.0f} m forest"
    )
    deployment = Deployment(
        name=f"forest-{n}",
        positions=positions,
        sink=_center_node(positions),
        tx_power_dbm=tx_power_dbm,
        propagation=LogDistancePathLoss(
            path_loss_exponent=4.0, pl_d0=40.0, shadowing_sigma=3.2, seed=seed
        ),
    )
    return _ensure_connected(deployment, rng, min_separation_m)


def profile_field(
    profile: Union[RadioProfile, str, None],
    n: int = 25,
    seed: int = 0,
    tx_power_dbm: Optional[float] = None,
) -> Deployment:
    """Jittered grid scaled to a radio profile's usable link range.

    The generic counterpart of :func:`tight_grid`: node spacing is derived
    from the profile's own physics — the smallest received power whose
    clean-channel PRR clears 0.5 (sensitivity- and waterfall-aware), turned
    into metres by the profile's default propagation model — at 40 % of
    that usable range, so any registered profile gets a multi-hop,
    connected field without hand-tuned coordinates. A CC2420-class profile
    lands at metre spacing; the LoRa profile at kilometre spacing. The sink
    is the node nearest the field centre and connectivity is repaired per
    seed like the city-scale generators.

    ``profile`` is a :class:`~repro.radio.profiles.RadioProfile` or a
    registered name.
    """
    from repro.radio.profiles import RadioProfile, get_radio_profile

    if not isinstance(profile, RadioProfile):
        profile = get_radio_profile(profile)
    if n < 2:
        raise ValueError("need at least a sink and one node")
    tx = profile.default_tx_power_dbm if tx_power_dbm is None else tx_power_dbm
    propagation = profile.default_propagation(seed)
    # Smallest rx power (0.5 dB scan) with clean-channel PRR >= 0.5: the
    # sensitivity floor alone under-states what waterfall curves need.
    rx_dbm = profile.sensitivity_dbm
    while (
        profile.prr(rx_dbm - profile.noise_floor_dbm, 40) < 0.5
        and rx_dbm < profile.sensitivity_dbm + 60.0
    ):
        rx_dbm += 0.5
    usable_range_m = propagation.max_range_m(tx - rx_dbm)
    spacing = 0.4 * usable_range_m
    columns = math.ceil(math.sqrt(n))
    rows = math.ceil(n / columns)
    rng = random.Random(seed ^ 0x9A0F1E)
    positions = _jittered_grid(columns, rows, spacing, spacing, rng)[:n]
    deployment = Deployment(
        name=f"{profile.name}-field-{n}",
        positions=positions,
        sink=_center_node(positions),
        tx_power_dbm=tx,
        propagation=propagation,
    )
    return _ensure_connected(deployment, rng, 1.0, profile=profile)


def random_uniform(
    n: int,
    width: float,
    height: float,
    seed: int = 0,
    sink: Optional[int] = None,
    tx_power_dbm: float = 0.0,
) -> Deployment:
    """Uniformly random deployment for examples and tests."""
    if n < 2:
        raise ValueError("need at least a sink and one node")
    rng = random.Random(seed ^ 0xAB1E)
    positions = [(rng.uniform(0, width), rng.uniform(0, height)) for _ in range(n)]
    if sink is None:
        # Pick the node closest to the field centre as sink.
        cx, cy = width / 2, height / 2
        sink = min(
            range(n),
            key=lambda i: (positions[i][0] - cx) ** 2 + (positions[i][1] - cy) ** 2,
        )
    return Deployment(
        name=f"random-{n}",
        positions=positions,
        sink=sink,
        tx_power_dbm=tx_power_dbm,
        propagation=LogDistancePathLoss(
            path_loss_exponent=4.0, pl_d0=40.0, shadowing_sigma=3.2, seed=seed
        ),
    )
