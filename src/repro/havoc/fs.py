"""The filesystem seam: proxy primitives the farm's storage routes through.

:mod:`repro.farm.queue`, :mod:`repro.runner.journal`, and
:mod:`repro.runner.cache` perform their durable writes through the four
module-level primitives below (:func:`write`, :func:`fsync`,
:func:`replace`, :func:`read_bytes`) instead of calling the OS directly.
With no plan active each is a zero-cost pass-through; under an active
:class:`~repro.havoc.plan.HavocPlan` they consult a :class:`HavocFS`
which injects ``ENOSPC``, ``EIO``, torn (prefix-then-fail) writes, and
slow fsyncs from the plan's deterministic op-count windows.

Injected errors are *real* ``OSError`` instances carrying real errnos —
production code cannot (and must not) tell them from a genuinely full
disk, which is the point: the hardening they force is the hardening a
full disk needs.

Every decision is appended to :attr:`HavocFS.log` as
``(op, index, path, kind)`` tuples, so a test can assert that the same
plan over the same operation sequence reproduces the same injection
sequence bit for bit.
"""

from __future__ import annotations

import errno
import os
import time
from typing import IO, List, Optional, Tuple, Union

from repro.havoc.plan import FS_KINDS, HavocEvent, HavocPlan

PathLike = Union[str, "os.PathLike[str]"]


def _enospc(path: str) -> OSError:
    return OSError(errno.ENOSPC, "No space left on device [havoc]", path)


def _eio(path: str) -> OSError:
    return OSError(errno.EIO, "Input/output error [havoc]", path)


class HavocFS:
    """Deterministic fault decisions for filesystem operations.

    Stateful only in its per-event match counters: the Nth operation
    matching an event's (op, scope) filters always gets the same verdict,
    regardless of wall clock or interleaving with non-matching ops.
    """

    def __init__(self, plan: HavocPlan) -> None:
        self.plan = plan
        self._events: Tuple[HavocEvent, ...] = plan.for_kinds(FS_KINDS)
        self._matched: List[int] = [0] * len(self._events)
        #: Injection record: (op, per-event match index, path, kind).
        self.log: List[Tuple[str, int, str, str]] = []
        #: Total faults injected (cheap liveness check for tests).
        self.injected = 0

    def decide(self, op: str, path: str) -> Optional[HavocEvent]:
        """The event firing for this operation, if any.

        Advances every matching event's counter (so windows are counted
        per event, not globally) and returns the first event whose window
        covers this operation.
        """
        fired: Optional[HavocEvent] = None
        for i, event in enumerate(self._events):
            if not event.matches(op, path):
                continue
            index = self._matched[i]
            self._matched[i] += 1
            if fired is None and event.start <= index < event.start + event.count:
                fired = event
                self.injected += 1
                self.log.append((op, index, path, event.kind))
        return fired

    # ------------------------------------------------------------ primitives
    def write(
        self, handle: IO[str], data: str, path: Optional[PathLike] = None
    ) -> None:
        # fdopen'd handles carry an *int* name; callers writing through a
        # mkstemp fd pass the real target path so scopes can match it.
        path = path if path is not None else getattr(handle, "name", "")
        event = self.decide("write", str(path))
        if event is None:
            handle.write(data)
            return
        if event.kind == "torn":
            # A real torn write: half the payload lands, then the disk
            # "fills". The caller sees ENOSPC; the file is genuinely torn.
            handle.write(data[: max(1, len(data) // 2)])
            handle.flush()
            raise _enospc(str(path))
        if event.kind == "enospc":
            raise _enospc(str(path))
        if event.kind == "eio":
            raise _eio(str(path))
        handle.write(data)  # slow_fsync et al. don't apply to writes

    def fsync(self, fd: int, path: str = "") -> None:
        event = self.decide("fsync", path)
        if event is not None:
            if event.kind == "slow_fsync":
                time.sleep(event.delay_s)
            elif event.kind in ("enospc", "torn"):
                raise _enospc(path)
            elif event.kind == "eio":
                raise _eio(path)
        os.fsync(fd)

    def replace(self, src: PathLike, dst: PathLike) -> None:
        event = self.decide("replace", str(dst))
        if event is not None and event.kind in ("enospc", "torn"):
            raise _enospc(str(dst))
        if event is not None and event.kind == "eio":
            raise _eio(str(dst))
        os.replace(src, dst)

    def read_bytes(self, path: PathLike) -> bytes:
        event = self.decide("read", str(path))
        if event is not None and event.kind == "eio":
            raise _eio(str(path))
        with open(path, "rb") as handle:
            return handle.read()


#: The active injector (None = pass-through). Managed by repro.havoc.
_ACTIVE: Optional[HavocFS] = None


def install(fs: Optional[HavocFS]) -> None:
    global _ACTIVE
    _ACTIVE = fs


def current() -> Optional[HavocFS]:
    return _ACTIVE


# ------------------------------------------------------------------ proxies
def write(handle: IO[str], data: str, path: Optional[PathLike] = None) -> None:
    """Write ``data`` to an open text handle (the injectable seam).

    Pass ``path`` when the handle came from a bare fd (``os.fdopen`` names
    it by number) so plan scopes can still match the target.
    """
    if _ACTIVE is None:
        handle.write(data)
    else:
        _ACTIVE.write(handle, data, path)


def fsync(fd: int, path: str = "") -> None:
    """fsync a file descriptor (the injectable seam)."""
    if _ACTIVE is None:
        os.fsync(fd)
    else:
        _ACTIVE.fsync(fd, path)


def replace(src: PathLike, dst: PathLike) -> None:
    """Atomic rename (the injectable seam)."""
    if _ACTIVE is None:
        os.replace(src, dst)
    else:
        _ACTIVE.replace(src, dst)


def read_bytes(path: PathLike) -> bytes:
    """Read a file's bytes (the injectable seam)."""
    if _ACTIVE is None:
        with open(path, "rb") as handle:
            return handle.read()
    return _ACTIVE.read_bytes(path)
