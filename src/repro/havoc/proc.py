"""The process seam: checkpoints, self-inflicted death, and clock skew.

The farm worker announces its cell-boundary progress through
:func:`checkpoint`; an active plan's ``kill`` / ``stall`` events fire at
chosen boundaries ("SIGKILL yourself while holding your 2nd lease"),
which is how the soak test kills workers at *deterministic* points
instead of racing a timer against the grid.

``clock_skew`` events offset :func:`farm_time`, the clock
:class:`repro.farm.queue.LeaseQueue` reads lease expiries from — a
skewed worker believes other workers' leases expired early (or its own
never will), exactly the failure a drifting host clock produces in a
real fleet. The token-confirmed steal protocol must hold regardless.
"""

from __future__ import annotations

import os
import signal
import time
from typing import List, Optional, Tuple

from repro.havoc.plan import PROC_KINDS, HavocEvent, HavocPlan


class HavocProc:
    """Deterministic process-fault decisions, counted per checkpoint."""

    def __init__(self, plan: HavocPlan) -> None:
        self.plan = plan
        self._events: Tuple[HavocEvent, ...] = plan.for_kinds(PROC_KINDS)
        self._matched: List[int] = [0] * len(self._events)
        self.skew_s: float = sum(
            e.skew_s for e in self._events if e.kind == "clock_skew"
        )
        self.log: List[Tuple[str, int, str, str]] = []

    def checkpoint(self, name: str, label: str = "") -> None:
        """Fire any kill/stall event matching this (checkpoint, label)."""
        for i, event in enumerate(self._events):
            if event.kind == "clock_skew" or not event.matches(name, label):
                continue
            index = self._matched[i]
            self._matched[i] += 1
            if not event.start <= index < event.start + event.count:
                continue
            self.log.append((name, index, label, event.kind))
            if event.kind == "stall":
                time.sleep(event.delay_s)
            elif event.kind == "kill":
                # SIGKILL, not sys.exit: no atexit, no finally blocks, no
                # lease release — the worker dies exactly like an OOM kill.
                os.kill(os.getpid(), signal.SIGKILL)


_ACTIVE: Optional[HavocProc] = None


def install(proc: Optional[HavocProc]) -> None:
    global _ACTIVE
    _ACTIVE = proc


def current() -> Optional[HavocProc]:
    return _ACTIVE


def checkpoint(name: str, label: str = "") -> None:
    """Announce a process boundary (no-op unless a plan is active)."""
    if _ACTIVE is not None:
        _ACTIVE.checkpoint(name, label)


def farm_time() -> float:
    """The farm's lease clock: ``time.time()`` plus any active skew."""
    if _ACTIVE is None or _ACTIVE.skew_s == 0.0:
        return time.time()
    return time.time() + _ACTIVE.skew_s
