"""The HTTP seam: service-side connection faults and hostile-client tools.

Two halves:

- **Server side** — :func:`stream_fault` is consulted by
  :meth:`repro.farm.service.FarmService._stream_events` once per SSE
  frame; an active ``sse_drop`` event makes the service abort the
  connection mid-stream (no terminal frame), and ``sse_stall`` delays the
  frame. This is how the soak test drops a live SSE subscription at a
  deterministic frame index and proves the client's ``Last-Event-ID``
  reconnect actually resumes.

- **Client side** — raw-socket helpers for the hostile-input tests:
  sending malformed request lines, truncated bodies, and stalled reads
  that a well-behaved ``urllib`` client can never produce. These don't
  need an active plan; they *are* the fault.
"""

from __future__ import annotations

import socket
import struct
from typing import List, Optional, Tuple

from repro.havoc.plan import HTTP_KINDS, HavocEvent, HavocPlan


class HavocHttp:
    """Deterministic per-stream frame-fault decisions."""

    def __init__(self, plan: HavocPlan) -> None:
        self.plan = plan
        self._events: Tuple[HavocEvent, ...] = plan.for_kinds(HTTP_KINDS)
        self._matched: List[int] = [0] * len(self._events)
        self.log: List[Tuple[str, int, str, str]] = []

    def stream_fault(self, stream: str, label: str = "") -> Optional[HavocEvent]:
        """The event firing for this frame of ``stream``, if any."""
        fired: Optional[HavocEvent] = None
        for i, event in enumerate(self._events):
            if not event.matches(stream, label):
                continue
            index = self._matched[i]
            self._matched[i] += 1
            if fired is None and event.start <= index < event.start + event.count:
                fired = event
                self.log.append((stream, index, label, event.kind))
        return fired


_ACTIVE: Optional[HavocHttp] = None


def install(http: Optional[HavocHttp]) -> None:
    global _ACTIVE
    _ACTIVE = http


def current() -> Optional[HavocHttp]:
    return _ACTIVE


def stream_fault(stream: str, label: str = "") -> Optional[HavocEvent]:
    """The fault for the next frame of ``stream`` (None when inactive)."""
    if _ACTIVE is None:
        return None
    return _ACTIVE.stream_fault(stream, label)


# ------------------------------------------------------- hostile-client side
def raw_request(
    host: str,
    port: int,
    payload: bytes,
    timeout: float = 10.0,
    read: bool = True,
) -> bytes:
    """Send raw bytes to a server and return whatever it answers.

    The escape hatch below ``urllib``: request lines that don't parse,
    headers that lie, bodies that never arrive. Returns ``b""`` when the
    server (correctly) just closes the connection.
    """
    with socket.create_connection((host, port), timeout=timeout) as conn:
        conn.sendall(payload)
        if not read:
            return b""
        chunks = []
        try:
            while True:
                chunk = conn.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        except socket.timeout:
            pass
        return b"".join(chunks)


def stalled_request(
    host: str,
    port: int,
    head: bytes,
    timeout: float = 30.0,
) -> bytes:
    """Send request head claiming a body, then stall — never send the body.

    Models a client that wedges mid-upload. A hardened server must answer
    (408) or close within its read timeout instead of pinning the
    connection handler forever; whatever it sent back is returned.
    """
    with socket.create_connection((host, port), timeout=timeout) as conn:
        conn.sendall(head)
        chunks = []
        try:
            while True:
                chunk = conn.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        except socket.timeout:
            pass
        return b"".join(chunks)


def drop_mid_body(
    host: str,
    port: int,
    head: bytes,
    partial_body: bytes,
) -> None:
    """Send headers plus part of the declared body, then hard-close.

    A mid-body connection drop: RST where possible (SO_LINGER 0), so the
    server sees the connection die rather than a clean half-close.
    """
    conn = socket.create_connection((host, port), timeout=10.0)
    try:
        conn.sendall(head + partial_body)
        conn.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
    finally:
        conn.close()
