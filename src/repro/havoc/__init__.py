"""``repro.havoc`` — deterministic fault injection for the farm itself.

:mod:`repro.faults` holds the *simulated protocol* to the paper's
standard — reliable remote control over unreliable links — by injecting
seeded radio faults. This package holds the *infrastructure that serves
those results* to the same standard: the lease queue, journal, cache,
workers, and HTTP service run under injected ``ENOSPC`` windows, torn
writes, SIGKILLed workers, skewed lease clocks, and dropped SSE
connections, and must still complete grids with bit-identical digests.

Three seams, one plan:

- :mod:`repro.havoc.fs` — filesystem primitives (write/fsync/replace/
  read) that queue, journal, and cache route their durable I/O through;
- :mod:`repro.havoc.proc` — worker checkpoints (deterministic SIGKILL /
  stall points) and the skewable lease clock;
- :mod:`repro.havoc.http` — SSE connection faults on the service side
  plus raw-socket hostile-client helpers for tests.

Activation is process-wide and explicit::

    with havoc.active(plan):           # in-process tests
        ...

    env["REPRO_HAVOC"] = plan.to_json()  # subprocesses (workers, server)

The env route activates at import of :mod:`repro.havoc` (which the farm
modules import), so ``python -m repro farm worker`` and ``repro serve``
children inherit the schedule with no extra flags — the same trick the
soak test and ``scripts/farm_smoke.py --havoc`` use.

With no plan active every seam is a pass-through; zero-fault runs are
bit-identical to runs without the package (regression-tested).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.havoc import fs as _fs
from repro.havoc import http as _http
from repro.havoc import proc as _proc
from repro.havoc.fs import HavocFS
from repro.havoc.http import HavocHttp
from repro.havoc.plan import (
    ENV_VAR,
    FS_KINDS,
    HAVOC_KINDS,
    HTTP_KINDS,
    PROC_KINDS,
    HavocEvent,
    HavocPlan,
    generate_plan,
)
from repro.havoc.proc import HavocProc

_PLAN: Optional[HavocPlan] = None


def activate(plan: HavocPlan) -> None:
    """Install ``plan`` on all three seams (replacing any active plan)."""
    global _PLAN
    _PLAN = plan
    _fs.install(HavocFS(plan))
    _proc.install(HavocProc(plan))
    _http.install(HavocHttp(plan))


def deactivate() -> None:
    """Return every seam to pass-through."""
    global _PLAN
    _PLAN = None
    _fs.install(None)
    _proc.install(None)
    _http.install(None)


def current_plan() -> Optional[HavocPlan]:
    return _PLAN


@contextmanager
def active(plan: HavocPlan) -> Iterator[HavocFS]:
    """Activate ``plan`` for a block; yields the fs injector for its log."""
    activate(plan)
    try:
        injector = _fs.current()
        assert injector is not None
        yield injector
    finally:
        deactivate()


def _activate_from_env() -> None:
    payload = os.environ.get(ENV_VAR)
    if not payload:
        return
    # A malformed plan must not silently disable the harness: fail loudly
    # at import so the operator sees the typo, not a clean-run soak.
    activate(HavocPlan.from_json(payload))


_activate_from_env()

__all__ = [
    "ENV_VAR",
    "FS_KINDS",
    "HAVOC_KINDS",
    "HTTP_KINDS",
    "PROC_KINDS",
    "HavocEvent",
    "HavocFS",
    "HavocHttp",
    "HavocPlan",
    "HavocProc",
    "activate",
    "active",
    "current_plan",
    "deactivate",
    "generate_plan",
]
