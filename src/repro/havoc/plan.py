"""Declarative seeded havoc plans — fault schedules for the farm's own
infrastructure.

A :class:`HavocPlan` is to the *machinery* what a
:class:`repro.faults.FaultPlan` is to the radios: an ordered, validated,
canonically-serialisable set of fault events, injected deterministically.
Where a fault plan keys events on simulated time, a havoc plan keys them
on **operation counts** — "the 3rd fsync under the journal directory",
"the 2nd lease claim", "the 5th SSE frame" — because wall-clock time is
not reproducible but the sequence of infrastructure operations a
deterministic grid performs is.

Event kinds, by seam:

filesystem (:mod:`repro.havoc.fs`)
    ``enospc``    — the write/replace raises ``OSError(ENOSPC)``;
    ``eio``       — the read/write/fsync/replace raises ``OSError(EIO)``;
    ``torn``      — a *prefix* of the data is written, then
                    ``OSError(ENOSPC)`` — the on-disk file is genuinely
                    torn, exactly like a disk filling mid-write;
    ``slow_fsync``— the fsync sleeps ``delay_s`` before completing.

process (:mod:`repro.havoc.proc`)
    ``kill``      — the process SIGKILLs itself at a named checkpoint
                    (e.g. the worker's ``claimed`` / ``cell_done``
                    boundaries);
    ``stall``     — the process sleeps ``delay_s`` at the checkpoint,
                    modelling a freeze long enough to lose a lease;
    ``clock_skew``— the farm clock (used for lease expiry) is offset by
                    ``skew_s`` seconds from the moment the plan activates.

http (:mod:`repro.havoc.http`)
    ``sse_drop``  — the service aborts the SSE connection after the
                    matching frame (mid-stream, no terminal event);
    ``sse_stall`` — the service sleeps ``delay_s`` before the frame.

Events match operations by ``op`` (the operation class: ``write``,
``fsync``, ``replace``, ``read`` for fs events; the checkpoint name for
proc events; the stream name for http events — empty string matches any)
and ``scope`` (a substring of the path/label — empty matches any). Each
event keeps its own counter of matching operations and fires for the
window ``start <= counter < start + count``.

Because the schedule is a pure function of the plan (and
:func:`generate_plan` a pure function of its seed), the same seed always
reproduces the same injection sequence — the property the havoc soak
test pins.
"""

from __future__ import annotations

import dataclasses
import json
import random
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Tuple

#: Fault kinds handled by the filesystem seam.
FS_KINDS = ("enospc", "eio", "torn", "slow_fsync")
#: Fault kinds handled by the process seam.
PROC_KINDS = ("kill", "stall", "clock_skew")
#: Fault kinds handled by the HTTP seam.
HTTP_KINDS = ("sse_drop", "sse_stall")

HAVOC_KINDS = FS_KINDS + PROC_KINDS + HTTP_KINDS

#: Environment variable carrying a JSON plan into subprocesses (workers,
#: servers): set it and the process activates the plan at import time.
ENV_VAR = "REPRO_HAVOC"


@dataclass(frozen=True)
class HavocEvent:
    """One windowed infrastructure fault. See the module docstring."""

    kind: str
    #: Operation-class filter: fs op name / checkpoint name / stream name.
    op: str = ""
    #: Substring filter on the target path or label ("" matches any).
    scope: str = ""
    #: 0-based index of the first matching operation affected.
    start: int = 0
    #: How many consecutive matching operations are affected.
    count: int = 1
    #: Sleep duration for slow_fsync / stall / sse_stall.
    delay_s: float = 0.0
    #: Clock offset for clock_skew (may be negative).
    skew_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in HAVOC_KINDS:
            raise ValueError(f"unknown havoc kind {self.kind!r}")
        if self.start < 0:
            raise ValueError("start must be >= 0")
        if self.count < 1:
            raise ValueError("count must be >= 1")
        if self.kind in ("slow_fsync", "stall", "sse_stall") and self.delay_s <= 0:
            raise ValueError(f"{self.kind} needs a positive delay_s")
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")

    def matches(self, op: str, target: str) -> bool:
        """Does this event apply to one (operation class, target) pair?"""
        if self.op and self.op != op:
            return False
        return self.scope in target

    def to_dict(self) -> Dict[str, Any]:
        """Canonical dict form (every field, fixed key set)."""
        return {
            "kind": self.kind,
            "op": self.op,
            "scope": self.scope,
            "start": self.start,
            "count": self.count,
            "delay_s": self.delay_s,
            "skew_s": self.skew_s,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "HavocEvent":
        """Inverse of :meth:`to_dict` (missing keys take their defaults)."""
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - fields
        if unknown:
            raise ValueError(f"unknown HavocEvent keys: {sorted(unknown)}")
        return cls(**data)


@dataclass(frozen=True)
class HavocPlan:
    """An ordered, validated set of havoc events plus the seed that (for
    generated plans) produced them."""

    events: Tuple[HavocEvent, ...] = ()
    seed: int = 0
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    def for_kinds(self, kinds: Iterable[str]) -> Tuple[HavocEvent, ...]:
        """The plan's events belonging to one seam."""
        wanted = set(kinds)
        return tuple(e for e in self.events if e.kind in wanted)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "name": self.name,
            "events": [event.to_dict() for event in self.events],
        }

    def to_json(self) -> str:
        """Compact canonical JSON — the ``REPRO_HAVOC`` env payload."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "HavocPlan":
        if not isinstance(data, dict):
            raise ValueError("havoc plan must be a JSON object")
        events = data.get("events", [])
        if not isinstance(events, list):
            raise ValueError('"events" must be a list')
        return cls(
            events=tuple(HavocEvent.from_dict(e) for e in events),
            seed=int(data.get("seed", 0)),
            name=str(data.get("name", "")),
        )

    @classmethod
    def from_json(cls, text: str) -> "HavocPlan":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ValueError(f"havoc plan is not valid JSON: {exc}") from None
        return cls.from_dict(data)


def generate_plan(
    seed: int,
    enospc_windows: int = 1,
    kills: int = 1,
    sse_drops: int = 1,
    span: int = 6,
    name: str = "",
) -> HavocPlan:
    """A small seeded havoc schedule for soak/smoke runs.

    A pure function of its arguments: the same seed always yields the
    same plan (regression-tested), so a failing soak run can be replayed
    exactly by quoting its seed. ``span`` bounds the op index each window
    may start at — faults land early in a run, where a short smoke grid
    can still reach them.
    """
    rng = random.Random(f"havoc:{seed}")
    events = []
    for _ in range(enospc_windows):
        events.append(
            HavocEvent(
                kind="enospc",
                op="write",
                start=rng.randrange(span),
                count=1 + rng.randrange(2),
            )
        )
    for _ in range(kills):
        events.append(
            HavocEvent(kind="kill", op="claimed", start=1 + rng.randrange(span))
        )
    for _ in range(sse_drops):
        events.append(
            HavocEvent(kind="sse_drop", op="events", start=2 + rng.randrange(span))
        )
    return HavocPlan(events=tuple(events), seed=seed, name=name or f"havoc-{seed}")
