"""Command-line interface: regenerate any of the paper's tables/figures.

Examples::

    python -m repro table2                # indoor code lengths
    python -m repro fig6a --topology sparse-linear
    python -m repro fig7 --channel 19 --controls 20
    python -m repro table3 --seed 2
    python -m repro quickstart --destination 7
    python -m repro compare --csv out.csv

Every experiment command accepts ``--seed`` and prints an ASCII table;
``--csv PATH`` additionally writes machine-readable output.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional

from repro.experiments import report
from repro.experiments.codestats import (
    code_construction_run,
    code_length_by_hop,
    children_by_hop,
    convergence_beacons,
    mean_reverse_ratio,
    reverse_hop_counts,
)
from repro.experiments.comparison import ComparisonResult, run_comparison
from repro.faults import CHAOS_SCENARIOS
from repro.metrics.stats import mean, percentile
from repro.protocols import variant_names

#: Exit-code contract for grid commands (documented in docs/operations.md):
#: 0 = every cell produced a result; 1 = at least one cell failed for good;
#: 3 = the run was interrupted (SIGINT/SIGTERM) and is resumable with
#: ``--resume``.
EXIT_OK = 0
EXIT_FAILED = 1
EXIT_INTERRUPTED = 3


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _job_count(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _write_csv(path: Optional[str], headers, rows) -> None:
    if path is None:
        return
    with open(path, "w") as handle:
        handle.write(report.csv_table(headers, rows))
    print(f"(csv written to {path})")


def _cmd_code_lengths(args: argparse.Namespace) -> int:
    net = code_construction_run(topology=args.topology, seed=args.seed)
    by_hop = code_length_by_hop(net)
    rows = report.code_length_rows(by_hop)
    print(
        report.ascii_table(
            report.CODE_LENGTH_HEADERS,
            rows,
            title=f"Path-code length by hop — {args.topology} (seed {args.seed})",
        )
    )
    _write_csv(args.csv, report.CODE_LENGTH_HEADERS, rows)
    return 0


def _cmd_fig6b(args: argparse.Namespace) -> int:
    net = code_construction_run(topology=args.topology, seed=args.seed)
    grouped = children_by_hop(net)
    headers = ["hop", "n", "avg_children", "max_children"]
    rows = [
        [hop, len(counts), f"{mean(counts):.2f}", max(counts)]
        for hop, counts in sorted(grouped.items())
        if hop < 10**4
    ]
    print(report.ascii_table(headers, rows, title=f"Children by hop — {args.topology}"))
    _write_csv(args.csv, headers, rows)
    return 0


def _cmd_fig6c(args: argparse.Namespace) -> int:
    net = code_construction_run(topology=args.topology, seed=args.seed)
    beacons = convergence_beacons(net)
    headers = ["metric", "beacons (512 ms each)"]
    rows = [
        ["n", len(beacons)],
        ["median", f"{percentile(beacons, 50):.1f}"],
        ["p90", f"{percentile(beacons, 90):.1f}"],
        ["max", f"{max(beacons):.1f}"],
    ]
    print(report.ascii_table(headers, rows, title=f"Convergence — {args.topology}"))
    _write_csv(args.csv, headers, rows)
    return 0


def _cmd_fig6d(args: argparse.Namespace) -> int:
    net = code_construction_run(topology=args.topology, seed=args.seed)
    samples = reverse_hop_counts(net)
    ratio = mean_reverse_ratio(samples)
    headers = ["ctp_hops", "reverse_hops"]
    rows = sorted(samples)
    print(
        report.ascii_table(
            headers,
            rows[:30] + ([["…", "…"]] if len(rows) > 30 else []),
            title=(
                f"Reverse vs CTP hop count — {args.topology} "
                f"(avg ratio {ratio:.3f}; paper ≈ 1.08)"
            ),
        )
    )
    _write_csv(args.csv, headers, rows)
    return 0


def _run_matrix(args: argparse.Namespace, variants, channels) -> Dict[tuple, ComparisonResult]:
    results: Dict[tuple, ComparisonResult] = {}
    for channel in channels:
        for variant in variants:
            print(f"running {variant} on channel {channel}…", file=sys.stderr)
            results[(variant, channel)] = run_comparison(
                variant,
                zigbee_channel=channel,
                seed=args.seed,
                n_controls=args.controls,
                control_interval_s=args.interval,
            )
    return results


def _cmd_fig7(args: argparse.Namespace) -> int:
    variants = ("drip", "re-tele", "tele", "rpl")
    results = _run_matrix(args, variants, [args.channel])
    flat = {variant: results[(variant, args.channel)] for variant in variants}
    headers = ["protocol", "hop", "pdr"]
    rows = report.pdr_by_hop_rows(flat)
    print(
        report.ascii_table(
            headers, rows, title=f"Figure 7: PDR by hop, channel {args.channel}"
        )
    )
    _write_csv(args.csv, headers, rows)
    return 0


def _cmd_fig8(args: argparse.Namespace) -> int:
    results = _run_matrix(args, ("tele", "rpl"), [args.channel])
    flat = {v: results[(v, args.channel)] for v in ("tele", "rpl")}
    headers = ["protocol", "ctp_hops", "athx"]
    rows = report.athx_rows(flat)
    print(
        report.ascii_table(
            headers, rows, title=f"Figure 8: ATHX vs CTP hops, channel {args.channel}"
        )
    )
    _write_csv(args.csv, headers, rows)
    return 0


def _cmd_fig10(args: argparse.Namespace) -> int:
    variants = ("drip", "tele", "rpl")
    results = _run_matrix(args, variants, [args.channel])
    flat = {v: results[(v, args.channel)] for v in variants}
    headers = ["protocol", "hop", "latency_s"]
    rows = report.latency_by_hop_rows(flat)
    print(
        report.ascii_table(
            headers, rows, title=f"Figure 10: latency by hop, channel {args.channel}"
        )
    )
    _write_csv(args.csv, headers, rows)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    variants = tuple(args.variants)
    results = _run_matrix(args, variants, args.channels)
    rows = report.comparison_rows(results)
    print(
        report.ascii_table(
            report.COMPARISON_HEADERS,
            rows,
            title="Protocol comparison (Table III / Figures 7, 9, 10 summary)",
        )
    )
    _write_csv(args.csv, report.COMPARISON_HEADERS, rows)
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    """Regenerate every paper experiment into a directory of CSV files."""
    from pathlib import Path

    from repro.experiments.codestats import children_by_hop
    from repro.metrics.io import save_results

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    # --- construction experiments (Fig 6, Table II) ------------------------
    for topology, tag in (
        ("tight-grid", "fig6a_tight"),
        ("sparse-linear", "fig6a_sparse"),
        ("indoor-testbed", "table2_indoor"),
    ):
        print(f"construction: {topology}…", file=sys.stderr)
        net = code_construction_run(topology=topology, seed=args.seed)
        rows = report.code_length_rows(code_length_by_hop(net))
        (out / f"{tag}.csv").write_text(
            report.csv_table(report.CODE_LENGTH_HEADERS, rows)
        )
        grouped = children_by_hop(net)
        child_rows = [
            [hop, len(counts), f"{mean(counts):.2f}", max(counts)]
            for hop, counts in sorted(grouped.items())
            if hop < 10**4
        ]
        (out / f"{tag}_children.csv").write_text(
            report.csv_table(["hop", "n", "avg_children", "max_children"], child_rows)
        )
        beacons = convergence_beacons(net)
        (out / f"{tag}_convergence.csv").write_text(
            report.csv_table(
                ["metric", "beacons"],
                [
                    ["n", len(beacons)],
                    ["median", f"{percentile(beacons, 50):.2f}"],
                    ["p90", f"{percentile(beacons, 90):.2f}"],
                    ["max", f"{max(beacons):.2f}"],
                ],
            )
        )
        samples = reverse_hop_counts(net)
        (out / f"{tag}_reverse_hops.csv").write_text(
            report.csv_table(["ctp_hops", "reverse_hops"], sorted(samples))
        )

    # --- testbed comparison (Fig 7–10, Table III) ---------------------------
    if not args.skip_comparison:
        variants = ("tele", "re-tele", "rpl", "drip")
        results = {}
        runs = []
        for channel in (26, 19):
            for variant in variants:
                print(f"comparison: {variant} ch{channel}…", file=sys.stderr)
                result = run_comparison(
                    variant,
                    zigbee_channel=channel,
                    seed=args.seed,
                    n_controls=args.controls,
                    control_interval_s=args.interval,
                )
                results[(variant, channel)] = result
                runs.append(result)
        (out / "table3_fig9_summary.csv").write_text(
            report.csv_table(report.COMPARISON_HEADERS, report.comparison_rows(results))
        )
        for channel in (26, 19):
            flat = {v: results[(v, channel)] for v in variants}
            (out / f"fig7_pdr_ch{channel}.csv").write_text(
                report.csv_table(["protocol", "hop", "pdr"], report.pdr_by_hop_rows(flat))
            )
            (out / f"fig10_latency_ch{channel}.csv").write_text(
                report.csv_table(
                    ["protocol", "hop", "latency_s"], report.latency_by_hop_rows(flat)
                )
            )
        (out / "fig8_athx_ch26.csv").write_text(
            report.csv_table(
                ["protocol", "ctp_hops", "athx"],
                report.athx_rows({v: results[(v, 26)] for v in ("tele", "rpl")}),
            )
        )
        save_results(runs, out / "comparison_runs.json")
    print(f"wrote {len(list(out.iterdir()))} files to {out}")
    return 0


#: Grid name → the comparison variants it covers. Channels default to the
#: paper's clean channel (26) except the full matrix, which runs both.
_RUN_GRIDS: Dict[str, tuple] = {
    "fig7": ("drip", "re-tele", "tele", "rpl"),
    "fig8": ("tele", "rpl"),
    "fig10": ("drip", "tele", "rpl"),
    "table3": ("tele", "re-tele", "rpl", "drip"),
    "compare": ("tele", "re-tele", "rpl", "drip"),
}


def _build_runner(args: argparse.Namespace):
    """The ParallelRunner shared by every ``repro run`` grid."""
    from repro.runner import ParallelRunner, ResultCache

    progress = None
    if not args.quiet:
        progress = lambda category, message, **data: print(
            f"[{category}] {message}", file=sys.stderr
        )
    cache = None if args.no_cache else ResultCache(args.cache_dir, progress=progress)
    journal_dir = args.journal_dir
    if journal_dir is None and args.resume:
        journal_dir = ".repro-journal"
    executor = None
    if getattr(args, "queue_dir", None):
        from repro.farm import QueueExecutor

        executor = QueueExecutor(
            args.queue_dir,
            workers=args.farm_workers,
            self_drain=not args.no_self_drain,
            lease_ttl=args.lease_ttl,
        )
    return ParallelRunner(
        jobs=args.jobs,
        cache=cache,
        timeout=args.timeout,
        progress=progress,
        journal_dir=journal_dir,
        resume=args.resume,
        watchdog=args.watchdog,
        handle_signals=True,
        executor=executor,
    )


def _finish_run(run_report) -> int:
    """Print one line per failed cell; exit code reflects failures."""
    for cell in run_report.failures():
        tag = " [quarantined]" if cell.quarantined else ""
        print(f"FAILED {cell.label}: {cell.attempts} attempt(s): {cell.error}{tag}")
    if run_report.interrupted:
        hint = ""
        if run_report.journal:
            journal_dir = os.path.dirname(run_report.journal)
            hint = f" — resume with --resume --journal-dir {journal_dir}"
        print(f"INTERRUPTED: {run_report.interrupted} cell(s) unfinished{hint}")
        return EXIT_INTERRUPTED
    return EXIT_OK if run_report.failed == 0 else EXIT_FAILED


def _schedule_overrides(args: argparse.Namespace) -> Dict[str, float]:
    """Optional converge/drain schedule overrides for grid spec builders."""
    overrides: Dict[str, float] = {}
    if args.converge is not None:
        overrides["converge_seconds"] = args.converge
    if args.drain is not None:
        overrides["drain_seconds"] = args.drain
    return overrides


def _cmd_run(args: argparse.Namespace) -> int:
    """Run an experiment grid through the parallel execution engine."""
    from repro.experiments.sweep import AggregateMetric
    from repro.metrics.io import comparison_from_dict, save_results
    from repro.runner import comparison_spec

    if args.grid == "chaos":
        return _cmd_run_chaos(args)
    if args.grid == "scale":
        return _cmd_run_scale(args)
    if args.grid == "soak":
        return _cmd_run_soak(args)
    if args.grid == "lora":
        return _cmd_run_lora(args)

    variants = _RUN_GRIDS[args.grid]
    channels = args.channels
    if channels is None:
        channels = [26, 19] if args.grid in ("compare", "table3") else [26]
    schedule = _schedule_overrides(args)
    specs = [
        comparison_spec(
            variant,
            zigbee_channel=channel,
            seed=seed,
            n_controls=args.controls if args.controls is not None else 20,
            control_interval_s=args.interval if args.interval is not None else 60.0,
            **schedule,
        )
        for channel in channels
        for variant in variants
        for seed in args.seeds
    ]
    runner = _build_runner(args)
    outcomes = runner.run(specs)

    runs = []
    rows = []
    aggregates: Dict[tuple, Dict[str, AggregateMetric]] = {}
    for outcome in outcomes:
        params = outcome.spec.params
        key = (params["variant"], params["zigbee_channel"])
        if outcome.result is None:
            rows.append([*key, params["seed"], outcome.status, "-", "-", "-", "-"])
            continue
        run = comparison_from_dict(outcome.result)
        runs.append(run)
        rows.append(
            [
                run.variant,
                run.zigbee_channel,
                run.seed,
                outcome.status,
                f"{run.pdr:.3f}" if run.pdr is not None else "n/a",
                f"{run.tx_per_control:.2f}" if run.tx_per_control else "n/a",
                f"{run.duty_cycle * 100:.2f}" if run.duty_cycle else "n/a",
                f"{run.mean_latency:.2f}" if run.mean_latency else "n/a",
            ]
        )
        cell = aggregates.setdefault(
            key, {m: AggregateMetric() for m in ("pdr", "tx", "duty", "latency")}
        )
        cell["pdr"].add(run.pdr)
        cell["tx"].add(run.tx_per_control)
        cell["duty"].add(run.duty_cycle)
        cell["latency"].add(run.mean_latency)

    headers = ["variant", "ch", "seed", "status", "pdr", "tx/ctl", "duty%", "latency_s"]
    print(
        report.ascii_table(
            headers, rows, title=f"Grid {args.grid}: per-cell results"
        )
    )
    if len(args.seeds) > 1:
        agg_rows = [
            [
                variant,
                channel,
                cell["pdr"].summary(),
                cell["tx"].summary(),
                cell["latency"].summary(),
            ]
            for (variant, channel), cell in sorted(aggregates.items())
        ]
        print()
        print(
            report.ascii_table(
                ["variant", "ch", "pdr", "tx/ctl", "latency_s"],
                agg_rows,
                title=f"Grid {args.grid}: seed-averaged (n={len(args.seeds)})",
            )
        )
    print()
    print(runner.last_report.summary_table())
    _write_csv(args.csv, headers, rows)
    if args.out:
        save_results(runs, args.out)
        print(f"(results written to {args.out})")
    return _finish_run(runner.last_report)


def _cmd_run_chaos(args: argparse.Namespace) -> int:
    """Chaos grid: sweep fault intensity × variant × seed under one scenario."""
    import json

    from repro.experiments.chaos import chaos_grid_specs
    from repro.experiments.sweep import AggregateMetric

    specs = chaos_grid_specs(
        args.variants,
        args.intensities,
        args.seeds,
        scenario=args.scenario,
        n_controls=args.controls if args.controls is not None else 20,
        control_interval_s=args.interval if args.interval is not None else 60.0,
        **_schedule_overrides(args),
    )
    runner = _build_runner(args)
    outcomes = runner.run(specs)

    results = []
    rows = []
    aggregates: Dict[tuple, Dict[str, AggregateMetric]] = {}
    for outcome in outcomes:
        params = outcome.spec.params
        key = (params["variant"], params["intensity"])
        if outcome.result is None:
            rows.append(
                [*key, params["seed"], outcome.status, "-", "-", "-", "-", "-"]
            )
            continue
        result = outcome.result
        results.append(result)
        recovery = result["recovery"]
        mean_rec = recovery["mean_recovery_latency_s"]
        rows.append(
            [
                result["variant"],
                result["intensity"],
                result["seed"],
                outcome.status,
                f"{result['pdr']:.3f}" if result["pdr"] is not None else "n/a",
                f"{mean_rec:.1f}" if mean_rec is not None else "n/a",
                recovery["backtracks"],
                recovery["re_tele_invocations"],
                recovery["stale_code_sends"],
            ]
        )
        cell = aggregates.setdefault(
            key, {m: AggregateMetric() for m in ("pdr", "recovery")}
        )
        cell["pdr"].add(result["pdr"])
        cell["recovery"].add(mean_rec)

    headers = [
        "variant", "intensity", "seed", "status",
        "pdr", "recovery_s", "backtracks", "re_tele", "stale",
    ]
    print(
        report.ascii_table(
            headers, rows, title=f"Chaos grid ({args.scenario}): per-cell results"
        )
    )
    # The degradation curve: how delivery and recovery latency bend as the
    # fault intensity rises, per variant.
    agg_rows = [
        [variant, intensity, cell["pdr"].summary(), cell["recovery"].summary()]
        for (variant, intensity), cell in sorted(aggregates.items())
    ]
    print()
    print(
        report.ascii_table(
            ["variant", "intensity", "pdr", "recovery_s"],
            agg_rows,
            title=(
                f"Chaos degradation curve ({args.scenario}, "
                f"n={len(args.seeds)} seeds)"
            ),
        )
    )
    print()
    print(runner.last_report.summary_table())
    _write_csv(args.csv, headers, rows)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
        print(f"(results written to {args.out})")
    return _finish_run(runner.last_report)


def _cmd_run_lora(args: argparse.Namespace) -> int:
    """Long-range grid: tele-vs-drip over a profile-derived km-scale field.

    Each cell is one :func:`repro.experiments.lora.run_lora` call — the same
    control protocols as the comparison grid, but priced by the long-range
    radio profile (sub-kbps airtime, multi-km links, p-CSMA MAC). The
    default schedule is already stretched for sub-kbps links, so
    ``--controls``/``--interval`` default to the lora schedule rather than
    the comparison one.
    """
    import json

    from repro.experiments.lora import LORA_DEFAULTS, lora_grid_specs
    from repro.experiments.sweep import AggregateMetric

    specs = lora_grid_specs(
        args.lora_variants,
        args.seeds,
        radio_profile=args.radio_profile,
        n_controls=(
            args.controls
            if args.controls is not None
            else LORA_DEFAULTS["n_controls"]
        ),
        control_interval_s=(
            args.interval
            if args.interval is not None
            else LORA_DEFAULTS["control_interval_s"]
        ),
        **_schedule_overrides(args),
    )
    runner = _build_runner(args)
    outcomes = runner.run(specs)

    results = []
    rows = []
    aggregates: Dict[tuple, Dict[str, AggregateMetric]] = {}
    for outcome in outcomes:
        params = outcome.spec.params
        key = (params["variant"],)
        if outcome.result is None:
            rows.append([*key, params["seed"], outcome.status, "-", "-", "-"])
            continue
        result = outcome.result
        results.append(result)
        rows.append(
            [
                result["variant"],
                result["seed"],
                outcome.status,
                f"{result['pdr']:.3f}" if result["pdr"] is not None else "n/a",
                (
                    f"{result['mean_latency_s']:.1f}"
                    if result["mean_latency_s"] is not None
                    else "n/a"
                ),
                (
                    f"{result['tx_per_control']:.2f}"
                    if result["tx_per_control"]
                    else "n/a"
                ),
            ]
        )
        cell = aggregates.setdefault(
            key, {m: AggregateMetric() for m in ("pdr", "latency", "tx")}
        )
        cell["pdr"].add(result["pdr"])
        cell["latency"].add(result["mean_latency_s"])
        cell["tx"].add(result["tx_per_control"])

    headers = ["variant", "seed", "status", "pdr", "latency_s", "tx/ctl"]
    print(
        report.ascii_table(
            headers,
            rows,
            title=f"Long-range grid ({args.radio_profile}): per-cell results",
        )
    )
    if len(args.seeds) > 1:
        agg_rows = [
            [
                variant,
                cell["pdr"].summary(),
                cell["latency"].summary(),
                cell["tx"].summary(),
            ]
            for (variant,), cell in sorted(aggregates.items())
        ]
        print()
        print(
            report.ascii_table(
                ["variant", "pdr", "latency_s", "tx/ctl"],
                agg_rows,
                title=(
                    f"Long-range grid ({args.radio_profile}, "
                    f"n={len(args.seeds)} seeds)"
                ),
            )
        )
    print()
    print(runner.last_report.summary_table())
    _write_csv(args.csv, headers, rows)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
        print(f"(results written to {args.out})")
    return _finish_run(runner.last_report)


def _cmd_run_scale(args: argparse.Namespace) -> int:
    """City-scale grid: topology generator × network size × seed.

    Each cell is one converge+control workload on a generated multi-thousand
    node deployment with the grid-hash spatial index enabled (``--dense``
    switches the brute-force O(N²) channel back on for A/B timing — same
    digests, very different wall clock; see docs/performance.md).
    """
    import json

    from repro.runner import scale_spec

    schedule = _schedule_overrides(args)
    if args.controls is not None:
        schedule["n_controls"] = args.controls
    if args.interval is not None:
        schedule["control_interval_s"] = args.interval
    specs = [
        scale_spec(
            topo,
            size=size,
            seed=seed,
            spatial_index=not args.dense,
            **schedule,
        )
        for topo in args.topos
        for size in args.sizes
        for seed in args.seeds
    ]
    runner = _build_runner(args)
    outcomes = runner.run(specs)

    results = []
    rows = []
    for outcome in outcomes:
        params = outcome.spec.params
        if outcome.result is None:
            rows.append(
                [params["topo"], params["size"], params["seed"], outcome.status]
                + ["-"] * 5
            )
            continue
        result = outcome.result
        results.append(result)
        rows.append(
            [
                result["topology"],
                result["size"],
                result["seed"],
                outcome.status,
                f"{result['pdr']:.3f}" if result["pdr"] is not None else "n/a",
                (
                    f"{result['mean_latency_s']:.3f}"
                    if result["mean_latency_s"] is not None
                    else "n/a"
                ),
                "yes" if result["converged"] else "NO",
                result["events_executed"],
                f"{result['events_per_sec']:,.0f}",
            ]
        )

    headers = [
        "topo", "nodes", "seed", "status",
        "pdr", "latency_s", "converged", "events", "events/s",
    ]
    print(report.ascii_table(headers, rows, title="Scale grid: per-cell results"))
    print()
    print(runner.last_report.summary_table())
    _write_csv(args.csv, headers, rows)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
        print(f"(results written to {args.out})")
    return _finish_run(runner.last_report)


def _cmd_run_soak(args: argparse.Namespace) -> int:
    """Endurance grid: protocol variant × churn intensity × seed.

    Each cell is one multi-hour/multi-day soak under mobility churn and
    battery depletion with memory-flat streaming metrics; the report shows
    the whole-run summary plus the degradation tail of the slowest-decaying
    cell (see docs/soak.md).
    """
    import json

    from repro.experiments.soak import soak_grid_rows
    from repro.runner import soak_spec

    schedule = {}
    if args.duration is not None:
        schedule["duration_s"] = args.duration
    if args.window is not None:
        schedule["window_s"] = args.window
    if args.battery_mah is not None:
        schedule["battery_mah"] = args.battery_mah or None
    if args.interval is not None:
        schedule["control_interval_s"] = args.interval
    if args.converge is not None:
        schedule["converge_seconds"] = args.converge
    specs = [
        soak_spec(
            variant,
            seed=seed,
            zigbee_channel=26,
            churn_intensity=intensity,
            **schedule,
        )
        for variant in args.variants
        for intensity in args.intensities
        for seed in args.seeds
    ]
    runner = _build_runner(args)
    outcomes = runner.run(specs)

    results = []
    rows = []
    for outcome in outcomes:
        params = outcome.spec.params
        if outcome.result is None:
            rows.append(
                [
                    params["variant"],
                    f"{params['schedule']['churn_intensity']:g}",
                    params["seed"],
                    outcome.status,
                ]
                + ["-"] * 6
            )
            continue
        result = outcome.result
        results.append(result)
        rows.append(
            [
                result["variant"],
                f"{result['churn_intensity']:g}",
                result["seed"],
                outcome.status,
                (
                    f"{result['delivery']:.3f}"
                    if result["delivery"] is not None
                    else "n/a"
                ),
                (
                    f"{result['mean_latency_s']:.3f}"
                    if result["mean_latency_s"] is not None
                    else "n/a"
                ),
                result["deaths"],
                result["positions_reclaimed"],
                result["events_executed"],
                f"{result['events_per_sec']:,.0f}",
            ]
        )

    headers = [
        "variant", "churn", "seed", "status",
        "delivery", "latency_s", "deaths", "reclaimed", "events", "events/s",
    ]
    print(report.ascii_table(headers, rows, title="Soak grid: per-cell results"))
    if results:
        # Degradation tail of the worst cell (lowest whole-run delivery):
        # the curve the short grids cannot show.
        worst = min(
            results,
            key=lambda r: r["delivery"] if r["delivery"] is not None else 1.0,
        )
        tail_rows = [
            [
                f"{row['t_s']:.0f}",
                (
                    f"{row['delivery']:.3f}"
                    if row["delivery"] is not None
                    else "n/a"
                ),
                (
                    f"{row['latency_mean_s']:.3f}"
                    if row["latency_mean_s"] is not None
                    else "n/a"
                ),
                (
                    f"{row['duty_cycle'] * 100:.2f}"
                    if row["duty_cycle"] is not None
                    else "n/a"
                ),
                row["re_tele"],
                row["backtracks"],
                row["alive"] if row["alive"] is not None else "n/a",
                row["reclaimed"],
            ]
            for row in soak_grid_rows(worst)
        ]
        if tail_rows:
            print()
            print(
                report.ascii_table(
                    [
                        "t_s", "delivery", "latency_s", "duty%",
                        "re_tele", "backtracks", "alive", "reclaimed",
                    ],
                    tail_rows,
                    title=(
                        f"Degradation tail: {worst['variant']} "
                        f"churn={worst['churn_intensity']:g} "
                        f"seed={worst['seed']}"
                    ),
                )
            )
    print()
    print(runner.last_report.summary_table())
    _write_csv(args.csv, headers, rows)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
        print(f"(results written to {args.out})")
    return _finish_run(runner.last_report)


def _cmd_quickstart(args: argparse.Namespace) -> int:
    import repro

    net = repro.build_network(topology=args.topology, seed=args.seed)
    net.converge(max_seconds=240)
    destination = args.destination
    if destination is None:
        candidates = [
            n
            for n in net.non_sink_nodes()
            if net.protocols[n].path_code is not None
            and net.stacks[n].routing.hop_count <= 6
        ]
        destination = max(candidates, key=lambda n: net.stacks[n].routing.hop_count)
    record = net.send_control(destination, payload={"demo": True})
    net.run(60)
    hops = net.stacks[destination].routing.hop_count
    print(
        f"node {destination} ({hops} hops): delivered={record.delivered} "
        f"latency={record.latency_s and round(record.latency_s, 2)}s "
        f"athx={record.athx}"
    )
    return 0 if record.delivered else 1


def _stderr_progress(category: str, message: str, **data: object) -> None:
    print(f"[{category}] {message}", file=sys.stderr)


def _cmd_serve(args: argparse.Namespace) -> int:
    """Start the farm HTTP service (results as a service)."""
    from pathlib import Path

    from repro.farm.service import run_service
    from repro.runner import ParallelRunner, ResultCache

    cache = None if args.no_cache else ResultCache(args.cache_dir)

    def factory(job):
        executor = None
        if args.queue_dir:
            from repro.farm import QueueExecutor

            # One queue directory per grid fingerprint: identical
            # resubmissions re-attach to the same queue (terminal markers
            # included), unrelated grids never share lease state.
            executor = QueueExecutor(
                Path(args.queue_dir) / job.grid[:16],
                workers=args.farm_workers,
                self_drain=not args.no_self_drain,
                lease_ttl=args.lease_ttl,
            )
        return ParallelRunner(
            jobs=args.jobs,
            cache=cache,
            timeout=args.timeout,
            retries=args.retries,
            executor=executor,
        )

    return run_service(
        factory,
        host=args.host,
        port=args.port,
        announce=not args.quiet,
        max_pending=args.max_pending,
        read_timeout=args.read_timeout,
    )


def _cmd_farm_worker(args: argparse.Namespace) -> int:
    """Attach this process to a queue directory and drain cells."""
    import json
    import signal as signal_module
    import threading

    from repro.farm import drain_queue
    from repro.runner.retry import RetryPolicy

    stop = threading.Event()
    for signum in (signal_module.SIGINT, signal_module.SIGTERM):
        try:
            signal_module.signal(signum, lambda *_: stop.set())
        except ValueError:  # pragma: no cover — non-main thread
            pass
    stats = drain_queue(
        args.queue_dir,
        cache_dir=args.cache_dir,
        worker_id=args.worker_id,
        lease_ttl=args.lease_ttl,
        policy=RetryPolicy(retries=args.retries),
        follow=args.follow,
        max_cells=args.max_cells,
        progress=None if args.quiet else _stderr_progress,
        stop=stop,
    )
    print(json.dumps(stats.to_dict(), sort_keys=True))
    # A worker that aborted on persistent storage failure exits nonzero so
    # supervisors (and the havoc soak) can tell "drained" from "gave up".
    return EXIT_FAILED if stats.aborted else EXIT_OK


def _farm_payload(spec: str) -> Dict[str, object]:
    """Resolve ``farm submit SPEC``: '-' = stdin, a path, or inline JSON."""
    import json

    if spec == "-":
        text = sys.stdin.read()
    elif os.path.exists(spec):
        with open(spec) as handle:
            text = handle.read()
    else:
        text = spec
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SystemExit(f"spec is not valid JSON ({exc}): {text[:120]}")
    if not isinstance(payload, dict):
        raise SystemExit("spec must be a JSON object")
    return payload


def _cmd_farm_submit(args: argparse.Namespace) -> int:
    import json

    from repro.farm import client

    summary = client.submit(args.url, _farm_payload(args.spec))
    if not args.wait:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return EXIT_OK
    status = client.wait(
        args.url, summary["id"], timeout=args.timeout, poll_s=args.poll
    )
    print(json.dumps(status, indent=2, sort_keys=True))
    if status["state"] == "done":
        return EXIT_OK
    return EXIT_INTERRUPTED if status["state"] == "interrupted" else EXIT_FAILED


def _cmd_farm_status(args: argparse.Namespace) -> int:
    import json

    from repro.farm import client

    if args.job:
        print(json.dumps(client.job(args.url, args.job), indent=2, sort_keys=True))
    else:
        print(json.dumps(client.health(args.url), indent=2, sort_keys=True))
    return EXIT_OK


def _cmd_farm_results(args: argparse.Namespace) -> int:
    import json

    from repro.farm import client

    payload = client.results(args.url, args.job)
    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print(f"(results written to {args.out})")
    else:
        print(text)
    return EXIT_OK if payload["state"] != "failed" else EXIT_FAILED


def _cmd_farm_watch(args: argparse.Namespace) -> int:
    import json

    from repro.farm import client

    def note_reconnect(attempt: int, cursor: int) -> None:
        print(
            f"[farm] stream dropped; reconnecting from event {cursor} "
            f"(attempt {attempt})",
            file=sys.stderr,
        )

    for event in client.watch(
        args.url,
        args.job,
        timeout=args.timeout,
        reconnects=args.reconnects,
        on_reconnect=note_reconnect,
    ):
        print(json.dumps(event, sort_keys=True), flush=True)
    return EXIT_OK


def _cmd_farm(args: argparse.Namespace) -> int:
    from repro.farm.client import FarmClientError

    handler = {
        "worker": _cmd_farm_worker,
        "submit": _cmd_farm_submit,
        "status": _cmd_farm_status,
        "results": _cmd_farm_results,
        "watch": _cmd_farm_watch,
    }[args.farm_command]
    try:
        return handler(args)
    except FarmClientError as exc:
        print(f"farm: {exc}", file=sys.stderr)
        return EXIT_FAILED


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the repro CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TeleAdjusting (ICDCS'15) reproduction: regenerate the paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, topology_default="tight-grid"):
        """Attach the shared seed/csv/topology options."""
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--csv", type=str, default=None)
        p.add_argument(
            "--topology",
            choices=("tight-grid", "sparse-linear", "indoor-testbed"),
            default=topology_default,
        )

    def comparison_common(p):
        """Attach the shared comparison-run options."""
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--csv", type=str, default=None)
        p.add_argument("--controls", type=int, default=20)
        p.add_argument("--interval", type=float, default=60.0)

    p = sub.add_parser("fig6a", help="code length vs hop count")
    common(p)
    p.set_defaults(func=_cmd_code_lengths)

    p = sub.add_parser("fig6b", help="children per hop")
    common(p)
    p.set_defaults(func=_cmd_fig6b)

    p = sub.add_parser("fig6c", help="convergence rate")
    common(p)
    p.set_defaults(func=_cmd_fig6c)

    p = sub.add_parser("fig6d", help="reverse vs CTP hop count")
    common(p)
    p.set_defaults(func=_cmd_fig6d)

    p = sub.add_parser("table2", help="indoor testbed code lengths")
    common(p, topology_default="indoor-testbed")
    p.set_defaults(func=_cmd_code_lengths)

    p = sub.add_parser("fig7", help="PDR by hop per protocol")
    comparison_common(p)
    p.add_argument("--channel", type=int, choices=(26, 19), default=26)
    p.set_defaults(func=_cmd_fig7)

    p = sub.add_parser("fig8", help="ATHX vs CTP hops")
    comparison_common(p)
    p.add_argument("--channel", type=int, choices=(26, 19), default=26)
    p.set_defaults(func=_cmd_fig8)

    p = sub.add_parser("fig10", help="latency by hop per protocol")
    comparison_common(p)
    p.add_argument("--channel", type=int, choices=(26, 19), default=26)
    p.set_defaults(func=_cmd_fig10)

    p = sub.add_parser(
        "compare", help="full matrix: Table III + Figure 9 summary"
    )
    comparison_common(p)
    p.add_argument(
        "--channels", type=int, nargs="+", choices=(26, 19), default=[26, 19]
    )
    p.add_argument(
        "--variants",
        nargs="+",
        choices=tuple(variant_names()),
        default=["tele", "re-tele", "rpl", "drip"],
    )
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser(
        "all", help="regenerate every paper experiment into CSV files"
    )
    p.add_argument("--out", type=str, default="results")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--controls", type=int, default=25)
    p.add_argument("--interval", type=float, default=60.0)
    p.add_argument(
        "--skip-comparison",
        action="store_true",
        help="only the fast construction experiments (Fig 6 / Table II)",
    )
    p.set_defaults(func=_cmd_all)

    p = sub.add_parser(
        "run",
        help="run an experiment grid in parallel with result caching",
        description=(
            "Execute a grid of comparison cells through repro.runner: "
            "cells fan out over --jobs worker processes and unchanged cells "
            "are answered from --cache-dir instead of re-simulated. The "
            "'chaos' grid sweeps fault intensity under a --scenario preset."
        ),
    )
    p.add_argument(
        "grid", choices=sorted([*_RUN_GRIDS, "chaos", "scale", "soak", "lora"])
    )
    p.add_argument(
        "--jobs", type=_job_count, default=1,
        help="worker processes (1 = serial, 0 = auto-detect cpu count)",
    )
    p.add_argument(
        "--seeds", type=int, nargs="+", default=[1], help="one cell per seed"
    )
    p.add_argument(
        "--channels", type=int, nargs="+", choices=(26, 19), default=None,
        help="override the grid's default ZigBee channels",
    )
    p.add_argument(
        "--controls", type=int, default=None,
        help="control packets per cell (default: 20; scale grid: 5)",
    )
    p.add_argument(
        "--interval", type=float, default=None,
        help="seconds between controls (default: 60; scale grid: 10)",
    )
    p.add_argument(
        "--converge", type=float, default=None,
        help="override the grid's convergence window (simulated seconds)",
    )
    p.add_argument(
        "--drain", type=float, default=None,
        help="override the grid's drain window (simulated seconds)",
    )
    p.add_argument(
        "--cache-dir", type=str, default=".repro-cache",
        help="content-addressed result cache directory",
    )
    p.add_argument(
        "--no-cache", action="store_true", help="always re-simulate every cell"
    )
    p.add_argument(
        "--timeout", type=float, default=None,
        help="per-cell wall-clock timeout in seconds (parallel mode only)",
    )
    p.add_argument(
        "--journal-dir", type=str, default=None,
        help="write a resumable run journal under this directory",
    )
    p.add_argument(
        "--resume", action="store_true",
        help=(
            "resume this grid from its journal (implies --journal-dir "
            ".repro-journal when no directory is given): completed cells "
            "are served from the journal, the rest re-run"
        ),
    )
    p.add_argument(
        "--watchdog", type=float, default=None,
        help=(
            "heartbeat watchdog window in seconds (parallel mode only): "
            "kill and retry workers that stop beating or stop progressing"
        ),
    )
    p.add_argument("--csv", type=str, default=None)
    p.add_argument("--out", type=str, default=None, help="save full runs as JSON")
    p.add_argument("--quiet", action="store_true", help="no per-cell progress lines")
    farm_group = p.add_argument_group(
        "farm", "drain the grid through the shared lease queue instead of a "
        "local process pool (see docs/operations.md)"
    )
    farm_group.add_argument(
        "--queue-dir", type=str, default=None,
        help="shared queue directory; enables the queue executor",
    )
    farm_group.add_argument(
        "--farm-workers", type=_job_count, default=0,
        help="worker subprocesses to spawn for the drain (0 = none)",
    )
    farm_group.add_argument(
        "--lease-ttl", type=float, default=15.0,
        help="seconds before a dead worker's lease is stolen",
    )
    farm_group.add_argument(
        "--no-self-drain", action="store_true",
        help="never run cells in this process; rely on attached workers",
    )
    p.add_argument(
        "--scenario", choices=CHAOS_SCENARIOS, default="crash-churn",
        help="chaos grid only: fault scenario preset",
    )
    p.add_argument(
        "--intensities", type=float, nargs="+", default=[0.25, 0.5, 1.0],
        help="chaos/soak grids: fault or churn intensities to sweep",
    )
    p.add_argument(
        "--variants", nargs="+",
        choices=tuple(variant_names()),
        default=["tele", "re-tele"],
        help="chaos/soak grids: protocol variants",
    )
    scale_group = p.add_argument_group(
        "scale", "city-scale grid: generated multi-thousand-node deployments "
        "on the spatial-index channel (see docs/performance.md)"
    )
    scale_group.add_argument(
        "--sizes", type=int, nargs="+", default=[2000],
        help="scale grid only: approximate node counts to sweep",
    )
    scale_group.add_argument(
        "--topos", nargs="+", default=["forest"],
        choices=("forest", "city-blocks", "clustered"),
        help="scale grid only: deployment generators to sweep",
    )
    scale_group.add_argument(
        "--dense", action="store_true",
        help="scale grid only: disable the spatial index (brute-force O(N²) "
        "channel build — same results, much slower at scale)",
    )
    lora_group = p.add_argument_group(
        "lora", "long-range grid: tele-vs-drip over a radio-profile-derived "
        "km-scale field at sub-kbps rates (see docs/api.md)"
    )
    lora_group.add_argument(
        "--radio-profile", type=str, default="lora",
        help="lora grid only: registered radio profile to run on",
    )
    lora_group.add_argument(
        "--lora-variants", nargs="+",
        choices=tuple(variant_names()),
        default=["tele", "drip"],
        help="lora grid only: protocol variants",
    )
    soak_group = p.add_argument_group(
        "soak", "endurance grid: multi-day sim-time soaks under mobility "
        "churn and battery depletion with streaming metrics (see docs/soak.md)"
    )
    soak_group.add_argument(
        "--duration", type=float, default=None,
        help="soak grid only: simulated seconds per cell (default: 86400)",
    )
    soak_group.add_argument(
        "--window", type=float, default=None,
        help="soak grid only: streaming-metrics window in simulated seconds "
        "(default: 600)",
    )
    soak_group.add_argument(
        "--battery-mah", type=float, default=None,
        help="soak grid only: mean per-node battery budget in mAh "
        "(0 disables depletion; default: 5)",
    )
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("quickstart", help="one remote-control round trip")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--topology",
        choices=("tight-grid", "sparse-linear", "indoor-testbed"),
        default="indoor-testbed",
    )
    p.add_argument("--destination", type=int, default=None)
    p.set_defaults(func=_cmd_quickstart)

    p = sub.add_parser(
        "serve",
        help="start the experiment-farm HTTP service (results as a service)",
        description=(
            "Accept experiment specs over HTTP, execute them through the "
            "runner (optionally fanning cells out to farm workers via "
            "--queue-dir), stream cell-level progress, and answer identical "
            "resubmissions straight from the result cache."
        ),
    )
    p.add_argument("--host", type=str, default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=8642,
        help="TCP port (0 = pick a free one and print it)",
    )
    p.add_argument(
        "--jobs", type=_job_count, default=1,
        help="worker processes per job (1 = serial, 0 = auto-detect)",
    )
    p.add_argument("--cache-dir", type=str, default=".repro-cache")
    p.add_argument(
        "--no-cache", action="store_true",
        help="disable the result cache (resubmissions re-execute)",
    )
    p.add_argument("--timeout", type=float, default=None)
    p.add_argument("--retries", type=int, default=2)
    p.add_argument(
        "--queue-dir", type=str, default=None,
        help="run jobs through the shared lease queue under this directory",
    )
    p.add_argument("--farm-workers", type=_job_count, default=0)
    p.add_argument("--lease-ttl", type=float, default=15.0)
    p.add_argument("--no-self-drain", action="store_true")
    p.add_argument(
        "--max-pending", type=int, default=32,
        help="admission bound on queued+running jobs (excess gets 429)",
    )
    p.add_argument(
        "--read-timeout", type=float, default=10.0,
        help="seconds a client may stall mid-request before 408 + close",
    )
    p.add_argument("--quiet", action="store_true")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "farm",
        help="experiment-farm tools: attach a worker, talk to the service",
    )
    farm_sub = p.add_subparsers(dest="farm_command", required=True)

    w = farm_sub.add_parser(
        "worker",
        help="attach this process to a queue directory and drain cells",
    )
    w.add_argument("--queue-dir", type=str, required=True)
    w.add_argument(
        "--cache-dir", type=str, default=None,
        help="shared result cache (cross-grid dedup)",
    )
    w.add_argument("--lease-ttl", type=float, default=15.0)
    w.add_argument("--retries", type=int, default=2)
    w.add_argument("--worker-id", type=str, default=None)
    w.add_argument(
        "--follow", action="store_true",
        help="keep polling for new work after the queue drains",
    )
    w.add_argument("--max-cells", type=int, default=None)
    w.add_argument("--quiet", action="store_true")
    w.set_defaults(func=_cmd_farm)

    s = farm_sub.add_parser("submit", help="submit a spec payload to the service")
    s.add_argument("spec", help="JSON payload: a path, inline JSON, or - for stdin")
    s.add_argument("--url", type=str, default="http://127.0.0.1:8642")
    s.add_argument("--wait", action="store_true", help="poll until terminal")
    s.add_argument("--timeout", type=float, default=600.0)
    s.add_argument("--poll", type=float, default=0.5)
    s.set_defaults(func=_cmd_farm)

    st = farm_sub.add_parser("status", help="service health or one job's status")
    st.add_argument("job", nargs="?", default=None)
    st.add_argument("--url", type=str, default="http://127.0.0.1:8642")
    st.set_defaults(func=_cmd_farm)

    r = farm_sub.add_parser("results", help="fetch a job's results")
    r.add_argument("job")
    r.add_argument("--url", type=str, default="http://127.0.0.1:8642")
    r.add_argument("--out", type=str, default=None)
    r.set_defaults(func=_cmd_farm)

    wt = farm_sub.add_parser(
        "watch",
        help="stream a job's progress events (reconnects on drops)",
    )
    wt.add_argument("job")
    wt.add_argument("--url", type=str, default="http://127.0.0.1:8642")
    wt.add_argument("--timeout", type=float, default=600.0)
    wt.add_argument(
        "--reconnects", type=int, default=5,
        help="max automatic Last-Event-ID reconnects after stream drops",
    )
    wt.set_defaults(func=_cmd_farm)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
