"""Recovery metrics: how well the control plane rode out injected faults.

:func:`recovery_report` condenses one faulted run into a JSON-ready dict:
delivery ratio under churn, time-to-first-successful-control after each
disruptive fault, countermeasure invocation counts (backtracking, Re-Tele,
feedback packets, position requests), stale-code sends, and what the
injector actually did. All numbers are deterministic functions of the run.
"""

from __future__ import annotations

from typing import Any, Dict, List, TYPE_CHECKING

from repro.radio.frame import FrameType
from repro.sim.units import SECOND

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.harness import Network


def _tx_count(network: "Network", frame_type: FrameType) -> int:
    return sum(
        stack.tx_by_type.get(frame_type, 0) for stack in network.stacks.values()
    )


def recovery_report(network: "Network") -> Dict[str, Any]:
    """Summarise churn resilience for one (possibly fault-free) run.

    The TeleAdjusting-specific counters are zero for baseline protocols —
    the report shape stays the same so chaos grids can sweep variants.
    """
    records = network.control_metrics.records
    delivered = [r for r in records if r.delivered]
    ratio = len(delivered) / len(records) if records else 0.0
    latencies = [r.latency_s for r in delivered]

    # Time from each disruptive fault to the first control *sent after it*
    # that still got through — the user-visible outage length.
    injector = network.fault_injector
    recovery_samples: List[float] = []
    if injector is not None:
        for fault_time in injector.disruption_times:
            after = [
                r
                for r in delivered
                if r.sent_at >= fault_time and r.delivered_at is not None
            ]
            if after:
                first = min(after, key=lambda r: r.delivered_at)
                recovery_samples.append((first.delivered_at - fault_time) / SECOND)

    # Protocol-specific countermeasure counters come from each adapter's
    # summary() hook; adapters without those counters contribute nothing.
    backtracks = 0
    re_tele_invocations = 0
    code_changes = 0
    for adapter in network.protocols.values():
        counters = adapter.summary()
        backtracks += counters.get("backtracks", 0)
        re_tele_invocations += counters.get("re_tele_invocations", 0)
        code_changes += counters.get("code_changes", 0)

    report: Dict[str, Any] = {
        "controls_sent": len(records),
        "controls_delivered": len(delivered),
        "delivery_ratio": ratio,
        "mean_latency_s": (sum(latencies) / len(latencies)) if latencies else None,
        "recovery_latency_s": recovery_samples,
        "mean_recovery_latency_s": (
            sum(recovery_samples) / len(recovery_samples)
            if recovery_samples
            else None
        ),
        "backtracks": backtracks,
        "re_tele_invocations": re_tele_invocations,
        "feedback_packets": _tx_count(network, FrameType.FEEDBACK),
        "position_requests": _tx_count(network, FrameType.POSITION_REQUEST),
        "code_changes": code_changes,
        "stale_code_sends": network.stale_code_sends,
        "injected": injector.stats.to_dict() if injector is not None else None,
        "faults_fired": len(injector.fired) if injector is not None else 0,
    }
    return report
