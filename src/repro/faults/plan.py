"""Declarative fault plans.

A :class:`FaultPlan` is a value object: an ordered tuple of
:class:`FaultEvent` entries plus a little metadata. It serialises
canonically (:meth:`FaultPlan.to_dict` / :meth:`FaultPlan.from_dict`), so a
plan attached to a ``NetworkConfig`` flows into the ``TaskSpec``
fingerprint and two runs with the same plan hash to the same cache entry.
Because fingerprints go through ``canonical_json`` (which rejects
NaN/infinity), attenuation values must be finite — a *blackout* is spelled
``attenuation_db=None`` and the injector substitutes a finite
:data:`repro.faults.injector.BLACKOUT_DB`.

Event kinds
-----------
``crash``
    Radio fails at ``at_s``; after ``duration_s`` the node cold-reboots:
    MAC queues, link estimates, CTP state, and the control protocol's
    code/position/tables are wiped and must be re-acquired over the air.
``stun``
    Radio off for ``duration_s``, state kept. Duty-cycled nodes also lose
    wake-up phase alignment relative to their neighbours' expectations.
``link``
    Extra attenuation (``attenuation_db`` dB, or a blackout when ``None``)
    on the unordered pair ``node``–``peer`` for ``duration_s`` (forever
    when ``None``).
``parent_switch``
    The node's CTP routing declares its current parent unreachable,
    forcing a re-parent — the canonical way to churn the tree and
    invalidate path codes.
``packet_loss``
    A reception filter at the radio boundary: frames to/from ``node``
    (every frame when ``node`` is ``None``) are independently corrupted
    with ``corrupt_prob`` (counted, then dropped — a corrupt frame fails
    its CRC) or dropped with ``drop_prob``, for ``duration_s`` (forever
    when ``None``). Draws come from a per-event named RNG stream.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Tuple

FAULT_KINDS = ("crash", "stun", "link", "parent_switch", "packet_loss")

#: Preset scenario names understood by :func:`chaos_plan`.
CHAOS_SCENARIOS = ("crash-churn", "stun", "link-blackout", "packet-loss", "mixed")

#: Two parent kicks of the same node closer than this are one churn event,
#: not two: CTP needs a few beacon exchanges to settle on a new parent, so
#: a second kick inside the window re-counts the same disruption.
#: :func:`chaos_plan` dedupes its own kicks against this window at build
#: time; the injector's :class:`~repro.faults.injector.ChurnGuard` uses the
#: same window to arbitrate *cross-source* repeats (fault plan vs mobility)
#: at runtime.
PARENT_SWITCH_CHURN_WINDOW_S = 10.0


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault. See the module docstring for kind semantics."""

    kind: str
    at_s: float
    node: Optional[int] = None
    peer: Optional[int] = None
    duration_s: Optional[float] = None
    attenuation_db: Optional[float] = None
    drop_prob: float = 1.0
    corrupt_prob: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at_s < 0:
            raise ValueError("at_s must be >= 0")
        if self.duration_s is not None and self.duration_s <= 0:
            raise ValueError("duration_s must be positive when given")
        if self.kind in ("crash", "stun", "parent_switch") and self.node is None:
            raise ValueError(f"{self.kind} needs a node")
        if self.kind in ("crash", "stun") and self.duration_s is None:
            raise ValueError(f"{self.kind} needs a duration_s")
        if self.kind == "link":
            if self.node is None or self.peer is None:
                raise ValueError("link needs both node and peer")
            if self.node == self.peer:
                raise ValueError("link endpoints must differ")
        if not 0.0 <= self.drop_prob <= 1.0:
            raise ValueError("drop_prob must be in [0, 1]")
        if not 0.0 <= self.corrupt_prob <= 1.0:
            raise ValueError("corrupt_prob must be in [0, 1]")

    def to_dict(self) -> Dict[str, Any]:
        """Canonical dict form (every field, fixed key set)."""
        return {
            "kind": self.kind,
            "at_s": self.at_s,
            "node": self.node,
            "peer": self.peer,
            "duration_s": self.duration_s,
            "attenuation_db": self.attenuation_db,
            "drop_prob": self.drop_prob,
            "corrupt_prob": self.corrupt_prob,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultEvent":
        """Inverse of :meth:`to_dict` (missing keys take their defaults)."""
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - fields
        if unknown:
            raise ValueError(f"unknown FaultEvent keys: {sorted(unknown)}")
        return cls(**data)

    def sort_key(self) -> Tuple:
        return (
            self.at_s,
            self.kind,
            -1 if self.node is None else self.node,
            -1 if self.peer is None else self.peer,
        )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, validated set of fault events.

    ``auto_arm=True`` (the default for hand-built plans) arms the injector
    inside ``Network.start()``; experiment drivers that need the network to
    converge first build plans with ``auto_arm=False`` and call
    ``net.fault_injector.arm()`` themselves — event times are relative to
    the moment of arming either way.
    """

    events: Tuple[FaultEvent, ...] = ()
    auto_arm: bool = True
    name: str = ""

    def __post_init__(self) -> None:
        normalized = []
        for event in self.events:
            if isinstance(event, dict):
                event = FaultEvent.from_dict(event)
            elif not isinstance(event, FaultEvent):
                raise TypeError(f"not a FaultEvent: {event!r}")
            normalized.append(event)
        normalized.sort(key=FaultEvent.sort_key)
        object.__setattr__(self, "events", tuple(normalized))

    @property
    def is_empty(self) -> bool:
        return not self.events

    def span_s(self) -> float:
        """Seconds from arming until the last event has fully played out."""
        end = 0.0
        for event in self.events:
            end = max(end, event.at_s + (event.duration_s or 0.0))
        return end

    def to_dict(self) -> Dict[str, Any]:
        """Canonical dict form — safe for ``canonical_json`` fingerprinting."""
        return {
            "name": self.name,
            "auto_arm": self.auto_arm,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        """Inverse of :meth:`to_dict`."""
        unknown = set(data) - {"name", "auto_arm", "events"}
        if unknown:
            raise ValueError(f"unknown FaultPlan keys: {sorted(unknown)}")
        events = tuple(
            FaultEvent.from_dict(event) for event in data.get("events", ())
        )
        return cls(
            events=events,
            auto_arm=bool(data.get("auto_arm", True)),
            name=str(data.get("name", "")),
        )


# ------------------------------------------------------------------ presets
_INF = float("inf")


def _spread(rng: random.Random, start_s: float, window_s: float, n: int) -> list:
    """``n`` event times jittered across ``[start_s, start_s + window_s)``."""
    times = []
    for i in range(n):
        slot = window_s * i / max(n, 1)
        times.append(round(start_s + slot + rng.uniform(0.0, window_s / max(n, 1)), 3))
    return times


def chaos_plan(
    scenario: str,
    intensity: float,
    n_nodes: int,
    sink: int = 0,
    seed: int = 0,
    start_s: float = 2.0,
    window_s: float = 60.0,
    auto_arm: bool = True,
) -> FaultPlan:
    """Build a preset scenario, deterministically from ``seed``.

    ``intensity`` scales both the event count — roughly ``intensity *
    n_nodes / 2`` events spread over ``window_s`` seconds (at least one) —
    and the outage durations (linearly above 1.0), so an intensity sweep
    traces a genuine degradation curve instead of just denser-but-brief
    blips the sink watchdog always outlasts. The sink is never crashed,
    stunned, or re-parented.
    """
    if scenario not in CHAOS_SCENARIOS:
        raise ValueError(
            f"unknown scenario {scenario!r}; choose from {CHAOS_SCENARIOS}"
        )
    if intensity < 0:
        raise ValueError("intensity must be >= 0")
    nodes = [n for n in range(n_nodes) if n != sink]
    if not nodes:
        raise ValueError("need at least one non-sink node")
    rng = random.Random((seed * 1_000_003 + int(round(intensity * 1000))) & 0xFFFFFFFF)
    n_events = max(1, round(intensity * len(nodes) / 2.0)) if intensity > 0 else 0
    times = _spread(rng, start_s, window_s, n_events)
    stretch = max(1.0, intensity)

    def crash(at: float) -> FaultEvent:
        return FaultEvent(
            kind="crash",
            at_s=at,
            node=rng.choice(nodes),
            duration_s=round(rng.uniform(8.0, 20.0) * stretch, 3),
        )

    def stun(at: float) -> FaultEvent:
        return FaultEvent(
            kind="stun",
            at_s=at,
            node=rng.choice(nodes),
            duration_s=round(rng.uniform(2.0, 8.0) * stretch, 3),
        )

    def link(at: float) -> FaultEvent:
        a = rng.choice(nodes)
        b = rng.choice([n for n in range(n_nodes) if n != a])
        return FaultEvent(
            kind="link",
            at_s=at,
            node=a,
            peer=b,
            duration_s=round(rng.uniform(6.0, 15.0) * stretch, 3),
            attenuation_db=None,  # blackout
        )

    last_kick: Dict[int, float] = {}

    def kick(at: float) -> FaultEvent:
        # No double-churn: a node kicked within the churn window is one
        # churn event, so redraw among the quiet nodes. Rejection sampling
        # keeps the RNG stream untouched for every plan that never had a
        # conflict — which includes the pinned golden chaos plans.
        node = rng.choice(nodes)
        if at - last_kick.get(node, -_INF) < PARENT_SWITCH_CHURN_WINDOW_S:
            quiet = [
                n
                for n in nodes
                if at - last_kick.get(n, -_INF) >= PARENT_SWITCH_CHURN_WINDOW_S
            ]
            if quiet:
                node = rng.choice(quiet)
        last_kick[node] = at
        return FaultEvent(kind="parent_switch", at_s=at, node=node)

    def loss(at: float) -> FaultEvent:
        return FaultEvent(
            kind="packet_loss",
            at_s=at,
            node=rng.choice(nodes),
            duration_s=round(rng.uniform(5.0, 12.0) * stretch, 3),
            drop_prob=round(min(1.0, 0.5 + 0.5 * intensity), 3),
            corrupt_prob=0.1,
        )

    builders: Dict[str, Iterable] = {
        "crash-churn": (crash, kick),
        "stun": (stun,),
        "link-blackout": (link,),
        "packet-loss": (loss,),
        "mixed": (crash, stun, link, kick, loss),
    }
    cycle = builders[scenario]
    events = tuple(cycle[i % len(cycle)](at) for i, at in enumerate(times))
    return FaultPlan(
        events=events,
        auto_arm=auto_arm,
        name=f"{scenario}/i{intensity:g}/seed{seed}",
    )
