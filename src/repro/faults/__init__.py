"""Deterministic fault injection (`repro.faults`).

A :class:`FaultPlan` is a declarative, canonically-serialisable list of
timed fault events (node crash+reboot, radio stun, link degradation,
forced parent switches, per-packet drop/corrupt filters). A
:class:`FaultInjector` compiles a plan onto the simulator event queue of a
:class:`repro.experiments.harness.Network`; :func:`recovery_report`
summarises how well the control protocol rode out the injected chaos.

Same seed + same plan => bit-identical behaviour: every probabilistic
filter draws from its own named RNG stream, so fault-free runs are
untouched and chaos cells are cacheable by content hash.
"""

from repro.faults.injector import BLACKOUT_DB, FaultInjector, FaultStats
from repro.faults.metrics import recovery_report
from repro.faults.plan import CHAOS_SCENARIOS, FaultEvent, FaultPlan, chaos_plan

__all__ = [
    "BLACKOUT_DB",
    "CHAOS_SCENARIOS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "chaos_plan",
    "recovery_report",
]
