"""Compiles a :class:`FaultPlan` onto a network's simulator event queue.

The injector only uses primitives the stack already exposes —
``Radio.fail()/recover()``, ``NodeStack.reboot()``,
``CtpRouting.parent_unreachable()``, and the channel's fault hooks
(``link_faults`` / ``reception_filters``) — so fault-free runs execute
exactly the same instruction stream as before the faults layer existed.

Determinism: event times come from the plan (integer microseconds after
arming); each probabilistic packet filter draws from its own named RNG
stream (``faults.pkt.<event-index>``), which the simulator creates lazily,
so existing streams are unperturbed and the same seed + plan replays
bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.faults.plan import (
    PARENT_SWITCH_CHURN_WINDOW_S,
    FaultEvent,
    FaultPlan,
)
from repro.sim.units import SECOND

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.harness import Network

#: Finite stand-in for "link blackout" attenuation. Plans cannot carry
#: infinity (canonical JSON forbids it); 500 dB is unconditionally below
#: the channel's deaf threshold.
BLACKOUT_DB = 500.0

#: Fault kinds that disrupt delivery (used for recovery-latency sampling).
DISRUPTIVE_KINDS = ("crash", "stun", "link", "parent_switch", "packet_loss")


class ChurnGuard:
    """Cross-source dedupe for parent kicks within one churn window.

    With both a fault plan and mobility active, the same node can be told
    "your parent is unreachable" twice within seconds — once by a
    ``parent_switch`` event and once by a mobility arrival — which
    double-counts churn and makes degradation curves incomparable across
    runs. The guard records the last kick per node and *suppresses only
    cross-source repeats* (plus mobility-vs-mobility, which self-dedupes):
    fault-vs-fault repeats are never suppressed at runtime, because plans
    dedupe those at build time (:data:`repro.faults.plan.
    PARENT_SWITCH_CHURN_WINDOW_S`) and suppressing them here would change
    the replay of pinned plans. Pure dict bookkeeping, no RNG, no
    scheduling — zero-mobility runs stay bit-identical.
    """

    def __init__(self, sim: Any, window_s: float = PARENT_SWITCH_CHURN_WINDOW_S) -> None:
        self.sim = sim
        self.window_ticks = round(window_s * SECOND)
        self._last: Dict[int, Tuple[int, str]] = {}

    def note(self, node: int, source: str) -> None:
        """Record that ``node`` was just kicked by ``source``."""
        self._last[node] = (self.sim.now, source)

    def blocked(self, node: int, source: str) -> bool:
        """Should a kick of ``node`` from ``source`` be suppressed?"""
        entry = self._last.get(node)
        if entry is None:
            return False
        tick, prev_source = entry
        if self.sim.now - tick >= self.window_ticks:
            return False
        return prev_source != source or source == "mobility"


@dataclass
class FaultStats:
    """What the injector actually did, for reports and assertions."""

    crashes: int = 0
    reboots: int = 0
    stuns: int = 0
    link_faults: int = 0
    link_restores: int = 0
    parent_kicks: int = 0
    packet_filters: int = 0
    packets_dropped: int = 0
    packets_corrupted: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "crashes": self.crashes,
            "reboots": self.reboots,
            "stuns": self.stuns,
            "link_faults": self.link_faults,
            "link_restores": self.link_restores,
            "parent_kicks": self.parent_kicks,
            "packet_filters": self.packet_filters,
            "packets_dropped": self.packets_dropped,
            "packets_corrupted": self.packets_corrupted,
        }


class FaultInjector:
    """Schedules a plan's events against one :class:`Network`."""

    def __init__(self, network: "Network", plan: FaultPlan) -> None:
        self.network = network
        self.plan = plan
        self.stats = FaultStats()
        #: Absolute sim times (ticks) at which a disruptive fault fired.
        self.disruption_times: List[int] = []
        #: (time, kind, node) log of everything that fired.
        self.fired: List[Tuple[int, str, Optional[int]]] = []
        #: (time, node) for every permanent kill (battery deaths). Kept off
        #: :class:`FaultStats` — its dict is part of pinned chaos digests.
        self.deaths: List[Tuple[int, int]] = []
        #: Parent kicks the churn guard swallowed (cross-source repeats).
        self.parent_kicks_suppressed = 0
        #: Per-link stack of active attenuations (a link can fault twice).
        self._link_db: Dict[Tuple[int, int], List[float]] = {}
        self._armed = False

    # ------------------------------------------------------------------ arm
    def arm(self) -> None:
        """Schedule every plan event, relative to now (idempotent)."""
        if self._armed or self.plan.is_empty:
            self._armed = True
            return
        self._armed = True
        for index, event in enumerate(self.plan.events):
            self.network.sim.schedule(
                round(event.at_s * SECOND), self._fire, index, event
            )

    @property
    def armed(self) -> bool:
        return self._armed

    # ----------------------------------------------------------------- fire
    def _fire(self, index: int, event: FaultEvent) -> None:
        sim = self.network.sim
        self.fired.append((sim.now, event.kind, event.node))
        if event.kind in DISRUPTIVE_KINDS:
            self.disruption_times.append(sim.now)
        if sim.tracer.enabled:
            sim.tracer.emit(
                "faults",
                event.kind,
                node=event.node,
                peer=event.peer,
                duration_s=event.duration_s,
            )
        handler = getattr(self, f"_do_{event.kind}")
        handler(index, event)

    # ------------------------------------------------------------- handlers
    def _do_crash(self, index: int, event: FaultEvent) -> None:
        stack = self.network.stacks[event.node]
        stack.radio.fail()
        self.stats.crashes += 1
        self.network.sim.schedule(
            round(event.duration_s * SECOND), self._reboot, event.node
        )

    def _reboot(self, node: int) -> None:
        stack = self.network.stacks[node]
        stack.reboot()
        adapter = self.network.protocol_at(node)
        if adapter is not None:
            adapter.reset_state()
        self.stats.reboots += 1
        self.network.sim.tracer.emit("faults", "reboot", node=node)

    def _do_stun(self, index: int, event: FaultEvent) -> None:
        stack = self.network.stacks[event.node]
        stack.radio.fail()
        self.stats.stuns += 1
        self.network.sim.schedule(
            round(event.duration_s * SECOND), self._unstun, event.node
        )

    def _unstun(self, node: int) -> None:
        stack = self.network.stacks[node]
        stack.radio.recover()
        stack.mac.resume()
        self.network.sim.tracer.emit("faults", "unstun", node=node)

    def _do_link(self, index: int, event: FaultEvent) -> None:
        key = self._link_key(event.node, event.peer)
        db = BLACKOUT_DB if event.attenuation_db is None else event.attenuation_db
        self._link_db.setdefault(key, []).append(db)
        self._apply_link(key)
        self.stats.link_faults += 1
        if event.duration_s is not None:
            self.network.sim.schedule(
                round(event.duration_s * SECOND), self._restore_link, key, db
            )

    def _restore_link(self, key: Tuple[int, int], db: float) -> None:
        active = self._link_db.get(key, [])
        if db in active:
            active.remove(db)
        self._apply_link(key)
        self.stats.link_restores += 1
        self.network.sim.tracer.emit(
            "faults", "link-restore", node=key[0], peer=key[1]
        )

    def _apply_link(self, key: Tuple[int, int]) -> None:
        total = sum(self._link_db.get(key, ()))
        self.network.channel.set_link_fault(key[0], key[1], total if total else None)

    def _do_parent_switch(self, index: int, event: FaultEvent) -> None:
        guard = getattr(self.network, "churn_guard", None)
        if guard is not None and guard.blocked(event.node, "faults"):
            self.parent_kicks_suppressed += 1
            return
        stack = self.network.stacks[event.node]
        stack.routing.parent_unreachable()
        self.stats.parent_kicks += 1
        if guard is not None:
            guard.note(event.node, "faults")

    # -------------------------------------------------------------- killing
    def kill_node(self, node: int, reason: str = "death") -> None:
        """Permanent crash: power the node down with no scheduled reboot.

        The battery monitor's death path. Reuses the crash machinery's
        radio ``fail()`` (TX-in-flight drains safely) but never reboots;
        CTP staleness, allocation reclamation, and mobility all observe
        the corpse through the same signals a crashed node emits. Tracked
        in :attr:`deaths`, not in :class:`FaultStats` — the stats dict is
        pinned by the chaos golden digest and battery-free runs must hash
        identically.
        """
        stack = self.network.stacks[node]
        stack.radio.fail()
        sim = self.network.sim
        self.deaths.append((sim.now, node))
        self.fired.append((sim.now, reason, node))
        self.disruption_times.append(sim.now)
        if sim.tracer.enabled:
            sim.tracer.emit("faults", "death", node=node, reason=reason)

    def _do_packet_loss(self, index: int, event: FaultEvent) -> None:
        # A lazily created named stream per event: stable under plan edits
        # elsewhere, and invisible to runs without this event.
        rng = self.network.sim.rng(f"faults.pkt.{index}")
        stats = self.stats
        node = event.node
        drop_prob = event.drop_prob
        corrupt_prob = event.corrupt_prob

        def fault_filter(src: int, dst: int, frame: Any) -> bool:
            if node is not None and src != node and dst != node:
                return True
            if corrupt_prob > 0.0 and rng.random() < corrupt_prob:
                stats.packets_corrupted += 1
                return False  # corrupt payload fails the CRC: dropped
            if drop_prob > 0.0 and rng.random() < drop_prob:
                stats.packets_dropped += 1
                return False
            return True

        self.network.channel.reception_filters.append(fault_filter)
        self.stats.packet_filters += 1
        if event.duration_s is not None:
            self.network.sim.schedule(
                round(event.duration_s * SECOND), self._remove_filter, fault_filter
            )

    def _remove_filter(self, fault_filter: Any) -> None:
        filters = self.network.channel.reception_filters
        if fault_filter in filters:
            filters.remove(fault_filter)

    # -------------------------------------------------------------- helpers
    @staticmethod
    def _link_key(a: int, b: int) -> Tuple[int, int]:
        return (a, b) if a <= b else (b, a)
