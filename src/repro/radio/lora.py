"""LoRa-class long-range radio profile (SX127x-style, SF10/125 kHz).

The second registered :class:`~repro.radio.profiles.RadioProfile`, proving
the PHY/MAC seam with a radio at the opposite end of the design space from
the CC2420: chirp-spread-spectrum airtime measured in hundreds of
milliseconds (raw bitrate under 1 kbps at the default SF10), multi-km
log-distance propagation, sub-noise-floor demodulation (the per-SF SNR
floor is -15 dB at SF10), and SX127x-style per-state currents. Its MAC is
the p-persistent CSMA adapter (:mod:`repro.mac.pcsma`) rather than LPL.

Airtime follows the Semtech LoRa modem formula: a frame is a preamble of
``preamble_symbols + 4.25`` symbols plus ``8 + max(ceil((8·PL - 4·SF + 28
+ 16) / (4·(SF - 2·DE)))·(CR + 4), 0)`` payload symbols, each symbol
lasting ``2^SF / BW`` seconds (low-data-rate optimisation DE kicks in when
a symbol exceeds 16 ms, as at SF10/125 kHz).
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import TYPE_CHECKING, Dict, Mapping, Optional

from repro.radio.profiles import RadioProfile, register_radio_profile
from repro.radio.propagation import LogDistancePathLoss
from repro.sim.units import MICROSECOND, MILLISECOND, SECOND

if TYPE_CHECKING:  # import cycles: mac builds on radio
    from repro.mac.base import MacAdapter
    from repro.mac.lpl import MacParams
    from repro.radio.radio import Radio
    from repro.sim import Simulator

#: Demodulation SNR floor (dB) per spreading factor — the margin at which
#: the chirp correlator starts decoding below the thermal noise floor.
SNR_FLOOR_DB: Dict[int, float] = {
    7: -7.5,
    8: -10.0,
    9: -12.5,
    10: -15.0,
    11: -17.5,
    12: -20.0,
}


@lru_cache(maxsize=4096)
def _symbol_error_rate(margin_db_tenths: int) -> float:
    """Symbol error rate at a demodulation margin (tenths of dB, cached)."""
    margin_db = margin_db_tenths / 10.0
    # Gaussian waterfall around the SNR floor, ~1.5 dB transition width.
    return 0.5 * math.erfc(margin_db / (1.5 * math.sqrt(2.0)))


class LoRaProfile(RadioProfile):
    """SX127x-style long-range radio under p-CSMA, default SF10/125 kHz."""

    name = "lora"
    spreading_factor = 10
    bandwidth_hz = 125_000
    #: Coding rate index: 1 means CR 4/5 (4 data bits per 5 coded).
    coding_rate = 1
    preamble_symbols = 12

    #: Effective raw PHY bitrate, SF·BW·CR/(2^SF) — 976 bps at the
    #: defaults, i.e. genuinely sub-kbps.
    bit_rate_bps = 976
    #: Explicit-header LoRa has no fixed per-frame byte overhead here; the
    #: preamble and header costs are in the symbol formula instead.
    phy_overhead_bytes = 0
    max_frame_bytes = 255
    #: SX1276 sensitivity at SF10/125 kHz.
    sensitivity_dbm = -132.0
    #: Energy-detect CCA. Must sit above the thermal floor (-117) or the
    #: channel never samples clear; 7 dB of headroom mirrors the CC2420
    #: profile's noise-to-CCA gap scaled to LoRa's tighter link budget.
    #: (Real SX127x CAD detects preambles below the floor; this simulator
    #: models CCA as energy detection, so the threshold is an energy one.)
    cca_threshold_dbm = -110.0
    #: Thermal floor: -174 + 10·log10(125 kHz) + NF 6 dB.
    noise_floor_dbm = -117.0
    deaf_threshold_dbm = -140.0
    #: RX→TX turnaround (1 ms; chirp ramp-up, not a 192 µs 802.15.4 twelve
    #: symbol turnaround).
    turnaround_ticks = 1 * MILLISECOND
    #: SX127x datasheet currents: RX 11.5 mA, sleep 0.2 µA, TX from the
    #: +7 dBm low-power setting up to the +20 dBm PA_BOOST step.
    rx_current_ma = 11.5
    sleep_current_ma = 0.0002
    tx_current_ma_table: Mapping[float, float] = {
        7.0: 20.0,
        13.0: 29.0,
        17.0: 90.0,
        20.0: 120.0,
    }
    default_tx_power_dbm = 14.0
    #: Routing beacons Trickle from 8 s (512 ms would drown a 976 bps link).
    beacon_i_min = 8 * SECOND

    # ------------------------------------------------------------- PHY math
    def symbol_time_us(self) -> int:
        """One chirp symbol in µs: ``2^SF / BW`` (8192 µs at SF10/125 kHz)."""
        return (1 << self.spreading_factor) * 1_000_000 // self.bandwidth_hz

    def payload_symbols(self, frame_bytes: int) -> int:
        """Payload symbol count per the Semtech modem formula."""
        sf = self.spreading_factor
        t_sym = self.symbol_time_us()
        low_dr_opt = 1 if t_sym > 16_000 else 0
        numerator = 8 * frame_bytes - 4 * sf + 28 + 16
        blocks = math.ceil(numerator / (4 * (sf - 2 * low_dr_opt)))
        return 8 + max(blocks * (self.coding_rate + 4), 0)

    def packet_airtime(self, frame_bytes: int) -> int:
        t_sym = self.symbol_time_us()
        preamble = self.preamble_symbols * t_sym + (t_sym * 17) // 4  # +4.25 sym
        return (preamble + self.payload_symbols(frame_bytes) * t_sym) * MICROSECOND

    def prr(self, snr_db: float, frame_bytes: int) -> float:
        margin = snr_db - SNR_FLOOR_DB[self.spreading_factor]
        if margin <= -2.0:
            return 0.0
        if margin >= 6.0:
            return 1.0
        ser = _symbol_error_rate(int(round(margin * 10.0)))
        return (1.0 - ser) ** self.payload_symbols(frame_bytes)

    # -------------------------------------------------------------- defaults
    def build_noise_model(self, kind: str, seed: int = 0) -> object:
        """A 125 kHz LoRa channel does not see 802.15.4-band CPM bursts;
        both noise kinds resolve to the profile's thermal floor."""
        from repro.radio.noise import ConstantNoise

        if kind not in ("cpm", "constant"):
            raise ValueError(f"unknown noise model {kind!r}")
        return ConstantNoise(self.noise_floor_dbm)

    def default_propagation(self, seed: int = 0) -> LogDistancePathLoss:
        """Suburban/open-field loss: multi-km range at +14 dBm."""
        return LogDistancePathLoss(
            path_loss_exponent=2.9, pl_d0=40.0, shadowing_sigma=4.0, seed=seed
        )

    def default_mac_params(self, always_on: bool = False) -> Optional[MacParams]:
        from repro.mac.pcsma import PCsmaParams

        return PCsmaParams.lora_defaults()

    def build_mac(
        self,
        sim: Simulator,
        radio: Radio,
        params: Optional[MacParams] = None,
        always_on: bool = False,
    ) -> MacAdapter:
        from repro.mac.pcsma import PCsmaMac

        return PCsmaMac(sim, radio, params=params, always_on=always_on, profile=self)


register_radio_profile(LoRaProfile())
