"""CPM-style noise model over a synthetic heavy-tailed trace.

The paper uses TOSSIM's CPM (Closest-Pattern Matching, Lee/Cerpa/Levis,
IPSN'07) noise model trained on the ``meyer-heavy.txt`` trace. That trace is
a recording from Stanford's Meyer library and is not redistributable here, so
we substitute a **synthetic trace with the same qualitative statistics**:
a quiet floor near -98 dBm with small Gaussian jitter, punctuated by bursty
WiFi-like interference excursions (geometric burst lengths, levels drawn up
to roughly -50 dBm). Burstiness is the property that drives link dynamics —
the behaviour the paper's evaluation leans on — and it is preserved.

The CPM algorithm itself is implemented faithfully in miniature: readings are
quantised to bins; for each observed history of ``history`` quantised
readings we learn the empirical distribution of the next reading; at
simulation time we sample from the distribution keyed by the most recent
history, falling back to shorter histories (and finally the marginal
distribution) when a pattern was never observed.
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import Dict, List, Sequence, Tuple


def synthesize_meyer_like_trace(
    length: int = 20_000,
    seed: int = 0,
    floor_dbm: float = -98.0,
    floor_sigma: float = 1.5,
    burst_probability: float = 0.01,
    burst_continue: float = 0.75,
    burst_levels: Sequence[float] = (-90.0, -85.0, -80.0, -72.0, -65.0, -55.0),
) -> List[float]:
    """Generate a bursty noise trace (one reading per millisecond, in dBm).

    The generator is a two-state process: in the *quiet* state readings are
    ``floor_dbm + N(0, floor_sigma)``; with probability ``burst_probability``
    it enters a *burst* whose level is drawn from ``burst_levels`` (biased
    toward the lower levels) and whose duration is geometric with continue
    probability ``burst_continue`` — matching the heavy-tailed, clustered
    interference seen in meyer-heavy.
    """
    if length <= 0:
        raise ValueError("trace length must be positive")
    rng = random.Random(seed)
    trace: List[float] = []
    in_burst = False
    burst_level = floor_dbm
    for _ in range(length):
        if in_burst:
            if rng.random() >= burst_continue:
                in_burst = False
        if not in_burst and rng.random() < burst_probability:
            in_burst = True
            # Bias toward weaker bursts: pick two, keep the weaker most times.
            a, b = rng.choice(burst_levels), rng.choice(burst_levels)
            burst_level = min(a, b) if rng.random() < 0.7 else max(a, b)
        if in_burst:
            trace.append(burst_level + rng.gauss(0.0, 2.0))
        else:
            trace.append(floor_dbm + rng.gauss(0.0, floor_sigma))
    return trace


class CPMNoiseModel:
    """Closest-pattern-matching noise generator.

    One instance is trained per simulation and then *forked* per node with
    :meth:`fork`, giving each node an independent but statistically identical
    noise process (TOSSIM trains one model and seeds it per node the same
    way).
    """

    def __init__(
        self,
        trace_dbm: Sequence[float],
        history: int = 4,
        bin_width_db: float = 2.0,
        seed: int = 0,
    ) -> None:
        if history < 1:
            raise ValueError("history must be >= 1")
        if bin_width_db <= 0:
            raise ValueError("bin width must be positive")
        if len(trace_dbm) <= history:
            raise ValueError("trace shorter than history window")
        self.history = history
        self.bin_width_db = bin_width_db
        self._rng = random.Random(seed)
        # Tables: for each history length h in [1, history], map the tuple of
        # the last h bins to the list of observed next readings.
        self._tables: List[Dict[Tuple[int, ...], List[float]]] = [
            defaultdict(list) for _ in range(history)
        ]
        self._marginal: List[float] = list(trace_dbm)
        self._train(trace_dbm)
        # Model state is the quantised history window, maintained incrementally
        # as a tuple so sample() never re-bins the whole window.
        self._state_bins: Tuple[int, ...] = tuple(
            self._bin(x) for x in trace_dbm[:history]
        )

    def _bin(self, dbm: float) -> int:
        return int(dbm // self.bin_width_db)

    def _bin_batch(self, readings: Sequence[float]) -> List[int]:
        """Quantise many readings; each element equals the scalar :meth:`_bin`.

        numpy's ``floor_divide`` implements CPython's fmod-corrected float
        floor-division algorithm, so the vectorised bins match ``//`` bit for
        bit (``tests/test_radio_models.py`` holds this as a hypothesis
        property); the scalar path is the fallback when numpy is absent or
        disabled.
        """
        if len(readings) >= 1024:
            from repro.radio.spatial import get_numpy

            np = get_numpy()
            if np is not None:
                quotients = np.floor_divide(
                    np.asarray(readings, dtype=np.float64), self.bin_width_db
                )
                return [int(q) for q in quotients.tolist()]
        bin_one = self._bin
        return [bin_one(x) for x in readings]

    def _train(self, trace: Sequence[float]) -> None:
        bins = self._bin_batch(trace)
        for i in range(self.history, len(trace)):
            nxt = trace[i]
            for h in range(1, self.history + 1):
                key = tuple(bins[i - h : i])
                self._tables[h - 1][key].append(nxt)

    def fork(self, seed: int) -> "CPMNoiseModel":
        """Cheap per-node copy sharing the trained tables, with its own RNG."""
        clone = object.__new__(CPMNoiseModel)
        clone.history = self.history
        clone.bin_width_db = self.bin_width_db
        clone._rng = random.Random(seed)
        clone._tables = self._tables
        clone._marginal = self._marginal
        start = clone._rng.randrange(len(self._marginal) - self.history)
        clone._state_bins = tuple(
            clone._bin(x) for x in self._marginal[start : start + self.history]
        )
        return clone

    def sample(self) -> float:
        """Draw the next noise reading (dBm) and advance the model state."""
        bins = self._state_bins
        tables = self._tables
        history = self.history
        value: float
        for h in range(history, 0, -1):
            candidates = tables[h - 1].get(bins[history - h :])
            if candidates:
                value = self._rng.choice(candidates)
                break
        else:
            value = self._rng.choice(self._marginal)
        self._state_bins = bins[1:] + (int(value // self.bin_width_db),)
        return value


class ConstantNoise:
    """Trivial noise model for unit tests: always the same floor."""

    def __init__(self, dbm: float = -98.0) -> None:
        self.dbm = dbm

    def fork(self, seed: int) -> "ConstantNoise":
        """Per-node copy with an independent random stream."""
        return self

    def sample(self) -> float:
        """Draw the next noise reading in dBm."""
        return self.dbm
