"""Radio substrate: propagation, noise, CC2420 PHY, channel, and radio devices.

This package replaces the TOSSIM radio stack the paper simulated on:

- :mod:`repro.radio.propagation` — log-distance path loss (exponent 4 in the
  paper's setup) with static per-link shadowing.
- :mod:`repro.radio.noise` — CPM-style (closest-pattern-matching) noise model
  trained on a synthetic heavy-tailed trace shaped like ``meyer-heavy.txt``.
- :mod:`repro.radio.cc2420` — CC2420 radio constants and the O-QPSK/DSSS
  SNR→PRR curve TOSSIM uses.
- :mod:`repro.radio.channel` — shared medium with SINR-based reception and
  external interferers (e.g. WiFi).
- :mod:`repro.radio.radio` — per-node half-duplex radio device with
  on/off/TX/RX states and energy (on-time) accounting.
- :mod:`repro.radio.battery` — per-node charge budgets drained by duty
  cycle; exhausted nodes die permanently (endurance soaks, docs/soak.md).
"""

from repro.radio.battery import BatteryParams, DepletionMonitor
from repro.radio.cc2420 import CC2420, packet_airtime
from repro.radio.channel import Channel
from repro.radio.frame import BROADCAST, Frame, FrameType
from repro.radio.noise import CPMNoiseModel, synthesize_meyer_like_trace
from repro.radio.propagation import LogDistancePathLoss
from repro.radio.radio import Radio, RadioState

__all__ = [
    "BatteryParams",
    "DepletionMonitor",
    "CC2420",
    "packet_airtime",
    "Channel",
    "BROADCAST",
    "Frame",
    "FrameType",
    "CPMNoiseModel",
    "synthesize_meyer_like_trace",
    "LogDistancePathLoss",
    "Radio",
    "RadioState",
]
