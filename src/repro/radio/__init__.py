"""Radio substrate: propagation, noise, CC2420 PHY, channel, and radio devices.

This package replaces the TOSSIM radio stack the paper simulated on:

- :mod:`repro.radio.propagation` — log-distance path loss (exponent 4 in the
  paper's setup) with static per-link shadowing.
- :mod:`repro.radio.noise` — CPM-style (closest-pattern-matching) noise model
  trained on a synthetic heavy-tailed trace shaped like ``meyer-heavy.txt``.
- :mod:`repro.radio.profiles` — the radio profile registry: one typed
  object per PHY/MAC personality (airtime, PRR curve, thresholds, currents,
  MAC adapter); ``"cc2420"`` is the default, plugins register more.
- :mod:`repro.radio.cc2420` — CC2420 radio constants and the O-QPSK/DSSS
  SNR→PRR curve TOSSIM uses (the default profile's numbers).
- :mod:`repro.radio.lora` — LoRa-class long-range profile (SF/BW airtime,
  sub-noise-floor PRR, SX127x currents) under p-CSMA.
- :mod:`repro.radio.channel` — shared medium with SINR-based reception and
  external interferers (e.g. WiFi).
- :mod:`repro.radio.radio` — per-node half-duplex radio device with
  on/off/TX/RX states and energy (on-time) accounting.
- :mod:`repro.radio.battery` — per-node charge budgets drained by duty
  cycle; exhausted nodes die permanently (endurance soaks, docs/soak.md).
"""

from repro.radio.battery import BatteryParams, DepletionMonitor
from repro.radio.cc2420 import CC2420, packet_airtime
from repro.radio.channel import Channel
from repro.radio.frame import BROADCAST, Frame, FrameType
from repro.radio.lora import LoRaProfile
from repro.radio.noise import CPMNoiseModel, synthesize_meyer_like_trace
from repro.radio.profiles import (
    DEFAULT_RADIO_PROFILE,
    RADIO_REGISTRY,
    CC2420Profile,
    RadioProfile,
    RadioProfileRegistry,
    get_radio_profile,
    radio_profile_names,
    register_radio_profile,
    unregister_radio_profile,
)
from repro.radio.propagation import LogDistancePathLoss
from repro.radio.radio import Radio, RadioState

__all__ = [
    "BatteryParams",
    "DepletionMonitor",
    "CC2420",
    "packet_airtime",
    "Channel",
    "BROADCAST",
    "Frame",
    "FrameType",
    "CPMNoiseModel",
    "synthesize_meyer_like_trace",
    "LogDistancePathLoss",
    "Radio",
    "RadioState",
    "RadioProfile",
    "RadioProfileRegistry",
    "CC2420Profile",
    "LoRaProfile",
    "DEFAULT_RADIO_PROFILE",
    "RADIO_REGISTRY",
    "register_radio_profile",
    "unregister_radio_profile",
    "get_radio_profile",
    "radio_profile_names",
]
