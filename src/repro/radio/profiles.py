"""The radio profile registry: one typed object per PHY/MAC personality.

A :class:`RadioProfile` owns everything the stack historically pulled from
scattered CC2420 constants: airtime/bitrate math, the SNR→PRR curve, the
reception thresholds the channel resolves packets against, per-state current
draw (the single source of truth for both the energy report and the battery
depletion monitor), propagation defaults, simulation timescales, and — via
:meth:`RadioProfile.build_mac` — which :class:`~repro.mac.base.MacAdapter`
runs on each node. The harness, channel, MAC, energy accounting, experiment
drivers, and CLI all dispatch through the profile, mirroring the
``repro.protocols`` adapter architecture: registering a new profile
(:func:`register_radio_profile`) makes the radio runnable everywhere at once.

The default profile (``"cc2420"``) reproduces the pre-registry constants
bit for bit — same integer airtimes, the same lru-cached PRR curve object,
the same float thresholds — so every golden digest and cache fingerprint is
unchanged when ``NetworkConfig.radio_profile`` is left at ``None``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Optional

from repro.radio.cc2420 import CC2420
from repro.radio.propagation import LogDistancePathLoss
from repro.sim.units import MICROSECOND

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mac.base import MacAdapter
    from repro.mac.lpl import MacParams
    from repro.radio.radio import Radio
    from repro.sim.simulator import Simulator

#: The profile a config with ``radio_profile=None`` resolves to.
DEFAULT_RADIO_PROFILE = "cc2420"


class RadioProfile:
    """One radio personality: PHY math, thresholds, currents, MAC, defaults.

    Subclasses set the class attributes below (and usually override
    :meth:`prr`); everything else — generic bitrate-derived airtime, the
    interpolated transmit-current curve, the LPL MAC — comes from the base
    implementation. Instances are stateless and shared; register one with
    :func:`register_radio_profile` to make it available to
    ``NetworkConfig.radio_profile`` everywhere (harness, runner, CLI).
    """

    #: Registry name (``NetworkConfig.radio_profile`` value).
    name: str = "base"
    #: Raw PHY bit rate; the base airtime formula derives frame airtime
    #: from this instead of any hard-coded radio constant.
    bit_rate_bps: int = 250_000
    #: PHY framing overhead added to every frame (preamble/SFD/length).
    phy_overhead_bytes: int = 6
    max_frame_bytes: int = 127
    #: Below this received power (dBm) a frame cannot lock the receiver.
    sensitivity_dbm: float = -95.0
    #: Default clear-channel-assessment threshold (dBm).
    cca_threshold_dbm: float = -77.0
    #: Noise floor used for clean-channel SNR estimates (dBm).
    noise_floor_dbm: float = -98.0
    #: Below this received power a transmission is inaudible (not even
    #: interference); the channel's link-culling floor.
    deaf_threshold_dbm: float = -110.0
    #: RX→TX turnaround before an acknowledgement, in simulator ticks.
    turnaround_ticks: int = 192
    #: Per-state supply currents (mA) — the one source of truth consumed by
    #: both :mod:`repro.radio.energy` and the battery depletion monitor.
    rx_current_ma: float = 19.7
    sleep_current_ma: float = 0.021
    tx_current_ma_table: Mapping[float, float] = {0.0: 17.4}
    #: Typical output power for profile-scaled deployment generators.
    default_tx_power_dbm: float = 0.0
    #: CTP routing-beacon Trickle bounds in ticks; ``None`` keeps the
    #: stack-wide defaults (:data:`repro.net.trickle.CTP_BEACON_I_MIN`).
    beacon_i_min: Optional[int] = None
    beacon_i_max_doublings: Optional[int] = None

    # ------------------------------------------------------------- PHY math
    def packet_airtime(self, frame_bytes: int) -> int:
        """Airtime in simulator ticks (µs) of a frame with PHY overhead.

        Derived from :attr:`bit_rate_bps` with the same integer arithmetic
        the historical CC2420 helper used, so the default profile's values
        are bit-identical to :func:`repro.radio.cc2420.packet_airtime`.
        """
        total_bytes = frame_bytes + self.phy_overhead_bytes
        return (total_bytes * 8 * 1_000_000 // self.bit_rate_bps) * MICROSECOND

    def prr(self, snr_db: float, frame_bytes: int) -> float:
        """Packet reception ratio at ``snr_db`` for a ``frame_bytes`` frame."""
        raise NotImplementedError

    # -------------------------------------------------------------- currents
    def tx_current_ma(self, tx_power_dbm: float) -> float:
        """Interpolated transmit current for an output power in dBm."""
        table = self.tx_current_ma_table
        anchors = sorted(table)
        if tx_power_dbm <= anchors[0]:
            return table[anchors[0]]
        if tx_power_dbm >= anchors[-1]:
            return table[anchors[-1]]
        for low, high in zip(anchors, anchors[1:]):
            if low <= tx_power_dbm <= high:
                frac = (tx_power_dbm - low) / (high - low)
                return table[low] + frac * (table[high] - table[low])
        return self.rx_current_ma  # pragma: no cover - unreachable

    # -------------------------------------------------------------- defaults
    def build_noise_model(self, kind: str, seed: int = 0) -> object:
        """Ambient-noise model for ``NetworkConfig.noise`` (``"cpm"``/``"constant"``).

        The base implementation reproduces the harness's historical
        construction exactly: a CPM model trained on a synthetic
        meyer-heavy-like trace, or the constant -98 dBm floor.
        """
        from repro.radio.noise import (
            ConstantNoise,
            CPMNoiseModel,
            synthesize_meyer_like_trace,
        )

        if kind == "cpm":
            trace = synthesize_meyer_like_trace(seed=seed)
            return CPMNoiseModel(trace, seed=seed)
        if kind == "constant":
            return ConstantNoise()
        raise ValueError(f"unknown noise model {kind!r}")

    def default_propagation(self, seed: int = 0) -> LogDistancePathLoss:
        """The path-loss model profile-scaled deployments are generated on."""
        return LogDistancePathLoss(
            path_loss_exponent=4.0, pl_d0=40.0, shadowing_sigma=3.2, seed=seed
        )

    def default_mac_params(self, always_on: bool = False) -> Optional["MacParams"]:
        """MAC timing for this profile; ``None`` keeps the MAC's defaults."""
        if always_on:
            from repro.mac.lpl import MacParams

            return MacParams.always_on_network()
        return None

    def build_mac(
        self,
        sim: "Simulator",
        radio: "Radio",
        params: Optional["MacParams"] = None,
        always_on: bool = False,
    ) -> "MacAdapter":
        """Construct this profile's MAC adapter bound to ``radio``."""
        from repro.mac.lpl import LPLMac

        return LPLMac(sim, radio, params=params, always_on=always_on, profile=self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class CC2420Profile(RadioProfile):
    """The paper's CC2420/TelosB stack: 802.15.4 PHY under the LPL MAC.

    Every value delegates to (or duplicates exactly) the historical module
    constants, including the shared lru-cached BER curve — this profile *is*
    the pre-registry behaviour, bit for bit.
    """

    name = "cc2420"
    bit_rate_bps = CC2420.BIT_RATE_BPS
    phy_overhead_bytes = CC2420.PHY_OVERHEAD_BYTES
    max_frame_bytes = CC2420.MAX_FRAME_BYTES
    sensitivity_dbm = CC2420.SENSITIVITY_DBM
    cca_threshold_dbm = CC2420.CCA_THRESHOLD_DBM
    noise_floor_dbm = CC2420.NOISE_FLOOR_DBM
    deaf_threshold_dbm = -110.0
    turnaround_ticks = CC2420.TURNAROUND_US
    #: CC2420 datasheet currents (mA); TelosB-class sleep current.
    rx_current_ma = 19.7
    sleep_current_ma = 0.021
    tx_current_ma_table: Mapping[float, float] = {
        0.0: 17.4,
        -1.0: 16.5,
        -3.0: 15.2,
        -5.0: 13.9,
        -7.0: 12.5,
        -10.0: 11.2,
        -15.0: 9.9,
        -25.0: 8.5,
    }
    default_tx_power_dbm = 0.0

    def prr(self, snr_db: float, frame_bytes: int) -> float:
        """The TOSSIM O-QPSK/DSSS curve (shared cache with ``CC2420.prr``)."""
        return CC2420.prr(snr_db, frame_bytes)


class RadioProfileRegistry:
    """Registered radio profiles, keyed by name (registration order kept)."""

    def __init__(self) -> None:
        self._profiles: Dict[str, RadioProfile] = {}

    # ------------------------------------------------------------- mutation
    def register(self, profile: RadioProfile, replace: bool = False) -> None:
        """Register ``profile`` under its :attr:`~RadioProfile.name`.

        Duplicate names are rejected unless ``replace=True`` (mirrors
        :meth:`repro.protocols.ProtocolRegistry.register`).
        """
        name = profile.name
        if not name or not isinstance(name, str):
            raise ValueError(
                f"radio profile name must be a non-empty string, got {name!r}"
            )
        if name in self._profiles and not replace:
            raise ValueError(
                f"radio profile {name!r} is already registered; "
                f"pass replace=True to override"
            )
        self._profiles[name] = profile

    def unregister(self, name: str) -> None:
        """Remove a profile (no-op when absent)."""
        self._profiles.pop(name, None)

    # -------------------------------------------------------------- queries
    def get(self, name: str) -> RadioProfile:
        """The profile registered under ``name``.

        Raises ``ValueError`` listing the registered names for unknown
        profiles (mirrors the protocol registry's unknown-name error).
        """
        try:
            return self._profiles[name]
        except KeyError:
            raise ValueError(
                f"unknown radio profile {name!r}; "
                f"choose from {sorted(self._profiles)} "
                f"or register one with repro.radio.register_radio_profile"
            ) from None

    def names(self) -> List[str]:
        """Registered profile names, in registration order."""
        return list(self._profiles)


#: The process-wide registry every ``NetworkConfig.radio_profile`` resolves in.
RADIO_REGISTRY = RadioProfileRegistry()


def register_radio_profile(profile: RadioProfile, replace: bool = False) -> None:
    """Register a profile with the process-wide registry (public plugin API)."""
    RADIO_REGISTRY.register(profile, replace=replace)


def unregister_radio_profile(name: str) -> None:
    """Remove a profile from the process-wide registry."""
    RADIO_REGISTRY.unregister(name)


def get_radio_profile(name: Optional[str]) -> RadioProfile:
    """Resolve a ``NetworkConfig.radio_profile`` value (``None`` = default)."""
    return RADIO_REGISTRY.get(DEFAULT_RADIO_PROFILE if name is None else name)


def radio_profile_names() -> List[str]:
    """Registered radio profile names, in registration order."""
    return RADIO_REGISTRY.names()


register_radio_profile(CC2420Profile())

# The long-range profile registers itself on import; importing it here makes
# ``"lora"`` resolvable the moment the registry module is loaded (the same
# eager-builtin pattern repro.protocols uses for its bundled adapters).
from repro.radio import lora as _lora  # noqa: E402,F401  (self-registering)
