"""Log-distance path-loss propagation with static shadowing.

The paper computes TOSSIM link gains "using the Log Distance Path Loss model
with a path exponent of four, to approximate challenging signal propagation
environments". We implement the same model:

    PL(d) = PL(d0) + 10 * n * log10(d / d0) + X_sigma

where ``X_sigma`` is a zero-mean Gaussian drawn once per (unordered) node
pair, so links are static but heterogeneous, and gains are symmetric — the
same convention TOSSIM's topology generators use.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Sequence, Tuple

Position = Tuple[float, float]


class LogDistancePathLoss:
    """Computes per-link gains from node positions.

    Parameters mirror the common TOSSIM topology-generation script:

    - ``path_loss_exponent``: 4.0 in the paper (harsh environment).
    - ``pl_d0``: path loss at the reference distance ``d0`` (dB).
    - ``shadowing_sigma``: std-dev of static per-link shadowing (dB).
    """

    def __init__(
        self,
        path_loss_exponent: float = 4.0,
        pl_d0: float = 55.0,
        d0: float = 1.0,
        shadowing_sigma: float = 3.2,
        seed: int = 0,
    ) -> None:
        if d0 <= 0:
            raise ValueError("reference distance d0 must be positive")
        self.path_loss_exponent = path_loss_exponent
        self.pl_d0 = pl_d0
        self.d0 = d0
        self.shadowing_sigma = shadowing_sigma
        self._seed = seed
        self._shadowing: Dict[Tuple[int, int], float] = {}

    def to_dict(self) -> Dict[str, float]:
        """Canonical JSON-ready parameters (used for experiment cache keys)."""
        return {
            "d0": self.d0,
            "path_loss_exponent": self.path_loss_exponent,
            "pl_d0": self.pl_d0,
            "seed": self._seed,
            "shadowing_sigma": self.shadowing_sigma,
        }

    def _link_key(self, a: int, b: int) -> Tuple[int, int]:
        return (a, b) if a <= b else (b, a)

    def _shadowing_db(self, a: int, b: int) -> float:
        key = self._link_key(a, b)
        value = self._shadowing.get(key)
        if value is None:
            # Stable per-link RNG so gain(a,b) does not depend on query order.
            rng = random.Random((self._seed << 32) ^ (key[0] << 16) ^ key[1])
            value = rng.gauss(0.0, self.shadowing_sigma)
            self._shadowing[key] = value
        return value

    def path_loss_db(self, distance: float) -> float:
        """Deterministic (pre-shadowing) path loss in dB at ``distance`` metres."""
        d = max(distance, self.d0)
        return self.pl_d0 + 10.0 * self.path_loss_exponent * math.log10(d / self.d0)

    def path_loss_db_batch(self, distances: Sequence[float]) -> List[float]:
        """:meth:`path_loss_db` over many distances, one element per input.

        Kept scalar-exact: each element equals the scalar call bit for bit
        (the batch is a convenience for per-receiver loops like the WiFi
        interferer's coupling table, where values enter the simulation and
        must not depend on whether numpy is installed).
        """
        return [self.path_loss_db(d) for d in distances]

    def max_range_m(self, budget_db: float) -> float:
        """Largest distance whose deterministic path loss fits ``budget_db``.

        Inverse of :meth:`path_loss_db`: the culling radius for a link
        budget of ``tx_power − floor (+ margins)`` dB. At or below the
        reference path loss the range collapses to ``d0``; a non-positive
        exponent (free-space-degenerate configs in tests) means no distance
        attenuates, so the range is unbounded.
        """
        if budget_db <= self.pl_d0:
            return self.d0
        if self.path_loss_exponent <= 0:
            return math.inf
        return self.d0 * 10.0 ** ((budget_db - self.pl_d0) / (10.0 * self.path_loss_exponent))

    def link_gain_db(
        self, a: int, b: int, pos_a: Position, pos_b: Position
    ) -> float:
        """Channel gain (negative dB) from node ``a`` to node ``b``.

        Received power = tx power (dBm) + gain (dB).
        """
        distance = math.dist(pos_a, pos_b)
        return -(self.path_loss_db(distance) + self._shadowing_db(a, b))

    def gain_matrix(
        self, positions: Sequence[Position]
    ) -> Dict[Tuple[int, int], float]:
        """All-pairs gains for nodes ``0..len(positions)-1`` (both directions)."""
        gains: Dict[Tuple[int, int], float] = {}
        n = len(positions)
        for a in range(n):
            for b in range(n):
                if a == b:
                    continue
                gains[(a, b)] = self.link_gain_db(a, b, positions[a], positions[b])
        return gains
