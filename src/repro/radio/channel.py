"""Shared wireless medium with SINR-based packet reception.

Reception model
---------------
When a transmission starts, every powered-on, idle radio whose received power
clears the deaf threshold begins decoding it (the strongest-first frame locks
the receiver; later-starting overlaps become interference). When the airtime
ends, the channel computes

    SINR = P_rx  -  10 log10( noise_mw + sum(interferer_mw) + sum(overlap_mw) )

with noise drawn from the CPM model and external interferers (e.g. the WiFi
generator) queried for their current in-band power. The frame is delivered
with probability ``PRR(SINR, length)`` from the CC2420 curve. Interference
from concurrent packets is weighted by their temporal overlap with the frame.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, Set, Tuple

from repro.radio.cc2420 import CC2420, packet_airtime
from repro.radio.frame import Frame
from repro.radio.noise import CPMNoiseModel, ConstantNoise
from repro.radio.radio import Radio, RadioState
from repro.sim.simulator import Simulator


def dbm_to_mw(dbm: float) -> float:
    """Convert dBm to milliwatts."""
    return 10.0 ** (dbm / 10.0)


def mw_to_dbm(mw: float) -> float:
    """Convert milliwatts to dBm (floored at -200)."""
    if mw <= 0.0:
        return -200.0
    return 10.0 * math.log10(mw)


class Interferer(Protocol):
    """External in-band energy source (e.g. WiFi)."""

    def interference_dbm_at(self, node_id: int) -> Optional[float]:
        """Current in-band power at ``node_id`` in dBm, or None when idle."""


@dataclass
class _Transmission:
    src: int
    frame: Frame
    start: int
    end: int
    #: Received power per potential receiver (dBm), filled at start.
    rx_power_dbm: Dict[int, float] = field(default_factory=dict)


@dataclass
class _PendingReception:
    transmission: _Transmission
    rx_power_dbm: float
    #: mW·ticks of interference accumulated from overlapping packets.
    interference_mw_ticks: float = 0.0


class Channel:
    """The single 802.15.4 channel all radios share.

    ``gains[(a, b)]`` is the channel gain in dB from ``a`` to ``b``; pairs
    missing from the dict are out of range. The channel derives static
    neighbour sets from the gains to avoid all-pairs scans per packet.
    """

    #: Below this received power a transmission is inaudible (not even noise).
    DEAF_THRESHOLD_DBM = -110.0

    def __init__(
        self,
        sim: Simulator,
        gains: Dict[Tuple[int, int], float],
        noise_model: Optional[CPMNoiseModel] = None,
        cca_threshold_dbm: float = CC2420.CCA_THRESHOLD_DBM,
        fading_sigma_db: float = 0.0,
        fading_coherence: int = 5_000_000,
    ) -> None:
        self.sim = sim
        self.gains = gains
        self.cca_threshold_dbm = cca_threshold_dbm
        #: Slow flat fading: a zero-mean Gaussian offset per (link, coherence
        #: bucket), symmetric across directions. This is the "link
        #: burstiness" (Srinivasan et al., the paper's [21]) that makes
        #: distant links transiently usable — the raw material of
        #: opportunistic forwarding — and stored routes transiently wrong.
        self.fading_sigma_db = fading_sigma_db
        self.fading_coherence = fading_coherence
        self._fading_cache: Dict[Tuple[int, int], Tuple[int, float]] = {}
        self._radios: Dict[int, Radio] = {}
        self._on_radios: Set[int] = set()
        self._noise_master = noise_model if noise_model is not None else ConstantNoise()
        self._noise: Dict[int, object] = {}
        self._active: List[_Transmission] = []
        self._pending: Dict[int, _PendingReception] = {}  # receiver -> reception
        self._interferers: List[Interferer] = []
        self._rng = sim.rng("channel")
        # Static audible-neighbour lists derived from gains (tx power agnostic:
        # assume max 0 dBm; per-packet power still gates actual reception).
        # Fading can lift a link a few sigma above its mean, so keep margin.
        audible_floor = self.DEAF_THRESHOLD_DBM - 3.0 * fading_sigma_db
        self._audible: Dict[int, List[Tuple[int, float]]] = {}
        for (a, b), gain in gains.items():
            if gain >= audible_floor:
                self._audible.setdefault(a, []).append((b, gain))
        #: Observers called for every delivered frame: (receiver, frame, rssi).
        self.delivery_observers: List[Callable[[int, Frame, float], None]] = []
        #: Fault-injection hook: extra attenuation (dB) per unordered link
        #: pair. Empty in fault-free runs (one falsy check per transmission).
        self.link_faults: Dict[Tuple[int, int], float] = {}
        #: Fault-injection hook: ``(src, dst, frame) -> deliver?`` filters
        #: consulted *after* the PRR draw, so an empty list leaves the
        #: channel RNG stream — and thus fault-free behaviour — untouched.
        self.reception_filters: List[Callable[[int, int, Frame], bool]] = []

    # ------------------------------------------------------------ attachment
    def attach(self, radio: Radio) -> None:
        """Register a radio with this channel."""
        if radio.node_id in self._radios:
            raise ValueError(f"duplicate radio for node {radio.node_id}")
        self._radios[radio.node_id] = radio
        self._noise[radio.node_id] = self._noise_master.fork(
            seed=(self.sim.seed << 20) ^ radio.node_id
        )

    def add_interferer(self, interferer: Interferer) -> None:
        """Register an external in-band energy source."""
        self._interferers.append(interferer)

    def note_radio_on(self, radio: Radio) -> None:
        """Track that a radio powered on (channel bookkeeping)."""
        self._on_radios.add(radio.node_id)

    def note_radio_off(self, radio: Radio) -> None:
        """Track that a radio powered off (channel bookkeeping)."""
        self._on_radios.discard(radio.node_id)
        self._pending.pop(radio.node_id, None)

    # ---------------------------------------------------------------- energy
    def _noise_dbm(self, node_id: int) -> float:
        return self._noise[node_id].sample()  # type: ignore[union-attr]

    def _interference_mw(self, node_id: int) -> float:
        total = 0.0
        for interferer in self._interferers:
            dbm = interferer.interference_dbm_at(node_id)
            if dbm is not None:
                total += dbm_to_mw(dbm)
        return total

    def energy_dbm_at(self, node_id: int) -> float:
        """Instantaneous in-band energy a CCA at ``node_id`` would read."""
        total_mw = dbm_to_mw(self._noise_dbm(node_id))
        total_mw += self._interference_mw(node_id)
        for tx in self._active:
            power = tx.rx_power_dbm.get(node_id)
            if power is not None:
                total_mw += dbm_to_mw(power)
        return mw_to_dbm(total_mw)

    # ----------------------------------------------------------------- fading
    def fading_db(self, a: int, b: int) -> float:
        """Current fading offset for the (unordered) link ``a``–``b``."""
        if self.fading_sigma_db <= 0.0:
            return 0.0
        key = (a, b) if a <= b else (b, a)
        bucket = self.sim.now // self.fading_coherence
        cached = self._fading_cache.get(key)
        if cached is not None and cached[0] == bucket:
            return cached[1]
        # Deterministic per (seed, link, bucket): replays are reproducible.
        rng = random.Random(
            (self.sim.seed << 48) ^ (key[0] << 34) ^ (key[1] << 20) ^ bucket
        )
        value = rng.gauss(0.0, self.fading_sigma_db)
        self._fading_cache[key] = (bucket, value)
        return value

    # ------------------------------------------------------------- transmit
    def start_transmission(
        self, radio: Radio, frame: Frame, done: Optional[Callable[[], None]]
    ) -> None:
        """Put a frame on the air from ``radio``."""
        airtime = packet_airtime(frame.length)
        now = self.sim.now
        tx = _Transmission(radio.node_id, frame, now, now + airtime)
        for neighbor_id, gain in self._audible.get(radio.node_id, ()):
            rx_power = (
                radio.tx_power_dbm + gain + self.fading_db(radio.node_id, neighbor_id)
            )
            if self.link_faults:
                a, b = radio.node_id, neighbor_id
                rx_power -= self.link_faults.get((a, b) if a <= b else (b, a), 0.0)
            if rx_power >= self.DEAF_THRESHOLD_DBM:
                tx.rx_power_dbm[neighbor_id] = rx_power
        # Account this new packet as interference against in-flight receptions,
        # and try to lock idle receivers onto it.
        for receiver_id, rx_power in tx.rx_power_dbm.items():
            pending = self._pending.get(receiver_id)
            if pending is not None:
                overlap = min(pending.transmission.end, tx.end) - now
                if overlap > 0:
                    pending.interference_mw_ticks += dbm_to_mw(rx_power) * overlap
                continue
            receiver = self._radios.get(receiver_id)
            if receiver is None:
                continue  # position known but no radio attached
            if receiver.state is RadioState.IDLE and rx_power >= CC2420.SENSITIVITY_DBM:
                receiver.state = RadioState.RECEIVING
                receiver.locked_frame_id = frame.frame_id
                self._pending[receiver_id] = _PendingReception(tx, rx_power)
        # Pre-existing overlapping transmissions interfere with this packet's
        # receivers too; fold their remaining overlap in now.
        for other in self._active:
            for receiver_id, _ in tx.rx_power_dbm.items():
                pending = self._pending.get(receiver_id)
                if pending is None or pending.transmission is not tx:
                    continue
                other_power = other.rx_power_dbm.get(receiver_id)
                if other_power is not None:
                    overlap = min(other.end, tx.end) - now
                    if overlap > 0:
                        pending.interference_mw_ticks += dbm_to_mw(other_power) * overlap
        self._active.append(tx)
        self.sim.schedule(airtime, self._end_transmission, tx, radio, done)

    def _end_transmission(
        self, tx: _Transmission, radio: Radio, done: Optional[Callable[[], None]]
    ) -> None:
        self._active.remove(tx)
        radio.finish_tx()
        airtime = tx.end - tx.start
        # Resolve receptions locked onto this transmission.
        for receiver_id in list(self._pending):
            pending = self._pending[receiver_id]
            if pending.transmission is not tx:
                continue
            del self._pending[receiver_id]
            receiver = self._radios.get(receiver_id)
            if receiver is None or receiver.state is not RadioState.RECEIVING:
                continue
            receiver.state = RadioState.IDLE
            receiver.locked_frame_id = None
            noise_mw = dbm_to_mw(self._noise_dbm(receiver_id))
            noise_mw += self._interference_mw(receiver_id)
            if airtime > 0:
                noise_mw += pending.interference_mw_ticks / airtime
            sinr_db = pending.rx_power_dbm - mw_to_dbm(noise_mw)
            prr = CC2420.prr(sinr_db, tx.frame.length)
            if self._rng.random() < prr:
                if self.reception_filters and not self._reception_allowed(
                    tx.src, receiver_id, tx.frame
                ):
                    continue
                receiver.deliver(tx.frame, pending.rx_power_dbm)
                for observer in self.delivery_observers:
                    observer(receiver_id, tx.frame, pending.rx_power_dbm)
        radio._transmission_done(done)

    # ------------------------------------------------------------ fault hooks
    def _reception_allowed(self, src: int, dst: int, frame: Frame) -> bool:
        for reception_filter in self.reception_filters:
            if not reception_filter(src, dst, frame):
                return False
        return True

    def set_link_fault(self, a: int, b: int, attenuation_db: Optional[float]) -> None:
        """Add (or with ``None``, clear) extra attenuation on link ``a``–``b``."""
        key = (a, b) if a <= b else (b, a)
        if attenuation_db is None:
            self.link_faults.pop(key, None)
        else:
            self.link_faults[key] = attenuation_db

    # --------------------------------------------------------------- queries
    def link_gain(self, src: int, dst: int) -> Optional[float]:
        """Static gain in dB from ``src`` to ``dst``, or None if out of range."""
        return self.gains.get((src, dst))

    def audible_neighbors(self, node_id: int) -> List[int]:
        """Nodes that can hear ``node_id`` at all (static, power-agnostic)."""
        return [n for n, _ in self._audible.get(node_id, ())]

    def expected_prr(self, src: int, dst: int, frame_bytes: int = 40) -> float:
        """Clean-channel PRR estimate for a link (no interference), for tests."""
        gain = self.gains.get((src, dst))
        if gain is None:
            return 0.0
        radio = self._radios.get(src)
        tx_power = radio.tx_power_dbm if radio is not None else 0.0
        snr_db = (tx_power + gain) - CC2420.NOISE_FLOOR_DBM
        if tx_power + gain < CC2420.SENSITIVITY_DBM:
            return 0.0
        return CC2420.prr(snr_db, frame_bytes)
