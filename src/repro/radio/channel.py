"""Shared wireless medium with SINR-based packet reception.

Reception model
---------------
When a transmission starts, every powered-on, idle radio whose received power
clears the deaf threshold begins decoding it (the strongest-first frame locks
the receiver; later-starting overlaps become interference). When the airtime
ends, the channel computes

    SINR = P_rx  -  10 log10( noise_mw + sum(interferer_mw) + sum(overlap_mw) )

with noise drawn from the CPM model and external interferers (e.g. the WiFi
generator) queried for their current in-band power. The frame is delivered
with probability ``PRR(SINR, length)`` from the radio profile's curve (the
CC2420 O-QPSK curve on the default profile). Airtime, sensitivity, the CCA
default, and the deaf threshold likewise come from the channel's
:class:`~repro.radio.profiles.RadioProfile`. Interference from concurrent
packets is weighted by their temporal overlap with the frame.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Protocol, Set, Tuple

from repro.radio.frame import Frame
from repro.radio.noise import CPMNoiseModel, ConstantNoise
from repro.radio.profiles import RadioProfile, get_radio_profile
from repro.radio.radio import Radio, RadioState
from repro.radio.spatial import SpatialChannel, get_numpy
from repro.sim.simulator import Simulator


def dbm_to_mw(dbm: float) -> float:
    """Convert dBm to milliwatts."""
    return 10.0 ** (dbm / 10.0)


def mw_to_dbm(mw: float) -> float:
    """Convert milliwatts to dBm (floored at -200)."""
    if mw <= 0.0:
        return -200.0
    return 10.0 * math.log10(mw)


class Interferer(Protocol):
    """External in-band energy source (e.g. WiFi)."""

    def interference_dbm_at(self, node_id: int) -> Optional[float]:
        """Current in-band power at ``node_id`` in dBm, or None when idle."""


@dataclass
class _Transmission:
    src: int
    frame: Frame
    start: int
    end: int
    #: Received power per potential receiver (dBm), filled at start.
    rx_power_dbm: Dict[int, float] = field(default_factory=dict)
    #: Receivers locked onto this packet, in lock order — the exact order
    #: ``_end_transmission`` must resolve them in (it matches the pending-dict
    #: insertion order the resolution loop historically iterated, so the
    #: shared channel RNG stream is consumed identically).
    locked: List[Tuple[int, "_PendingReception"]] = field(default_factory=list)


@dataclass
class _PendingReception:
    transmission: _Transmission
    rx_power_dbm: float
    #: mW·ticks of interference accumulated from overlapping packets.
    interference_mw_ticks: float = 0.0


class Channel:
    """The single 802.15.4 channel all radios share.

    ``gains[(a, b)]`` is the channel gain in dB from ``a`` to ``b``; pairs
    missing from the dict are out of range. The channel derives static
    neighbour sets from the gains to avoid all-pairs scans per packet.

    At city scale, pass ``spatial`` (a :class:`SpatialChannel`) instead of a
    dense gain dict: audible-neighbour lists are then derived from grid-hash
    candidate queries — identical lists, O(local density) construction — and
    only audible-pair gains are materialised. ``interference_floor_dbm``
    (default: the deaf threshold) is the received power below which links
    are culled before any per-receiver SNR work.
    """

    #: Historical CC2420 deaf threshold, kept for back-compat; instances use
    #: the profile-derived ``self.deaf_threshold_dbm``.
    DEAF_THRESHOLD_DBM = -110.0

    #: Audible-list length from which the vectorised rx-map path pays off.
    _NUMPY_MIN_AUDIBLE = 32

    def __init__(
        self,
        sim: Simulator,
        gains: Optional[Dict[Tuple[int, int], float]] = None,
        noise_model: Optional[CPMNoiseModel] = None,
        cca_threshold_dbm: Optional[float] = None,
        fading_sigma_db: float = 0.0,
        fading_coherence: int = 5_000_000,
        interference_floor_dbm: Optional[float] = None,
        spatial: Optional[SpatialChannel] = None,
        positions: Optional[List[Tuple[float, float]]] = None,
        propagation: Optional[Any] = None,
        profile: Optional[RadioProfile] = None,
    ) -> None:
        self.sim = sim
        # PHY dispatch: airtime, PRR curve, and reception thresholds all come
        # from the radio profile (default: CC2420, numerically identical to
        # the historical hard-wired constants). The hot-path callables are
        # bound once here so per-packet dispatch is one attribute load.
        if profile is None:
            profile = get_radio_profile(None)
        self.profile = profile
        self._airtime = profile.packet_airtime
        self._prr = profile.prr
        self._sensitivity = profile.sensitivity_dbm
        self.deaf_threshold_dbm = profile.deaf_threshold_dbm
        self.cca_threshold_dbm = (
            profile.cca_threshold_dbm if cca_threshold_dbm is None else cca_threshold_dbm
        )
        #: Slow flat fading: a zero-mean Gaussian offset per (link, coherence
        #: bucket), symmetric across directions. This is the "link
        #: burstiness" (Srinivasan et al., the paper's [21]) that makes
        #: distant links transiently usable — the raw material of
        #: opportunistic forwarding — and stored routes transiently wrong.
        self.fading_sigma_db = fading_sigma_db
        self.fading_coherence = fading_coherence
        self._fading_cache: Dict[Tuple[int, int], Tuple[int, float]] = {}
        # Per-source received-power maps, keyed by src with the (fading
        # bucket, tx power, link-fault epoch) they were computed under.
        # Within one coherence bucket every packet from a source lands with
        # exactly the same powers, so the audible-neighbour loop — the single
        # hottest loop in dense grids — runs once per bucket instead of once
        # per packet. The cached dict is shared read-only by transmissions.
        self._rx_cache: Dict[int, Tuple[int, float, int, Dict[int, float]]] = {}
        self._fault_epoch = 0
        self._radios: Dict[int, Radio] = {}
        self._on_radios: Set[int] = set()
        self._noise_master = noise_model if noise_model is not None else ConstantNoise()
        self._noise: Dict[int, object] = {}
        self._active: List[_Transmission] = []
        self._pending: Dict[int, _PendingReception] = {}  # receiver -> reception
        self._interferers: List[Interferer] = []
        self._rng = sim.rng("channel")
        # Static audible-neighbour lists (tx power agnostic: assume max
        # 0 dBm; per-packet power still gates actual reception). Fading can
        # lift a link a few sigma above its mean, so keep margin below the
        # interference floor. Entries are (neighbor, gain, fading_key)
        # triples: the unordered link key is precomputed once here instead
        # of being rebuilt per packet in the transmit hot loop (it doubles
        # as the link-fault key).
        floor = (
            self.deaf_threshold_dbm
            if interference_floor_dbm is None
            else float(interference_floor_dbm)
        )
        self.interference_floor_dbm = floor
        self._audible_floor = floor - 3.0 * fading_sigma_db
        self._spatial = spatial
        # Dense-mode mobility support: with node positions and a propagation
        # model the channel can recompute a moved node's gain row itself
        # (the dense counterpart of the spatial move path). The list is
        # copied — moves must never mutate the caller's deployment.
        if spatial is not None and positions is not None:
            raise ValueError("positions belong to the spatial index in spatial mode")
        self._positions: Optional[List[Tuple[float, float]]] = (
            [(float(x), float(y)) for x, y in positions]
            if positions is not None
            else None
        )
        self._propagation = propagation
        # Per-source (ids, gains) numpy columns mirroring _audible, built
        # lazily for the vectorised rx-map path; dropped whenever the
        # corresponding audible row is rebuilt.
        self._audible_np: Dict[int, Tuple[Any, Any]] = {}
        self._audible: Dict[int, List[Tuple[int, float, Tuple[int, int]]]] = {}
        if spatial is not None:
            if gains:
                raise ValueError("pass dense gains or a spatial index, not both")
            if spatial.cull_floor_dbm > self._audible_floor + 1e-9:
                raise ValueError(
                    "spatial culling floor above the channel's audible floor: "
                    f"{spatial.cull_floor_dbm} > {self._audible_floor} dB — "
                    "culling would drop audible links"
                )
            # Derive audible rows from grid candidates: per source, candidates
            # come back in ascending id order — the same order the dense
            # builder's (a, b) iteration produces — and each gain is the
            # exact scalar float gain_matrix would have computed. Only
            # audible-pair gains are materialised (the sparse win: O(N·density)
            # memory instead of O(N²)).
            self.gains = {}
            self._build_audible_from_spatial()
        else:
            self.gains = gains if gains is not None else {}
            audible_floor = self._audible_floor
            for (a, b), gain in self.gains.items():
                if gain >= audible_floor:
                    fkey = (a, b) if a <= b else (b, a)
                    self._audible.setdefault(a, []).append((b, gain, fkey))
        #: Observers called for every delivered frame: (receiver, frame, rssi).
        self.delivery_observers: List[Callable[[int, Frame, float], None]] = []
        #: Fault-injection hook: extra attenuation (dB) per unordered link
        #: pair. Empty in fault-free runs (one falsy check per transmission).
        self.link_faults: Dict[Tuple[int, int], float] = {}
        #: Fault-injection hook: ``(src, dst, frame) -> deliver?`` filters
        #: consulted *after* the PRR draw, so an empty list leaves the
        #: channel RNG stream — and thus fault-free behaviour — untouched.
        self.reception_filters: List[Callable[[int, int, Frame], bool]] = []

    def _build_audible_from_spatial(self) -> None:
        spatial = self._spatial
        assert spatial is not None
        audible_floor = self._audible_floor
        gains = self.gains
        pos = spatial.index._positions
        link_gain_db = spatial.propagation.link_gain_db
        audible = self._audible
        for a in range(len(spatial)):
            pos_a = pos[a]
            entries = []
            for b in spatial.candidates(a):
                gain = link_gain_db(a, b, pos_a, pos[b])
                if gain >= audible_floor:
                    entries.append((b, gain, (a, b) if a <= b else (b, a)))
                    gains[(a, b)] = gain
            if entries:
                audible[a] = entries

    def _rebuild_audible_row(self, a: int, touched: Set[int]) -> None:
        """Recompute ``_audible[a]`` from ``self.gains`` after gain updates.

        ``touched`` names neighbour ids whose (a, b) gain may have appeared,
        changed, or vanished; surviving entries keep ascending-id order so
        rx-map iteration (and thus RNG consumption) stays deterministic.
        """
        old = self._audible.get(a, ())
        ids = sorted({entry[0] for entry in old} | touched)
        entries = []
        for b in ids:
            gain = self.gains.get((a, b))
            if gain is not None and gain >= self._audible_floor:
                entries.append((b, gain, (a, b) if a <= b else (b, a)))
        if entries:
            self._audible[a] = entries
        else:
            self._audible.pop(a, None)
        self._audible_np.pop(a, None)

    # ------------------------------------------------------------ attachment
    def attach(self, radio: Radio) -> None:
        """Register a radio with this channel."""
        if radio.node_id in self._radios:
            raise ValueError(f"duplicate radio for node {radio.node_id}")
        self._radios[radio.node_id] = radio
        self._noise[radio.node_id] = self._noise_master.fork(
            seed=(self.sim.seed << 20) ^ radio.node_id
        )

    def add_interferer(self, interferer: Interferer) -> None:
        """Register an external in-band energy source."""
        self._interferers.append(interferer)

    def note_radio_on(self, radio: Radio) -> None:
        """Track that a radio powered on (channel bookkeeping)."""
        self._on_radios.add(radio.node_id)

    def note_radio_off(self, radio: Radio) -> None:
        """Track that a radio powered off (channel bookkeeping)."""
        self._on_radios.discard(radio.node_id)
        self._pending.pop(radio.node_id, None)

    # ---------------------------------------------------------------- energy
    def _noise_dbm(self, node_id: int) -> float:
        return self._noise[node_id].sample()  # type: ignore[union-attr]

    def _interference_mw(self, node_id: int) -> float:
        total = 0.0
        for interferer in self._interferers:
            dbm = interferer.interference_dbm_at(node_id)
            if dbm is not None:
                total += dbm_to_mw(dbm)
        return total

    def energy_dbm_at(self, node_id: int) -> float:
        """Instantaneous in-band energy a CCA at ``node_id`` would read."""
        # Hot per-CCA path: dbm_to_mw is inlined and the interferer query is
        # skipped when there are none (it would add exactly 0.0).
        total_mw = 10.0 ** (self._noise[node_id].sample() / 10.0)  # type: ignore[union-attr]
        if self._interferers:
            total_mw += self._interference_mw(node_id)
        for tx in self._active:
            power = tx.rx_power_dbm.get(node_id)
            if power is not None:
                total_mw += 10.0 ** (power / 10.0)
        return mw_to_dbm(total_mw)

    # ----------------------------------------------------------------- fading
    def fading_db(self, a: int, b: int) -> float:
        """Current fading offset for the (unordered) link ``a``–``b``."""
        if self.fading_sigma_db <= 0.0:
            return 0.0
        key = (a, b) if a <= b else (b, a)
        bucket = self.sim.now // self.fading_coherence
        cached = self._fading_cache.get(key)
        if cached is not None and cached[0] == bucket:
            return cached[1]
        return self._fading_miss(key, bucket)

    def _fading_miss(self, key: Tuple[int, int], bucket: int) -> float:
        # Deterministic per (seed, link, bucket): replays are reproducible.
        rng = random.Random(
            (self.sim.seed << 48) ^ (key[0] << 34) ^ (key[1] << 20) ^ bucket
        )
        value = rng.gauss(0.0, self.fading_sigma_db)
        self._fading_cache[key] = (bucket, value)
        return value

    # ------------------------------------------------------------- transmit
    def _compute_rx_map(self, src: int, tx_power: float, bucket: int) -> Dict[int, float]:
        """Received power (dBm) per audible neighbour of ``src``.

        The fading cache lookup is inlined (one dict probe on the
        precomputed link key) and the zero-fading case (``bucket == -1``)
        skips it entirely — fading_db() would return 0.0 and ``x + 0.0`` is
        bit-identical for every power that can reach the deaf threshold.
        """
        rx_map: Dict[int, float] = {}
        link_faults = self.link_faults
        deaf = self.deaf_threshold_dbm
        if bucket >= 0:
            fading_cache = self._fading_cache
            for neighbor_id, gain, fkey in self._audible.get(src, ()):
                cached = fading_cache.get(fkey)
                if cached is not None and cached[0] == bucket:
                    rx_power = tx_power + gain + cached[1]
                else:
                    rx_power = tx_power + gain + self._fading_miss(fkey, bucket)
                if link_faults:
                    rx_power -= link_faults.get(fkey, 0.0)
                if rx_power >= deaf:
                    rx_map[neighbor_id] = rx_power
        else:
            entries = self._audible.get(src, ())
            if not link_faults and len(entries) >= self._NUMPY_MIN_AUDIBLE:
                np = get_numpy()
                if np is not None:
                    # Vectorised fast path, bit-identical to the loop below:
                    # tx_power + gain is the same IEEE-754 add elementwise,
                    # the >= compare is exact, and .tolist() hands back the
                    # native Python ints/floats the scalar loop would have
                    # produced (np.float64 must never leak into rx maps — it
                    # would poison trace records and JSON encoding).
                    columns = self._audible_np.get(src)
                    if columns is None:
                        columns = (
                            np.asarray([e[0] for e in entries], dtype=np.intp),
                            np.asarray([e[1] for e in entries], dtype=np.float64),
                        )
                        self._audible_np[src] = columns
                    rx = tx_power + columns[1]
                    keep = rx >= deaf
                    return dict(zip(columns[0][keep].tolist(), rx[keep].tolist()))
            for neighbor_id, gain, fkey in entries:
                rx_power = tx_power + gain
                if link_faults:
                    rx_power -= link_faults.get(fkey, 0.0)
                if rx_power >= deaf:
                    rx_map[neighbor_id] = rx_power
        return rx_map

    def start_transmission(
        self, radio: Radio, frame: Frame, done: Optional[Callable[[], None]]
    ) -> None:
        """Put a frame on the air from ``radio``."""
        airtime = self._airtime(frame.length)
        now = self.sim.now
        src = radio.node_id
        tx_end = now + airtime
        # Received power per neighbour is constant within one fading bucket
        # (and one link-fault epoch, one tx power), so the audible loop is
        # memoised per source: every cache hit reuses the exact floats the
        # loop would recompute. The map is shared read-only.
        tx_power = radio.tx_power_dbm
        bucket = now // self.fading_coherence if self.fading_sigma_db > 0.0 else -1
        epoch = self._fault_epoch
        cached_rx = self._rx_cache.get(src)
        if (
            cached_rx is not None
            and cached_rx[0] == bucket
            and cached_rx[1] == tx_power
            and cached_rx[2] == epoch
        ):
            rx_map = cached_rx[3]
        else:
            rx_map = self._compute_rx_map(src, tx_power, bucket)
            self._rx_cache[src] = (bucket, tx_power, epoch, rx_map)
        tx = _Transmission(src, frame, now, tx_end, rx_map)
        # Account this new packet as interference against in-flight receptions,
        # and try to lock idle receivers onto it.
        pending_map = self._pending
        radios = self._radios
        locked = tx.locked
        idle = RadioState.IDLE
        sensitivity = self._sensitivity
        for receiver_id, rx_power in rx_map.items():
            pending = pending_map.get(receiver_id)
            if pending is not None:
                end = pending.transmission.end
                overlap = (end if end < tx_end else tx_end) - now
                if overlap > 0:
                    pending.interference_mw_ticks += 10.0 ** (rx_power / 10.0) * overlap
                continue
            receiver = radios.get(receiver_id)
            if receiver is None:
                continue  # position known but no radio attached
            if receiver.state is idle and rx_power >= sensitivity:
                receiver.state = RadioState.RECEIVING
                receiver.locked_frame_id = frame.frame_id
                reception = _PendingReception(tx, rx_power)
                pending_map[receiver_id] = reception
                locked.append((receiver_id, reception))
        # Pre-existing overlapping transmissions interfere with this packet's
        # receivers too; fold their remaining overlap in now. Iterating the
        # just-built lock list keeps the per-reception accumulation order
        # exactly as before (outer: _active order; inner: lock order).
        if locked:
            for other in self._active:
                end = other.end
                overlap = (end if end < tx_end else tx_end) - now
                if overlap <= 0:
                    continue
                other_rx = other.rx_power_dbm
                for receiver_id, reception in locked:
                    other_power = other_rx.get(receiver_id)
                    if other_power is not None:
                        reception.interference_mw_ticks += (
                            10.0 ** (other_power / 10.0) * overlap
                        )
        self._active.append(tx)
        self.sim.schedule(airtime, self._end_transmission, tx, radio, done)

    def _end_transmission(
        self, tx: _Transmission, radio: Radio, done: Optional[Callable[[], None]]
    ) -> None:
        self._active.remove(tx)
        radio.finish_tx()
        airtime = tx.end - tx.start
        # Resolve receptions locked onto this transmission. tx.locked holds
        # exactly the receivers that locked on, in the order the historical
        # full-pending scan would visit them — so the noise samples and the
        # shared channel-RNG PRR draws happen in the identical sequence —
        # without walking every unrelated in-flight reception.
        pending_map = self._pending
        radios = self._radios
        for receiver_id, reception in tx.locked:
            if pending_map.get(receiver_id) is not reception:
                continue  # receiver powered off (and possibly re-locked) mid-air
            del pending_map[receiver_id]
            receiver = radios.get(receiver_id)
            if receiver is None or receiver.state is not RadioState.RECEIVING:
                continue
            receiver.state = RadioState.IDLE
            receiver.locked_frame_id = None
            noise_mw = 10.0 ** (self._noise[receiver_id].sample() / 10.0)  # type: ignore[union-attr]
            if self._interferers:
                noise_mw += self._interference_mw(receiver_id)
            if airtime > 0:
                noise_mw += reception.interference_mw_ticks / airtime
            sinr_db = reception.rx_power_dbm - mw_to_dbm(noise_mw)
            prr = self._prr(sinr_db, tx.frame.length)
            if self._rng.random() < prr:
                if self.reception_filters and not self._reception_allowed(
                    tx.src, receiver_id, tx.frame
                ):
                    continue
                receiver.deliver(tx.frame, reception.rx_power_dbm)
                for observer in self.delivery_observers:
                    observer(receiver_id, tx.frame, reception.rx_power_dbm)
        radio._transmission_done(done)

    # ------------------------------------------------------------ fault hooks
    def _reception_allowed(self, src: int, dst: int, frame: Frame) -> bool:
        for reception_filter in self.reception_filters:
            if not reception_filter(src, dst, frame):
                return False
        return True

    def set_link_fault(self, a: int, b: int, attenuation_db: Optional[float]) -> None:
        """Add (or with ``None``, clear) extra attenuation on link ``a``–``b``."""
        key = (a, b) if a <= b else (b, a)
        if attenuation_db is None:
            self.link_faults.pop(key, None)
        else:
            self.link_faults[key] = attenuation_db
        # Invalidate every memoised per-source power map: fault attenuation
        # is folded into the cached powers.
        self._fault_epoch += 1

    # ------------------------------------------------------------- mobility
    def move_node(self, node_id: int, new_pos: Tuple[float, float]) -> None:
        """Relocate a node: recompute its links, drop stale caches.

        The sparse gain entries (or, in dense mode, the full gain row), the
        audible rows of every old and new neighbour, and — via the epoch
        bump — every memoised per-source rx-power map are refreshed, so no
        packet is ever priced with pre-move powers. Per-link shadowing stays
        pinned to the node pair (it models the environment between two
        endpoints, and keeping it stable is what makes moves reproducible).

        Dense channels need ``positions`` and ``propagation`` at
        construction; the row recompute is O(N) per move but uses the exact
        scalar gains the spatial path produces, so both modes expose
        identical audible state after the same move sequence.
        """
        spatial = self._spatial
        if spatial is None:
            self._move_node_dense(node_id, new_pos)
            return
        old_neighbors = {entry[0] for entry in self._audible.get(node_id, ())}
        for b in old_neighbors:
            del self.gains[(node_id, b)]
            del self.gains[(b, node_id)]
        spatial.move(node_id, new_pos)
        pos = spatial.index._positions
        pos_a = pos[node_id]
        link_gain_db = spatial.propagation.link_gain_db
        new_neighbors: Set[int] = set()
        for b in spatial.candidates(node_id):
            gain = link_gain_db(node_id, b, pos_a, pos[b])
            if gain >= self._audible_floor:
                # Gains are symmetric (distance + unordered-pair shadowing).
                self.gains[(node_id, b)] = gain
                self.gains[(b, node_id)] = gain
                new_neighbors.add(b)
        self._rebuild_audible_row(node_id, new_neighbors)
        for b in old_neighbors | new_neighbors:
            self._rebuild_audible_row(b, {node_id})
        self._fault_epoch += 1

    def _move_node_dense(self, node_id: int, new_pos: Tuple[float, float]) -> None:
        """Dense-mode move: recompute the node's full gain row from geometry.

        Dense channels materialise *every* pair (including sub-audible ones,
        matching ``gain_matrix``), so the whole row is refreshed — each gain
        is the same scalar ``link_gain_db`` call the spatial path makes,
        which is what keeps the two modes bit-identical under mobility. The
        patch is routed through :meth:`update_link_gains` so audible rows
        and the rx-cache epoch follow automatically.
        """
        if self._positions is None or self._propagation is None:
            raise ValueError(
                "dense move_node needs positions= and propagation= at channel "
                "construction (or use a spatial index); callers without a "
                "geometry model patch links with update_link_gains"
            )
        pos = self._positions
        if not (0 <= node_id < len(pos)):
            raise ValueError(f"unknown node {node_id}")
        pos_a = (float(new_pos[0]), float(new_pos[1]))
        pos[node_id] = pos_a
        link_gain_db = self._propagation.link_gain_db
        updates: Dict[Tuple[int, int], Optional[float]] = {}
        for b in range(len(pos)):
            if b == node_id:
                continue
            # Gains are symmetric (distance + unordered-pair shadowing).
            gain = link_gain_db(node_id, b, pos_a, pos[b])
            updates[(node_id, b)] = gain
            updates[(b, node_id)] = gain
        self.update_link_gains(updates)

    def update_link_gains(
        self, updates: Dict[Tuple[int, int], Optional[float]]
    ) -> None:
        """Patch per-directed-link gains in place (``None`` removes a link).

        The dense-mode counterpart of :meth:`move_node`: audible rows of
        every touched source are rebuilt and the epoch bump invalidates all
        memoised rx-power maps.
        """
        touched: Dict[int, Set[int]] = {}
        for (a, b), gain in updates.items():
            if gain is None:
                self.gains.pop((a, b), None)
            else:
                self.gains[(a, b)] = gain
            touched.setdefault(a, set()).add(b)
        for a, ids in touched.items():
            self._rebuild_audible_row(a, ids)
        self._fault_epoch += 1

    # --------------------------------------------------------------- queries
    def link_gain(self, src: int, dst: int) -> Optional[float]:
        """Static gain in dB from ``src`` to ``dst``, or None if out of range.

        In spatial mode only audible-pair gains are materialised; pairs
        inside the culling radius but below the audible floor are computed
        on demand so the query answers exactly what the dense map would.
        """
        gain = self.gains.get((src, dst))
        if gain is None and self._spatial is not None and src != dst:
            return self._spatial.link_gain(src, dst)
        return gain

    def audible_neighbors(self, node_id: int) -> List[int]:
        """Nodes that can hear ``node_id`` at all (static, power-agnostic)."""
        return [entry[0] for entry in self._audible.get(node_id, ())]

    def expected_prr(self, src: int, dst: int, frame_bytes: int = 40) -> float:
        """Clean-channel PRR estimate for a link (no interference), for tests."""
        gain = self.link_gain(src, dst)
        if gain is None:
            return 0.0
        radio = self._radios.get(src)
        tx_power = radio.tx_power_dbm if radio is not None else 0.0
        snr_db = (tx_power + gain) - self.profile.noise_floor_dbm
        if tx_power + gain < self._sensitivity:
            return 0.0
        return self._prr(snr_db, frame_bytes)
