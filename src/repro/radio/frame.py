"""Link-layer frames exchanged over the simulated channel."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Any, Optional

#: Link-layer broadcast address.
BROADCAST: int = 0xFFFF

_frame_ids = itertools.count(1)


class FrameType(Enum):
    """What a frame carries; dispatch key for the protocol stacks."""

    DATA = auto()  # CTP data (collection traffic, e2e acks ride on this)
    ROUTING_BEACON = auto()  # CTP routing beacon (Trickle-timed)
    TELE_BEACON = auto()  # TeleAdjusting beacon (position allocations)
    POSITION_REQUEST = auto()  # child asking its parent for a position
    ALLOCATION_ACK = auto()  # parent's unicast allocation acknowledgement
    CONFIRMATION = auto()  # child's confirmation of an allocated position
    CONTROL = auto()  # downward remote-control packet
    FEEDBACK = auto()  # backtracking feedback packet
    ACK = auto()  # link-layer acknowledgement
    HANDOVER = auto()  # anycast winner announcement (one copy, post-train)
    DISSEMINATION = auto()  # Drip dissemination payload
    RPL_DAO = auto()  # RPL destination advertisement
    WIFI = auto()  # foreign interference burst (never decoded)


@dataclass
class Frame:
    """A frame on the air.

    ``payload`` is an arbitrary protocol-defined object; ``length`` is the
    on-air size in bytes (MAC header + payload). Frames carry no timing of
    their own: airtime is priced from ``length`` by the channel's radio
    profile (:meth:`repro.radio.profiles.RadioProfile.packet_airtime`), so
    the same frame lasts ~1.5 ms on the CC2420 profile and ~0.6 s on the
    LoRa profile.
    """

    src: int
    dst: int
    type: FrameType
    payload: Any = None
    length: int = 40
    seqno: int = 0
    #: Set by the MAC on unicast frames that want a link-layer ack.
    ack_requested: bool = False
    #: Unique identity for duplicate suppression and tracing.
    frame_id: int = field(default_factory=lambda: next(_frame_ids))

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError(f"frame length must be positive, got {self.length}")

    @property
    def is_broadcast(self) -> bool:
        """True for broadcast-addressed frames."""
        return self.dst == BROADCAST

    def clone(self) -> "Frame":
        """Copy with a fresh frame_id (payload is shared, frames are logical)."""
        return Frame(
            src=self.src,
            dst=self.dst,
            type=self.type,
            payload=self.payload,
            length=self.length,
            seqno=self.seqno,
            ack_requested=self.ack_requested,
        )
