"""CC2420 radio constants and the SNR→PRR curve.

Parameter values follow the CC2420 datasheet (the paper: "We select radio
model parameters in the simulations strictly according to the CC2420 radio
hardware specification"). The bit-error-rate formula is the one TOSSIM and
Zuniga & Krishnamachari use for 802.15.4's O-QPSK with DSSS (16-ary
orthogonal signalling over an AWGN channel):

    BER(snr) = (8/15) * (1/16) * sum_{k=2..16} (-1)^k C(16,k) exp(20*snr*(1/k - 1))

with ``snr`` linear. Packet reception ratio over ``f`` bytes is then
``PRR = (1 - BER)^(8 f)``.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Dict

from repro.sim.units import MICROSECOND

#: CC2420 output power (dBm) per register power level (datasheet table 9).
POWER_LEVEL_DBM: Dict[int, float] = {
    31: 0.0,
    27: -1.0,
    23: -3.0,
    19: -5.0,
    15: -7.0,
    11: -10.0,
    7: -15.0,
    3: -25.0,
}

_BINOM_16 = [math.comb(16, k) for k in range(17)]


class CC2420:
    """CC2420 PHY constants and reception-probability helpers."""

    BIT_RATE_BPS = 250_000
    #: PHY overhead bytes: 4 preamble + 1 SFD + 1 length (FCS counted in frame).
    PHY_OVERHEAD_BYTES = 6
    SENSITIVITY_DBM = -95.0
    #: CCA threshold (energy-detect), datasheet default -77 dBm; real
    #: deployments tune it near the sensitivity floor for LPL wake-up.
    CCA_THRESHOLD_DBM = -77.0
    #: Receiver noise figure folded into the noise floor used for SNR.
    NOISE_FLOOR_DBM = -98.0
    TURNAROUND_US = 192  # RX/TX turnaround, 12 symbol periods
    MAX_FRAME_BYTES = 127

    @staticmethod
    def power_level_to_dbm(level: int) -> float:
        """Map a CC2420 register power level (0..31) to output dBm.

        Levels between datasheet anchor points are linearly interpolated;
        levels below 3 extrapolate the 3→7 slope (the paper's testbed uses
        level 2 to force multi-hop topologies).
        """
        if level in POWER_LEVEL_DBM:
            return POWER_LEVEL_DBM[level]
        anchors = sorted(POWER_LEVEL_DBM)
        if level >= anchors[-1]:
            return POWER_LEVEL_DBM[anchors[-1]]
        lo_anchor, hi_anchor = anchors[0], anchors[1]
        for a in anchors:
            if a <= level:
                lo_anchor = a
            else:
                hi_anchor = a
                break
        if level < anchors[0]:
            # Extrapolate below the lowest anchor with the first segment slope.
            lo_anchor, hi_anchor = anchors[0], anchors[1]
            slope = (POWER_LEVEL_DBM[hi_anchor] - POWER_LEVEL_DBM[lo_anchor]) / (
                hi_anchor - lo_anchor
            )
            return POWER_LEVEL_DBM[lo_anchor] + slope * (level - lo_anchor)
        if lo_anchor == hi_anchor:
            return POWER_LEVEL_DBM[lo_anchor]
        frac = (level - lo_anchor) / (hi_anchor - lo_anchor)
        return POWER_LEVEL_DBM[lo_anchor] + frac * (
            POWER_LEVEL_DBM[hi_anchor] - POWER_LEVEL_DBM[lo_anchor]
        )

    @staticmethod
    @lru_cache(maxsize=4096)
    def bit_error_rate(snr_db_tenths: int) -> float:
        """BER for a given SNR (passed as tenths of dB for cache-friendliness)."""
        snr = 10.0 ** (snr_db_tenths / 10.0 / 10.0)
        total = 0.0
        for k in range(2, 17):
            total += ((-1) ** k) * _BINOM_16[k] * math.exp(20.0 * snr * (1.0 / k - 1.0))
        ber = (8.0 / 15.0) * (1.0 / 16.0) * total
        return min(max(ber, 0.0), 0.5)

    @classmethod
    def prr(cls, snr_db: float, frame_bytes: int) -> float:
        """Packet reception ratio at ``snr_db`` for a ``frame_bytes`` frame."""
        if snr_db <= -10.0:
            return 0.0
        if snr_db >= 15.0:
            return 1.0
        ber = cls.bit_error_rate(round(snr_db * 10))
        return (1.0 - ber) ** (8 * max(frame_bytes, 1))


def packet_airtime(frame_bytes: int) -> int:
    """Airtime in simulator ticks (µs) of a frame with PHY overhead."""
    total_bytes = frame_bytes + CC2420.PHY_OVERHEAD_BYTES
    return (total_bytes * 8 * 1_000_000 // CC2420.BIT_RATE_BPS) * MICROSECOND
