"""Energy accounting on top of radio on-time.

The paper reports radio duty cycle (Figure 9) as its energy-efficiency
proxy; this module converts the same accounting into charge and average
current using the radio profile's per-state currents, so deployments can
reason about battery lifetime directly. The per-state current tables live
on :class:`~repro.radio.profiles.RadioProfile` — the single source of truth
this module and the battery depletion monitor both consume (historically
each kept its own copy of the CC2420 numbers).

The model is the standard three-state one: the radio draws the profile's RX
current while listening/receiving, its (level-dependent) TX current while
transmitting, and the MCU+radio sleep current otherwise. Transmit time is
reconstructed from the radio's transmission counter and the airtime of an
average frame; for exact figures pass the measured ``tx_time`` instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from repro.radio.profiles import RadioProfile, get_radio_profile
from repro.sim.units import to_seconds

if TYPE_CHECKING:  # pragma: no cover
    from repro.radio.radio import Radio


_CC2420_PROFILE = get_radio_profile(None)

#: Back-compat aliases of the default (CC2420) profile's current table; the
#: authoritative copy is ``RadioProfile.tx_current_ma_table`` and friends.
TX_CURRENT_MA = dict(_CC2420_PROFILE.tx_current_ma_table)
RX_CURRENT_MA = _CC2420_PROFILE.rx_current_ma
SLEEP_CURRENT_MA = _CC2420_PROFILE.sleep_current_ma  # radio off + MCU LPM


def tx_current_ma(
    tx_power_dbm: float, profile: Optional[RadioProfile] = None
) -> float:
    """Interpolated transmit current for an output power in dBm."""
    return (profile or _CC2420_PROFILE).tx_current_ma(tx_power_dbm)


def interval_charge_mc(
    on_time_ticks: int,
    tx_time_ticks: int,
    interval_ticks: int,
    tx_power_dbm: float,
    profile: Optional[RadioProfile] = None,
) -> float:
    """Charge (mC) drawn over an interval, from raw radio-time accounting.

    The pure core of :func:`energy_report`, shared with the battery
    depletion monitor so incremental window-by-window draining sums to
    exactly what a single whole-run report would compute. ``tx_time`` is
    clamped into ``on_time`` and ``on_time`` into the interval, mirroring
    the report's defensive clamps; the float operation order (tx, then rx,
    then sleep) is part of the bit-identity contract.
    """
    if interval_ticks <= 0:
        raise ValueError("interval must be positive")
    if profile is None:
        profile = _CC2420_PROFILE
    on_time = min(on_time_ticks, interval_ticks)
    tx_time = min(tx_time_ticks, on_time)
    rx_time = on_time - tx_time
    off_time = interval_ticks - on_time
    tx_ma = profile.tx_current_ma(tx_power_dbm)
    return (
        to_seconds(tx_time) * tx_ma
        + to_seconds(rx_time) * profile.rx_current_ma
        + to_seconds(off_time) * profile.sleep_current_ma
    )


@dataclass
class EnergyReport:
    """Charge breakdown for one node over an interval."""

    node_id: int
    interval_s: float
    on_time_s: float
    tx_time_s: float
    charge_mc: float  # milliCoulombs
    average_current_ma: float
    duty_cycle: float

    def lifetime_days(self, battery_mah: float = 2600.0) -> float:
        """Projected lifetime on a battery (default: 2×AA, ~2600 mAh)."""
        if self.average_current_ma <= 0:
            return float("inf")
        hours = battery_mah / self.average_current_ma
        return hours / 24.0


def energy_report(
    radio: "Radio",
    interval_ticks: int,
    average_frame_bytes: int = 40,
    tx_time_ticks: Optional[int] = None,
    profile: Optional[RadioProfile] = None,
) -> EnergyReport:
    """Charge estimate for ``radio`` over the last ``interval_ticks``.

    ``tx_time_ticks`` overrides the reconstruction from ``radio.tx_count``
    (each transmission assumed ``average_frame_bytes`` long, priced at the
    profile's airtime).
    """
    if interval_ticks <= 0:
        raise ValueError("interval must be positive")
    if profile is None:
        profile = _CC2420_PROFILE
    on_time = min(radio.on_time(), interval_ticks)
    if tx_time_ticks is None:
        tx_time_ticks = radio.tx_count * profile.packet_airtime(average_frame_bytes)
    tx_time = min(tx_time_ticks, on_time)
    charge_mc = interval_charge_mc(
        on_time, tx_time, interval_ticks, radio.tx_power_dbm, profile=profile
    )
    interval_s = to_seconds(interval_ticks)
    return EnergyReport(
        node_id=radio.node_id,
        interval_s=interval_s,
        on_time_s=to_seconds(on_time),
        tx_time_s=to_seconds(tx_time),
        charge_mc=charge_mc,
        average_current_ma=charge_mc / interval_s,
        duty_cycle=to_seconds(on_time) / interval_s,
    )


def network_energy(
    radios: Dict[int, "Radio"],
    interval_ticks: int,
    average_frame_bytes: int = 40,
    profile: Optional[RadioProfile] = None,
) -> Dict[int, EnergyReport]:
    """Energy reports for a whole network, keyed by node id."""
    return {
        node_id: energy_report(
            radio, interval_ticks, average_frame_bytes, profile=profile
        )
        for node_id, radio in radios.items()
    }
