"""Battery depletion: per-node charge budgets drained by duty cycle.

Each monitored node starts with a charge budget (mAh). A periodic check
samples the radio's cumulative on-time and transmission count, converts the
deltas to charge with the same :func:`~repro.radio.energy.interval_charge_mc`
core the whole-run energy report uses, and drains the budget. When the
budget runs out the node *dies*: the death is threaded through the fault
injector's crash machinery (:meth:`FaultInjector.kill_node` — a crash that
never reboots), so radios power down mid-flight safely, CTP staleness and
allocation reclamation see exactly what a real brown-out produces, and
mobility stops walking the corpse.

The monitor keeps O(N) state only — per-node budgets and last samples, a
death counter, no per-event history — so multi-day soaks stay memory-flat.

Determinism: the check loop is a self-rescheduling simulator event with no
RNG at all; charge arithmetic is pure float work in a fixed order. Configs
without a battery never construct a monitor, so zero-depletion runs stay
bit-identical to the golden digests.

Caveat: the monitor reads ``radio.on_time()`` incrementally, so callers
must not call ``NetworkMetrics.mark()`` (which zeroes on-time) mid-run;
deltas are clamped at zero defensively, but a reset still under-counts the
interval it lands in. The soak harness samples cumulative counters instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.radio.energy import interval_charge_mc
from repro.radio.profiles import get_radio_profile
from repro.sim.units import SECOND, to_seconds

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.harness import Network

#: 1 mAh = 3.6 C = 3600 mC.
MC_PER_MAH = 3600.0


@dataclass
class BatteryParams:
    """Charge budgets and the depletion check cadence (config-embeddable)."""

    #: Default per-node budget, mAh. Real TelosB batteries are ~2600 mAh;
    #: soaks use small budgets so depletion happens within the run.
    capacity_mah: float = 2600.0
    #: Per-node overrides, node id -> mAh (JSON round-trips via str keys).
    per_node_mah: Optional[Dict[int, float]] = None
    #: Depletion check cadence, seconds of sim time.
    check_interval_s: float = 60.0
    #: Frame size used to reconstruct TX time from the radio's tx counter
    #: (same convention as :func:`repro.radio.energy.energy_report`).
    average_frame_bytes: int = 40
    #: Mains-powered sink: the root never dies (the paper's controller).
    sink_powered: bool = True

    def __post_init__(self) -> None:
        if self.capacity_mah <= 0.0:
            raise ValueError("capacity_mah must be positive")
        if self.check_interval_s <= 0.0:
            raise ValueError("check_interval_s must be positive")
        if self.per_node_mah is not None:
            self.per_node_mah = {
                int(node): float(mah) for node, mah in self.per_node_mah.items()
            }
            for node, mah in self.per_node_mah.items():
                if mah <= 0.0:
                    raise ValueError(f"node {node}: battery capacity must be positive")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "average_frame_bytes": self.average_frame_bytes,
            "capacity_mah": self.capacity_mah,
            "check_interval_s": self.check_interval_s,
            "per_node_mah": (
                {str(k): v for k, v in sorted(self.per_node_mah.items())}
                if self.per_node_mah is not None
                else None
            ),
            "sink_powered": self.sink_powered,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BatteryParams":
        return cls(**data)

    def budget_mc(self, node: int) -> float:
        """The node's starting budget in milliCoulombs."""
        mah = self.capacity_mah
        if self.per_node_mah is not None:
            mah = self.per_node_mah.get(node, mah)
        return mah * MC_PER_MAH


@dataclass
class _NodeCharge:
    """Incremental accounting for one monitored node (O(1) state)."""

    budget_mc: float
    used_mc: float = 0.0
    last_on_time: int = 0
    last_tx_count: int = 0
    last_check: int = 0


class DepletionMonitor:
    """Drains per-node budgets and kills nodes whose battery runs out."""

    def __init__(self, network: "Network", params: BatteryParams) -> None:
        self.network = network
        self.params = params
        self.sim = network.sim
        # Airtime and per-state currents come from the network's radio
        # profile — the same single source of truth the energy report uses.
        self._profile = getattr(network, "radio_profile", None) or get_radio_profile(
            None
        )
        self._airtime = self._profile.packet_airtime(params.average_frame_bytes)
        self._nodes: Dict[int, _NodeCharge] = {}
        for node in sorted(network.stacks):
            if params.sink_powered and node == network.sink:
                continue
            self._nodes[node] = _NodeCharge(budget_mc=params.budget_mc(node))
        #: (tick, node) for every battery death, in death order. Bounded by
        #: the node count, not the event count.
        self.deaths: List[Tuple[int, int]] = []
        self._started = False

    # ------------------------------------------------------------------ start
    def start(self) -> None:
        """Begin the periodic depletion checks (idempotent)."""
        if self._started:
            return
        self._started = True
        now = self.sim.now
        for node, state in self._nodes.items():
            radio = self.network.stacks[node].radio
            state.last_on_time = radio.on_time()
            state.last_tx_count = radio.tx_count
            state.last_check = now
        self._schedule_check()

    def _schedule_check(self) -> None:
        self.sim.schedule(
            round(self.params.check_interval_s * SECOND), self._check
        )

    # ------------------------------------------------------------------ check
    def _check(self) -> None:
        now = self.sim.now
        dead: List[int] = []
        for node, state in self._nodes.items():
            radio = self.network.stacks[node].radio
            interval = now - state.last_check
            if interval <= 0:  # pragma: no cover - defensive
                continue
            # Clamp deltas at zero: a mid-run reset_on_time() (metrics
            # warm-up boundary) must never produce negative charge.
            d_on = max(0, radio.on_time() - state.last_on_time)
            d_tx = max(0, radio.tx_count - state.last_tx_count)
            state.used_mc += interval_charge_mc(
                d_on,
                d_tx * self._airtime,
                interval,
                radio.tx_power_dbm,
                profile=self._profile,
            )
            state.last_on_time = radio.on_time()
            state.last_tx_count = radio.tx_count
            state.last_check = now
            if state.used_mc >= state.budget_mc:
                dead.append(node)
        for node in dead:
            del self._nodes[node]
            self.deaths.append((now, node))
            injector = self.network.fault_injector
            assert injector is not None, "battery wiring guarantees an injector"
            injector.kill_node(node, reason="battery")
        if self._nodes:
            self._schedule_check()

    # ---------------------------------------------------------------- queries
    def alive_count(self) -> int:
        """Monitored nodes still above zero charge."""
        return len(self._nodes)

    def charge_used_mc(self, node: int) -> Optional[float]:
        """Charge drawn so far by a still-alive monitored node."""
        state = self._nodes.get(node)
        return state.used_mc if state is not None else None

    def summary(self) -> Dict[str, Any]:
        """Flat counters for reports (no per-event state)."""
        first_death_s = (
            to_seconds(self.deaths[0][0]) if self.deaths else None
        )
        remaining = [s.budget_mc - s.used_mc for s in self._nodes.values()]
        return {
            "monitored": len(self._nodes) + len(self.deaths),
            "alive": len(self._nodes),
            "deaths": len(self.deaths),
            "first_death_s": first_death_s,
            "min_remaining_mc": min(remaining) if remaining else 0.0,
        }
