"""Grid-hash spatial index: O(local density) channel dispatch at city scale.

Everything in the simulator used to be O(N) per transmission because link
gains were materialised for *all* N² ordered pairs and the channel walked
every receiver. At 10k nodes that is 10⁸ dict entries — gigabytes of memory
before the first packet flies. This module keeps channel work proportional
to *local density* instead:

- :class:`GridIndex` hashes node positions into square cells; a range query
  inspects only the cells overlapping the query disc, so candidate receivers
  for a transmission are found in O(density), not O(N).
- :func:`interference_range_m` converts a configurable *interference floor*
  (dBm) into the culling radius: beyond it a receiver cannot clear the floor
  even with the maximum transmit power plus a ``shadow_sigma_multiple``·σ
  shadowing boost, so it is culled before any per-receiver SNR work.
- :class:`SpatialChannel` bundles the index with the culling radius and
  exact per-pair gain queries; :class:`~repro.radio.channel.Channel` accepts
  one in place of a dense gain dict and derives *identical* audible-neighbour
  lists from it.
- :func:`sparse_gain_matrix` builds exactly the link-gain entries the dense
  :meth:`~repro.radio.propagation.LogDistancePathLoss.gain_matrix` would
  have produced for pairs inside the culling radius — same per-link floats,
  bit for bit — and skips the rest.

Bit-identity discipline
-----------------------
numpy (optional, see :func:`get_numpy`) is used **only for culling
decisions** — squared-distance prefilters guarded by a margin — never for a
value that enters the simulation. Gains, fading, and noise stay on the same
scalar ``math``/``random`` code paths as the brute-force walk, so a run with
the index enabled is event-for-event identical to one without it: the index
changes *which pairs are even considered*, and the interference floor plus
the shadowing margin guarantee the considered set is a superset of every
pair that could matter. Transcendentals (``log10``, ``gauss``) are never
evaluated through numpy: unlike IEEE +,−,×,/ they are not exactly specified
and may differ from ``math``'s libm by an ulp across platforms.
"""

from __future__ import annotations

import bisect
import math
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.radio.propagation import LogDistancePathLoss

Position = Tuple[float, float]

#: Default shadowing margin, in standard deviations, folded into the culling
#: radius. Per-link shadowing is Gaussian and therefore unbounded, but a
#: link needs a > 6σ boost (probability ≈ 1e-9) to clear the floor from
#: beyond the culled radius; at that point the draw is indistinguishable
#: from an RNG bug. Raise it if you run with extreme shadowing sigmas.
DEFAULT_SHADOW_SIGMA_MULTIPLE = 6.0

#: Candidate-list length below which the scalar distance filter beats the
#: numpy one (array creation overhead dominates tiny batches).
_NUMPY_MIN_BATCH = 16


def get_numpy():
    """numpy if importable and not disabled via ``REPRO_NO_NUMPY=1``.

    Every numpy batch path in the radio layer goes through this gate so one
    environment variable exercises the pure-Python fallbacks (a CI matrix
    leg runs the tier-1 suite this way).
    """
    if os.environ.get("REPRO_NO_NUMPY"):
        return None
    try:
        import numpy
    except ImportError:  # pragma: no cover - exercised via REPRO_NO_NUMPY
        return None
    return numpy


@dataclass(frozen=True)
class SpatialIndexParams:
    """Configuration of the spatial culling stage (cache-key honest).

    ``interference_floor_dbm`` is the received power below which a link is
    culled before per-receiver SNR work; it defaults to the channel's deaf
    threshold, so by default culling removes only links the channel would
    have discarded anyway (raising it is an explicit approximation and a
    distinct experiment fingerprint). ``cell_size_m`` defaults to the
    derived culling radius, so a range query touches at most 3×3 cells.
    """

    interference_floor_dbm: float = -110.0
    shadow_sigma_multiple: float = DEFAULT_SHADOW_SIGMA_MULTIPLE
    cell_size_m: Optional[float] = None

    def to_dict(self) -> Dict[str, Optional[float]]:
        """Canonical JSON-ready form (sorted keys) for config fingerprints."""
        return {
            "cell_size_m": self.cell_size_m,
            "interference_floor_dbm": self.interference_floor_dbm,
            "shadow_sigma_multiple": self.shadow_sigma_multiple,
        }


class GridIndex:
    """Uniform grid hash over 2-D node positions.

    Cells are ``cell_size`` × ``cell_size`` squares keyed by
    ``(floor(x / cell_size), floor(y / cell_size))``. A query for nodes
    within ``radius`` of a point inspects the cells intersecting the disc's
    bounding square, which makes the result a *superset* of the true disc —
    callers refine with an exact predicate (see :class:`SpatialChannel`).
    """

    def __init__(self, positions: Sequence[Position], cell_size: float) -> None:
        if not (cell_size > 0):
            raise ValueError("cell size must be positive")
        self.cell_size = float(cell_size)
        self._positions: List[Position] = [(float(x), float(y)) for x, y in positions]
        self._cells: Dict[Tuple[int, int], List[int]] = {}
        for node_id, pos in enumerate(self._positions):
            self._cells.setdefault(self._cell_of(pos), []).append(node_id)

    def __len__(self) -> int:
        return len(self._positions)

    def _cell_of(self, pos: Position) -> Tuple[int, int]:
        return (
            int(math.floor(pos[0] / self.cell_size)),
            int(math.floor(pos[1] / self.cell_size)),
        )

    def position(self, node_id: int) -> Position:
        """Current position of one node."""
        return self._positions[node_id]

    def move(self, node_id: int, new_pos: Position) -> None:
        """Re-home a node into its new cell (the mobility seam)."""
        old_cell = self._cell_of(self._positions[node_id])
        new_pos = (float(new_pos[0]), float(new_pos[1]))
        self._positions[node_id] = new_pos
        new_cell = self._cell_of(new_pos)
        if new_cell == old_cell:
            return
        members = self._cells[old_cell]
        members.remove(node_id)
        if not members:
            del self._cells[old_cell]
        self._cells.setdefault(new_cell, []).append(node_id)

    def candidates_within(self, center: Position, radius: float) -> List[int]:
        """Node ids in every cell overlapping the disc (ascending, superset).

        The result contains every node within ``radius`` of ``center`` and
        possibly nearby extras (cell granularity); it never misses one.
        """
        if radius < 0:
            return []
        # The bounding box gets the same 1e-12 relative cushion as the
        # callers' squared-distance refinement: ``math.dist`` rounds, so a
        # point a sub-ulp outside the exact disc can still compare
        # ``<= radius`` — it must not be lost to an off-by-one cell row.
        radius = radius * (1.0 + 1e-12)
        cs = self.cell_size
        min_cx = int(math.floor((center[0] - radius) / cs))
        max_cx = int(math.floor((center[0] + radius) / cs))
        min_cy = int(math.floor((center[1] - radius) / cs))
        max_cy = int(math.floor((center[1] + radius) / cs))
        cells = self._cells
        out: List[int] = []
        for cx in range(min_cx, max_cx + 1):
            for cy in range(min_cy, max_cy + 1):
                members = cells.get((cx, cy))
                if members:
                    out.extend(members)
        out.sort()
        return out

    def neighbors_of(self, node_id: int, radius: float) -> List[int]:
        """Candidate neighbours of one node (ascending, superset, no self)."""
        out = self.candidates_within(self._positions[node_id], radius)
        # ids are sorted; drop self without a second pass over the list.
        i = bisect.bisect_left(out, node_id)
        if i < len(out) and out[i] == node_id:
            out.pop(i)
        return out


def interference_range_m(
    propagation: LogDistancePathLoss,
    max_tx_power_dbm: float,
    interference_floor_dbm: float,
    shadow_sigma_multiple: float = DEFAULT_SHADOW_SIGMA_MULTIPLE,
    extra_margin_db: float = 0.0,
) -> float:
    """Distance beyond which no receiver can clear the interference floor.

    Solves ``max_tx − PL(d) + margin = floor`` for ``d`` where the margin is
    ``shadow_sigma_multiple · shadowing_sigma + extra_margin_db`` (the extra
    term absorbs e.g. the channel's fading headroom). Inside this radius a
    link *might* matter; outside it cannot, even with the most favourable
    plausible shadowing draw.
    """
    margin = shadow_sigma_multiple * propagation.shadowing_sigma + extra_margin_db
    budget = max_tx_power_dbm + margin - interference_floor_dbm
    return propagation.max_range_m(budget)


def _capped_radius(radius: float, positions: Sequence[Position]) -> float:
    """Cap an unbounded (or field-spanning) culling radius at the field size.

    A non-positive path-loss exponent makes :func:`interference_range_m`
    return infinity; capping at the diagonal keeps the grid query finite and
    degenerates gracefully — every pair is a candidate, matching the dense
    result exactly.
    """
    if not positions:
        return 1.0 if math.isinf(radius) else radius
    xs = [p[0] for p in positions]
    ys = [p[1] for p in positions]
    diagonal = math.hypot(max(xs) - min(xs), max(ys) - min(ys)) + 1.0
    return min(radius, diagonal)


class SpatialChannel:
    """A grid index plus the culling radius for one channel's gain floor.

    ``cull_floor_dbm`` is a *gain* threshold (dB, tx-power already folded in
    by the caller): pairs whose realized gain could reach it are inside the
    culling radius, everything else is skipped. For a
    :class:`~repro.radio.channel.Channel` the caller passes the channel's
    audible floor (``interference_floor − 3·fading_sigma``), making the
    candidate set a superset of every audible pair up to the
    ``shadow_sigma_multiple``·σ shadowing margin.

    Gain queries (:meth:`link_gain`, the values behind :meth:`candidates`)
    are exact scalar calls into the shared :class:`LogDistancePathLoss`;
    numpy only prefilters candidates by squared distance.
    """

    def __init__(
        self,
        positions: Sequence[Position],
        propagation: LogDistancePathLoss,
        cull_floor_dbm: float = -110.0,
        shadow_sigma_multiple: float = DEFAULT_SHADOW_SIGMA_MULTIPLE,
        cell_size_m: Optional[float] = None,
    ) -> None:
        self.propagation = propagation
        self.cull_floor_dbm = float(cull_floor_dbm)
        self.shadow_sigma_multiple = float(shadow_sigma_multiple)
        radius = interference_range_m(
            propagation, 0.0, self.cull_floor_dbm, self.shadow_sigma_multiple
        )
        self.radius = _capped_radius(radius, positions)
        self.index = GridIndex(
            positions, cell_size=cell_size_m or max(self.radius, propagation.d0)
        )
        # Cushioned squared radius for the distance filters: anything kept is
        # still gain-tested exactly, so the 1e-12 relative cushion (absorbing
        # any last-ulp disagreement between the squared form and math.dist)
        # only costs a few extra candidates, never correctness.
        self._r2 = (self.radius * (1.0 + 1e-12)) ** 2
        np = get_numpy()
        self._np = np
        if np is not None:
            pos = self.index._positions
            self._xs = np.asarray([p[0] for p in pos], dtype=np.float64)
            self._ys = np.asarray([p[1] for p in pos], dtype=np.float64)
        else:  # pragma: no cover - exercised via REPRO_NO_NUMPY
            self._xs = self._ys = None

    def __len__(self) -> int:
        return len(self.index)

    def move(self, node_id: int, new_pos: Position) -> None:
        """Relocate one node, keeping grid cells and prefilter arrays fresh."""
        self.index.move(node_id, new_pos)
        if self._xs is not None:
            x, y = self.index.position(node_id)
            self._xs[node_id] = x
            self._ys[node_id] = y

    def candidates(self, node_id: int) -> List[int]:
        """Ids within the culling radius of ``node_id`` (ascending, no self).

        Grid cells give a superset; the exact squared-distance predicate
        (vectorised when numpy is available and the batch is big enough)
        trims it. Python ints out, regardless of the filter used.
        """
        cand = self.index.neighbors_of(node_id, self.radius)
        if not cand:
            return cand
        pos = self.index._positions
        ax, ay = pos[node_id]
        np = self._np
        if np is not None and len(cand) >= _NUMPY_MIN_BATCH:
            idx = np.asarray(cand, dtype=np.intp)
            dx = self._xs[idx] - ax
            dy = self._ys[idx] - ay
            return idx[(dx * dx + dy * dy) <= self._r2].tolist()
        r2 = self._r2
        return [
            b for b in cand if (pos[b][0] - ax) ** 2 + (pos[b][1] - ay) ** 2 <= r2
        ]

    def link_gain(self, a: int, b: int) -> Optional[float]:
        """Exact gain for a pair inside the culling radius, else None."""
        pos = self.index._positions
        pos_a, pos_b = pos[a], pos[b]
        if (pos_b[0] - pos_a[0]) ** 2 + (pos_b[1] - pos_a[1]) ** 2 > self._r2:
            return None
        return self.propagation.link_gain_db(a, b, pos_a, pos_b)


def sparse_gain_matrix(
    propagation: LogDistancePathLoss,
    positions: Sequence[Position],
    max_tx_power_dbm: float = 0.0,
    interference_floor_dbm: float = -110.0,
    shadow_sigma_multiple: float = DEFAULT_SHADOW_SIGMA_MULTIPLE,
    extra_margin_db: float = 0.0,
) -> Tuple[Dict[Tuple[int, int], float], GridIndex]:
    """Link gains for every pair inside the interference range, via the grid.

    Returns ``(gains, index)``. For each computed ordered pair the gain is
    the exact float the dense :meth:`LogDistancePathLoss.gain_matrix` would
    produce (same scalar ``math.dist`` + shadowing calls); per-source entries
    are inserted in ascending neighbour order, matching the dense builder's
    iteration order, so a :class:`~repro.radio.channel.Channel` built on the
    sparse map derives identical audible-neighbour lists.
    """
    spatial = SpatialChannel(
        positions,
        propagation,
        # Fold tx power and the extra margin into the gain floor: a pair
        # matters iff gain ≥ floor − max_tx − extra, the same budget
        # interference_range_m(max_tx, floor, ..., extra) solves for.
        cull_floor_dbm=interference_floor_dbm - max_tx_power_dbm - extra_margin_db,
        shadow_sigma_multiple=shadow_sigma_multiple,
    )
    gains: Dict[Tuple[int, int], float] = {}
    link_gain_db = propagation.link_gain_db
    pos = spatial.index._positions
    for a, pos_a in enumerate(pos):
        for b in spatial.candidates(a):
            gains[(a, b)] = link_gain_db(a, b, pos_a, pos[b])
    return gains, spatial.index
