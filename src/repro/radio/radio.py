"""Per-node half-duplex radio device.

The radio exposes the operations a MAC needs — turn on/off, transmit, clear
channel assessment — and accounts for on-time, which the metrics layer turns
into the radio duty cycle the paper reports in Figure 9.
"""

from __future__ import annotations

from enum import Enum, auto
from typing import TYPE_CHECKING, Callable, Optional

from repro.radio.frame import Frame

if TYPE_CHECKING:  # pragma: no cover
    from repro.radio.channel import Channel
    from repro.sim.simulator import Simulator


class RadioState(Enum):
    """Radio power/activity states."""
    OFF = auto()
    IDLE = auto()  # on, listening
    TX = auto()
    RECEIVING = auto()  # on, locked to an incoming frame


class RadioError(RuntimeError):
    """Raised on invalid radio operations (e.g. transmit while off)."""


class Radio:
    """Half-duplex radio attached to a :class:`~repro.radio.channel.Channel`."""

    def __init__(
        self,
        sim: "Simulator",
        channel: "Channel",
        node_id: int,
        tx_power_dbm: float = 0.0,
    ) -> None:
        self.sim = sim
        self.channel = channel
        self.node_id = node_id
        self.tx_power_dbm = tx_power_dbm
        self.state = RadioState.OFF
        #: MAC callback: (frame, rssi_dbm) for every successfully decoded frame.
        self.on_receive: Optional[Callable[[Frame, float], None]] = None
        #: Cumulative on-time in ticks; plus the instant we last turned on.
        self._on_time = 0
        self._on_since: Optional[int] = None
        #: Frame currently being decoded (set by the channel).
        self.locked_frame_id: Optional[int] = None
        self.tx_count = 0
        #: Failure injection: a failed radio ignores turn_on until recovered.
        self.failed = False
        channel.attach(self)

    # ----------------------------------------------------------------- power
    @property
    def is_on(self) -> bool:
        """True unless the radio is powered off."""
        return self.state is not RadioState.OFF

    def fail(self) -> None:
        """Inject a node failure: power down and ignore wake-ups."""
        self.failed = True
        if self.state is RadioState.TX:
            # Let the in-flight frame finish, then power down.
            self.sim.schedule(5_000, self._fail_when_idle)
        elif self.state is not RadioState.OFF:
            self.turn_off()

    def _fail_when_idle(self) -> None:
        if not self.failed:
            return
        if self.state is RadioState.TX:
            self.sim.schedule(5_000, self._fail_when_idle)
        elif self.state is not RadioState.OFF:
            self.turn_off()

    def recover(self) -> None:
        """Clear an injected failure (the MAC's next wake-up resumes duty)."""
        self.failed = False

    def turn_on(self) -> None:
        """Power the radio up into listening state (no-op if already on)."""
        if self.failed or self.state is not RadioState.OFF:
            return
        self.state = RadioState.IDLE
        self._on_since = self.sim.now
        self.channel.note_radio_on(self)

    def turn_off(self) -> None:
        """Power the radio down, aborting any in-flight reception."""
        if self.state is RadioState.OFF:
            return
        if self.state is RadioState.TX:
            raise RadioError(f"node {self.node_id}: cannot turn off mid-transmission")
        assert self._on_since is not None
        self._on_time += self.sim.now - self._on_since
        self._on_since = None
        self.state = RadioState.OFF
        self.locked_frame_id = None
        self.channel.note_radio_off(self)

    def on_time(self) -> int:
        """Total ticks the radio has been powered, including the current stint."""
        total = self._on_time
        if self._on_since is not None:
            total += self.sim.now - self._on_since
        return total

    def reset_on_time(self) -> None:
        """Zero the accumulated on-time (metrics warm-up boundary)."""
        self._on_time = 0
        if self._on_since is not None:
            self._on_since = self.sim.now

    # -------------------------------------------------------------- transmit
    def transmit(
        self, frame: Frame, done: Optional[Callable[[], None]] = None
    ) -> None:
        """Put ``frame`` on the air; ``done()`` fires when airtime elapses.

        The radio must be on and not already transmitting. An in-progress
        reception is abandoned (half-duplex).
        """
        if self.state is RadioState.OFF:
            raise RadioError(f"node {self.node_id}: transmit while radio off")
        if self.state is RadioState.TX:
            raise RadioError(f"node {self.node_id}: transmit while already transmitting")
        self.state = RadioState.TX
        self.locked_frame_id = None
        self.tx_count += 1
        self.channel.start_transmission(self, frame, done)

    def finish_tx(self) -> None:
        """Channel callback: airtime over, return to listening.

        Called *before* the channel resolves receptions of this frame so that
        an immediate acknowledgement finds the sender already listening.
        """
        if self.state is RadioState.TX:
            self.state = RadioState.IDLE

    def _transmission_done(self, done: Optional[Callable[[], None]]) -> None:
        """Channel callback: invoke the MAC's completion hook."""
        if done is not None:
            done()

    # ------------------------------------------------------------------- CCA
    def cca_clear(self, threshold_dbm: Optional[float] = None) -> bool:
        """Clear-channel assessment: True when in-band energy is below threshold."""
        if self.state is RadioState.OFF:
            raise RadioError(f"node {self.node_id}: CCA while radio off")
        return self.channel.energy_dbm_at(self.node_id) < (
            threshold_dbm
            if threshold_dbm is not None
            else self.channel.cca_threshold_dbm
        )

    def deliver(self, frame: Frame, rssi_dbm: float) -> None:
        """Channel callback: a frame was decoded successfully."""
        if self.on_receive is not None:
            self.on_receive(frame, rssi_dbm)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Radio(node={self.node_id}, {self.state.name})"
