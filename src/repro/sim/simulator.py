"""The simulator: clock, event loop, and seeded RNG tree."""

from __future__ import annotations

import random
import weakref
from typing import Any, Callable, Dict, Optional

from repro.sim.events import Event, EventQueue
from repro.sim.trace import Tracer
from repro.sim.units import to_seconds

#: Kernel behaviour version: bump this whenever a kernel change alters
#: simulated behaviour (event ordering, RNG stream layout, float arithmetic
#: in the channel/noise models — anything that moves a golden digest in
#: ``tests/golden/``). The token is folded into every
#: :class:`repro.runner.taskspec.TaskSpec` fingerprint, so bumping it
#: invalidates stale result-cache entries instead of silently mixing
#: results from two different kernels. Pure optimisations that keep the
#: golden digests bit-identical must NOT bump it.
KERNEL_BEHAVIOR_VERSION = 1


class SimulationError(RuntimeError):
    """Raised for kernel misuse (negative delays, running a stopped sim)."""


#: Weak reference to the most recently constructed :class:`Simulator` in
#: this process. Lets out-of-band observers (the runner's worker heartbeat
#: thread) sample ``events_executed``/``now`` without any hook in the event
#: loop — zero cost on the kernel hot path, no behaviour change.
_ACTIVE_SIMULATOR: Optional["weakref.ReferenceType[Simulator]"] = None


def active_simulator() -> Optional["Simulator"]:
    """The live, most recently constructed Simulator here, or None."""
    ref = _ACTIVE_SIMULATOR
    return ref() if ref is not None else None


class Simulator:
    """Discrete-event simulator with deterministic, seeded randomness.

    Components ask for named child RNGs via :meth:`rng`; each name maps to an
    independent ``random.Random`` seeded from the master seed, so adding a new
    component (or reordering calls within one) does not perturb the random
    streams of the others.
    """

    def __init__(self, seed: int = 0) -> None:
        global _ACTIVE_SIMULATOR
        _ACTIVE_SIMULATOR = weakref.ref(self)
        self.seed = seed
        self._queue = EventQueue()
        self._now = 0
        self._running = False
        self._stopped = False
        self._rngs: Dict[str, random.Random] = {}
        self.tracer = Tracer(self)
        #: Cumulative events dispatched across every :meth:`run` call — the
        #: denominator of the kernel's events/sec throughput metric.
        self.events_executed = 0

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> int:
        """Current simulation time in integer microseconds."""
        return self._now

    @property
    def now_seconds(self) -> float:
        """Current simulation time in float seconds (display/metrics only)."""
        return to_seconds(self._now)

    # ------------------------------------------------------------- randomness
    def rng(self, name: str) -> random.Random:
        """Return the named child RNG, creating it deterministically on first use."""
        rng = self._rngs.get(name)
        if rng is None:
            # Derive a stable per-name seed from the master seed; hash() is
            # salted per-process for str, so use a explicit stable digest.
            digest = 0
            for ch in name:
                digest = (digest * 131 + ord(ch)) % (2**61 - 1)
            rng = random.Random((self.seed << 16) ^ digest)
            self._rngs[name] = rng
        return rng

    # ------------------------------------------------------------- scheduling
    def schedule(self, delay: int, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` microseconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self._queue.push(self._now + delay, callback, args)

    def schedule_at(self, time: int, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time`` microseconds."""
        if time < self._now:
            raise SimulationError(f"cannot schedule in the past: {time} < {self._now}")
        return self._queue.push(time, callback, args)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (no-op if already fired or cancelled)."""
        if event.pending:
            event.cancel()
            self._queue.note_cancelled()

    # -------------------------------------------------------------- execution
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run the event loop.

        Stops when the queue drains, when the clock would pass ``until``
        (the clock is then advanced exactly to ``until``), after
        ``max_events`` events, or when :meth:`stop` is called. Returns the
        number of events executed.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run())")
        self._running = True
        self._stopped = False
        executed = 0
        pop_due = self._queue.pop_due
        limit = float("inf") if max_events is None else max_events
        try:
            while not self._stopped and executed < limit:
                event = pop_due(until)
                if event is None:
                    break
                self._now = event.time
                event.fired = True
                event.callback(*event.args)
                executed += 1
            if until is not None and self._now < until and not self._stopped:
                self._now = until
        finally:
            self._running = False
            self.events_executed += executed
        return executed

    def stop(self) -> None:
        """Stop the running event loop after the current event returns."""
        self._stopped = True

    def pending_events(self) -> int:
        """Number of events still scheduled (upper bound under lazy cancel)."""
        return len(self._queue)
