"""The simulator: clock, event loop, and seeded RNG tree."""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Optional

from repro.sim.events import Event, EventQueue
from repro.sim.trace import Tracer
from repro.sim.units import to_seconds


class SimulationError(RuntimeError):
    """Raised for kernel misuse (negative delays, running a stopped sim)."""


class Simulator:
    """Discrete-event simulator with deterministic, seeded randomness.

    Components ask for named child RNGs via :meth:`rng`; each name maps to an
    independent ``random.Random`` seeded from the master seed, so adding a new
    component (or reordering calls within one) does not perturb the random
    streams of the others.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._queue = EventQueue()
        self._now = 0
        self._running = False
        self._stopped = False
        self._rngs: Dict[str, random.Random] = {}
        self.tracer = Tracer(self)

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> int:
        """Current simulation time in integer microseconds."""
        return self._now

    @property
    def now_seconds(self) -> float:
        """Current simulation time in float seconds (display/metrics only)."""
        return to_seconds(self._now)

    # ------------------------------------------------------------- randomness
    def rng(self, name: str) -> random.Random:
        """Return the named child RNG, creating it deterministically on first use."""
        rng = self._rngs.get(name)
        if rng is None:
            # Derive a stable per-name seed from the master seed; hash() is
            # salted per-process for str, so use a explicit stable digest.
            digest = 0
            for ch in name:
                digest = (digest * 131 + ord(ch)) % (2**61 - 1)
            rng = random.Random((self.seed << 16) ^ digest)
            self._rngs[name] = rng
        return rng

    # ------------------------------------------------------------- scheduling
    def schedule(self, delay: int, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` microseconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self._queue.push(self._now + delay, callback, args)

    def schedule_at(self, time: int, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time`` microseconds."""
        if time < self._now:
            raise SimulationError(f"cannot schedule in the past: {time} < {self._now}")
        return self._queue.push(time, callback, args)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (no-op if already fired or cancelled)."""
        if event.pending:
            event.cancel()
            self._queue.note_cancelled()

    # -------------------------------------------------------------- execution
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run the event loop.

        Stops when the queue drains, when the clock would pass ``until``
        (the clock is then advanced exactly to ``until``), after
        ``max_events`` events, or when :meth:`stop` is called. Returns the
        number of events executed.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run())")
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while True:
                if self._stopped:
                    break
                if max_events is not None and executed >= max_events:
                    break
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                event = self._queue.pop()
                assert event is not None
                self._now = event.time
                event.fired = True
                event.callback(*event.args)
                executed += 1
            else:  # pragma: no cover - unreachable
                pass
            if until is not None and self._now < until and not self._stopped:
                self._now = until
        finally:
            self._running = False
        return executed

    def stop(self) -> None:
        """Stop the running event loop after the current event returns."""
        self._stopped = True

    def pending_events(self) -> int:
        """Number of events still scheduled (upper bound under lazy cancel)."""
        return len(self._queue)
