"""One-shot and periodic timers built on the simulator."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.events import Event
from repro.sim.simulator import Simulator


class Timer:
    """A restartable timer in the style of TinyOS's ``Timer`` interface.

    ``start_one_shot(dt)`` fires the callback once after ``dt``;
    ``start_periodic(dt)`` fires it every ``dt`` until stopped. Restarting a
    running timer cancels the outstanding firing first.
    """

    def __init__(self, sim: Simulator, callback: Callable[[], Any]) -> None:
        self._sim = sim
        self._callback = callback
        self._event: Optional[Event] = None
        self._period: Optional[int] = None

    @property
    def running(self) -> bool:
        """True if a firing is scheduled."""
        return self._event is not None and self._event.pending

    def start_one_shot(self, delay: int) -> None:
        """(Re)arm the timer to fire once after ``delay`` microseconds."""
        self.stop()
        self._period = None
        self._event = self._sim.schedule(delay, self._fire)

    def start_periodic(self, period: int) -> None:
        """(Re)arm the timer to fire every ``period`` microseconds."""
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.stop()
        self._period = period
        self._event = self._sim.schedule(period, self._fire)

    def stop(self) -> None:
        """Cancel any scheduled firing."""
        if self._event is not None and self._event.pending:
            self._sim.cancel(self._event)
        self._event = None

    def _fire(self) -> None:
        if self._period is not None:
            self._event = self._sim.schedule(self._period, self._fire)
        else:
            self._event = None
        self._callback()
