"""Time units for the simulation kernel.

All simulator timestamps and delays are integers counted in microseconds.
Using integers keeps the event queue totally ordered and deterministic; the
helpers below convert to and from float seconds at the API boundary only.
"""

from __future__ import annotations

MICROSECOND: int = 1
MILLISECOND: int = 1000 * MICROSECOND
SECOND: int = 1000 * MILLISECOND
MINUTE: int = 60 * SECOND
HOUR: int = 60 * MINUTE


def from_seconds(seconds: float) -> int:
    """Convert float seconds to integer simulator ticks (microseconds).

    Rounds to the nearest tick so ``from_seconds(to_seconds(t)) == t`` for
    every tick value that fits in a double's 53-bit mantissa.
    """
    return round(seconds * SECOND)


def to_seconds(ticks: int) -> float:
    """Convert integer simulator ticks (microseconds) to float seconds."""
    return ticks / SECOND


def from_milliseconds(milliseconds: float) -> int:
    """Convert float milliseconds to integer simulator ticks."""
    return round(milliseconds * MILLISECOND)


def to_milliseconds(ticks: int) -> float:
    """Convert integer simulator ticks to float milliseconds."""
    return ticks / MILLISECOND
