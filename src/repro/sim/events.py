"""Event and event-queue primitives for the simulation kernel.

Events are ordered by ``(time, sequence)``: two events scheduled for the same
instant fire in the order they were scheduled, which keeps protocol runs
deterministic. Cancellation is O(1) (a tombstone flag); cancelled events are
skipped when popped.

The heap stores ``(time, seq, event)`` tuples rather than bare events:
``seq`` is unique, so tuple comparison never reaches the event object and
heap operations stay in C instead of calling ``Event.__lt__`` millions of
times per run. The ordering is identical to the old event-keyed heap.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple


class Event:
    """A scheduled callback.

    Instances are created by :meth:`repro.sim.simulator.Simulator.schedule`;
    user code normally only keeps them around to call :meth:`cancel`.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "fired")

    def __init__(
        self,
        time: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple = (),
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the event from firing. Safe to call more than once."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and neither fired nor cancelled."""
        return not self.cancelled and not self.fired

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"Event(t={self.time}, seq={self.seq}, {name}, {state})"


class EventQueue:
    """Min-heap of :class:`Event` objects ordered by ``(time, seq)``."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Event]] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time: int, callback: Callable[..., Any], args: tuple = ()) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time`` and return the event."""
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, callback, args)
        heapq.heappush(self._heap, (time, seq, event))
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest pending event, or None if empty.

        Cancelled events are discarded transparently.
        """
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[2]
            if event.cancelled:
                continue
            self._live -= 1
            return event
        self._live = 0
        return None

    def pop_due(self, until: Optional[int]) -> Optional[Event]:
        """Pop the earliest pending event if its time is ``<= until``.

        Returns None when the queue is empty or the earliest pending event
        lies beyond ``until`` (which is then left in place). ``until=None``
        means no bound. This fuses the run loop's peek+pop pair into one
        heap traversal.
        """
        heap = self._heap
        heappop = heapq.heappop
        while heap:
            head = heap[0]
            event = head[2]
            if event.cancelled:
                heappop(heap)
                continue
            if until is not None and head[0] > until:
                return None
            heappop(heap)
            self._live -= 1
            return event
        self._live = 0
        return None

    def peek_time(self) -> Optional[int]:
        """Return the timestamp of the earliest pending event, or None."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        if not heap:
            self._live = 0
            return None
        return heap[0][0]

    def note_cancelled(self) -> None:
        """Inform the queue that one pending event was cancelled externally.

        The simulator calls this so ``len(queue)`` stays an upper bound that
        converges to the true count; the heap entry itself is lazily dropped.
        """
        if self._live > 0:
            self._live -= 1

    def clear(self) -> None:
        """Drop every event, cancelling them."""
        for _time, _seq, event in self._heap:
            event.cancelled = True
        self._heap.clear()
        self._live = 0
