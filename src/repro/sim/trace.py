"""Structured tracing for simulations.

Protocol components emit trace records (time, node, category, message, data);
tests and experiment drivers filter them instead of scraping log text.
Tracing is off by default and costs one attribute check per call when off.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Set

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.simulator import Simulator


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One trace event."""

    time: int
    node: Optional[int]
    category: str
    message: str
    data: Dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Collects :class:`TraceRecord` objects, optionally filtered by category."""

    def __init__(self, sim: "Simulator") -> None:
        self._sim = sim
        self.enabled = False
        self.records: List[TraceRecord] = []
        self._categories: Optional[Set[str]] = None
        self._sinks: List[Callable[[TraceRecord], None]] = []

    def enable(self, categories: Optional[Set[str]] = None) -> None:
        """Start recording; restrict to ``categories`` if given."""
        self.enabled = True
        self._categories = set(categories) if categories else None

    def disable(self) -> None:
        """Stop recording (existing records are kept)."""
        self.enabled = False

    def add_sink(self, sink: Callable[[TraceRecord], None]) -> None:
        """Also push every recorded record to ``sink`` (e.g. print)."""
        self._sinks.append(sink)

    def emit(
        self,
        category: str,
        message: str,
        node: Optional[int] = None,
        **data: Any,
    ) -> None:
        """Record a trace event if tracing is enabled for ``category``."""
        if not self.enabled:
            return
        if self._categories is not None and category not in self._categories:
            return
        record = TraceRecord(self._sim.now, node, category, message, data)
        self.records.append(record)
        if self._sinks:
            for sink in self._sinks:
                sink(record)

    def filter(
        self, category: Optional[str] = None, node: Optional[int] = None
    ) -> List[TraceRecord]:
        """Return recorded events matching the given category and/or node."""
        out = self.records
        if category is not None:
            out = [r for r in out if r.category == category]
        if node is not None:
            out = [r for r in out if r.node == node]
        return list(out)

    def digest(self) -> str:
        """SHA-256 over all recorded events, in order.

        A cheap equality token for determinism regression tests: two runs
        with identical behaviour (and identical enabled categories) produce
        identical digests.
        """
        h = hashlib.sha256()
        for r in self.records:
            h.update(
                repr(
                    (r.time, r.node, r.category, r.message, sorted(r.data.items()))
                ).encode("utf-8")
            )
        return h.hexdigest()

    def clear(self) -> None:
        """Drop all recorded events."""
        self.records.clear()
