"""Discrete-event simulation kernel.

The kernel is deliberately small and callback-based: components schedule
callables on a :class:`~repro.sim.simulator.Simulator` and react to events.
Time is kept as integer microseconds so that runs are exactly reproducible
across platforms (no floating-point drift in the event queue).

Public surface:

- :class:`Simulator` — clock, event queue, seeded RNG tree.
- :class:`Event` / :class:`EventQueue` — ordered, cancellable events.
- :class:`Timer` — one-shot / periodic timers built on the simulator.
- :class:`Tracer` — structured trace records for tests and debugging.
- time helpers in :mod:`repro.sim.units` (``MICROSECOND``..``MINUTE``,
  ``from_seconds``/``to_seconds``).
"""

from repro.sim.events import Event, EventQueue
from repro.sim.simulator import KERNEL_BEHAVIOR_VERSION, Simulator
from repro.sim.timer import Timer
from repro.sim.trace import TraceRecord, Tracer
from repro.sim.units import (
    MICROSECOND,
    MILLISECOND,
    MINUTE,
    SECOND,
    from_seconds,
    to_seconds,
)

__all__ = [
    "Event",
    "EventQueue",
    "KERNEL_BEHAVIOR_VERSION",
    "Simulator",
    "Timer",
    "Tracer",
    "TraceRecord",
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
    "MINUTE",
    "from_seconds",
    "to_seconds",
]
