"""Baseline remote-control protocols the paper compares against.

- :mod:`repro.baselines.drip` — Drip (Tolle & Culler, EWSN'05): reliable
  Trickle-governed network-wide dissemination. Maximally reliable, pays a
  network-wide flood per control message.
- :mod:`repro.baselines.rpl` — RPL downward routing (RFC 6550), storing
  mode: DAO-propagated hop-by-hop routing tables on the collection DODAG,
  deterministic unicast downwards. Efficient but brittle under dynamics.
- :mod:`repro.baselines.orpl` — ORPL (SenSys'13): opportunistic downward
  routing over bloom-filter sub-tree summaries; included so the paper's
  false-positive criticism can be measured.
"""

from repro.baselines.drip import Drip, DripParams
from repro.baselines.orpl import BloomFilter, OrplDownward, OrplParams
from repro.baselines.rpl import RplDownward, RplParams

__all__ = [
    "Drip",
    "DripParams",
    "RplDownward",
    "RplParams",
    "OrplDownward",
    "OrplParams",
    "BloomFilter",
]
