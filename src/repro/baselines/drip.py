"""Drip: reliable dissemination (network-wide flooding) for remote control.

Drip (Tolle & Culler, EWSN'05) maintains one Trickle timer per dissemination
key. Every node periodically advertises its newest ``(key, version)``; a node
hearing a newer version adopts it and resets its timer, an older version also
resets (to repair the straggler), an equal version counts toward Trickle
suppression. For remote control the disseminated value carries the intended
destination, which applies the payload and (in our harness, for symmetric
measurement) returns an end-to-end acknowledgement over CTP.

Reliability is eventually perfect — every connected node converges to the
newest version — at the cost of a network-wide flood per control message,
which is exactly the trade-off Table III / Figure 9 of the paper quantify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.net.messages import COLLECT_E2E_ACK, DataPacket
from repro.net.trickle import TrickleTimer
from repro.radio.frame import Frame, FrameType
from repro.sim.simulator import Simulator
from repro.sim.units import MILLISECOND, SECOND

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import NodeStack


@dataclass
class DripParams:
    """Trickle configuration for dissemination.

    ``i_min`` must exceed one LPL broadcast train (a wake interval), or a
    node would fire again while its previous train is still on the air.
    """

    i_min: int = 600 * MILLISECOND
    i_max_doublings: int = 7  # up to ~77 s steady-state
    #: Weak suppression: Drip trades redundant floods for speed and
    #: reliability (the paper measures ~2.7 transmissions per node per
    #: control message and the lowest latency of the three protocols).
    k: int = 3


@dataclass
class DripValue:
    """One disseminated (key, version) value."""
    key: int
    version: int
    destination: Optional[int]
    payload: object
    origin_time: int = 0

    LENGTH = 32


@dataclass
class DripAck:
    """End-to-end acknowledgement payload (rides CTP, mirrors TeleAdjusting)."""

    key: int
    version: int
    destination: int


@dataclass
class PendingDissemination:
    """Sink-side bookkeeping for one dissemination."""
    value: DripValue
    sent_at: int
    done: Optional[Callable[["PendingDissemination"], None]] = None
    delivered: bool = False
    acked_at: Optional[int] = None
    failed: bool = False


class Drip:
    """Per-node Drip instance; the sink's instance originates."""

    #: Single dissemination key used for remote control messages.
    CONTROL_KEY = 1

    def __init__(
        self,
        sim: Simulator,
        stack: "NodeStack",
        params: Optional[DripParams] = None,
    ) -> None:
        self.sim = sim
        self.stack = stack
        self.node_id = stack.node_id
        self.params = params or DripParams()
        self._values: Dict[int, DripValue] = {}
        self._timers: Dict[int, TrickleTimer] = {}
        self._version = 0
        #: Sink side: (key, version) -> pending bookkeeping.
        self.pending: Dict[tuple, PendingDissemination] = {}
        #: Destination-side observer (value) on every targeted delivery.
        self.on_delivered: Optional[Callable[[DripValue], None]] = None
        self.on_apply: Optional[Callable[[object], None]] = None
        self.values_adopted = 0
        stack.register_handler(FrameType.DISSEMINATION, self._on_dissemination)
        if stack.is_root:
            stack.forwarding.collect_handlers[COLLECT_E2E_ACK] = self._on_ack
        self._started = False

    # ------------------------------------------------------------------ start
    def start(self) -> None:
        """Start this component (idempotent)."""
        if self._started:
            return
        self._started = True
        self._timer_for(self.CONTROL_KEY).start()

    def _timer_for(self, key: int) -> TrickleTimer:
        timer = self._timers.get(key)
        if timer is None:
            timer = TrickleTimer(
                self.sim,
                lambda: self._broadcast(key),
                i_min=self.params.i_min,
                i_max_doublings=self.params.i_max_doublings,
                k=self.params.k,
                rng_name=f"drip-{self.node_id}-{key}",
            )
            self._timers[key] = timer
        return timer

    # -------------------------------------------------------------- originate
    def disseminate(
        self,
        payload: object,
        destination: Optional[int] = None,
        done: Optional[Callable[[PendingDissemination], None]] = None,
        e2e_timeout: int = 120 * SECOND,
    ) -> PendingDissemination:
        """Sink API: flood ``payload``; ``destination`` marks the target node."""
        if not self.stack.is_root:
            raise RuntimeError("disseminate is a sink-side operation")
        self._version += 1
        value = DripValue(
            key=self.CONTROL_KEY,
            version=self._version,
            destination=destination,
            payload=payload,
            origin_time=self.sim.now,
        )
        self._values[value.key] = value
        pending = PendingDissemination(value=value, sent_at=self.sim.now, done=done)
        self.pending[(value.key, value.version)] = pending
        self._timer_for(value.key).reset()
        self.sim.schedule(e2e_timeout, self._check_timeout, (value.key, value.version))
        return pending

    def _check_timeout(self, pending_key: tuple) -> None:
        pending = self.pending.get(pending_key)
        if pending is None or pending.acked_at is not None or pending.failed:
            return
        pending.failed = True
        if pending.done is not None:
            pending.done(pending)

    # --------------------------------------------------------------- trickle
    def _broadcast(self, key: int) -> None:
        value = self._values.get(key)
        if value is None:
            value = DripValue(key=key, version=0, destination=None, payload=None)
        self.stack.send_broadcast(
            FrameType.DISSEMINATION, value, length=DripValue.LENGTH
        )

    def _on_dissemination(self, frame: Frame, rssi: float) -> None:
        incoming: DripValue = frame.payload
        timer = self._timer_for(incoming.key)
        mine = self._values.get(incoming.key)
        my_version = mine.version if mine is not None else 0
        if incoming.version > my_version:
            self._values[incoming.key] = incoming
            self.values_adopted += 1
            timer.hear_inconsistent()
            if incoming.destination == self.node_id:
                self._deliver(incoming)
        elif incoming.version < my_version:
            timer.hear_inconsistent()  # help the straggler quickly
        else:
            timer.hear_consistent()

    # --------------------------------------------------------------- delivery
    def _deliver(self, value: DripValue) -> None:
        if self.on_apply is not None:
            self.on_apply(value.payload)
        if self.on_delivered is not None:
            self.on_delivered(value)
        ack = DripAck(key=value.key, version=value.version, destination=self.node_id)
        self.stack.forwarding.send(COLLECT_E2E_ACK, ack, origin_seqno=value.version)

    def _on_ack(self, packet: DataPacket) -> None:
        ack = packet.payload
        if not isinstance(ack, DripAck):
            return
        pending = self.pending.get((ack.key, ack.version))
        if pending is None or pending.acked_at is not None:
            return
        pending.delivered = True
        pending.acked_at = self.sim.now
        if pending.done is not None:
            pending.done(pending)

    # ------------------------------------------------------------------ query
    def current_value(self, key: int = CONTROL_KEY) -> Optional[DripValue]:
        """The newest adopted value for a key."""
        return self._values.get(key)
