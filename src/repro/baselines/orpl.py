"""ORPL-style opportunistic downward routing (Duquennoy et al., SenSys'13).

The paper's related work contrasts TeleAdjusting with ORPL, which supports
any-to-any traffic by having every node summarise its routing *sub-tree* in
a bloom filter ("bitmaps and bloom filters to represent and propagate
sub-tree in a space-efficient way") and letting any awake node whose filter
contains the destination take a downward packet over — at the cost of bloom
*false positives*, which "can incur multiple rounds of ineffectual
transmissions, especially in large-scale networks".

This module implements that design so the criticism can be measured:

- :class:`BloomFilter` — fixed-size bit array with ``k`` deterministic
  hashes (double hashing).
- Sub-tree summaries ride on CTP routing beacons (like TeleAdjusting's
  piggybacks); parents merge children's filters into their own.
- Downward control packets are MAC anycasts: a node acknowledges when its
  filter claims the destination and it sits deeper than the current holder.
  A false-positive holder discovers it cannot progress, drops the packet
  after a few silent trains, and the sink retries.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Optional, Set

from repro.mac.lpl import AnycastDecision, SendResult
from repro.net.messages import COLLECT_E2E_ACK, DataPacket, RoutingBeacon
from repro.radio.frame import Frame, FrameType
from repro.sim.simulator import Simulator
from repro.sim.units import SECOND

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import NodeStack

_serials = itertools.count(1)


class BloomFilter:
    """A small bloom filter over node ids (double hashing, FNV-style)."""

    def __init__(self, m_bits: int = 64, k_hashes: int = 2) -> None:
        if m_bits <= 0 or k_hashes <= 0:
            raise ValueError("bloom filter needs positive size and hash count")
        self.m = m_bits
        self.k = k_hashes
        self.bits = 0

    def _indexes(self, item: int):
        h1 = (item * 2654435761) & 0xFFFFFFFF
        h2 = ((item ^ 0x9E3779B9) * 40503) & 0xFFFFFFFF | 1
        for i in range(self.k):
            yield (h1 + i * h2) % self.m

    def add(self, item: int) -> None:
        """Add one element/record."""
        for index in self._indexes(item):
            self.bits |= 1 << index

    def __contains__(self, item: int) -> bool:
        return all(self.bits >> index & 1 for index in self._indexes(item))

    def merge(self, other: "BloomFilter") -> None:
        """Union another filter into this one in place."""
        if other.m != self.m or other.k != self.k:
            raise ValueError("incompatible bloom filters")
        self.bits |= other.bits

    def copy(self) -> "BloomFilter":
        """Independent copy of this filter."""
        clone = BloomFilter(self.m, self.k)
        clone.bits = self.bits
        return clone

    def clear(self) -> None:
        """Reset to empty."""
        self.bits = 0

    def fill_ratio(self) -> float:
        """Fraction of bits set (false-positive-rate proxy)."""
        return bin(self.bits).count("1") / self.m


@dataclass
class OrplParams:
    #: Bloom size per node (ORPL sizes this to the network; 128 bits keeps
    #: the false-positive rate tolerable for ~40 nodes while still fitting
    #: in a beacon).
    """ORPL knobs: bloom size, epoch, retries, timeouts."""
    bloom_bits: int = 128
    bloom_hashes: int = 2
    #: Sub-tree summaries are rebuilt each epoch to purge departed nodes.
    #: Must comfortably exceed the steady-state beacon interval (Trickle
    #: doubles to ~4 min), or a rotation wipes summaries before children's
    #: beacons can refill them.
    epoch: int = 600 * SECOND
    #: Anycast trains a holder attempts before concluding false positive.
    max_tries: int = 3
    e2e_timeout: int = 60 * SECOND
    sink_retry_interval: int = 10 * SECOND


@dataclass
class OrplControl:
    """Downward control packet payload."""
    destination: int
    payload: object
    serial: int = field(default_factory=lambda: next(_serials))
    #: Tree depth of the current holder (receivers must be deeper).
    holder_depth: int = 0
    athx: int = 0
    origin_time: int = 0

    LENGTH = 32


@dataclass
class OrplAck:
    """End-to-end acknowledgement payload (rides CTP)."""
    serial: int
    destination: int


@dataclass
class PendingOrplControl:
    """Sink-side bookkeeping for one control packet."""
    control: OrplControl
    sent_at: int
    done: Optional[Callable[["PendingOrplControl"], None]] = None
    delivered: bool = False
    acked_at: Optional[int] = None
    failed: bool = False


@dataclass
class _HolderState:
    control: OrplControl
    tries: int = 0
    done_with_it: bool = False
    held_at: int = 0


class OrplDownward:
    """Per-node ORPL downward routing over the LPL anycast primitive."""

    def __init__(
        self,
        sim: Simulator,
        stack: "NodeStack",
        params: Optional[OrplParams] = None,
    ) -> None:
        self.sim = sim
        self.stack = stack
        self.node_id = stack.node_id
        self.params = params or OrplParams()
        #: Current epoch's sub-tree summary (self + descendants heard).
        self.subtree = BloomFilter(self.params.bloom_bits, self.params.bloom_hashes)
        self.subtree.add(self.node_id)
        #: Next epoch's summary under construction.
        self._building = BloomFilter(self.params.bloom_bits, self.params.bloom_hashes)
        self._building.add(self.node_id)
        self._states: Dict[int, _HolderState] = {}
        self._delivered: Set[int] = set()
        self.pending: Dict[int, PendingOrplControl] = {}
        self.on_delivered: Optional[Callable[[OrplControl], None]] = None
        self.on_apply: Optional[Callable[[object], None]] = None
        self.false_positive_drops = 0
        self.controls_forwarded = 0
        stack.register_handler(FrameType.CONTROL, self._on_control)
        stack.set_anycast_handler(self._anycast_decision)
        stack.beacon_fillers.append(self._fill_beacon)
        stack.beacon_observers.append(self._observe_beacon)
        if stack.is_root:
            stack.forwarding.collect_handlers[COLLECT_E2E_ACK] = self._on_ack
        self._started = False

    # ------------------------------------------------------------------ start
    def start(self) -> None:
        """Start this component (idempotent)."""
        if self._started:
            return
        self._started = True
        jitter = self.sim.rng(f"orpl-{self.node_id}").randrange(self.params.epoch)
        self.sim.schedule(jitter, self._rotate_epoch)

    def _rotate_epoch(self) -> None:
        self.sim.schedule(self.params.epoch, self._rotate_epoch)
        # Keep one epoch of hysteresis: current = last built; start fresh.
        merged = self._building.copy()
        self.subtree = merged
        self._building = BloomFilter(self.params.bloom_bits, self.params.bloom_hashes)
        self._building.add(self.node_id)

    # --------------------------------------------------------------- beacons
    def _fill_beacon(self, beacon: RoutingBeacon) -> None:
        # Reuse the tele_code slot to carry the bloom bits (one experiment
        # runs one protocol, so the slots never collide).
        beacon.tele_code = (self.subtree.bits, self.subtree.m)

    def _observe_beacon(self, beacon: RoutingBeacon, rssi: float) -> None:
        if beacon.parent != self.node_id or beacon.tele_code is None:
            return
        bits, m = beacon.tele_code
        if m != self.subtree.m:
            return
        child_filter = BloomFilter(self.params.bloom_bits, self.params.bloom_hashes)
        child_filter.bits = bits
        self.subtree.merge(child_filter)
        self._building.merge(child_filter)

    # --------------------------------------------------------------- queries
    @property
    def depth(self) -> int:
        """This node's tree depth (0 at/near the sink)."""
        hop = self.stack.routing.hop_count
        return hop if hop < 0xFFFF else 0

    def claims(self, destination: int) -> bool:
        """Does our sub-tree summary (possibly falsely) contain the node?"""
        return destination in self.subtree

    # ------------------------------------------------------------- originate
    def send_control(
        self,
        destination: int,
        payload: object = None,
        done: Optional[Callable[[PendingOrplControl], None]] = None,
    ) -> PendingOrplControl:
        """Originate a downward control packet from the sink."""
        if not self.stack.is_root:
            raise RuntimeError("send_control is a sink-side operation")
        control = OrplControl(
            destination=destination, payload=payload, origin_time=self.sim.now
        )
        pending = PendingOrplControl(control=control, sent_at=self.sim.now, done=done)
        self.pending[control.serial] = pending
        self._states[control.serial] = _HolderState(control=control)
        self._forward(control.serial)
        self.sim.schedule(self.params.e2e_timeout, self._check_timeout, control.serial)
        self.sim.schedule(
            self.params.sink_retry_interval, self._watchdog, control.serial
        )
        return pending

    def _watchdog(self, serial: int) -> None:
        pending = self.pending.get(serial)
        if pending is None or pending.acked_at is not None or pending.failed:
            return
        if self.sim.now >= pending.sent_at + self.params.e2e_timeout:
            return
        self._states[serial] = _HolderState(control=pending.control)
        self._forward(serial)
        self.sim.schedule(self.params.sink_retry_interval, self._watchdog, serial)

    def _check_timeout(self, serial: int) -> None:
        pending = self.pending.get(serial)
        if pending is None or pending.acked_at is not None or pending.failed:
            return
        pending.failed = True
        if pending.done is not None:
            pending.done(pending)

    # ------------------------------------------------------------- forwarding
    def _forward(self, serial: int) -> None:
        state = self._states.get(serial)
        if state is None or state.done_with_it:
            return
        control = state.control
        forwarded = OrplControl(
            destination=control.destination,
            payload=control.payload,
            serial=control.serial,
            holder_depth=self.depth,
            athx=control.athx + 1,
            origin_time=control.origin_time,
        )
        state.control = forwarded
        self.controls_forwarded += 1
        self.stack.send_anycast(
            FrameType.CONTROL,
            forwarded,
            length=OrplControl.LENGTH,
            done=lambda result: self._sent(serial, result),
        )

    def _sent(self, serial: int, result: SendResult) -> None:
        state = self._states.get(serial)
        if state is None or state.done_with_it:
            return
        if result.ok or result.reason == "cancelled":
            state.done_with_it = True
            return
        state.tries += 1
        if state.tries < self.params.max_tries:
            backoff = 200_000 + self.sim.rng(f"orpl-rt-{self.node_id}").randrange(
                400_000
            )
            self.sim.schedule(backoff, self._forward, serial)
            return
        # Our bloom claimed the destination but nobody deeper answers: the
        # classic false-positive dead end the paper criticises.
        state.done_with_it = True
        if not self.stack.is_root:
            self.false_positive_drops += 1

    # ---------------------------------------------------------------- receive
    def _anycast_decision(self, frame: Frame, rssi: float) -> AnycastDecision:
        if frame.type is not FrameType.CONTROL:
            return AnycastDecision.reject()
        control = frame.payload
        if not isinstance(control, OrplControl):
            return AnycastDecision.reject()
        if control.destination == self.node_id:
            return AnycastDecision(True, slot=0)
        state = self._states.get(control.serial)
        if state is not None and (
            not state.done_with_it or self.sim.now - state.held_at < 5 * SECOND
        ):
            return AnycastDecision.reject()  # we already hold/held this one
        if self.depth <= control.holder_depth:
            return AnycastDecision.reject()  # only downward progress
        if self.claims(control.destination):
            return AnycastDecision(True, slot=2)
        return AnycastDecision.reject()

    def _on_control(self, frame: Frame, rssi: float) -> None:
        control: OrplControl = frame.payload
        if not isinstance(control, OrplControl):
            return
        if control.destination == self.node_id:
            self._deliver(control)
            return
        state = self._states.get(control.serial)
        if state is not None and (
            not state.done_with_it or self.sim.now - state.held_at < 5 * SECOND
        ):
            return
        self._states[control.serial] = _HolderState(
            control=control, held_at=self.sim.now
        )
        self._forward(control.serial)

    def _deliver(self, control: OrplControl) -> None:
        if control.serial in self._delivered:
            return
        self._delivered.add(control.serial)
        if self.on_apply is not None:
            self.on_apply(control.payload)
        if self.on_delivered is not None:
            self.on_delivered(control)
        ack = OrplAck(serial=control.serial, destination=self.node_id)
        self.stack.forwarding.send(COLLECT_E2E_ACK, ack, origin_seqno=control.serial)

    def _on_ack(self, packet: DataPacket) -> None:
        ack = packet.payload
        if not isinstance(ack, OrplAck):
            return
        pending = self.pending.get(ack.serial)
        if pending is None or pending.acked_at is not None:
            return
        pending.delivered = True
        pending.acked_at = self.sim.now
        if pending.done is not None:
            pending.done(pending)
