"""RPL downward routing (RFC 6550), storing mode, on the collection DODAG.

The paper compares against "only the downward part of RPL": destinations
advertise themselves with DAOs that propagate up the DODAG (here: the CTP
tree); every node stores ``destination → next-hop child`` routes; the sink
forwards control packets hop by hop strictly according to these tables.
Deterministic table-driven forwarding is efficient but brittle: when the
real topology drifts from the stored state (link burstiness, WiFi
interference, parent changes), packets are dropped — the effect behind RPL's
PDR collapse in the paper's Figure 7(b).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, FrozenSet, Optional, Set

from repro.mac.lpl import SendResult
from repro.net.messages import COLLECT_E2E_ACK, DataPacket
from repro.radio.frame import Frame, FrameType
from repro.sim.simulator import Simulator
from repro.sim.units import SECOND

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import NodeStack

_serials = itertools.count(1)


@dataclass
class RplParams:
    """DAO and forwarding knobs."""

    #: Periodic DAO refresh interval.
    dao_interval: int = 30 * SECOND
    #: Debounce for change-triggered DAOs.
    dao_debounce: int = 2 * SECOND
    #: Unicast trains per hop before the packet is dropped. CTP-era stacks
    #: retransmit persistently (TinyOS CTP uses up to 30 link retries); each
    #: of our tries is already a full LPL train.
    max_hop_tries: int = 6
    #: Sink-side end-to-end timeout.
    e2e_timeout: int = 60 * SECOND
    #: Entries not refreshed within this window are purged.
    route_lifetime: int = 180 * SECOND
    #: Hop budget per control packet. Stored routes can transiently loop
    #: (A→B while B→A after re-parenting); real RPL detects loops by rank,
    #: we bound them by TTL.
    max_hops: int = 16


@dataclass
class DaoMessage:
    """Destination advertisement: the sender's reachable sub-DODAG."""

    origin: int
    destinations: FrozenSet[int]
    seqno: int

    LENGTH = 32


@dataclass
class RplControl:
    """Downward control packet payload."""

    destination: int
    payload: object
    serial: int = field(default_factory=lambda: next(_serials))
    hops: int = 0
    origin_time: int = 0

    LENGTH = 30


@dataclass
class RplAck:
    """End-to-end acknowledgement payload (rides CTP)."""
    serial: int
    destination: int


@dataclass
class PendingRplControl:
    """Sink-side bookkeeping for one control packet."""
    control: RplControl
    sent_at: int
    done: Optional[Callable[["PendingRplControl"], None]] = None
    delivered: bool = False
    acked_at: Optional[int] = None
    failed: bool = False
    fail_reason: str = ""


@dataclass
class _RouteEntry:
    next_hop: int
    refreshed_at: int


class RplDownward:
    """Per-node RPL storing-mode downward routing."""

    def __init__(
        self,
        sim: Simulator,
        stack: "NodeStack",
        params: Optional[RplParams] = None,
    ) -> None:
        self.sim = sim
        self.stack = stack
        self.node_id = stack.node_id
        self.params = params or RplParams()
        self.routes: Dict[int, _RouteEntry] = {}
        self._dao_seqno = 0
        self._dao_scheduled = False
        self.pending: Dict[int, PendingRplControl] = {}
        self.on_delivered: Optional[Callable[[RplControl], None]] = None
        self.on_apply: Optional[Callable[[object], None]] = None
        self.daos_sent = 0
        self.controls_forwarded = 0
        self.controls_dropped = 0
        stack.register_handler(FrameType.RPL_DAO, self._on_dao)
        stack.register_handler(FrameType.CONTROL, self._on_control)
        if stack.is_root:
            stack.forwarding.collect_handlers[COLLECT_E2E_ACK] = self._on_ack
        stack.routing.on_parent_change.append(self._on_parent_change)
        self._started = False

    # ------------------------------------------------------------------ start
    def start(self) -> None:
        """Start this component (idempotent)."""
        if self._started:
            return
        self._started = True
        if not self.stack.is_root:
            self.sim.schedule(
                self.sim.rng(f"rpl-{self.node_id}").randrange(self.params.dao_interval),
                self._periodic_dao,
            )

    # ------------------------------------------------------------------- DAO
    def _reachable_set(self) -> FrozenSet[int]:
        """Ourselves plus every destination our stored routes cover."""
        now = self.sim.now
        live = {
            dest
            for dest, entry in self.routes.items()
            if now - entry.refreshed_at <= self.params.route_lifetime
        }
        live.add(self.node_id)
        return frozenset(live)

    def _periodic_dao(self) -> None:
        self.sim.schedule(self.params.dao_interval, self._periodic_dao)
        self._send_dao()

    def _schedule_dao(self) -> None:
        if self._dao_scheduled:
            return
        self._dao_scheduled = True
        self.sim.schedule(self.params.dao_debounce, self._debounced_dao)

    def _debounced_dao(self) -> None:
        self._dao_scheduled = False
        self._send_dao()

    def _send_dao(self) -> None:
        parent = self.stack.routing.parent
        if parent is None or self.stack.is_root:
            return
        self._dao_seqno += 1
        dao = DaoMessage(
            origin=self.node_id,
            destinations=self._reachable_set(),
            seqno=self._dao_seqno,
        )
        self.daos_sent += 1
        self.stack.send_unicast(parent, FrameType.RPL_DAO, dao, length=DaoMessage.LENGTH)

    def _on_dao(self, frame: Frame, rssi: float) -> None:
        dao: DaoMessage = frame.payload
        changed = False
        for dest in dao.destinations:
            if dest == self.node_id:
                continue
            entry = self.routes.get(dest)
            if entry is None or entry.next_hop != dao.origin:
                changed = True
            self.routes[dest] = _RouteEntry(next_hop=dao.origin, refreshed_at=self.sim.now)
        # Storing mode aggregates upward: cascade only on changes; unchanged
        # refreshes are covered by each node's own periodic DAO.
        if changed:
            self._schedule_dao()

    def _on_parent_change(self, old: Optional[int], new: Optional[int]) -> None:
        if new is not None:
            self._schedule_dao()

    # ------------------------------------------------------------- forwarding
    def send_control(
        self,
        destination: int,
        payload: object = None,
        done: Optional[Callable[[PendingRplControl], None]] = None,
    ) -> PendingRplControl:
        """Sink API: unicast ``payload`` down the stored route."""
        if not self.stack.is_root:
            raise RuntimeError("send_control is a sink-side operation")
        control = RplControl(
            destination=destination, payload=payload, origin_time=self.sim.now
        )
        pending = PendingRplControl(control=control, sent_at=self.sim.now, done=done)
        self.pending[control.serial] = pending
        self._forward(control)
        self.sim.schedule(self.params.e2e_timeout, self._check_timeout, control.serial)
        return pending

    def _check_timeout(self, serial: int) -> None:
        pending = self.pending.get(serial)
        if pending is None or pending.acked_at is not None or pending.failed:
            return
        pending.failed = True
        pending.fail_reason = pending.fail_reason or "timeout"
        if pending.done is not None:
            pending.done(pending)

    def _forward(self, control: RplControl, tries: int = 0) -> None:
        if control.hops >= self.params.max_hops:
            self._drop(control, "ttl-exceeded")
            return
        entry = self.routes.get(control.destination)
        if entry is None:
            self._drop(control, "no-route")
            return
        next_hop = entry.next_hop
        forwarded = RplControl(
            destination=control.destination,
            payload=control.payload,
            serial=control.serial,
            hops=control.hops + 1,
            origin_time=control.origin_time,
        )
        self.controls_forwarded += 1
        self.stack.send_unicast(
            next_hop,
            FrameType.CONTROL,
            forwarded,
            length=RplControl.LENGTH,
            done=lambda result: self._sent(control, tries, result),
        )

    def _sent(self, control: RplControl, tries: int, result: SendResult) -> None:
        if result.ok:
            return
        tries += 1
        if tries < self.params.max_hop_tries:
            self._forward(control, tries)
            return
        self._drop(control, "hop-failure")

    def _drop(self, control: RplControl, reason: str) -> None:
        self.controls_dropped += 1
        pending = self.pending.get(control.serial)
        if pending is not None and not pending.failed and pending.acked_at is None:
            pending.failed = True
            pending.fail_reason = reason
            if pending.done is not None:
                pending.done(pending)

    def _on_control(self, frame: Frame, rssi: float) -> None:
        control: RplControl = frame.payload
        if control.destination == self.node_id:
            self._deliver(control)
            return
        self._forward(control)

    # --------------------------------------------------------------- delivery
    def _deliver(self, control: RplControl) -> None:
        if self.on_apply is not None:
            self.on_apply(control.payload)
        if self.on_delivered is not None:
            self.on_delivered(control)
        ack = RplAck(serial=control.serial, destination=self.node_id)
        self.stack.forwarding.send(COLLECT_E2E_ACK, ack, origin_seqno=control.serial)

    def _on_ack(self, packet: DataPacket) -> None:
        ack = packet.payload
        if not isinstance(ack, RplAck):
            return
        pending = self.pending.get(ack.serial)
        if pending is None or pending.acked_at is not None:
            return
        pending.delivered = True
        pending.acked_at = self.sim.now
        if pending.failed:
            # The packet got through although a hop reported failure (e.g. a
            # lost link-layer ack); count the delivery.
            pending.failed = False
        if pending.done is not None:
            pending.done(pending)
