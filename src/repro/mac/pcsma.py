"""p-persistent CSMA MAC adapter for long-range, sub-kbps radios.

LoRa-class links spend hundreds of milliseconds per frame, so the LPL
recipe — dense 1 ms channel samples and aggressive immediate retries — is
the wrong shape. Following the LoRaMesh idiom from SNIPPETS.md, senders
here run *p-persistent* CSMA: each slot in which the channel is clear they
transmit with probability ``p0 = (1 - 1/n0)^(n0 - 1)`` (the persistence
that maximises slot utilisation for ``n0`` expected contenders) and
otherwise defer a full slot. The slow query/confirm cadence of that stack
maps onto the train machinery: ``ack_gap`` plays the response-wait (RTH)
timer, the train deadline the confirm (CTH) bound, and ``csma_backoff`` is
the slot width (500 ms in LoRaMesh).

Everything else — trains, anycast slots, duplicate suppression, handover
announcements — is inherited from :class:`~repro.mac.lpl.LPLMac`, so the
adapter stays conformant with the shared MAC contract
(``tests/test_mac_conformance.py`` runs both adapters through one suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.mac.lpl import LPLMac, MacParams, _TrainState
from repro.radio.radio import RadioState
from repro.sim.units import MILLISECOND, SECOND


@dataclass
class PCsmaParams(MacParams):
    """MAC timing for p-CSMA; defaults re-scaled for second-long airtimes."""

    #: Expected number of contenders sharing the channel; sets the
    #: persistence ``p0 = (1 - 1/n0)^(n0 - 1)`` (0.4096 for the default 5).
    n0: int = 5

    @property
    def p0(self) -> float:
        """Transmit probability per clear slot (p-persistent CSMA)."""
        if self.n0 <= 1:
            return 1.0
        return (1.0 - 1.0 / self.n0) ** (self.n0 - 1)

    @classmethod
    def lora_defaults(cls) -> "PCsmaParams":
        """Timing matched to ~0.6 s frame airtimes (SF10/125 kHz)."""
        return cls(
            wake_interval=12 * SECOND,
            listen_window=1 * SECOND,
            active_timeout=2 * SECOND,
            ack_gap=1_200 * MILLISECOND,
            anycast_slot=120 * MILLISECOND,
            broadcast_gap=500 * MILLISECOND,
            train_slack=2 * SECOND,
            csma_attempts=12,
            csma_backoff=500 * MILLISECOND,
            broadcast_copies_cap=2,
            n0=5,
        )


class PCsmaMac(LPLMac):
    """LPL train machinery with the CSMA step replaced by p-persistence.

    A clear slot transmits with probability ``p0``; a busy or deferred slot
    costs one of ``csma_attempts`` tries and waits one ``csma_backoff``
    slot. The deterministic per-node RNG stream (``mac-<node_id>``) drives
    the persistence draws, so runs stay reproducible.
    """

    def _csma_then_send(self, train: Optional[_TrainState] = None) -> None:
        if train is None:
            train = self._train
        if train is None or train is not self._train or train.finished:
            return
        if not self.radio.is_on:
            self._finish_train(ok=False, reason="dead")
            return
        if self.radio.state in (RadioState.RECEIVING, RadioState.TX):
            # Hold for the in-flight frame; at LoRa airtimes one slot is the
            # natural re-check granularity, not the LPL 2 ms poll.
            self.sim.schedule(self.params.csma_backoff, self._csma_then_send, train)
            return
        params = self.params
        # Plain MacParams degrades to 1-persistence (always send when clear).
        p0 = getattr(params, "p0", 1.0)
        if not self.radio.cca_clear() or (p0 < 1.0 and self._rng.random() > p0):
            train.csma_tries += 1
            if train.csma_tries > params.csma_attempts:
                self._finish_train(ok=False, reason="busy")
                return
            self.sim.schedule(params.csma_backoff, self._csma_then_send, train)
            return
        self._send_copy(train)
