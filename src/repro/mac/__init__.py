"""Duty-cycled MAC layer (low-power listening, BoX-MAC style).

The paper's stack is "CTP built upon LPL" with a 512 ms wake-up interval.
:class:`LPLMac` reproduces that: nodes sleep and briefly sample the channel
every wake interval; senders transmit a packetised preamble (back-to-back
copies of the frame) until the receiver wakes and acknowledges, or for the
full interval for broadcasts. Anycast sends — the primitive TeleAdjusting's
opportunistic forwarding rides on — let any eligible awake node win the
packet by acknowledging first, with earlier ack slots given to nodes offering
more routing progress.
"""

from repro.mac.base import MacAdapter
from repro.mac.lpl import AnycastDecision, LPLMac, MacParams, SendResult
from repro.mac.pcsma import PCsmaMac, PCsmaParams

__all__ = [
    "MacAdapter",
    "LPLMac",
    "MacParams",
    "SendResult",
    "AnycastDecision",
    "PCsmaMac",
    "PCsmaParams",
]
