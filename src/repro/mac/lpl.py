"""Low-power-listening MAC with unicast, broadcast, and anycast trains."""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Deque, Dict, Optional, Tuple

from repro.mac.base import MacAdapter
from repro.radio.cc2420 import packet_airtime
from repro.radio.frame import BROADCAST, Frame, FrameType
from repro.radio.radio import Radio, RadioState
from repro.sim.simulator import Simulator
from repro.sim.units import MILLISECOND

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.radio.profiles import RadioProfile


@dataclass
class MacParams:
    """LPL timing knobs (defaults match the paper's setup where stated)."""

    #: Sleep interval between channel samples; 512 ms in the paper.
    wake_interval: int = 512 * MILLISECOND
    #: How long the radio listens on each wake-up before going back to sleep.
    listen_window: int = 6 * MILLISECOND
    #: Extension after detecting energy or receiving a frame.
    active_timeout: int = 30 * MILLISECOND
    #: Gap after each unicast/anycast copy during which the sender listens
    #: for acknowledgements. It must hold the full anycast slot schedule
    #: (max slot × anycast_slot + ack airtime ≈ 1.8 ms + 0.7 ms), yet stay
    #: short: the duty-cycled receiver's CCA sampling has to land on a copy,
    #: so the train must be mostly airtime, not silence.
    ack_gap: int = 2_600
    #: Width of one anycast acknowledgement priority slot. All slots (0–6)
    #: must fit inside ``ack_gap`` together with one ack airtime, otherwise
    #: low-priority ackers collide with the sender's next copy.
    anycast_slot: int = 300
    #: Gap between broadcast copies (also bounds how many copies a train puts
    #: on the air; receivers deduplicate, so the gap trades simulation cost
    #: against per-wake-up catch probability and must stay below
    #: ``listen_window`` minus one airtime).
    broadcast_gap: int = 3 * MILLISECOND
    #: Extra train length beyond one wake interval (catches phase edges).
    train_slack: int = 20 * MILLISECOND
    #: CSMA: max initial-backoff attempts before reporting channel busy.
    csma_attempts: int = 8
    #: CSMA: initial backoff window (uniform in [1, window]).
    csma_backoff: int = 10 * MILLISECOND
    #: Remember this many recently seen frame ids for duplicate suppression.
    dedup_cache: int = 64
    #: Cap on copies per broadcast train. None = fill the wake interval (LPL
    #: default). Set small (e.g. 2) for always-on networks, where one copy
    #: reaches every listening neighbour and the full train is wasted work.
    broadcast_copies_cap: Optional[int] = None
    #: After a successful anycast train, broadcast one HANDOVER copy naming
    #: the winner, so hidden co-winners (ackers that could not hear each
    #: other) demote themselves instead of forwarding duplicates.
    handover_announce: bool = True

    @classmethod
    def always_on_network(cls) -> "MacParams":
        """Preset for simulations where every radio stays on (no LPL)."""
        return cls(broadcast_copies_cap=2, train_slack=50 * MILLISECOND)


@dataclass
class SendResult:
    """Outcome of one MAC send (one full LPL train)."""

    ok: bool
    frame: Frame
    #: Node that acknowledged (unicast: the destination; anycast: the winner).
    acker: Optional[int] = None
    #: Number of frame copies put on the air during the train.
    copies: int = 0
    started: int = 0
    finished: int = 0
    #: Failure reason for diagnostics ("timeout", "busy").
    reason: str = ""


@dataclass
class AnycastDecision:
    """Upper-layer verdict on an overheard anycast frame.

    ``slot`` orders competing ackers: slot 0 acks first. TeleAdjusting maps
    more routing progress to earlier slots so the best forwarder wins.
    """

    accept: bool
    slot: int = 0

    @classmethod
    def reject(cls) -> "AnycastDecision":
        """Convenience constructor for a non-accepting verdict."""
        return cls(accept=False)


@dataclass
class _TrainState:
    frame: Frame
    done: Optional[Callable[[SendResult], None]]
    deadline: int
    started: int
    anycast: bool
    copies: int = 0
    finished: bool = False
    csma_tries: int = 0


class LPLMac(MacAdapter):
    """Per-node MAC instance bound to one :class:`Radio`.

    Upper layers register:

    - ``receive_handler(frame, rssi)`` — every non-duplicate frame addressed
      to this node (or broadcast/anycast) after MAC filtering.
    - ``anycast_handler(frame, rssi) -> AnycastDecision`` — consulted for
      frames sent with :meth:`send_anycast`; an accepting node acknowledges
      in its priority slot and then receives the frame.

    Ack airtime and the RX→TX turnaround come from the node's
    :class:`~repro.radio.profiles.RadioProfile` (the default profile keeps
    the historical CC2420 values, 544 and 192 ticks).
    """

    ACK_LENGTH = 11
    #: Historical CC2420 values, kept for back-compat; instances use the
    #: profile-derived ``self.ack_airtime`` / ``self.turnaround``.
    ACK_AIRTIME = packet_airtime(ACK_LENGTH)
    #: RX→TX turnaround before an ack (12 symbol periods on the CC2420).
    TURNAROUND = 192

    def __init__(
        self,
        sim: Simulator,
        radio: Radio,
        params: Optional[MacParams] = None,
        always_on: bool = False,
        profile: Optional["RadioProfile"] = None,
    ) -> None:
        if profile is None:
            from repro.radio.profiles import get_radio_profile

            profile = get_radio_profile(None)
        self.profile = profile
        #: On-air time of one acknowledgement frame on this profile's PHY.
        self.ack_airtime = profile.packet_airtime(self.ACK_LENGTH)
        self.turnaround = profile.turnaround_ticks
        self.sim = sim
        self.radio = radio
        self.params = params or MacParams()
        self.always_on = always_on
        self.node_id = radio.node_id
        self.receive_handler: Optional[Callable[[Frame, float], None]] = None
        self.anycast_handler: Optional[
            Callable[[Frame, float], AnycastDecision]
        ] = None
        #: Promiscuous observer: called once per decoded frame (before any
        #: addressing/duplicate filtering, acks excluded). TeleAdjusting's
        #: feedback overhearing (paper Fig 5(a)) hangs off this.
        self.snoop_handler: Optional[Callable[[Frame, float], None]] = None
        self._queue: Deque[Tuple[Frame, Optional[Callable[[SendResult], None]], bool]] = deque()
        self._train: Optional[_TrainState] = None
        self._rng = sim.rng(f"mac-{self.node_id}")
        # Duplicate suppression: frame_id -> did we ack it (for re-acking).
        self._seen: "OrderedDict[int, bool]" = OrderedDict()
        # Frames already handed to the upper layer (anycast can ack a copy
        # without having delivered yet if the radio was busy at slot time).
        self._delivered_ids: "OrderedDict[int, bool]" = OrderedDict()
        self._sleep_event = None
        self._awake_until = 0
        self._pending_ack_event = None
        #: Stats the metrics layer reads.
        self.trains_sent = 0
        self.copies_sent = 0
        self.acks_sent = 0
        self.frames_delivered = 0
        self._started = False

    # --------------------------------------------------------------- startup
    def start(self) -> None:
        """Begin duty cycling (or stay always-on for sink/controller nodes)."""
        if self._started:
            return
        self._started = True
        self.radio.on_receive = self._on_frame
        if self.always_on:
            self.radio.turn_on()
        else:
            phase = self._rng.randrange(self.params.wake_interval)
            self.sim.schedule(phase, self._wake_up)

    def reset(self) -> None:
        """Reboot: cancel every pending send and forget dedup state.

        Completion callbacks of cancelled sends fire with
        ``reason="cancelled"`` (the layers above are wiped right after by
        :meth:`repro.net.node.NodeStack.reboot`, so their reactions are
        discarded). The duty-cycle wake-up loop keeps running — it is the
        node's hardware timer, not protocol state.
        """
        self.cancel_matching(lambda frame: True)
        self._queue.clear()
        self._seen.clear()
        self._delivered_ids.clear()
        self._awake_until = 0

    def resume(self) -> None:
        """Power the radio back up after a failure was cleared.

        Duty-cycled nodes need nothing: their wake-up loop turns the radio
        on at the next scheduled sample (the phase drift relative to what
        neighbours learned is the "duty-cycle desync" a stun causes).
        """
        if self.always_on and self._started:
            self.radio.turn_on()

    # ------------------------------------------------------------ duty cycle
    def _wake_up(self) -> None:
        params = self.params
        sim = self.sim
        sim.schedule(params.wake_interval, self._wake_up)
        if self._train is not None or self.radio.is_on:
            return  # busy sending or still awake from last activity
        self.radio.turn_on()
        listen = params.listen_window
        self._awake_until = sim.now + listen
        # Sample densely (1 ms) so any ongoing train — mostly airtime with
        # short ack gaps — is guaranteed to hit at least one sample.
        self._sample_channel(samples_left=listen // MILLISECOND)
        sim.schedule(listen, self._maybe_sleep)

    def _sample_channel(self, samples_left: int) -> None:
        radio = self.radio
        if not radio.is_on or radio.state is RadioState.TX:
            return
        if radio.state is RadioState.RECEIVING or not radio.cca_clear():
            self._extend_awake()
            return  # energy found; stay up to receive, stop sampling
        if samples_left > 1:
            self.sim.schedule(MILLISECOND, self._sample_channel, samples_left - 1)

    def _extend_awake(self, duration: Optional[int] = None) -> None:
        if duration is None:
            duration = self.params.active_timeout
        deadline = self.sim.now + duration
        if deadline > self._awake_until:
            self._awake_until = deadline
            self.sim.schedule(duration, self._maybe_sleep)

    def _shorten_awake(self) -> None:
        """Sleep soon: what we just overheard is not for us (LPL receivers
        check the address of one preamble copy and go back to sleep)."""
        if self.always_on or self._train is not None:
            return
        soon = self.sim.now + 3 * MILLISECOND
        if self._awake_until > soon:
            self._awake_until = soon
            self.sim.schedule(3 * MILLISECOND, self._maybe_sleep)

    def _maybe_sleep(self) -> None:
        if self.always_on or not self.radio.is_on:
            return
        if self._train is not None:
            return  # the train teardown handles sleeping
        if self.sim.now < self._awake_until:
            return  # a later _maybe_sleep is scheduled
        if self.radio.state in (RadioState.RECEIVING, RadioState.TX):
            self.sim.schedule(2 * MILLISECOND, self._maybe_sleep)
            return
        self.radio.turn_off()

    # ---------------------------------------------------------------- sending
    def send(
        self, frame: Frame, done: Optional[Callable[[SendResult], None]] = None
    ) -> None:
        """Unicast (acked) or broadcast (unacked) depending on ``frame.dst``."""
        frame.ack_requested = not frame.is_broadcast
        self._enqueue(frame, done, anycast=False)

    def send_anycast(
        self, frame: Frame, done: Optional[Callable[[SendResult], None]] = None
    ) -> None:
        """Anycast: broadcast-addressed but acked by the best eligible node."""
        frame.dst = BROADCAST
        frame.ack_requested = True
        self._enqueue(frame, done, anycast=True)

    def _enqueue(
        self,
        frame: Frame,
        done: Optional[Callable[[SendResult], None]],
        anycast: bool,
    ) -> None:
        self._queue.append((frame, done, anycast))
        if self._train is None:
            self._next_train()

    def cancel_matching(self, predicate: Callable[[Frame], bool]) -> int:
        """Abort queued and in-progress sends whose frame matches ``predicate``.

        Completion callbacks fire with ``ok=False, reason="cancelled"``.
        Returns the number of sends cancelled. Used by opportunistic
        forwarding to kill a pending train once another node is observed
        carrying the same packet at least as far.
        """
        cancelled = 0
        kept: Deque[Tuple[Frame, Optional[Callable[[SendResult], None]], bool]] = deque()
        while self._queue:
            frame, done, anycast = self._queue.popleft()
            if predicate(frame):
                cancelled += 1
                if done is not None:
                    done(
                        SendResult(
                            ok=False,
                            frame=frame,
                            started=self.sim.now,
                            finished=self.sim.now,
                            reason="cancelled",
                        )
                    )
            else:
                kept.append((frame, done, anycast))
        self._queue = kept
        train = self._train
        if train is not None and not train.finished and predicate(train.frame):
            cancelled += 1
            self._finish_train(ok=False, reason="cancelled")
        return cancelled

    def _next_train(self) -> None:
        if self._train is not None or not self._queue:
            return
        frame, done, anycast = self._queue.popleft()
        window = self.params.wake_interval + self.params.train_slack
        self._train = _TrainState(
            frame=frame,
            done=done,
            deadline=self.sim.now + window,
            started=self.sim.now,
            anycast=anycast,
        )
        self.trains_sent += 1
        self.radio.turn_on()
        self._csma_then_send()

    def _csma_then_send(self, train: Optional[_TrainState] = None) -> None:
        if train is None:
            train = self._train
        if train is None or train is not self._train or train.finished:
            return
        if not self.radio.is_on:
            # Node failure injected mid-train: abort the send.
            self._finish_train(ok=False, reason="dead")
            return
        if self.radio.state in (RadioState.RECEIVING, RadioState.TX):
            # Let the in-flight reception or ack transmission finish first.
            self.sim.schedule(2 * MILLISECOND, self._csma_then_send, train)
            return
        if not self.radio.cca_clear():
            train.csma_tries += 1
            if train.csma_tries > self.params.csma_attempts:
                self._finish_train(ok=False, reason="busy")
                return
            backoff = self._rng.randint(1, self.params.csma_backoff)
            self.sim.schedule(backoff, self._csma_then_send, train)
            return
        self._send_copy(train)

    def _send_copy(self, train: _TrainState) -> None:
        if train is not self._train or train.finished:
            return
        plain_broadcast = train.frame.is_broadcast and not train.anycast
        if self.sim.now >= train.deadline or (
            plain_broadcast
            and self.params.broadcast_copies_cap is not None
            and train.copies >= self.params.broadcast_copies_cap
        ):
            self._finish_train(ok=plain_broadcast, reason="" if plain_broadcast else "timeout")
            return
        if not self.radio.is_on:
            self._finish_train(ok=False, reason="dead")
            return
        if self.radio.state in (RadioState.RECEIVING, RadioState.TX):
            self.sim.schedule(2 * MILLISECOND, self._send_copy, train)
            return
        train.copies += 1
        self.copies_sent += 1
        self.radio.transmit(train.frame, done=lambda: self._copy_done(train))

    def _copy_done(self, train: _TrainState) -> None:
        if train is not self._train or train.finished:
            return
        if train.frame.ack_requested:
            # Listen for the ack during the gap; the ack arrives through
            # _on_frame and finishes the train.
            self.sim.schedule(self.params.ack_gap, self._ack_gap_over, train)
        else:
            self.sim.schedule(self.params.broadcast_gap, self._send_copy, train)

    def _ack_gap_over(self, train: _TrainState) -> None:
        if train is not self._train or train.finished:
            return
        self._send_copy(train)

    def _finish_train(self, ok: bool, acker: Optional[int] = None, reason: str = "") -> None:
        train = self._train
        assert train is not None
        train.finished = True
        self._train = None
        if (
            ok
            and train.anycast
            and acker is not None
            and self.params.handover_announce
            and self.radio.is_on
            and self.radio.state is RadioState.IDLE
        ):
            announce = Frame(
                src=self.node_id,
                dst=BROADCAST,
                type=FrameType.HANDOVER,
                payload=(train.frame.frame_id, acker),
                length=12,
            )
            self.copies_sent += 1
            self.radio.transmit(announce)
        result = SendResult(
            ok=ok,
            frame=train.frame,
            acker=acker,
            copies=train.copies,
            started=train.started,
            finished=self.sim.now,
            reason=reason,
        )
        # Return to duty cycling unless more traffic is queued.
        if self._queue:
            self.sim.schedule(0, self._next_train)
        elif not self.always_on:
            self._awake_until = self.sim.now + 2 * MILLISECOND
            self.sim.schedule(2 * MILLISECOND, self._maybe_sleep)
        if train.done is not None:
            train.done(result)

    # --------------------------------------------------------------- receive
    def _remember(self, frame_id: int, acked: bool) -> None:
        self._seen[frame_id] = acked
        while len(self._seen) > self.params.dedup_cache:
            self._seen.popitem(last=False)

    def _on_frame(self, frame: Frame, rssi: float) -> None:
        if frame.type is FrameType.ACK:
            self._handle_ack(frame)
            return
        if frame.type is FrameType.WIFI:
            return  # foreign modulation, never decodable
        if frame.src == self.node_id:
            return
        if self.snoop_handler is not None and frame.frame_id not in self._seen:
            self.snoop_handler(frame, rssi)
        is_duplicate = frame.frame_id in self._seen
        if frame.ack_requested and frame.is_broadcast:
            # Anycast: ask the upper layer (once); re-ack duplicates we won.
            if is_duplicate:
                if self._seen[frame.frame_id]:
                    self._extend_awake(12 * MILLISECOND)
                    # Re-ack with a delay randomised across the sender's
                    # listening gap: two co-winners whose first acks collided
                    # must dephase or they collide on every copy of the train.
                    reack_window = max(
                        self.params.ack_gap - self.ack_airtime - 400, 1
                    )
                    self.sim.schedule(
                        self._rng.randrange(reack_window),
                        self._anycast_ack_and_deliver,
                        frame,
                        rssi,
                    )
                else:
                    self._shorten_awake()
                return
            decision = (
                self.anycast_handler(frame, rssi)
                if self.anycast_handler is not None
                else AnycastDecision.reject()
            )
            self._remember(frame.frame_id, decision.accept)
            if not decision.accept:
                self._shorten_awake()
                return
            delay = decision.slot * self.params.anycast_slot + self._rng.randrange(
                max(self.params.anycast_slot // 3, 1)
            )
            self._extend_awake(delay + 12 * MILLISECOND)
            self.sim.schedule(delay, self._anycast_ack_and_deliver, frame, rssi)
            return
        if frame.is_broadcast:
            # One copy is the whole message: deliver (if new) and sleep early
            # rather than sitting through the rest of the sender's train.
            self._shorten_awake()
            if is_duplicate:
                return
            self._remember(frame.frame_id, False)
            self._deliver(frame, rssi)
            return
        if frame.dst != self.node_id:
            self._shorten_awake()
            return
        if not self.always_on:
            self._extend_awake()
        if frame.ack_requested:
            self._send_ack(frame)
        if is_duplicate:
            return
        self._remember(frame.frame_id, frame.ack_requested)
        self._deliver(frame, rssi)

    def _anycast_ack_and_deliver(self, frame: Frame, rssi: float) -> None:
        # Suppression: if someone else already acked this frame (we overheard
        # their ack and marked the frame), stay silent.
        if self._seen.get(frame.frame_id) is None:
            return  # cache evicted; ignore stale event
        if not self._seen[frame.frame_id]:
            return  # suppressed meanwhile
        if not self.radio.is_on or self.radio.state in (
            RadioState.TX,
            RadioState.RECEIVING,
        ):
            return
        self._send_ack(frame)
        if frame.frame_id not in self._delivered_ids:
            self._delivered_ids[frame.frame_id] = True
            while len(self._delivered_ids) > self.params.dedup_cache:
                self._delivered_ids.popitem(last=False)
            self._deliver(frame, rssi)

    def _send_ack(self, frame: Frame) -> None:
        """Queue the RX→TX turnaround, then put the ack on the air."""
        self.sim.schedule(self.turnaround, self._transmit_ack, frame)

    def _transmit_ack(self, frame: Frame) -> None:
        if not self.radio.is_on or self.radio.state in (
            RadioState.TX,
            RadioState.RECEIVING,
        ):
            return
        ack = Frame(
            src=self.node_id,
            dst=frame.src,
            type=FrameType.ACK,
            payload=frame.frame_id,
            length=self.ACK_LENGTH,
        )
        self.acks_sent += 1
        self.radio.transmit(ack)

    def _handle_ack(self, ack: Frame) -> None:
        train = self._train
        if train is not None and not train.finished and ack.payload == train.frame.frame_id:
            if ack.dst == self.node_id:
                self._finish_train(ok=True, acker=ack.src)
                return
        # Overheard an ack for a frame we were considering anycast-acking:
        # suppress our own (slower) ack.
        if ack.payload in self._seen and ack.src != self.node_id and ack.dst != self.node_id:
            self._seen[ack.payload] = False

    def _deliver(self, frame: Frame, rssi: float) -> None:
        self.frames_delivered += 1
        if self.receive_handler is not None:
            self.receive_handler(frame, rssi)

    # ----------------------------------------------------------------- stats
    def duty_cycle(self, since: int = 0) -> float:
        """Fraction of time the radio has been on since ``since`` (ticks)."""
        elapsed = self.sim.now - since
        if elapsed <= 0:
            return 0.0
        return min(self.radio.on_time() / elapsed, 1.0)
