"""The MAC adapter seam: the contract every radio profile's MAC satisfies.

Historically ``LPLMac`` was the only MAC and every layer above it called its
concrete methods. :class:`MacAdapter` names that implicit contract so a
:class:`~repro.radio.profiles.RadioProfile` can supply any MAC (LPL for the
CC2420 profile, p-CSMA for the LoRa profile, something else for a plugin)
and ``net/node.py``, the protocols, and the metrics layer keep working
unchanged. ``tests/test_mac_conformance.py`` runs the same behavioural
suite against every bundled adapter.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, Optional

from repro.radio.frame import Frame

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mac.lpl import AnycastDecision, SendResult


class MacAdapter(ABC):
    """Per-node MAC bound to one radio; the seam upper layers program to.

    Concrete adapters must also expose the attributes the stack reads:

    - ``receive_handler(frame, rssi)`` — upper-layer delivery callback for
      every non-duplicate frame addressed to this node (or broadcast).
    - ``anycast_handler(frame, rssi) -> AnycastDecision`` — consulted for
      anycast frames; an accepting node acks in its priority slot.
    - ``snoop_handler(frame, rssi)`` — promiscuous observer, called once per
      decoded frame before addressing/duplicate filtering (acks excluded).
    - ``node_id``, ``radio``, ``params`` — identity and timing knobs.
    - Stats counters the metrics layer reads: ``trains_sent``,
      ``copies_sent``, ``acks_sent``, ``frames_delivered``.
    """

    node_id: int
    receive_handler: Optional[Callable[[Frame, float], None]]
    anycast_handler: Optional[Callable[[Frame, float], "AnycastDecision"]]
    snoop_handler: Optional[Callable[[Frame, float], None]]
    trains_sent: int
    copies_sent: int
    acks_sent: int
    frames_delivered: int

    @abstractmethod
    def start(self) -> None:
        """Begin operating (duty cycling, or always-on for sink nodes)."""

    @abstractmethod
    def reset(self) -> None:
        """Reboot: cancel every pending send and forget dedup state."""

    @abstractmethod
    def resume(self) -> None:
        """Power the radio back up after an injected failure was cleared."""

    @abstractmethod
    def send(
        self, frame: Frame, done: Optional[Callable[["SendResult"], None]] = None
    ) -> None:
        """Unicast (acked) or broadcast (unacked) depending on ``frame.dst``."""

    @abstractmethod
    def send_anycast(
        self, frame: Frame, done: Optional[Callable[["SendResult"], None]] = None
    ) -> None:
        """Anycast: broadcast-addressed but acked by the best eligible node."""

    @abstractmethod
    def cancel_matching(self, predicate: Callable[[Frame], bool]) -> int:
        """Abort queued/in-progress sends matching ``predicate``; return count."""

    @abstractmethod
    def duty_cycle(self, since: int = 0) -> float:
        """Fraction of time the radio has been on since ``since`` (ticks)."""
