"""The Trickle algorithm (Levis et al., NSDI 2004; RFC 6206).

Trickle governs when CTP sends routing beacons and when Drip re-broadcasts
dissemination messages: transmissions are suppressed when the neighbourhood
is consistent (the interval doubles up to ``i_max``) and the interval resets
to ``i_min`` on any inconsistency, producing fast convergence with low
steady-state traffic.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.events import Event
from repro.sim.simulator import Simulator
from repro.sim.units import MILLISECOND, SECOND


class TrickleTimer:
    """One Trickle instance.

    Parameters follow RFC 6206: ``i_min`` (ticks), ``i_max_doublings`` (so the
    maximum interval is ``i_min * 2**i_max_doublings``), and redundancy ``k``
    (a firing is suppressed when ``k`` or more consistent messages were heard
    in the current interval; ``k = 0`` disables suppression).
    """

    def __init__(
        self,
        sim: Simulator,
        on_fire: Callable[[], None],
        i_min: int = 512 * MILLISECOND,
        i_max_doublings: int = 8,
        k: int = 1,
        rng_name: Optional[str] = None,
    ) -> None:
        if i_min <= 1:
            raise ValueError("i_min must be > 1 tick")
        if i_max_doublings < 0:
            raise ValueError("i_max_doublings must be >= 0")
        self.sim = sim
        self.on_fire = on_fire
        self.i_min = i_min
        self.i_max = i_min << i_max_doublings
        self.k = k
        self._rng = sim.rng(rng_name or f"trickle-{id(self)}")
        self.interval = i_min
        self.counter = 0
        self._fire_event: Optional[Event] = None
        self._interval_event: Optional[Event] = None
        self._running = False

    # ----------------------------------------------------------------- state
    @property
    def running(self) -> bool:
        """True while active."""
        return self._running

    def start(self) -> None:
        """Begin with the minimum interval (idempotent)."""
        if self._running:
            return
        self._running = True
        self.interval = self.i_min
        self._begin_interval()

    def stop(self) -> None:
        """Halt; pending firings are cancelled."""
        self._running = False
        self._cancel_pending()

    def reset(self) -> None:
        """Inconsistency: restart at ``i_min`` (no-op if already there and running)."""
        if not self._running:
            self.start()
            return
        if self.interval == self.i_min:
            return
        self.interval = self.i_min
        self._cancel_pending()
        self._begin_interval()

    def hear_consistent(self) -> None:
        """Count a consistent message toward suppression."""
        self.counter += 1

    def hear_inconsistent(self) -> None:
        """A message signalling inconsistency resets the interval."""
        self.reset()

    # -------------------------------------------------------------- internals
    def _cancel_pending(self) -> None:
        if self._fire_event is not None and self._fire_event.pending:
            self.sim.cancel(self._fire_event)
        if self._interval_event is not None and self._interval_event.pending:
            self.sim.cancel(self._interval_event)
        self._fire_event = None
        self._interval_event = None

    def _begin_interval(self) -> None:
        self.counter = 0
        half = self.interval // 2
        t = half + self._rng.randrange(max(self.interval - half, 1))
        self._fire_event = self.sim.schedule(t, self._maybe_fire)
        self._interval_event = self.sim.schedule(self.interval, self._interval_over)

    def _maybe_fire(self) -> None:
        if not self._running:
            return
        if self.k == 0 or self.counter < self.k:
            self.on_fire()

    def _interval_over(self) -> None:
        if not self._running:
            return
        self.interval = min(self.interval * 2, self.i_max)
        self._begin_interval()


#: Convenience defaults for CTP's beacon timer. TinyOS uses Imin = 128 ms;
#: we use one wake-up interval (512 ms) because every beacon is a full LPL
#: broadcast train here, and a sub-train Imin just queues congesting trains
#: and churns the link estimator. Code cascades ride the (fast, debounced)
#: TeleAdjusting beacons instead.
CTP_BEACON_I_MIN = 512 * MILLISECOND
CTP_BEACON_I_MAX_DOUBLINGS = 9  # up to ~262 s
CTP_BEACON_K = 0  # CTP does not suppress beacons

#: Drip (dissemination) defaults.
DRIP_I_MIN = 128 * MILLISECOND
DRIP_I_MAX_DOUBLINGS = 10
DRIP_K = 1

_ = SECOND  # re-exported unit kept for callers configuring intervals
