"""Payload types carried inside link-layer frames by the network stacks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Path ETX advertised by a node with no route.
NO_ROUTE = 0xFFFF


@dataclass
class RoutingBeacon:
    """CTP routing beacon, optionally piggybacking TeleAdjusting state.

    The paper attaches the child's allocated *position* to routing beacons so
    the parent can confirm or repair it (Section III-B5), without touching the
    beacon schedule of the original stack.
    """

    origin: int
    parent: Optional[int]
    path_etx: float  # accumulated ETX to the sink (NO_ROUTE if none)
    hop_count: int  # hops to sink along the current parent chain
    seqno: int
    #: TeleAdjusting piggyback: this node's claimed (position, parent) pair.
    tele_position: Optional[int] = None
    #: TeleAdjusting piggyback: this node's current valid path code bits, so
    #: neighbours can maintain their neighbour-code tables.
    tele_code: Optional[Tuple[int, ...]] = None

    #: Approximate on-air size in bytes (CTP beacon ~ 20 B + piggyback).
    LENGTH = 28


@dataclass
class DataPacket:
    """CTP data frame payload (collection traffic; e2e acks ride on this)."""

    origin: int
    origin_seqno: int
    collect_id: int  # multiplexing id, like CTP's AM collect id
    thl: int = 0  # time-has-lived, incremented per hop
    payload: Any = None
    #: TeleAdjusting piggyback: the origin's current path code as
    #: ``(value, length)``. Riding the controller's code reports on data
    #: packets that flow anyway keeps the reporting cost near zero.
    tele_code: Optional[Tuple[int, int]] = None

    LENGTH = 50

    def key(self) -> Tuple[int, int, int]:
        """Duplicate-suppression key (origin, seqno, collect_id)."""
        return (self.origin, self.origin_seqno, self.collect_id)


#: Collection ids used by the stacks in this package.
COLLECT_APP_DATA = 1  # periodic sensed data (IPI traffic)
COLLECT_E2E_ACK = 2  # TeleAdjusting end-to-end acknowledgements
COLLECT_CODE_REPORT = 3  # nodes reporting their path code to the controller
