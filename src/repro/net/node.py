"""Per-node protocol stack: radio + MAC + CTP + pluggable control protocol."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.mac.lpl import AnycastDecision, MacParams, SendResult
from repro.net.ctp import CtpForwarding, CtpRouting
from repro.net.linkest import LinkEstimator
from repro.net.messages import RoutingBeacon
from repro.net.trickle import CTP_BEACON_I_MAX_DOUBLINGS, CTP_BEACON_I_MIN
from repro.radio.channel import Channel
from repro.radio.frame import BROADCAST, Frame, FrameType
from repro.radio.profiles import RadioProfile
from repro.radio.radio import Radio
from repro.sim.simulator import Simulator


class NodeStack:
    """Everything one mote runs: radio, MAC adapter, CTP, and one control protocol.

    The MAC comes from the radio profile (:meth:`RadioProfile.build_mac`) —
    LPL on the default CC2420 profile, p-CSMA on the LoRa profile, whatever a
    registered plugin supplies otherwise. Control protocols (TeleAdjusting,
    Drip, RPL downward) plug in by registering frame handlers with
    :meth:`register_handler`, beacon hooks with :attr:`beacon_fillers` /
    :attr:`beacon_observers`, and — for TeleAdjusting — the MAC anycast
    decision via :meth:`set_anycast_handler`.
    """

    def __init__(
        self,
        sim: Simulator,
        channel: Channel,
        node_id: int,
        is_root: bool = False,
        tx_power_dbm: float = 0.0,
        mac_params: Optional[MacParams] = None,
        always_on: Optional[bool] = None,
        beacon_i_min: Optional[int] = None,
        beacon_i_max_doublings: Optional[int] = None,
        profile: Optional[RadioProfile] = None,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.is_root = is_root
        # The profile defaults to the channel's (they were wired together by
        # the harness); explicit beacon bounds win over profile suggestions,
        # which win over the stack-wide CTP defaults.
        if profile is None:
            profile = channel.profile
        self.profile = profile
        if beacon_i_min is None:
            beacon_i_min = (
                CTP_BEACON_I_MIN if profile.beacon_i_min is None else profile.beacon_i_min
            )
        if beacon_i_max_doublings is None:
            beacon_i_max_doublings = (
                CTP_BEACON_I_MAX_DOUBLINGS
                if profile.beacon_i_max_doublings is None
                else profile.beacon_i_max_doublings
            )
        self.radio = Radio(sim, channel, node_id, tx_power_dbm=tx_power_dbm)
        self.mac = profile.build_mac(
            sim,
            self.radio,
            params=mac_params,
            always_on=is_root if always_on is None else always_on,
        )
        self.linkest = LinkEstimator()
        self.routing = CtpRouting(
            sim,
            self,
            is_root=is_root,
            beacon_i_min=beacon_i_min,
            beacon_i_max_doublings=beacon_i_max_doublings,
        )
        self.forwarding = CtpForwarding(sim, self)
        self._handlers: Dict[FrameType, Callable[[Frame, float], None]] = {}
        #: Hooks that may add fields to outgoing routing beacons.
        self.beacon_fillers: List[Callable[[RoutingBeacon], None]] = []
        #: Hooks run on every received routing beacon (after CTP processing).
        self.beacon_observers: List[Callable[[RoutingBeacon, float], None]] = []
        self._anycast_handler: Optional[Callable[[Frame, float], AnycastDecision]] = None
        #: Logical transmissions (LPL trains) per frame type, for metrics.
        self.tx_by_type: Dict[FrameType, int] = {}
        self.mac.receive_handler = self._dispatch
        self.mac.anycast_handler = self._anycast_dispatch
        self._started = False

    # ----------------------------------------------------------------- wiring
    def register_handler(
        self, frame_type: FrameType, handler: Callable[[Frame, float], None]
    ) -> None:
        """Route received frames of ``frame_type`` to ``handler``."""
        if frame_type in (FrameType.ROUTING_BEACON, FrameType.DATA):
            raise ValueError(f"{frame_type} is owned by the CTP substrate")
        if frame_type in self._handlers:
            raise ValueError(f"duplicate handler for {frame_type}")
        self._handlers[frame_type] = handler

    def set_anycast_handler(
        self, handler: Callable[[Frame, float], AnycastDecision]
    ) -> None:
        """Install the MAC anycast decision callback."""
        self._anycast_handler = handler

    def fill_beacon(self, beacon: RoutingBeacon) -> None:
        """Run registered fillers over an outgoing beacon."""
        for filler in self.beacon_fillers:
            filler(beacon)

    def beacon_observed(self, beacon: RoutingBeacon, rssi: float) -> None:
        """Run registered observers over a received beacon."""
        for observer in self.beacon_observers:
            observer(beacon, rssi)

    # ------------------------------------------------------------------ start
    def start(self) -> None:
        """Start this component (idempotent)."""
        if self._started:
            return
        self._started = True
        self.mac.start()
        self.routing.start()

    # ------------------------------------------------------------------ reboot
    def reboot(self) -> None:
        """Cold-restart the stack after a crash (fault injection).

        The radio recovers from its failure; MAC queues, link estimates,
        CTP forwarding state, and routing state are wiped — the node
        rejoins the tree from scratch. Control-protocol state is wiped
        separately (e.g. ``TeleAdjusting.reset_state``); handlers stay
        registered, the same objects serve the rebooted node.
        """
        self.mac.reset()
        self.linkest.reset()
        self.forwarding.reset()
        self.routing.reset()
        self.radio.recover()
        self.mac.resume()

    # ------------------------------------------------------------------- send
    def _count(self, frame_type: FrameType) -> None:
        self.tx_by_type[frame_type] = self.tx_by_type.get(frame_type, 0) + 1

    def send_broadcast(
        self,
        frame_type: FrameType,
        payload: object,
        length: int,
        done: Optional[Callable[[SendResult], None]] = None,
    ) -> Frame:
        """Broadcast a frame (one LPL train)."""
        frame = Frame(
            src=self.node_id, dst=BROADCAST, type=frame_type, payload=payload, length=length
        )
        self._count(frame_type)
        self.mac.send(frame, done)
        return frame

    def send_unicast(
        self,
        dst: int,
        frame_type: FrameType,
        payload: object,
        length: int,
        done: Optional[Callable[[SendResult], None]] = None,
    ) -> Frame:
        """Unicast a frame (acked LPL train)."""
        frame = Frame(
            src=self.node_id, dst=dst, type=frame_type, payload=payload, length=length
        )
        self._count(frame_type)
        self.mac.send(frame, done)
        return frame

    def send_anycast(
        self,
        frame_type: FrameType,
        payload: object,
        length: int,
        done: Optional[Callable[[SendResult], None]] = None,
    ) -> Frame:
        """Anycast a frame (first eligible acker wins)."""
        frame = Frame(
            src=self.node_id, dst=BROADCAST, type=frame_type, payload=payload, length=length
        )
        self._count(frame_type)
        self.mac.send_anycast(frame, done)
        return frame

    # ---------------------------------------------------------------- receive
    def _dispatch(self, frame: Frame, rssi: float) -> None:
        if frame.type is FrameType.ROUTING_BEACON:
            self.routing.beacon_received(frame.payload, rssi)
            return
        if frame.type is FrameType.DATA:
            if frame.dst == self.node_id or frame.is_broadcast:
                self.forwarding.data_received(frame)
            return
        handler = self._handlers.get(frame.type)
        if handler is not None:
            handler(frame, rssi)

    def _anycast_dispatch(self, frame: Frame, rssi: float) -> AnycastDecision:
        if self._anycast_handler is None:
            return AnycastDecision.reject()
        return self._anycast_handler(frame, rssi)

    # ------------------------------------------------------------------ stats
    def total_transmissions(self) -> int:
        """All logical transmissions (LPL trains) this node has made."""
        return sum(self.tx_by_type.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NodeStack(node={self.node_id}, root={self.is_root})"
