"""Network substrate: Trickle, link estimation, and CTP.

The paper builds TeleAdjusting on top of the Collection Tree Protocol (CTP,
Gnawali et al. SenSys'09) with Trickle-timed routing beacons. This package
implements that substrate:

- :mod:`repro.net.trickle` — the Trickle algorithm (Levis et al. NSDI'04).
- :mod:`repro.net.linkest` — beacon- and data-driven ETX link estimator.
- :mod:`repro.net.messages` — beacon / data payload types.
- :mod:`repro.net.ctp` — routing engine (parent selection) and forwarding
  engine (upward data delivery with retransmissions and duplicate filtering).
- :mod:`repro.net.node` — per-node stack bundling radio + MAC + CTP and
  dispatching frames to the protocol registered on top (TeleAdjusting, Drip,
  RPL downward).
"""

from repro.net.ctp import CtpForwarding, CtpRouting, RouteEntry
from repro.net.linkest import LinkEstimator
from repro.net.messages import DataPacket, RoutingBeacon
from repro.net.node import NodeStack
from repro.net.trickle import TrickleTimer

__all__ = [
    "CtpForwarding",
    "CtpRouting",
    "RouteEntry",
    "LinkEstimator",
    "DataPacket",
    "RoutingBeacon",
    "NodeStack",
    "TrickleTimer",
]
