"""Collection Tree Protocol: routing engine and forwarding engine.

Faithful-in-behaviour reimplementation of CTP Noe (Gnawali et al.,
SenSys'09): Trickle-timed beacons advertise ``(parent, path ETX, hop
count)``; nodes pick the parent minimising path ETX with hysteresis and
loop avoidance; the forwarding engine sends data up the tree with
retransmissions and duplicate suppression. TeleAdjusting piggybacks its
position-confirmation fields on these beacons (paper §III-B5).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.mac.lpl import SendResult
from repro.net.linkest import LinkEstimator
from repro.net.messages import NO_ROUTE, DataPacket, RoutingBeacon
from repro.net.trickle import (
    CTP_BEACON_I_MAX_DOUBLINGS,
    CTP_BEACON_I_MIN,
    CTP_BEACON_K,
    TrickleTimer,
)
from repro.radio.frame import BROADCAST, Frame, FrameType
from repro.sim.simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import NodeStack


@dataclass
class RouteEntry:
    """What we know about a neighbour's route from its last beacon."""

    path_etx: float
    hop_count: int
    parent: Optional[int]
    heard_at: int


class CtpRouting:
    """Parent selection and beaconing for one node."""

    #: Only switch parents when the new path beats the old by this much ETX
    #: (CTP uses 1.5 ETX — half a transmission each way — to damp churn).
    PARENT_SWITCH_HYSTERESIS = 1.5
    #: Entries older than this (ticks) are ignored during selection.
    ENTRY_TTL = 600_000_000  # 600 s
    #: A parent silent for this long is declared dead even without data
    #: traffic to probe it (beacons at max Trickle arrive every ~4 min).
    PARENT_STALE_TTL = 300_000_000  # 300 s
    #: How often the staleness check runs.
    STALENESS_CHECK_INTERVAL = 30_000_000  # 30 s

    def __init__(
        self,
        sim: Simulator,
        stack: "NodeStack",
        is_root: bool = False,
        beacon_i_min: int = CTP_BEACON_I_MIN,
        beacon_i_max_doublings: int = CTP_BEACON_I_MAX_DOUBLINGS,
    ) -> None:
        self.sim = sim
        self.stack = stack
        self.node_id = stack.node_id
        self.is_root = is_root
        self.linkest = stack.linkest
        self.table: Dict[int, RouteEntry] = {}
        self.children: Dict[int, int] = {}  # child -> last heard tick
        self.parent: Optional[int] = None
        self.path_etx: float = 0.0 if is_root else float(NO_ROUTE)
        self.hop_count: int = 0 if is_root else NO_ROUTE
        self.beacon_seqno = 0
        self.beacons_sent = 0
        self.trickle = TrickleTimer(
            sim,
            self._send_beacon,
            i_min=beacon_i_min,
            i_max_doublings=beacon_i_max_doublings,
            k=CTP_BEACON_K,
            rng_name=f"ctp-beacon-{self.node_id}",
        )
        #: Fired once, when a non-root node first acquires a parent (the
        #: paper's "routing found event" that arms TeleAdjusting).
        self.on_parent_found: List[Callable[[], None]] = []
        #: Fired on every parent change with (old_parent, new_parent).
        self.on_parent_change: List[Callable[[Optional[int], Optional[int]], None]] = []
        self._had_parent = False

    # ----------------------------------------------------------------- start
    def start(self) -> None:
        """Start this component (idempotent)."""
        self.trickle.start()
        if not self.is_root:
            self.sim.schedule(self.STALENESS_CHECK_INTERVAL, self._staleness_check)

    def _staleness_check(self) -> None:
        self.sim.schedule(self.STALENESS_CHECK_INTERVAL, self._staleness_check)
        if self.parent is None:
            return
        entry = self.table.get(self.parent)
        if entry is None or self.sim.now - entry.heard_at > self.PARENT_STALE_TTL:
            self.parent_unreachable()

    @property
    def has_route(self) -> bool:
        """True when this node has a usable route to the sink."""
        return self.is_root or self.parent is not None

    # --------------------------------------------------------------- beacons
    def _send_beacon(self) -> None:
        self.beacon_seqno += 1
        self.beacons_sent += 1
        beacon = RoutingBeacon(
            origin=self.node_id,
            parent=self.parent,
            path_etx=self.path_etx,
            hop_count=self.hop_count,
            seqno=self.beacon_seqno,
        )
        self.stack.fill_beacon(beacon)
        self.stack.send_broadcast(
            FrameType.ROUTING_BEACON, beacon, length=RoutingBeacon.LENGTH
        )

    def beacon_received(self, beacon: RoutingBeacon, rssi: float) -> None:
        """Process one incoming routing beacon."""
        origin = beacon.origin
        self.linkest.beacon_received(origin, beacon.seqno, rssi)
        self.table[origin] = RouteEntry(
            path_etx=beacon.path_etx,
            hop_count=beacon.hop_count,
            parent=beacon.parent,
            heard_at=self.sim.now,
        )
        if beacon.parent == self.node_id:
            self.children[origin] = self.sim.now
        else:
            self.children.pop(origin, None)
        # Route pull: a routeless neighbour while we have a route is an
        # inconsistency — beacon soon so it can join.
        if beacon.path_etx >= NO_ROUTE and self.has_route:
            self.trickle.hear_inconsistent()
        self._evaluate_route()
        self.stack.beacon_observed(beacon, rssi)

    # ------------------------------------------------------------- selection
    def _candidate_cost(self, neighbor: int) -> Optional[float]:
        entry = self.table.get(neighbor)
        if entry is None or entry.path_etx >= NO_ROUTE:
            return None
        if self.sim.now - entry.heard_at > self.ENTRY_TTL:
            return None
        if entry.parent == self.node_id or neighbor in self.children:
            return None  # loop avoidance
        if not self.linkest.is_usable(neighbor):
            return None
        return entry.path_etx + self.linkest.link_etx(neighbor)

    def _evaluate_route(self) -> None:
        if self.is_root:
            return
        best: Optional[int] = None
        best_cost = float("inf")
        for neighbor in self.table:
            cost = self._candidate_cost(neighbor)
            if cost is not None and cost < best_cost:
                best, best_cost = neighbor, cost
        if best is None:
            return
        current_cost = self._candidate_cost(self.parent) if self.parent is not None else None
        switch = False
        if self.parent is None or current_cost is None:
            switch = True
        elif best != self.parent and best_cost < current_cost - self.PARENT_SWITCH_HYSTERESIS:
            switch = True
        if switch and best != self.parent:
            old = self.parent
            self.parent = best
            self.trickle.reset()
            for callback in self.on_parent_change:
                callback(old, best)
            if not self._had_parent:
                self._had_parent = True
                for callback in self.on_parent_found:
                    callback()
        self._update_own_metric()

    def _update_own_metric(self) -> None:
        if self.is_root or self.parent is None:
            return
        entry = self.table.get(self.parent)
        if entry is None:
            return
        self.path_etx = entry.path_etx + self.linkest.link_etx(self.parent)
        self.hop_count = (entry.hop_count + 1) if entry.hop_count < NO_ROUTE else NO_ROUTE

    def reset(self) -> None:
        """Cold-restart the routing engine (node reboot).

        All learned state is dropped; ``on_parent_change(old, None)`` fires
        so dependants (TeleAdjusting's allocation) invalidate what they
        derived from the route, and ``on_parent_found`` will fire again on
        the next acquisition. Trickle snaps back to its fastest interval,
        as a freshly booted CTP node's would.
        """
        old = self.parent
        self.table.clear()
        self.children.clear()
        self.parent = None
        self.path_etx = 0.0 if self.is_root else float(NO_ROUTE)
        self.hop_count = 0 if self.is_root else NO_ROUTE
        self._had_parent = False
        if old is not None:
            for callback in self.on_parent_change:
                callback(old, None)
        self.trickle.reset()

    def parent_unreachable(self) -> None:
        """Forwarding engine signal: repeated send failures to the parent."""
        if self.parent is not None:
            entry = self.table.get(self.parent)
            if entry is not None:
                entry.path_etx = float(NO_ROUTE)
            old = self.parent
            self.parent = None
            self.path_etx = float(NO_ROUTE)
            self.trickle.reset()
            for callback in self.on_parent_change:
                callback(old, None)
            self._evaluate_route()


class CtpForwarding:
    """Upward data forwarding with retransmissions and duplicate filtering."""

    MAX_SEND_TRIES = 4  # LPL trains per hop before declaring the parent dead
    QUEUE_LIMIT = 12
    DEDUP_CACHE = 128
    MAX_THL = 32

    def __init__(self, sim: Simulator, stack: "NodeStack") -> None:
        self.sim = sim
        self.stack = stack
        self.node_id = stack.node_id
        self.routing = stack.routing
        self.linkest = stack.linkest
        self._queue: List[DataPacket] = []
        self._sending = False
        self._tries = 0
        self._seen: "OrderedDict[Tuple[int, int, int], int]" = OrderedDict()
        self._seqno = 0
        #: Sink-side delivery callback(packet); set on the root's stack.
        self.on_deliver: Optional[Callable[[DataPacket], None]] = None
        #: Sink-side per-collect-id handlers (multiplexing, like CTP's
        #: collection ids); consulted in addition to :attr:`on_deliver`.
        self.collect_handlers: Dict[int, Callable[[DataPacket], None]] = {}
        #: Hooks run on every packet this node *originates* (e.g.
        #: TeleAdjusting stamps the node's path code onto it).
        self.origin_decorators: List[Callable[[DataPacket], None]] = []
        #: Sink-side observers run on every delivered packet, regardless of
        #: collect id (in addition to handlers and on_deliver).
        self.deliver_observers: List[Callable[[DataPacket], None]] = []
        self.packets_sent = 0
        self.packets_delivered = 0
        self.packets_dropped = 0

    def reset(self) -> None:
        """Drop queued packets and dedup state (node reboot)."""
        self._queue.clear()
        self._sending = False
        self._tries = 0
        self._seen.clear()

    # ------------------------------------------------------------------- API
    def send(self, collect_id: int, payload: object, origin_seqno: Optional[int] = None) -> DataPacket:
        """Originate a data packet toward the sink."""
        if origin_seqno is None:
            self._seqno += 1
            origin_seqno = self._seqno
        packet = DataPacket(
            origin=self.node_id,
            origin_seqno=origin_seqno,
            collect_id=collect_id,
            payload=payload,
        )
        for decorator in self.origin_decorators:
            decorator(packet)
        self._enqueue(packet)
        return packet

    # -------------------------------------------------------------- plumbing
    def _remember(self, key: Tuple[int, int, int]) -> None:
        self._seen[key] = self.sim.now
        while len(self._seen) > self.DEDUP_CACHE:
            self._seen.popitem(last=False)

    def _enqueue(self, packet: DataPacket) -> None:
        if len(self._queue) >= self.QUEUE_LIMIT:
            self.packets_dropped += 1
            return
        self._queue.append(packet)
        self._pump()

    def _pump(self) -> None:
        if self._sending or not self._queue:
            return
        if self.routing.is_root:
            packet = self._queue.pop(0)
            self._deliver(packet)
            self._pump()
            return
        if self.routing.parent is None:
            # No route yet; retry once beacons have built one.
            self.sim.schedule(1_000_000, self._pump)
            return
        self._sending = True
        self._tries = 0
        self._transmit(self._queue[0])

    def _transmit(self, packet: DataPacket) -> None:
        parent = self.routing.parent
        if parent is None:
            self._sending = False
            self.sim.schedule(1_000_000, self._pump)
            return
        frame = Frame(
            src=self.node_id,
            dst=parent,
            type=FrameType.DATA,
            payload=packet,
            length=DataPacket.LENGTH,
        )
        self.stack.mac.send(frame, lambda result: self._sent(packet, parent, result))

    def _sent(self, packet: DataPacket, parent: int, result: SendResult) -> None:
        self.linkest.data_sent(parent, result.ok)
        if result.ok:
            self.packets_sent += 1
            if self._queue and self._queue[0] is packet:
                self._queue.pop(0)
            self._sending = False
            self._pump()
            return
        self._tries += 1
        if self._tries >= self.MAX_SEND_TRIES:
            self.routing.parent_unreachable()
            self._tries = 0
        self._sending = False
        self.sim.schedule(50_000, self._pump)

    # --------------------------------------------------------------- receive
    def data_received(self, frame: Frame) -> None:
        """Process one incoming data frame (forward or deliver)."""
        packet: DataPacket = frame.payload
        key = packet.key()
        if key in self._seen:
            return
        self._remember(key)
        if self.routing.is_root:
            self._deliver(packet)
            return
        if packet.thl >= self.MAX_THL:
            self.packets_dropped += 1
            return
        forwarded = DataPacket(
            origin=packet.origin,
            origin_seqno=packet.origin_seqno,
            collect_id=packet.collect_id,
            thl=packet.thl + 1,
            payload=packet.payload,
            tele_code=packet.tele_code,
        )
        self._enqueue(forwarded)

    def _deliver(self, packet: DataPacket) -> None:
        self.packets_delivered += 1
        for observer in self.deliver_observers:
            observer(packet)
        handler = self.collect_handlers.get(packet.collect_id)
        if handler is not None:
            handler(packet)
        if self.on_deliver is not None:
            self.on_deliver(packet)
