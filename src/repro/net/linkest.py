"""ETX link estimation from beacon reception and data-ack feedback.

Modelled on CTP's 4-bit link estimator: beacon sequence numbers give an
ingress reception ratio per window, unicast send outcomes give a direct ETX
sample, and the two blend with exponentially weighted moving averages (data
samples dominate once present, as in the TinyOS implementation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: ETX reported for a neighbour we know nothing about yet.
UNKNOWN_ETX = 16.0


@dataclass
class _NeighborEstimate:
    last_beacon_seqno: Optional[int] = None
    beacons_received: int = 0
    beacons_expected: int = 0
    beacon_quality: float = 0.0  # EWMA of windowed reception ratio
    beacon_windows: int = 0
    data_etx: Optional[float] = None  # EWMA of 1/success from unicast sends
    data_attempts: int = 0
    data_successes: int = 0
    last_rssi: float = -100.0


class LinkEstimator:
    """Per-node link-quality table."""

    #: Beacons per quality-update window.
    WINDOW = 5
    #: EWMA weight given to history (alpha) for beacon quality.
    ALPHA_BEACON = 0.6
    #: EWMA weight given to history for data ETX.
    ALPHA_DATA = 0.7
    #: Data samples per data-ETX update.
    DATA_WINDOW = 3
    #: Links worse than this ETX are treated as unusable.
    MAX_ETX = 10.0

    def __init__(self) -> None:
        self._table: Dict[int, _NeighborEstimate] = {}

    # --------------------------------------------------------------- updates
    def beacon_received(self, neighbor: int, seqno: int, rssi: float) -> None:
        """Account an incoming beacon (gaps in seqno imply missed beacons)."""
        est = self._table.setdefault(neighbor, _NeighborEstimate())
        est.last_rssi = rssi
        if est.last_beacon_seqno is None:
            est.beacons_expected += 1
        else:
            gap = seqno - est.last_beacon_seqno
            if gap <= 0:
                gap = 1  # reboot or wrap: count conservatively
            est.beacons_expected += gap
        est.last_beacon_seqno = seqno
        est.beacons_received += 1
        if est.beacons_received % self.WINDOW == 0:
            ratio = min(est.beacons_received / max(est.beacons_expected, 1), 1.0)
            if est.beacon_windows == 0:
                est.beacon_quality = ratio
            else:
                est.beacon_quality = (
                    self.ALPHA_BEACON * est.beacon_quality
                    + (1 - self.ALPHA_BEACON) * ratio
                )
            est.beacon_windows += 1
            est.beacons_received = 0
            est.beacons_expected = 0

    def data_sent(self, neighbor: int, success: bool) -> None:
        """Account the outcome of one unicast send (one LPL train) to ``neighbor``."""
        est = self._table.setdefault(neighbor, _NeighborEstimate())
        est.data_attempts += 1
        if success:
            est.data_successes += 1
        if est.data_attempts >= self.DATA_WINDOW:
            if est.data_successes == 0:
                sample = self.MAX_ETX * 2
            else:
                sample = est.data_attempts / est.data_successes
            if est.data_etx is None:
                est.data_etx = sample
            else:
                est.data_etx = (
                    self.ALPHA_DATA * est.data_etx + (1 - self.ALPHA_DATA) * sample
                )
            est.data_attempts = 0
            est.data_successes = 0

    # --------------------------------------------------------------- queries
    def link_etx(self, neighbor: int) -> float:
        """Best current ETX estimate for the link to ``neighbor``."""
        est = self._table.get(neighbor)
        if est is None:
            return UNKNOWN_ETX
        if est.data_etx is not None:
            return est.data_etx
        if est.beacon_windows > 0 and est.beacon_quality > 0:
            # Beacon PRR measures ingress; assume near-symmetry (the paper's
            # links are static with symmetric gains).
            return min(1.0 / (est.beacon_quality**2), UNKNOWN_ETX)
        if est.beacons_received > 0:
            return 2.0  # heard something recently; optimistic bootstrap
        return UNKNOWN_ETX

    def is_usable(self, neighbor: int) -> bool:
        """True when the link's ETX is below the usable ceiling."""
        return self.link_etx(neighbor) <= self.MAX_ETX

    def neighbors(self) -> List[int]:
        """All neighbours with any recorded state."""
        return list(self._table)

    def rssi(self, neighbor: int) -> float:
        """Last beacon RSSI heard from the neighbour (dBm)."""
        est = self._table.get(neighbor)
        return est.last_rssi if est is not None else -100.0

    def forget(self, neighbor: int) -> None:
        """Drop all state for a neighbour (eviction / long silence)."""
        self._table.pop(neighbor, None)

    def reset(self) -> None:
        """Drop every estimate (node reboot). Clears in place: routing and
        forwarding keep references to this estimator."""
        self._table.clear()
