"""The experiment harness: a fully wired network with one control protocol.

:class:`Network` assembles deployment → channel (+ optional WiFi interferer)
→ per-node stacks → one of the three control protocols (``"tele"``,
``"drip"``, ``"rpl"``), and offers convergence helpers plus a uniform
``send_control`` that records a :class:`~repro.metrics.control.ControlRecord`
per request. Examples and benchmarks all build on this class; the public
``repro.build_network`` returns one.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

from repro.baselines.drip import Drip, DripParams
from repro.baselines.orpl import OrplDownward, OrplParams
from repro.baselines.rpl import RplDownward, RplParams
from repro.core import Controller, TeleAdjusting
from repro.core.allocation import AllocationParams
from repro.core.forwarding import ForwardingParams
from repro.core.messages import reset_serials
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.mac.lpl import MacParams
from repro.metrics.control import ControlMetrics, ControlRecord
from repro.metrics.network import NetworkMetrics
from repro.net.node import NodeStack
from repro.radio.channel import Channel
from repro.radio.noise import ConstantNoise, CPMNoiseModel, synthesize_meyer_like_trace
from repro.sim.simulator import Simulator
from repro.sim.units import MINUTE, SECOND
from repro.topology import (
    Deployment,
    indoor_testbed,
    random_uniform,
    sparse_linear,
    tight_grid,
)
from repro.workloads.collection import CollectionWorkload
from repro.workloads.interference import WifiInterferer, WifiParams

_TOPOLOGIES: Dict[str, Callable[[int], Deployment]] = {
    "tight-grid": tight_grid,
    "sparse-linear": sparse_linear,
    "indoor-testbed": indoor_testbed,
}


@dataclass
class NetworkConfig:
    """Everything needed to build a network."""

    topology: Union[str, Deployment] = "indoor-testbed"
    protocol: str = "tele"  # "tele" | "drip" | "rpl" | "none"
    seed: int = 0
    #: ZigBee channel: 26 (clean) or 19 (WiFi-interfered), per the paper.
    zigbee_channel: int = 26
    #: Noise model: "cpm" (synthetic meyer-like trace) or "constant".
    noise: str = "cpm"
    #: All radios always on (used by the Figure 6 construction experiments;
    #: TOSSIM's default CTP runs are not duty-cycled either).
    always_on: bool = False
    mac_params: Optional[MacParams] = None
    allocation_params: Optional[AllocationParams] = None
    forwarding_params: Optional[ForwardingParams] = None
    drip_params: Optional[DripParams] = None
    rpl_params: Optional[RplParams] = None
    orpl_params: Optional[OrplParams] = None
    #: Enable the §III-C4 countermeasure ("Re-Tele" in Figure 7).
    re_tele: bool = False
    #: Disable to ablate opportunistic forwarding (strict encoded path).
    opportunistic: bool = True
    #: Collection traffic inter-packet interval; None disables collection.
    collection_ipi: Optional[int] = 10 * MINUTE
    #: WiFi interferer overrides (position, intensity); channel decides coupling.
    wifi_params: Optional[WifiParams] = None
    #: Slow flat fading sigma (dB); the link burstiness behind the paper's
    #: dynamics. 0 disables. The clean-channel testbed behaves like a gentle
    #: environment; WiFi interference (channel 19) adds the harsher bursts.
    fading_sigma_db: float = 2.0
    #: Fault-injection plan (see :mod:`repro.faults`); None = no faults.
    faults: Optional[FaultPlan] = None

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-ready dict: sorted keys at every level.

        Nested parameter dataclasses (``MacParams``, ``AllocationParams``, …)
        become sorted dicts, a :class:`~repro.topology.Deployment` topology
        serialises through its own ``to_dict``, and tuples become lists, so
        the output is stable across field/insertion order and suitable for
        content-addressed cache keys (see :mod:`repro.runner.taskspec`).

        ``faults`` is omitted entirely when None, so fault-free configs keep
        the fingerprints (and thus cache entries) they had before the faults
        layer existed.
        """
        out = {
            f.name: _canonical_value(getattr(self, f.name))
            for f in sorted(dataclasses.fields(self), key=lambda f: f.name)
        }
        if out["faults"] is None:
            del out["faults"]
        return out


def _canonical_value(value: Any) -> Any:
    """Recursively convert a config value to sorted, JSON-ready form."""
    if isinstance(value, Deployment):
        return value.to_dict()
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _canonical_value(getattr(value, f.name))
            for f in sorted(dataclasses.fields(value), key=lambda f: f.name)
        }
    if isinstance(value, dict):
        return {str(k): _canonical_value(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical_value(v) for v in value]
    return value


class Network:
    """A runnable simulated WSN with one remote-control protocol."""

    def __init__(self, config: Optional[NetworkConfig] = None, **overrides: object) -> None:
        if config is None:
            config = NetworkConfig()
        for key, value in overrides.items():
            if not hasattr(config, key):
                raise TypeError(f"unknown NetworkConfig field: {key}")
            setattr(config, key, value)
        if isinstance(config.faults, dict):
            config.faults = FaultPlan.from_dict(config.faults)
        self.config = config
        # Fresh network, fresh serial space: without this, repeating the same
        # run in one process stamps different control serials into traces and
        # breaks bit-identical reproducibility.
        reset_serials()
        if isinstance(config.topology, Deployment):
            self.deployment = config.topology
        else:
            try:
                factory = _TOPOLOGIES[config.topology]
            except KeyError:
                raise ValueError(
                    f"unknown topology {config.topology!r}; "
                    f"choose from {sorted(_TOPOLOGIES)} or pass a Deployment"
                ) from None
            self.deployment = factory(config.seed)
        self.sim = Simulator(seed=config.seed)
        if config.noise == "cpm":
            trace = synthesize_meyer_like_trace(seed=config.seed)
            noise_model = CPMNoiseModel(trace, seed=config.seed)
        elif config.noise == "constant":
            noise_model = ConstantNoise()
        else:
            raise ValueError(f"unknown noise model {config.noise!r}")
        self.channel = Channel(
            self.sim,
            self.deployment.gains(),
            noise_model=noise_model,
            fading_sigma_db=config.fading_sigma_db,
        )
        self.interferer: Optional[WifiInterferer] = None
        if config.zigbee_channel != 26 or config.wifi_params is not None:
            params = config.wifi_params or WifiParams.zigbee_channel(
                config.zigbee_channel
            )
            if config.wifi_params is None:
                # Put the access point just outside the field's corner.
                xs = [p[0] for p in self.deployment.positions]
                ys = [p[1] for p in self.deployment.positions]
                params.position = (max(xs) * 0.6, max(ys) * 0.6)
            self.interferer = WifiInterferer(
                self.sim, self.deployment.positions, self.deployment.propagation, params
            )
            self.channel.add_interferer(self.interferer)
        mac_params = config.mac_params
        if mac_params is None and config.always_on:
            mac_params = MacParams.always_on_network()
        self.sink = self.deployment.sink
        self.stacks: Dict[int, NodeStack] = {}
        for node_id in range(self.deployment.size):
            self.stacks[node_id] = NodeStack(
                self.sim,
                self.channel,
                node_id,
                is_root=(node_id == self.sink),
                tx_power_dbm=self.deployment.node_tx_power(node_id),
                mac_params=mac_params,
                always_on=True if config.always_on else None,
            )
        self.controller = Controller(channel=self.channel)
        self.protocols: Dict[int, object] = {}
        self._build_protocol()
        self.collection: Optional[CollectionWorkload] = None
        if config.collection_ipi is not None:
            self.collection = CollectionWorkload(
                self.sim, self.stacks, ipi=config.collection_ipi
            )
        self.metrics = NetworkMetrics(self.sim, self.stacks)
        self.control_metrics = ControlMetrics()
        self._records_by_key: Dict[object, ControlRecord] = {}
        self._next_index = 0
        self._started = False
        #: Controls sent while the controller's registered code for the
        #: destination disagreed with the node's live code (stale-address
        #: forwarding attempts — a churn metric).
        self.stale_code_sends = 0
        self.fault_injector: Optional[FaultInjector] = None
        if config.faults is not None:
            self.fault_injector = FaultInjector(self, config.faults)

    # ---------------------------------------------------------------- wiring
    def _build_protocol(self) -> None:
        protocol = self.config.protocol
        if protocol == "none":
            return
        if protocol == "tele":
            forwarding_params = self.config.forwarding_params or ForwardingParams(
                re_tele=self.config.re_tele,
                opportunistic=self.config.opportunistic,
            )
            for node_id, stack in self.stacks.items():
                tele = TeleAdjusting(
                    self.sim,
                    stack,
                    controller=self.controller,
                    allocation_params=self.config.allocation_params,
                    forwarding_params=forwarding_params,
                )
                tele.forwarding.on_delivered = self._tele_delivered
                self.protocols[node_id] = tele
        elif protocol == "drip":
            for node_id, stack in self.stacks.items():
                drip = Drip(self.sim, stack, params=self.config.drip_params)
                drip.on_delivered = self._drip_delivered
                self.protocols[node_id] = drip
        elif protocol == "rpl":
            for node_id, stack in self.stacks.items():
                rpl = RplDownward(self.sim, stack, params=self.config.rpl_params)
                rpl.on_delivered = self._rpl_delivered
                self.protocols[node_id] = rpl
        elif protocol == "orpl":
            for node_id, stack in self.stacks.items():
                orpl = OrplDownward(self.sim, stack, params=self.config.orpl_params)
                orpl.on_delivered = self._orpl_delivered
                self.protocols[node_id] = orpl
        else:
            raise ValueError(f"unknown protocol {protocol!r}")

    # ----------------------------------------------------------------- start
    def start(self) -> None:
        """Start every stack, protocol, workload, and the interferer."""
        if self._started:
            return
        self._started = True
        for stack in self.stacks.values():
            stack.start()
        for protocol in self.protocols.values():
            protocol.start()  # type: ignore[attr-defined]
        if self.collection is not None:
            self.collection.start()
        if self.interferer is not None:
            self.interferer.start()
        if self.fault_injector is not None and self.config.faults.auto_arm:
            self.fault_injector.arm()

    def run(self, seconds: float) -> None:
        """Advance the simulation by ``seconds`` (starting it if needed)."""
        self.start()
        self.sim.run(until=self.sim.now + round(seconds * SECOND))

    # ------------------------------------------------------------ convergence
    def routed_fraction(self) -> float:
        """Fraction of nodes with a CTP route."""
        return sum(1 for s in self.stacks.values() if s.routing.has_route) / len(
            self.stacks
        )

    def coded_fraction(self) -> float:
        """Fraction of nodes holding a TeleAdjusting path code."""
        if self.config.protocol != "tele":
            return 0.0
        coded = sum(
            1
            for p in self.protocols.values()
            if p.allocation.code is not None  # type: ignore[attr-defined]
        )
        return coded / len(self.protocols)

    def rpl_routed_fraction(self) -> float:
        """Fraction of destinations in the sink's RPL table."""
        if self.config.protocol != "rpl":
            return 0.0
        sink_rpl: RplDownward = self.protocols[self.sink]  # type: ignore[assignment]
        return len(sink_rpl.routes) / max(len(self.stacks) - 1, 1)

    def orpl_coverage_fraction(self) -> float:
        """Fraction of nodes the sink's bloom claims."""
        if self.config.protocol != "orpl":
            return 0.0
        sink_orpl: OrplDownward = self.protocols[self.sink]  # type: ignore[assignment]
        covered = sum(1 for n in self.non_sink_nodes() if sink_orpl.claims(n))
        return covered / max(len(self.stacks) - 1, 1)

    def converge(
        self,
        max_seconds: float = 600.0,
        check_interval: float = 10.0,
        target: float = 1.0,
    ) -> bool:
        """Run until the protocol's addressing state covers ``target`` of nodes.

        For TeleAdjusting: path codes assigned (the controller is snapshotted
        on success). For RPL: sink routing table coverage. For Drip and bare
        CTP: route acquisition.
        """
        self.start()
        deadline = self.sim.now + round(max_seconds * SECOND)
        check = {
            "tele": self.coded_fraction,
            "rpl": self.rpl_routed_fraction,
            "orpl": self.orpl_coverage_fraction,
        }.get(self.config.protocol, self.routed_fraction)
        while True:
            if check() >= target:
                break
            if self.sim.now >= deadline:
                break
            self.sim.run(
                until=min(self.sim.now + round(check_interval * SECOND), deadline)
            )
        converged = check() >= target
        if self.config.protocol == "tele":
            self.controller.snapshot(self.protocols)  # type: ignore[arg-type]
        return converged

    # ------------------------------------------------------------- controls
    def send_control(self, destination: int, payload: object = None) -> ControlRecord:
        """Issue one remote-control request and return its live record.

        The record fills in as the simulation advances (delivery at the
        destination, end-to-end ack at the sink).
        """
        record = ControlRecord(
            index=self._next_index,
            destination=destination,
            hop_count=self.stacks[destination].routing.hop_count,
            sent_at=self.sim.now,
        )
        self._next_index += 1
        self.control_metrics.add(record)
        protocol = self.config.protocol
        if protocol == "tele":
            sink_tele: TeleAdjusting = self.protocols[self.sink]  # type: ignore[assignment]
            # Refresh the controller's code registry (nodes keep reporting in
            # the real system; the snapshot stands in for that).
            self.controller.snapshot(self.protocols)  # type: ignore[arg-type]
            registered = self.controller.code_of(destination)
            if registered is None:
                return record  # unaddressable: an honest delivery failure
            # Oracle-only metric (the protocol never sees this comparison):
            # count sends addressed with a code the destination no longer
            # holds — e.g. it crashed and its registry entry went stale.
            live = self.protocols[destination].allocation.code  # type: ignore[attr-defined]
            if live != registered:
                self.stale_code_sends += 1
            pending = sink_tele.remote_control(
                destination, payload=payload, done=lambda p: self._tele_done(record, p)
            )
            self._records_by_key[("tele", pending.control.serial)] = record
        elif protocol == "drip":
            sink_drip: Drip = self.protocols[self.sink]  # type: ignore[assignment]
            pending = sink_drip.disseminate(
                payload, destination=destination, done=lambda p: self._drip_done(record, p)
            )
            self._records_by_key[("drip", pending.value.version)] = record
        elif protocol == "rpl":
            sink_rpl: RplDownward = self.protocols[self.sink]  # type: ignore[assignment]
            if destination not in sink_rpl.routes:
                return record  # no stored route: RPL drops at the sink
            pending = sink_rpl.send_control(
                destination, payload=payload, done=lambda p: self._rpl_done(record, p)
            )
            self._records_by_key[("rpl", pending.control.serial)] = record
        elif protocol == "orpl":
            sink_orpl: OrplDownward = self.protocols[self.sink]  # type: ignore[assignment]
            pending = sink_orpl.send_control(
                destination, payload=payload, done=lambda p: self._rpl_done(record, p)
            )
            self._records_by_key[("orpl", pending.control.serial)] = record
        else:
            raise RuntimeError(f"protocol {protocol!r} cannot send controls")
        return record

    # -------------------------------------------------- delivery observation
    def _tele_delivered(self, control, via_unicast: bool) -> None:
        record = self._records_by_key.get(("tele", control.serial))
        if record is not None and record.delivered_at is None:
            record.delivered_at = self.sim.now
            record.athx = control.athx
            record.via_unicast = via_unicast

    def _drip_delivered(self, value) -> None:
        record = self._records_by_key.get(("drip", value.version))
        if record is not None and record.delivered_at is None:
            record.delivered_at = self.sim.now

    def _rpl_delivered(self, control) -> None:
        record = self._records_by_key.get(("rpl", control.serial))
        if record is not None and record.delivered_at is None:
            record.delivered_at = self.sim.now
            record.athx = control.hops

    def _orpl_delivered(self, control) -> None:
        record = self._records_by_key.get(("orpl", control.serial))
        if record is not None and record.delivered_at is None:
            record.delivered_at = self.sim.now
            record.athx = control.athx

    def _tele_done(self, record: ControlRecord, pending) -> None:
        if pending.acked_at is not None:
            record.acked_at = pending.acked_at

    def _drip_done(self, record: ControlRecord, pending) -> None:
        if pending.acked_at is not None:
            record.acked_at = pending.acked_at

    def _rpl_done(self, record: ControlRecord, pending) -> None:
        if pending.acked_at is not None:
            record.acked_at = pending.acked_at

    # -------------------------------------------------------------- helpers
    def non_sink_nodes(self) -> List[int]:
        """Every node id except the sink's."""
        return [n for n in self.stacks if n != self.sink]

    def protocol_at(self, node_id: int):
        """The control-protocol instance running on a node."""
        return self.protocols.get(node_id)
